#include "spark/kernels.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iterator>

#include "common/error.h"
#include "common/rng.h"
#include "sparse/assembly.h"

namespace quake::spark
{

namespace
{

/** Doubles per 64-byte cache line, for padding accumulator slabs. */
constexpr std::int64_t kDoublesPerCacheLine = 8;

/** Round n up to a whole number of cache lines. */
std::int64_t
padToCacheLine(std::int64_t n)
{
    return (n + kDoublesPerCacheLine - 1) / kDoublesPerCacheLine *
           kDoublesPerCacheLine;
}

/**
 * nnz-balanced block-row cuts for `chunks` workers: chunk c covers the
 * block rows whose xadj crosses c/chunks of the total block count.
 */
std::vector<std::int64_t>
balancedRowCuts(const std::vector<std::int64_t> &xadj,
                std::int64_t num_rows, int chunks)
{
    const std::int64_t total = num_rows > 0 ? xadj[num_rows] : 0;
    std::vector<std::int64_t> cut(static_cast<std::size_t>(chunks) + 1);
    cut[0] = 0;
    for (int c = 1; c < chunks; ++c) {
        const std::int64_t target = total * c / chunks;
        cut[c] = std::lower_bound(xadj.begin(),
                                  xadj.begin() + num_rows + 1, target) -
                 xadj.begin();
        cut[c] = std::min<std::int64_t>(cut[c], num_rows);
        cut[c] = std::max(cut[c], cut[c - 1]);
    }
    cut[chunks] = num_rows;
    return cut;
}

} // namespace

std::string
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::kCsr: return "smv-csr";
      case Kernel::kBcsr3: return "smv-bcsr3";
      case Kernel::kSym: return "smv-sym";
      case Kernel::kThreaded: return "smv-threaded";
      case Kernel::kSymBcsr3: return "smv-bcsr3sym";
      case Kernel::kSymBcsr3Mt: return "smv-bcsr3sym-mt";
      case Kernel::kSlicedEll3: return "smv-ell3";
      case Kernel::kSlicedEll3Mt: return "smv-ell3-mt";
      case Kernel::kSymBcsr3Simd: return "smv-bcsr3sym-simd";
    }
    QUAKE_PANIC("unknown kernel");
}

void
smvpThreaded(const sparse::Bcsr3Matrix &a, const double *x, double *y,
             parallel::WorkerPool &pool)
{
    if (pool.size() == 1 || a.numBlockRows() < 2) {
        a.multiply(x, y);
        return;
    }
    const std::vector<std::int64_t> cut =
        balancedRowCuts(a.xadj(), a.numBlockRows(), pool.size());
    pool.run([&](int tid) {
        a.multiplyRows(x, y, cut[tid], cut[tid + 1]);
    });
}

void
smvpSymBcsr3Threaded(const sparse::SymBcsr3Matrix &a, const double *x,
                     double *y, parallel::WorkerPool &pool,
                     std::vector<double> &scratch)
{
    if (pool.size() == 1 || a.numBlockRows() < 2) {
        a.multiply(x, y);
        return;
    }
    const int workers = pool.size();
    const std::int64_t n = a.numRows();

    // One padded slab per worker so adjacent slabs never share a cache
    // line — the symmetric scatter writes all over its slab, and false
    // sharing between workers would serialize exactly the hot path.
    const std::int64_t slab = padToCacheLine(n);
    scratch.assign(static_cast<std::size_t>(slab) * workers, 0.0);

    const std::vector<std::int64_t> cut =
        balancedRowCuts(a.xadj(), a.numBlockRows(), workers);
    pool.run([&](int tid) {
        a.multiplyRowsScatter(x, scratch.data() + slab * tid, cut[tid],
                              cut[tid + 1]);
    });

    // Deterministic reduction: y[j] = sum over workers in ascending tid
    // order, each reducer owning a disjoint range of j.
    const std::int64_t per =
        (n + workers - 1) / workers;
    pool.run([&](int tid) {
        const std::int64_t lo = std::min<std::int64_t>(tid * per, n);
        const std::int64_t hi =
            std::min<std::int64_t>(lo + per, n);
        for (std::int64_t j = lo; j < hi; ++j) {
            double acc = 0.0;
            for (int w = 0; w < workers; ++w)
                acc += scratch[slab * w + j];
            y[j] = acc;
        }
    });
}

void
smvpSlicedEll3Threaded(const sparse::SlicedEll3Matrix &a, const double *x,
                       double *y, parallel::WorkerPool &pool)
{
    if (pool.size() == 1 || a.numSlices() < 2) {
        a.multiply(x, y);
        return;
    }
    // Stored-block-balanced slice cuts: sliceBases() is the slot-count
    // prefix over slices, exactly the shape balancedRowCuts expects.
    const std::vector<std::int64_t> cut =
        balancedRowCuts(a.sliceBases(), a.numSlices(), pool.size());
    pool.run([&](int tid) {
        a.multiplySlices(x, y, cut[tid], cut[tid + 1]);
    });
}

FusedStepKernel::FusedStepKernel(const sparse::Bcsr3Matrix &a,
                                 parallel::WorkerPool &pool)
    : a_(a), pool_(pool),
      cut_(balancedRowCuts(a.xadj(), a.numBlockRows(), kChunks)),
      partials_(static_cast<std::size_t>(kChunks) * kPartialsStride)
{
}

sparse::StepPartials
FusedStepKernel::step(const sparse::StepUpdate &su) const
{
    QUAKE_EXPECT(su.u != nullptr && su.up != nullptr &&
                     su.f != nullptr && su.invMass != nullptr,
                 "fused step update has unbound field pointers");

    su_arg_ = &su;
    pool_.run([this](int tid) {
        const int workers = pool_.size();
        for (int c = tid; c < kChunks; c += workers) {
            sparse::StepPartials &slot =
                partials_[static_cast<std::size_t>(c) * kPartialsStride];
            slot = sparse::StepPartials{};
            a_.multiplyRowsFusedStep(*su_arg_, cut_[c], cut_[c + 1],
                                     slot);
        }
    });
    su_arg_ = nullptr;

    // Ascending-chunk combine over the fixed grid: identical for every
    // pool size, including 1.
    sparse::StepPartials out;
    for (int c = 0; c < kChunks; ++c)
        out.combine(
            partials_[static_cast<std::size_t>(c) * kPartialsStride]);
    return out;
}

KernelSuite::KernelSuite(const mesh::TetMesh &mesh,
                         const mesh::SoilModel &model, double poisson)
    : bcsr_(sparse::assembleStiffness(mesh, model, poisson)),
      csr_(bcsr_.toCsr()),
      sym_(sparse::SymCsrMatrix::fromCsr(csr_, 1e-9)),
      sym_bcsr_(sparse::SymBcsr3Matrix::fromBcsr3(bcsr_, 1e-9)),
      ell_(sparse::SlicedEll3Matrix::fromBcsr3(bcsr_))
{
}

parallel::WorkerPool &
KernelSuite::poolFor() const
{
    if (!pool_)
        pool_ = std::make_unique<parallel::WorkerPool>(threads_);
    return *pool_;
}

std::vector<double>
KernelSuite::run(Kernel kernel, const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof(),
                 "x has " << x.size() << " entries, expected " << dof());
    std::vector<double> y(x.size());
    switch (kernel) {
      case Kernel::kCsr:
        sparse::smvpCsr(csr_, x.data(), y.data());
        break;
      case Kernel::kBcsr3:
        sparse::smvpBcsr3(bcsr_, x.data(), y.data());
        break;
      case Kernel::kSym:
        sparse::smvpSym(sym_, x.data(), y.data());
        break;
      case Kernel::kThreaded:
        smvpThreaded(bcsr_, x.data(), y.data(), poolFor());
        break;
      case Kernel::kSymBcsr3:
        sym_bcsr_.multiply(x.data(), y.data());
        break;
      case Kernel::kSymBcsr3Mt:
        smvpSymBcsr3Threaded(sym_bcsr_, x.data(), y.data(), poolFor(),
                             sym_scratch_);
        break;
      case Kernel::kSlicedEll3:
        ell_.multiply(x.data(), y.data());
        break;
      case Kernel::kSlicedEll3Mt:
        smvpSlicedEll3Threaded(ell_, x.data(), y.data(), poolFor());
        break;
      case Kernel::kSymBcsr3Simd:
        sym_bcsr_.multiplySimd(x.data(), y.data());
        break;
    }
    return y;
}

void
KernelSuite::setThreads(int num_threads)
{
    QUAKE_EXPECT(num_threads >= 0, "thread count must be nonnegative");
    threads_ = num_threads;
    pool_.reset(); // rebuilt at the new size on the next threaded call
}

KernelTiming
KernelSuite::measure(Kernel kernel, int repetitions) const
{
    QUAKE_EXPECT(repetitions >= 1, "need at least one repetition");

    std::vector<double> x(static_cast<std::size_t>(dof()));
    quake::common::SplitMix64 rng(0x5fa9c98ULL);
    for (double &v : x)
        v = rng.uniform(-1.0, 1.0);
    std::vector<double> y(x.size());

    auto run_once = [&] {
        switch (kernel) {
          case Kernel::kCsr:
            sparse::smvpCsr(csr_, x.data(), y.data());
            break;
          case Kernel::kBcsr3:
            sparse::smvpBcsr3(bcsr_, x.data(), y.data());
            break;
          case Kernel::kSym:
            sparse::smvpSym(sym_, x.data(), y.data());
            break;
          case Kernel::kThreaded:
            smvpThreaded(bcsr_, x.data(), y.data(), poolFor());
            break;
          case Kernel::kSymBcsr3:
            sym_bcsr_.multiply(x.data(), y.data());
            break;
          case Kernel::kSymBcsr3Mt:
            smvpSymBcsr3Threaded(sym_bcsr_, x.data(), y.data(),
                                 poolFor(), sym_scratch_);
            break;
          case Kernel::kSlicedEll3:
            ell_.multiply(x.data(), y.data());
            break;
          case Kernel::kSlicedEll3Mt:
            smvpSlicedEll3Threaded(ell_, x.data(), y.data(), poolFor());
            break;
          case Kernel::kSymBcsr3Simd:
            sym_bcsr_.multiplySimd(x.data(), y.data());
            break;
        }
    };

    run_once(); // warm the caches once, as a measurement would

    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repetitions; ++r)
        run_once();
    const auto t1 = std::chrono::steady_clock::now();

    KernelTiming timing;
    timing.secondsPerSmvp =
        std::chrono::duration<double>(t1 - t0).count() / repetitions;
    // The paper counts F = 2m for every format: the arithmetic is
    // identical; only the memory traffic differs.
    timing.flops = 2 * nnz();
    timing.tf = timing.secondsPerSmvp / static_cast<double>(timing.flops);
    timing.mflops = 1.0 / (timing.tf * 1e6);
    return timing;
}

AutotuneResult
KernelSuite::selectBest(const std::vector<Kernel> &kernels,
                        int repetitions, const MeasureFn &measure)
{
    QUAKE_EXPECT(!kernels.empty(), "no kernels to autotune");
    AutotuneResult result;
    bool first = true;
    for (Kernel kernel : kernels) {
        AutotuneEntry entry;
        entry.kernel = kernel;
        entry.timing = measure(kernel, repetitions);
        // Strictly faster wins; exact ties break by enum order — never
        // by measurement order, so permuting `kernels` cannot change
        // the verdict (given a deterministic measure).
        const bool better =
            first ||
            entry.timing.secondsPerSmvp <
                result.bestTiming.secondsPerSmvp ||
            (entry.timing.secondsPerSmvp ==
                 result.bestTiming.secondsPerSmvp &&
             static_cast<int>(kernel) < static_cast<int>(result.best));
        if (better) {
            result.best = kernel;
            result.bestTiming = entry.timing;
            first = false;
        }
        result.entries.push_back(std::move(entry));
    }
    return result;
}

AutotuneResult
KernelSuite::autotune(const std::vector<Kernel> &kernels,
                      int repetitions) const
{
    // Discarded warm-up pass over every contender BEFORE any timed
    // measurement: without it, the first-measured kernel paid the
    // cold-cache and pool-spin-up cost alone and could lose unfairly.
    for (Kernel kernel : kernels)
        (void)measure(kernel, 1);
    return selectBest(kernels, repetitions,
                      [this](Kernel kernel, int reps) {
                          return measure(kernel, reps);
                      });
}

AutotuneResult
KernelSuite::autotune(int repetitions) const
{
    return autotune(std::vector<Kernel>(std::begin(kAllKernels),
                                        std::end(kAllKernels)),
                    repetitions);
}

} // namespace quake::spark
