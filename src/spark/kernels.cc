#include "spark/kernels.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "sparse/assembly.h"

namespace quake::spark
{

std::string
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::kCsr: return "smv-csr";
      case Kernel::kBcsr3: return "smv-bcsr3";
      case Kernel::kSym: return "smv-sym";
      case Kernel::kThreaded: return "smv-threaded";
    }
    QUAKE_PANIC("unknown kernel");
}

void
smvpThreaded(const sparse::Bcsr3Matrix &a, const double *x, double *y,
             int num_threads)
{
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    int threads = num_threads > 0 ? num_threads : std::max(1, hw);
    threads = static_cast<int>(std::min<std::int64_t>(
        threads, std::max<std::int64_t>(1, a.numBlockRows())));
    if (threads == 1) {
        a.multiply(x, y);
        return;
    }

    // nnz-balanced row chunks: chunk c covers block rows whose xadj
    // crosses c/threads of the total block count.
    const std::int64_t total_blocks = a.numBlocks();
    std::vector<std::int64_t> cut(static_cast<std::size_t>(threads) + 1);
    cut[0] = 0;
    for (int c = 1; c < threads; ++c) {
        const std::int64_t target = total_blocks * c / threads;
        cut[c] = std::lower_bound(a.xadj().begin(), a.xadj().end(),
                                  target) -
                 a.xadj().begin();
        cut[c] = std::min<std::int64_t>(cut[c], a.numBlockRows());
        cut[c] = std::max(cut[c], cut[c - 1]);
    }
    cut[threads] = a.numBlockRows();

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int c = 0; c < threads; ++c) {
        workers.emplace_back([&a, x, y, lo = cut[c], hi = cut[c + 1]] {
            a.multiplyRows(x, y, lo, hi);
        });
    }
    for (std::thread &t : workers)
        t.join();
}

KernelSuite::KernelSuite(const mesh::TetMesh &mesh,
                         const mesh::SoilModel &model, double poisson)
    : bcsr_(sparse::assembleStiffness(mesh, model, poisson)),
      csr_(bcsr_.toCsr()),
      sym_(sparse::SymCsrMatrix::fromCsr(csr_, 1e-9))
{
}

std::vector<double>
KernelSuite::run(Kernel kernel, const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof(),
                 "x has " << x.size() << " entries, expected " << dof());
    std::vector<double> y(x.size());
    switch (kernel) {
      case Kernel::kCsr:
        sparse::smvpCsr(csr_, x.data(), y.data());
        break;
      case Kernel::kBcsr3:
        sparse::smvpBcsr3(bcsr_, x.data(), y.data());
        break;
      case Kernel::kSym:
        sparse::smvpSym(sym_, x.data(), y.data());
        break;
      case Kernel::kThreaded:
        smvpThreaded(bcsr_, x.data(), y.data(), threads_);
        break;
    }
    return y;
}

void
KernelSuite::setThreads(int num_threads)
{
    QUAKE_EXPECT(num_threads >= 0, "thread count must be nonnegative");
    threads_ = num_threads;
}

KernelTiming
KernelSuite::measure(Kernel kernel, int repetitions) const
{
    QUAKE_EXPECT(repetitions >= 1, "need at least one repetition");

    std::vector<double> x(static_cast<std::size_t>(dof()));
    quake::common::SplitMix64 rng(0x5fa9c98ULL);
    for (double &v : x)
        v = rng.uniform(-1.0, 1.0);
    std::vector<double> y(x.size());

    auto run_once = [&] {
        switch (kernel) {
          case Kernel::kCsr:
            sparse::smvpCsr(csr_, x.data(), y.data());
            break;
          case Kernel::kBcsr3:
            sparse::smvpBcsr3(bcsr_, x.data(), y.data());
            break;
          case Kernel::kSym:
            sparse::smvpSym(sym_, x.data(), y.data());
            break;
          case Kernel::kThreaded:
            smvpThreaded(bcsr_, x.data(), y.data(), threads_);
            break;
        }
    };

    run_once(); // warm the caches once, as a measurement would

    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repetitions; ++r)
        run_once();
    const auto t1 = std::chrono::steady_clock::now();

    KernelTiming timing;
    timing.secondsPerSmvp =
        std::chrono::duration<double>(t1 - t0).count() / repetitions;
    // The paper counts F = 2m for every format: the arithmetic is
    // identical; only the memory traffic differs.
    timing.flops = 2 * nnz();
    timing.tf = timing.secondsPerSmvp / static_cast<double>(timing.flops);
    timing.mflops = 1.0 / (timing.tf * 1e6);
    return timing;
}

} // namespace quake::spark
