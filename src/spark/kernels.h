/**
 * @file
 * A Spark98-style SMVP kernel suite (paper postscript, ref [14]): the
 * same stiffness matrix in three storage formats with a measurement
 * harness for the sustained per-flop time T_f.  The paper's §3.1 point
 * is that T_f is a *measured*, application-specific property (30 ns on
 * the T3D, 14 ns on the T3E — ~12% of peak); this suite is how such
 * numbers are obtained on any host.
 */

#ifndef QUAKE98_SPARK_KERNELS_H_
#define QUAKE98_SPARK_KERNELS_H_

#include <string>
#include <vector>

#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"
#include "sparse/smvp.h"

namespace quake::spark
{

/** The kernel variants in the suite. */
enum class Kernel
{
    kCsr,      ///< scalar CSR ("smv")
    kBcsr3,    ///< 3x3 block CSR ("smvb") — the natural Quake layout
    kSym,      ///< symmetric half storage ("smvs")
    kThreaded, ///< row-partitioned shared-memory BCSR ("smvt")
};

/** Short name of a kernel. */
std::string kernelName(Kernel kernel);

/** All kernels, for iteration in tests and benches. */
inline constexpr Kernel kAllKernels[] = {Kernel::kCsr, Kernel::kBcsr3,
                                         Kernel::kSym, Kernel::kThreaded};

/** Measured sustained performance of one kernel. */
struct KernelTiming
{
    double secondsPerSmvp = 0.0;
    std::int64_t flops = 0;   ///< 2 per logical nonzero (paper's F)
    double tf = 0.0;          ///< seconds per flop
    double mflops = 0.0;      ///< sustained rate
};

/** The suite: one matrix, all formats, plus a timing harness. */
class KernelSuite
{
  public:
    /** Assemble the stiffness of (mesh, model) in every format. */
    KernelSuite(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
                double poisson = 0.25);

    /** Scalar DOF count (3 per node). */
    std::int64_t dof() const { return bcsr_.numRows(); }

    /** Logical nonzeros (scalar entries of the full matrix). */
    std::int64_t nnz() const { return bcsr_.nnz(); }

    /** y = K x with the chosen kernel. */
    std::vector<double> run(Kernel kernel,
                            const std::vector<double> &x) const;

    /**
     * Measure T_f for a kernel: `repetitions` back-to-back SMVPs over a
     * deterministic random vector, timed with the steady clock.  The
     * flop count is the paper's F = 2m regardless of format, so formats
     * with less memory traffic show a smaller T_f for identical
     * arithmetic.
     */
    KernelTiming measure(Kernel kernel, int repetitions) const;

    const sparse::Bcsr3Matrix &bcsr() const { return bcsr_; }
    const sparse::CsrMatrix &csr() const { return csr_; }
    const sparse::SymCsrMatrix &sym() const { return sym_; }

    /** Worker threads for Kernel::kThreaded (default: hardware). */
    void setThreads(int num_threads);
    int threads() const { return threads_; }

  private:
    sparse::Bcsr3Matrix bcsr_;
    sparse::CsrMatrix csr_;
    sparse::SymCsrMatrix sym_;
    int threads_ = 0; ///< 0 = hardware concurrency
};

/**
 * Row-partitioned shared-memory SMVP (the Spark98 "smvt" analogue):
 * block rows are split into nnz-balanced chunks, one std::thread per
 * chunk.  No reduction is needed — row partitioning writes disjoint
 * output ranges.
 */
void smvpThreaded(const sparse::Bcsr3Matrix &a, const double *x, double *y,
                  int num_threads = 0);

} // namespace quake::spark

#endif // QUAKE98_SPARK_KERNELS_H_
