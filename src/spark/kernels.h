/**
 * @file
 * A Spark98-style SMVP kernel suite (paper postscript, ref [14]): the
 * same stiffness matrix in several storage formats with a measurement
 * harness for the sustained per-flop time T_f.  The paper's §3.1 point
 * is that T_f is a *measured*, application-specific property (30 ns on
 * the T3D, 14 ns on the T3E — ~12% of peak); this suite is how such
 * numbers are obtained on any host.  An autotuner measures every
 * variant on the actual assembled matrix and reports the fastest, so
 * the §4 requirement projections can be driven by the tuned kernel
 * rather than a scalar baseline.
 */

#ifndef QUAKE98_SPARK_KERNELS_H_
#define QUAKE98_SPARK_KERNELS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"
#include "parallel/worker_pool.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"
#include "sparse/smvp.h"

namespace quake::spark
{

/** The kernel variants in the suite. */
enum class Kernel
{
    kCsr,       ///< scalar CSR ("smv")
    kBcsr3,     ///< 3x3 block CSR ("smvb") — the natural Quake layout
    kSym,       ///< scalar symmetric half storage ("smvs")
    kThreaded,  ///< row-partitioned shared-memory BCSR ("smvt")
    kSymBcsr3,  ///< register-blocked symmetric 3x3 BCSR
    kSymBcsr3Mt, ///< threaded symmetric BCSR3, padded accumulators
    kSlicedEll3,   ///< sliced-ELLPACK 3x3, SIMD-dispatched (DESIGN §12)
    kSlicedEll3Mt, ///< slice-partitioned threaded sliced-ELL
    kSymBcsr3Simd, ///< symmetric BCSR3 with the vectorized scatter
};

/** Short name of a kernel. */
std::string kernelName(Kernel kernel);

/** All kernels, for iteration in tests and benches. */
inline constexpr Kernel kAllKernels[] = {
    Kernel::kCsr,        Kernel::kBcsr3,        Kernel::kSym,
    Kernel::kThreaded,   Kernel::kSymBcsr3,     Kernel::kSymBcsr3Mt,
    Kernel::kSlicedEll3, Kernel::kSlicedEll3Mt, Kernel::kSymBcsr3Simd};

/** Measured sustained performance of one kernel. */
struct KernelTiming
{
    double secondsPerSmvp = 0.0;
    std::int64_t flops = 0;   ///< 2 per logical nonzero (paper's F)
    double tf = 0.0;          ///< seconds per flop
    double mflops = 0.0;      ///< sustained rate
};

/** One autotuner measurement. */
struct AutotuneEntry
{
    Kernel kernel = Kernel::kCsr;
    KernelTiming timing;
};

/** Autotuner verdict: the fastest kernel on this matrix, this host. */
struct AutotuneResult
{
    Kernel best = Kernel::kCsr;
    KernelTiming bestTiming;              ///< measured T_f of the winner
    std::vector<AutotuneEntry> entries;   ///< every variant, in suite order
};

/** The suite: one matrix, all formats, plus a timing harness. */
class KernelSuite
{
  public:
    /** Assemble the stiffness of (mesh, model) in every format. */
    KernelSuite(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
                double poisson = 0.25);

    /** Scalar DOF count (3 per node). */
    std::int64_t dof() const { return bcsr_.numRows(); }

    /** Logical nonzeros (scalar entries of the full matrix). */
    std::int64_t nnz() const { return bcsr_.nnz(); }

    /** y = K x with the chosen kernel. */
    std::vector<double> run(Kernel kernel,
                            const std::vector<double> &x) const;

    /**
     * Measure T_f for a kernel: `repetitions` back-to-back SMVPs over a
     * deterministic random vector, timed with the steady clock.  The
     * flop count is the paper's F = 2m regardless of format, so formats
     * with less memory traffic show a smaller T_f for identical
     * arithmetic.
     */
    KernelTiming measure(Kernel kernel, int repetitions) const;

    /**
     * Measure every kernel variant on the assembled matrix and return
     * the fastest.  Before any timed measurement, every kernel gets one
     * discarded warm-up run, so the first-measured kernel does not pay
     * the cold-cache/pool-spin-up cost the later ones skip.  Ties break
     * by enum order, never by measurement order, so the verdict is
     * independent of the order kernels are measured in.  This is how a
     * host's honest T_f is obtained for the §4 requirement sweeps.
     */
    AutotuneResult autotune(int repetitions = 3) const;

    /** Autotune an explicit subset/order of kernels (same warm-up). */
    AutotuneResult autotune(const std::vector<Kernel> &kernels,
                            int repetitions) const;

    /** Injectable measurement, for testing the selection logic. */
    using MeasureFn = std::function<KernelTiming(Kernel, int)>;

    /**
     * The autotuner's selection logic, measurement injected: measure
     * each kernel of `kernels` in order with `measure`, pick the
     * smallest secondsPerSmvp, break exact ties by enum order.  With a
     * deterministic `measure`, the verdict is a pure function of the
     * kernel SET — permuting `kernels` cannot change it (regression
     * test for the cold-start ordering bug; entries stay in call order).
     */
    static AutotuneResult selectBest(const std::vector<Kernel> &kernels,
                                     int repetitions,
                                     const MeasureFn &measure);

    const sparse::Bcsr3Matrix &bcsr() const { return bcsr_; }
    const sparse::CsrMatrix &csr() const { return csr_; }
    const sparse::SymCsrMatrix &sym() const { return sym_; }
    const sparse::SymBcsr3Matrix &symBcsr() const { return sym_bcsr_; }
    const sparse::SlicedEll3Matrix &slicedEll() const { return ell_; }

    /**
     * Worker threads for the threaded kernels (default: hardware).
     * Setting a count discards the suite's persistent worker pool; the
     * next threaded multiply creates one of the new size.
     */
    void setThreads(int num_threads);
    int threads() const { return threads_; }

  private:
    parallel::WorkerPool &poolFor() const;

    sparse::Bcsr3Matrix bcsr_;
    sparse::CsrMatrix csr_;
    sparse::SymCsrMatrix sym_;
    sparse::SymBcsr3Matrix sym_bcsr_;
    sparse::SlicedEll3Matrix ell_;
    int threads_ = 0; ///< 0 = hardware concurrency

    // Persistent pool + padded accumulator slab, created on first
    // threaded multiply and reused across calls (the whole point of the
    // engine work: no per-multiply thread spawns, no per-multiply
    // allocation).  Mutable so run()/measure() stay const.
    mutable std::unique_ptr<parallel::WorkerPool> pool_;
    mutable std::vector<double> sym_scratch_;
};

/**
 * Row-partitioned shared-memory SMVP (the Spark98 "smvt" analogue):
 * block rows are split into nnz-balanced chunks, one pool worker per
 * chunk.  No reduction is needed — row partitioning writes disjoint
 * output ranges, so the result is bitwise identical to the sequential
 * BCSR3 kernel.
 */
void smvpThreaded(const sparse::Bcsr3Matrix &a, const double *x, double *y,
                  parallel::WorkerPool &pool);

/**
 * Threaded symmetric BCSR3 SMVP.  The symmetric scatter writes y[col]
 * for off-diagonal blocks, so threads cannot share y: each worker
 * scatters into a private accumulator slab padded to a cache-line
 * multiple (no false sharing), and a second fork/join reduces the slabs
 * in ascending worker order — deterministic regardless of scheduling.
 *
 * @param scratch Persistent slab storage; resized (and zeroed) inside.
 */
void smvpSymBcsr3Threaded(const sparse::SymBcsr3Matrix &a, const double *x,
                          double *y, parallel::WorkerPool &pool,
                          std::vector<double> &scratch);

/**
 * Slice-partitioned threaded sliced-ELL SMVP: slices are split into
 * stored-block-balanced contiguous ranges, one pool worker per range.
 * Slices own disjoint lanes (and under the identity row map, disjoint y
 * rows), and each lane's accumulation order is fixed by the layout, so
 * the result is bitwise identical to the sequential sliced-ELL kernel
 * at every pool size.
 */
void smvpSlicedEll3Threaded(const sparse::SlicedEll3Matrix &a,
                            const double *x, double *y,
                            parallel::WorkerPool &pool);

/**
 * Pooled fused central-difference step over a full BCSR3 matrix (the
 * shared-memory analogue of ParallelSmvp::stepFused, without any
 * subdomain machinery): block rows are cut into a FIXED grid of
 * nnz-balanced chunks, each worker walks its chunks computing K u and
 * applying the step update row by row — no ku vector is ever
 * materialized.  Peak/energy partials accumulate per chunk (fixed row
 * order inside a chunk) into cache-line-padded slots and are combined
 * in ascending chunk order; because the chunk grid never depends on
 * the pool size, the reductions and the updated u are bitwise
 * identical for every thread count.
 *
 * Chunk cuts and partial slots are allocated once in the constructor;
 * step() performs no heap allocation (the pool dispatch captures only
 * `this`).  Matrix and pool must outlive the kernel.
 */
class FusedStepKernel
{
  public:
    FusedStepKernel(const sparse::Bcsr3Matrix &a,
                    parallel::WorkerPool &pool);

    /**
     * One fused step: updates su.up in place and returns the
     * deterministic peak/energy reductions over all DOFs.
     */
    sparse::StepPartials step(const sparse::StepUpdate &su) const;

    /** Size of the fixed chunk grid. */
    int chunks() const { return kChunks; }

  private:
    /** Fixed grid size — deliberately NOT a function of pool size. */
    static constexpr int kChunks = 64;

    /** StepPartials per 64-byte cache line: padding stride per chunk. */
    static constexpr std::size_t kPartialsStride = 4;

    const sparse::Bcsr3Matrix &a_;
    parallel::WorkerPool &pool_;
    std::vector<std::int64_t> cut_; ///< kChunks + 1 block-row cuts

    // Reused across steps; mutable so step() stays const (the kernel is
    // non-reentrant, like the rest of the engine layer).
    mutable std::vector<sparse::StepPartials> partials_;
    mutable const sparse::StepUpdate *su_arg_ = nullptr;
};

} // namespace quake::spark

#endif // QUAKE98_SPARK_KERNELS_H_
