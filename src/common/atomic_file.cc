#include "common/atomic_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"

namespace quake::common
{

std::string
errnoMessage()
{
    const int err = errno;
    return std::string(std::strerror(err)) + " (errno " +
           std::to_string(err) + ")";
}

void
writeFileAtomic(const std::string &path, const void *data, std::size_t size)
{
    QUAKE_EXPECT(!path.empty(), "atomic write target path is empty");
    const std::string tmp = path + ".tmp";

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    QUAKE_EXPECT(fd >= 0,
                 "cannot create " << tmp << ": " << errnoMessage());

    const auto *p = static_cast<const char *>(data);
    std::size_t written = 0;
    while (written < size) {
        const ::ssize_t n = ::write(fd, p + written, size - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string why = errnoMessage();
            ::close(fd);
            ::unlink(tmp.c_str());
            QUAKE_EXPECT(false, "cannot write " << tmp << ": " << why);
        }
        written += static_cast<std::size_t>(n);
    }

    // The payload must be durable BEFORE the rename makes it visible;
    // otherwise a crash can expose a named-but-empty file.
    if (::fsync(fd) != 0) {
        const std::string why = errnoMessage();
        ::close(fd);
        ::unlink(tmp.c_str());
        QUAKE_EXPECT(false, "cannot fsync " << tmp << ": " << why);
    }
    if (::close(fd) != 0) {
        const std::string why = errnoMessage();
        ::unlink(tmp.c_str());
        QUAKE_EXPECT(false, "cannot close " << tmp << ": " << why);
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string why = errnoMessage();
        ::unlink(tmp.c_str());
        QUAKE_EXPECT(false, "cannot rename " << tmp << " over " << path
                                             << ": " << why);
    }
}

void
writeFileAtomic(const std::string &path, const std::string &contents)
{
    writeFileAtomic(path, contents.data(), contents.size());
}

} // namespace quake::common
