#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace quake::common
{

Table::Table(std::vector<std::string> header_cells)
    : header(std::move(header_cells))
{
    QUAKE_EXPECT(!header.empty(), "table must have at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    QUAKE_EXPECT(row.size() == header.size(),
                 "row width " << row.size() << " != header width "
                              << header.size());
    rows.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string &cell = cells[c];
            const bool needs_quotes =
                cell.find_first_of(",\"\n") != std::string::npos;
            if (needs_quotes) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
formatCount(long long value)
{
    const bool negative = value < 0;
    unsigned long long magnitude =
        negative ? 0ULL - static_cast<unsigned long long>(value)
                 : static_cast<unsigned long long>(value);
    std::string digits = std::to_string(magnitude);
    std::string out;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            out.push_back(',');
            since_sep = 0;
        }
        out.push_back(*it);
        ++since_sep;
    }
    if (negative)
        out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatBandwidth(double bytes_per_second)
{
    constexpr double mbyte = 1e6;
    constexpr double gbyte = 1e9;
    if (bytes_per_second >= gbyte)
        return formatFixed(bytes_per_second / gbyte, 2) + " GB/s";
    if (bytes_per_second >= mbyte)
        return formatFixed(bytes_per_second / mbyte, 1) + " MB/s";
    return formatFixed(bytes_per_second / 1e3, 1) + " KB/s";
}

std::string
formatTime(double seconds)
{
    const double mag = std::fabs(seconds);
    if (mag >= 1.0)
        return formatFixed(seconds, 2) + " s";
    if (mag >= 1e-3)
        return formatFixed(seconds * 1e3, 2) + " ms";
    if (mag >= 1e-6)
        return formatFixed(seconds * 1e6, 2) + " us";
    return formatFixed(seconds * 1e9, 1) + " ns";
}

} // namespace quake::common
