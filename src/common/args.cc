#include "common/args.h"

#include <cstdlib>

#include "common/error.h"

namespace quake::common
{

Args::Args(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options[body] = argv[++i];
        } else {
            options[body] = "true";
        }
    }
}

bool
Args::has(const std::string &name) const
{
    return options.count(name) > 0;
}

std::string
Args::get(const std::string &name, const std::string &fallback) const
{
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
}

long
Args::getInt(const std::string &name, long fallback) const
{
    auto it = options.find(name);
    if (it == options.end())
        return fallback;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 10);
    QUAKE_EXPECT(end && *end == '\0',
                 "--" << name << " expects an integer, got '"
                      << it->second << "'");
    return v;
}

double
Args::getDouble(const std::string &name, double fallback) const
{
    auto it = options.find(name);
    if (it == options.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    QUAKE_EXPECT(end && *end == '\0',
                 "--" << name << " expects a number, got '"
                      << it->second << "'");
    return v;
}

} // namespace quake::common
