/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the library (vertex jitter, random-partition
 * baseline, property-test inputs) flows through SplitMix64 so that all
 * tables and figures are reproducible bit-for-bit across runs and hosts.
 */

#ifndef QUAKE98_COMMON_RNG_H_
#define QUAKE98_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace quake::common
{

/**
 * SplitMix64 generator (Steele, Lea, Flood 2014).  Small state, excellent
 * statistical quality for non-cryptographic use, and trivially seedable.
 */
class SplitMix64
{
  public:
    /** Construct with an explicit seed; identical seeds replay streams. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        // 53 high bits -> the full double mantissa.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Uniform integer in [0, bound).  bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Rejection-free modulo is fine here: bias is < 2^-40 for the
        // bounds used in this library (all far below 2^24).
        return next() % bound;
    }

    /**
     * Exponentially distributed value with the given mean (seconds,
     * meters, ...).  A zero or negative mean collapses to 0, which lets
     * callers treat "jitter disabled" uniformly.
     */
    double
    exponential(double mean)
    {
        if (mean <= 0.0)
            return 0.0;
        // 1 - u is in (0, 1], so the log argument never reaches zero.
        return -mean * std::log(1.0 - nextDouble());
    }

  private:
    std::uint64_t state;
};

/**
 * Mix a key into a seed, producing a new, statistically independent
 * stream seed.  Used to derive per-entity substreams (e.g. one stream
 * per (message, attempt) pair) from a single user seed so that the
 * outcome of each draw is a pure function of (seed, key) — independent
 * of the order in which the draws happen to be made.
 */
inline std::uint64_t
deriveStream(std::uint64_t seed, std::uint64_t key)
{
    // One SplitMix64 scramble of the key, xored into the seed, then a
    // second scramble: cheap, and decorrelates nearby keys and seeds.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= seed * 0xd6e8feb86659fd93ULL;
    z = (z ^ (z >> 32)) * 0xd6e8feb86659fd93ULL;
    return z ^ (z >> 32);
}

} // namespace quake::common

#endif // QUAKE98_COMMON_RNG_H_
