/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the library (vertex jitter, random-partition
 * baseline, property-test inputs) flows through SplitMix64 so that all
 * tables and figures are reproducible bit-for-bit across runs and hosts.
 */

#ifndef QUAKE98_COMMON_RNG_H_
#define QUAKE98_COMMON_RNG_H_

#include <cstdint>

namespace quake::common
{

/**
 * SplitMix64 generator (Steele, Lea, Flood 2014).  Small state, excellent
 * statistical quality for non-cryptographic use, and trivially seedable.
 */
class SplitMix64
{
  public:
    /** Construct with an explicit seed; identical seeds replay streams. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        // 53 high bits -> the full double mantissa.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Uniform integer in [0, bound).  bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Rejection-free modulo is fine here: bias is < 2^-40 for the
        // bounds used in this library (all far below 2^24).
        return next() % bound;
    }

  private:
    std::uint64_t state;
};

} // namespace quake::common

#endif // QUAKE98_COMMON_RNG_H_
