#include "common/bench_json.h"

#include <iostream>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/error.h"

namespace quake::common
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

void
writeBenchJson(
    const std::string &name, const std::vector<BenchJsonRecord> &records,
    const std::vector<std::pair<std::string, std::string>> &info,
    const std::string &path)
{
    const std::string target =
        path.empty() ? "BENCH_" + name + ".json" : path;
    // Rendered fully in memory, then atomically replaced on disk: an
    // interrupted bench never leaves a truncated BENCH_*.json behind
    // for the perf-trajectory tooling to choke on (DESIGN.md §11).
    std::ostringstream out;

    out << "{\n  \"bench\": \"" << jsonEscape(name) << "\",\n";
    out << "  \"host\": {\n"
        << "    \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"compiler\": \""
#if defined(__VERSION__)
        << jsonEscape(__VERSION__)
#else
        << "unknown"
#endif
        << "\",\n    \"build\": \""
#ifdef NDEBUG
        << "optimized"
#else
        << "debug"
#endif
        << "\"\n  },\n";

    if (!info.empty()) {
        out << "  \"info\": {\n";
        for (std::size_t i = 0; i < info.size(); ++i)
            out << "    \"" << jsonEscape(info[i].first) << "\": \""
                << jsonEscape(info[i].second) << "\""
                << (i + 1 < info.size() ? "," : "") << "\n";
        out << "  },\n";
    }

    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchJsonRecord &r = records[i];
        out << "    {\"kernel\": \"" << jsonEscape(r.kernel)
            << "\", \"rows\": " << r.rows << ", \"nnz\": " << r.nnz
            << ", \"seconds_per_smvp\": " << jsonNumber(r.secondsPerSmvp)
            << ", \"gflops\": " << jsonNumber(r.gflops)
            << ", \"tf_ns\": " << jsonNumber(r.tfNs);
        for (const auto &[key, value] : r.extra)
            out << ", \"" << jsonEscape(key)
                << "\": " << jsonNumber(value);
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    try {
        writeFileAtomic(target, out.str());
    } catch (const FatalError &e) {
        std::cerr << "[bench] cannot write " << target << ": " << e.what()
                  << "\n";
        return;
    }
    std::cout << "[bench] wrote " << target << "\n";
}

} // namespace quake::common
