/**
 * @file
 * Plain-text table formatting for the benchmark harnesses.
 *
 * Every figure and table reproduction prints its rows through this class so
 * the output is uniformly aligned and machine-diffable.  Cells are strings;
 * helpers format the numeric types that appear in the paper (counts, ratios,
 * bandwidths, latencies).
 */

#ifndef QUAKE98_COMMON_TABLE_H_
#define QUAKE98_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace quake::common
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Subdomains", "F", "Cmax"});
 *   t.addRow({"4", "453924", "2352"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with one header cell per column. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render to a stream with two-space column gutters. */
    void print(std::ostream &os) const;

    /**
     * Render as CSV (comma-separated, fields quoted when they contain
     * commas or quotes) for downstream plotting tools.
     */
    void printCsv(std::ostream &os) const;

    /** Render to a string (used in tests). */
    std::string toString() const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format an integer with thousands separators, e.g. 24,640,110. */
std::string formatCount(long long value);

/** Format a double with a fixed number of decimals. */
std::string formatFixed(double value, int decimals);

/**
 * Format a bandwidth given in bytes/second using the unit conventions of
 * the paper (MBytes/sec or GBytes/sec as magnitude dictates).
 */
std::string formatBandwidth(double bytes_per_second);

/**
 * Format a time given in seconds with an auto-selected engineering unit
 * (s, ms, us, ns) — the paper quotes latencies across this whole range.
 */
std::string formatTime(double seconds);

} // namespace quake::common

#endif // QUAKE98_COMMON_TABLE_H_
