/**
 * @file
 * Error-reporting helpers shared by every quake98 module.
 *
 * Following the gem5 convention, we distinguish two failure classes:
 *  - fatal():  the caller (user input, configuration) is at fault and the
 *              process cannot continue.  Exits with status 1.
 *  - panic():  an internal invariant is broken (a library bug).  Aborts so
 *              a debugger or core dump can capture the state.
 */

#ifndef QUAKE98_COMMON_ERROR_H_
#define QUAKE98_COMMON_ERROR_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace quake::common
{

/** Exception thrown for user-recoverable errors (bad input, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Raise a FatalError for a condition that is the caller's fault.
 *
 * @param message Human-readable description of what went wrong.
 */
[[noreturn]] inline void
fatal(const std::string &message)
{
    throw FatalError(message);
}

/**
 * Raise a FatalError carrying source context.  Used by QUAKE_EXPECT so
 * that bad-input diagnostics (corrupt mesh files, malformed schedules)
 * name the check that rejected them.
 */
[[noreturn]] inline void
fatal(const std::string &message, const char *file, int line)
{
    std::ostringstream oss;
    oss << message << " [" << file << ":" << line << "]";
    throw FatalError(oss.str());
}

/**
 * Abort for a condition that indicates an internal bug.
 *
 * @param message Description of the broken invariant.
 * @param file    Source file (filled in by the QUAKE_PANIC macro).
 * @param line    Source line (filled in by the QUAKE_PANIC macro).
 */
[[noreturn]] inline void
panic(const std::string &message, const char *file, int line)
{
    std::cerr << "panic: " << message << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

} // namespace quake::common

/** Abort with a message when an internal invariant is violated. */
#define QUAKE_PANIC(msg) ::quake::common::panic((msg), __FILE__, __LINE__)

/**
 * Check an internal invariant.  Unlike assert(), this is always compiled in:
 * the analyses in this library are cheap relative to mesh generation, and a
 * silently-wrong table is worse than a slow one.
 */
#define QUAKE_REQUIRE(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream quake_require_oss_;                          \
            quake_require_oss_ << "requirement failed: " #cond ": " << msg; \
            ::quake::common::panic(quake_require_oss_.str(),                \
                                   __FILE__, __LINE__);                     \
        }                                                                   \
    } while (0)

/**
 * Validate a user-supplied precondition; throws FatalError on failure.
 * The diagnostic carries the source file and line of the failed check.
 */
#define QUAKE_EXPECT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream quake_expect_oss_;                           \
            quake_expect_oss_ << "precondition failed: " << msg;            \
            ::quake::common::fatal(quake_expect_oss_.str(),                 \
                                   __FILE__, __LINE__);                     \
        }                                                                   \
    } while (0)

#endif // QUAKE98_COMMON_ERROR_H_
