/**
 * @file
 * Shared parsing of the engine-facing command-line flags
 * (--shards/--pin/--topology, --faults/--drop-rate/--seed,
 * --deadline-ms/--retry-budget, --trace/--metrics/--sample-every).
 *
 * Three front ends expose the same execution knobs — earthquake_sim,
 * capacity_planner, and scenario_server — and each used to carry its
 * own copy of the parse + validate boilerplate.  This helper owns the
 * flag names and the numeric entry validation (FatalError naming the
 * flag, before any mesh is generated), so the rejection ctests guard
 * one implementation instead of three drifting copies.
 *
 * Layering: quake_common cannot see parallel::FaultSpec or
 * parallel::Topology, so the helper returns plain values; callers feed
 * them into the typed structs (one or two lines each) whose own
 * validate() remains the final authority on semantic ranges.
 */

#ifndef QUAKE98_COMMON_ENGINE_CLI_H_
#define QUAKE98_COMMON_ENGINE_CLI_H_

#include <cstdint>
#include <string>

#include "common/args.h"

namespace quake::common
{

/** The engine knobs every front end shares, parsed and range-checked. */
struct EngineCliOptions
{
    // --- execution topology (DESIGN.md §13) ---
    int shards = 1;           ///< --shards S (>= 1)
    bool pin = false;         ///< --pin
    std::string topologySpec; ///< --topology flat|auto|detect|SxT ("" = unset)

    // --- fault injection (DESIGN.md §6) ---
    bool faults = false;          ///< --faults
    double dropRate = 1e-3;       ///< --drop-rate R (in [0, 1])
    std::uint64_t faultSeed = 0x5eed; ///< --seed S

    // --- SLO / retry budget (DESIGN.md §11) ---
    bool hasDeadlineMs = false; ///< --deadline-ms was given
    double deadlineMs = 0.0;    ///< --deadline-ms D (> 0 when given)
    long retryBudget = 3;       ///< --retry-budget N (>= 1)

    // --- telemetry outputs (DESIGN.md §9) ---
    std::string tracePath;        ///< --trace path
    std::string metricsPath;      ///< --metrics path
    std::int64_t sampleEvery = 16; ///< --sample-every N (>= 1)
};

/**
 * Parse the shared engine flags out of `args`, rejecting malformed
 * values with FatalError messages that name the flag (the behaviour
 * the reject_* ctests pin down).  Flags that are absent keep their
 * defaults; the caller decides which groups it actually consumes.
 */
EngineCliOptions parseEngineCli(const Args &args);

} // namespace quake::common

#endif // QUAKE98_COMMON_ENGINE_CLI_H_
