/**
 * @file
 * Minimal command-line flag parsing for the example and benchmark binaries.
 *
 * Supports the forms `--flag`, `--key value`, and `--key=value`.  This is
 * deliberately tiny: the harnesses need a handful of switches (mesh class,
 * full-scale toggle, output path), not a framework.
 */

#ifndef QUAKE98_COMMON_ARGS_H_
#define QUAKE98_COMMON_ARGS_H_

#include <map>
#include <string>
#include <vector>

namespace quake::common
{

/** Parsed command line: named options plus positional arguments. */
class Args
{
  public:
    /**
     * Parse argv.  An argument `--k v` is treated as key/value when v does
     * not itself start with `--`; `--k=v` always binds; a bare `--k` is a
     * boolean flag with value "true".
     */
    Args(int argc, const char *const *argv);

    /** True when --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** Value of --name, or fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Value of --name parsed as long, or fallback when absent. */
    long getInt(const std::string &name, long fallback) const;

    /** Value of --name parsed as double, or fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Positional (non-flag) arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return positionals; }

  private:
    std::map<std::string, std::string> options;
    std::vector<std::string> positionals;
};

} // namespace quake::common

#endif // QUAKE98_COMMON_ARGS_H_
