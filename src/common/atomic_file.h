/**
 * @file
 * Crash-safe file replacement (DESIGN.md §11).
 *
 * Every durable artifact this library writes — checkpoints, BENCH json
 * files, metrics exports — must never be observable in a half-written
 * state: a reader (or a resumed run) that finds the file either sees
 * the previous complete version or the new complete version, even if
 * the writer is SIGKILLed mid-write.  The standard POSIX recipe
 * delivers that guarantee: write the full payload to a temporary file
 * in the same directory, fsync it, then rename(2) over the target
 * (rename within one filesystem is atomic).
 */

#ifndef QUAKE98_COMMON_ATOMIC_FILE_H_
#define QUAKE98_COMMON_ATOMIC_FILE_H_

#include <cstddef>
#include <string>

namespace quake::common
{

/**
 * The current errno rendered as "strerror (errno N)".  Capture it
 * immediately after the failing call — later library calls may
 * overwrite errno.
 */
std::string errnoMessage();

/**
 * Atomically replace `path` with `size` bytes from `data`: the payload
 * is written to `path + ".tmp"`, fsynced, and renamed over `path`.  A
 * crash at any point leaves either the old complete file or the new
 * complete file, never a truncation.  Throws common::FatalError with
 * errno context when the temporary cannot be created, written, synced,
 * or renamed.
 */
void writeFileAtomic(const std::string &path, const void *data,
                     std::size_t size);

/** Convenience overload for string payloads. */
void writeFileAtomic(const std::string &path, const std::string &contents);

} // namespace quake::common

#endif // QUAKE98_COMMON_ATOMIC_FILE_H_
