/**
 * @file
 * Machine-readable benchmark output: BENCH_<name>.json.
 *
 * Perf-trajectory tooling diffs these files across commits, so the
 * format is deliberately flat: a host block (threads, compiler, build),
 * an optional info block of free-form strings, and one record per
 * measured kernel/configuration.
 *
 * These helpers started life in bench/bench_util.h; they live here so
 * non-bench writers (the telemetry metrics exporter) emit the exact
 * same schema instead of carrying their own copy of the escaping and
 * formatting code.
 */

#ifndef QUAKE98_COMMON_BENCH_JSON_H_
#define QUAKE98_COMMON_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace quake::common
{

/** One measured kernel/configuration in a BENCH json file. */
struct BenchJsonRecord
{
    std::string kernel;        ///< kernel or engine configuration name
    std::int64_t rows = 0;     ///< scalar matrix dimension
    std::int64_t nnz = 0;      ///< logical scalar nonzeros
    double secondsPerSmvp = 0.0;
    double gflops = 0.0;       ///< sustained rate, F = 2 nnz per SMVP
    double tfNs = 0.0;         ///< per-flop time in nanoseconds

    /** Extra numeric fields (e.g. speedup), emitted in order. */
    std::vector<std::pair<std::string, double>> extra;
};

/** Escape a string for embedding in JSON. */
std::string jsonEscape(const std::string &s);

/** Render a double as JSON (finite; full precision). */
std::string jsonNumber(double v);

/**
 * Write a BENCH json file and announce the path on stdout.  `info` rows
 * are free-form string pairs (mesh label, subdomain count, ...).  An
 * empty `path` selects BENCH_<name>.json in the current directory.
 */
void writeBenchJson(
    const std::string &name, const std::vector<BenchJsonRecord> &records,
    const std::vector<std::pair<std::string, std::string>> &info = {},
    const std::string &path = "");

} // namespace quake::common

#endif // QUAKE98_COMMON_BENCH_JSON_H_
