/**
 * @file
 * FNV-1a 64-bit hashing over raw bytes — the one fingerprint/checksum
 * primitive shared by the resilience subsystem (checkpoint section
 * checksums, config fingerprints) and the verify harness (determinism
 * fingerprints).  Not cryptographic; it detects corruption and config
 * skew, not adversaries.
 */

#ifndef QUAKE98_COMMON_FNV_H_
#define QUAKE98_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace quake::common
{

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** Fold `n` bytes at `p` into hash state `h`. */
inline std::uint64_t
fnv1a(const void *p, std::size_t n, std::uint64_t h = kFnvOffsetBasis)
{
    const auto *b = static_cast<const unsigned char *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Fold one trivially copyable value (its object representation). */
template <typename T>
inline std::uint64_t
fnv1aValue(const T &v, std::uint64_t h = kFnvOffsetBasis)
{
    return fnv1a(&v, sizeof(T), h);
}

/** Fold a vector of trivially copyable elements (length + payload). */
template <typename T>
inline std::uint64_t
fnv1aVector(const std::vector<T> &v, std::uint64_t h = kFnvOffsetBasis)
{
    const std::uint64_t n = v.size();
    h = fnv1a(&n, sizeof(n), h);
    return fnv1a(v.data(), v.size() * sizeof(T), h);
}

/**
 * Incremental FNV-1a hasher: feed fields one at a time and read the
 * digest at any point.  Chaining is exact — `h.bytes(a).bytes(b)` ==
 * fnv1a(a ++ b) — so a streaming caller and a one-shot caller produce
 * identical keys.  The service subsystem derives its content-addressed
 * cache keys this way (DESIGN.md §14): every semantically distinct
 * field is fed *individually* (never a whole struct, whose padding
 * bytes would be unspecified), and variable-length payloads go through
 * vec()/str(), which prepend the length so adjacent fields cannot
 * alias ("ab","c" vs "a","bc").
 */
class Fnv1aHasher
{
  public:
    Fnv1aHasher() = default;

    /** Resume from a previously computed digest (key chaining). */
    explicit Fnv1aHasher(std::uint64_t state) : h_(state) {}

    /** Fold `n` raw bytes at `p`. */
    Fnv1aHasher &
    bytes(const void *p, std::size_t n)
    {
        h_ = fnv1a(p, n, h_);
        return *this;
    }

    /** Fold one trivially copyable value's object representation. */
    template <typename T>
    Fnv1aHasher &
    value(const T &v)
    {
        static_assert(!std::is_pointer_v<T>,
                      "hash the pointee, not the pointer");
        h_ = fnv1aValue(v, h_);
        return *this;
    }

    /** Fold a vector (length then payload, like fnv1aVector). */
    template <typename T>
    Fnv1aHasher &
    vec(const std::vector<T> &v)
    {
        h_ = fnv1aVector(v, h_);
        return *this;
    }

    /** Fold a string (length then bytes). */
    Fnv1aHasher &
    str(const std::string &s)
    {
        const std::uint64_t n = s.size();
        h_ = fnv1a(&n, sizeof(n), h_);
        h_ = fnv1a(s.data(), s.size(), h_);
        return *this;
    }

    /** The current digest; the hasher may keep accumulating after. */
    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = kFnvOffsetBasis;
};

} // namespace quake::common

#endif // QUAKE98_COMMON_FNV_H_
