/**
 * @file
 * FNV-1a 64-bit hashing over raw bytes — the one fingerprint/checksum
 * primitive shared by the resilience subsystem (checkpoint section
 * checksums, config fingerprints) and the verify harness (determinism
 * fingerprints).  Not cryptographic; it detects corruption and config
 * skew, not adversaries.
 */

#ifndef QUAKE98_COMMON_FNV_H_
#define QUAKE98_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quake::common
{

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** Fold `n` bytes at `p` into hash state `h`. */
inline std::uint64_t
fnv1a(const void *p, std::size_t n, std::uint64_t h = kFnvOffsetBasis)
{
    const auto *b = static_cast<const unsigned char *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Fold one trivially copyable value (its object representation). */
template <typename T>
inline std::uint64_t
fnv1aValue(const T &v, std::uint64_t h = kFnvOffsetBasis)
{
    return fnv1a(&v, sizeof(T), h);
}

/** Fold a vector of trivially copyable elements (length + payload). */
template <typename T>
inline std::uint64_t
fnv1aVector(const std::vector<T> &v, std::uint64_t h = kFnvOffsetBasis)
{
    const std::uint64_t n = v.size();
    h = fnv1a(&n, sizeof(n), h);
    return fnv1a(v.data(), v.size() * sizeof(T), h);
}

} // namespace quake::common

#endif // QUAKE98_COMMON_FNV_H_
