#include "common/engine_cli.h"

#include "common/error.h"

namespace quake::common
{

EngineCliOptions
parseEngineCli(const Args &args)
{
    EngineCliOptions opt;

    opt.shards = static_cast<int>(args.getInt("shards", 1));
    QUAKE_EXPECT(opt.shards >= 1,
                 "--shards must be >= 1, got " << opt.shards);
    opt.pin = args.has("pin");
    opt.topologySpec = args.get("topology");

    opt.faults = args.has("faults");
    opt.faultSeed =
        static_cast<std::uint64_t>(args.getInt("seed", 0x5eed));
    opt.dropRate = args.getDouble("drop-rate", 1e-3);
    if (opt.faults)
        QUAKE_EXPECT(opt.dropRate >= 0.0 && opt.dropRate <= 1.0,
                     "--drop-rate must be in [0, 1], got "
                         << opt.dropRate);

    opt.hasDeadlineMs = args.has("deadline-ms");
    opt.deadlineMs = args.getDouble("deadline-ms", 0.0);
    if (opt.hasDeadlineMs)
        QUAKE_EXPECT(opt.deadlineMs > 0,
                     "--deadline-ms must be positive, got "
                         << opt.deadlineMs);
    opt.retryBudget = args.getInt("retry-budget", 3);
    QUAKE_EXPECT(opt.retryBudget >= 1,
                 "--retry-budget must be >= 1, got " << opt.retryBudget);

    opt.tracePath = args.get("trace");
    opt.metricsPath = args.get("metrics");
    opt.sampleEvery = args.getInt("sample-every", 16);
    QUAKE_EXPECT(opt.sampleEvery >= 1,
                 "--sample-every must be >= 1, got " << opt.sampleEvery);

    return opt;
}

} // namespace quake::common
