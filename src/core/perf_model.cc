#include "core/perf_model.h"

#include "common/error.h"

namespace quake::core
{

SmvpShape
SmvpShape::fromSummary(const CharacterizationSummary &s)
{
    SmvpShape shape;
    shape.flops = static_cast<double>(s.flopsMax);
    shape.wordsMax = static_cast<double>(s.wordsMax);
    shape.blocksMax = static_cast<double>(s.blocksMax);
    return shape;
}

namespace
{

void
checkShape(const SmvpShape &shape)
{
    QUAKE_EXPECT(shape.flops > 0, "shape needs positive flops");
    QUAKE_EXPECT(shape.wordsMax > 0, "shape needs positive wordsMax");
}

void
checkEfficiency(double e)
{
    QUAKE_EXPECT(e > 0.0 && e < 1.0,
                 "target efficiency must be in (0, 1), got " << e);
}

} // namespace

double
requiredTc(const SmvpShape &shape, double e, double tf)
{
    checkShape(shape);
    checkEfficiency(e);
    QUAKE_EXPECT(tf > 0, "tf must be positive");
    return (shape.flops / shape.wordsMax) * ((1.0 - e) / e) * tf;
}

double
requiredSustainedBandwidth(const SmvpShape &shape, double e, double tf)
{
    return bandwidthFromTc(requiredTc(shape, e, tf));
}

double
achievedEfficiency(const SmvpShape &shape, double tf, double tc)
{
    checkShape(shape);
    QUAKE_EXPECT(tf > 0 && tc >= 0, "tf must be positive, tc nonnegative");
    const double t_comp = shape.flops * tf;
    const double t_comm = shape.wordsMax * tc;
    return t_comp / (t_comp + t_comm);
}

double
tcFromBlocks(const SmvpShape &shape, double tl, double tw)
{
    checkShape(shape);
    QUAKE_EXPECT(shape.blocksMax > 0, "shape needs positive blocksMax");
    QUAKE_EXPECT(tl >= 0 && tw >= 0, "tl and tw must be nonnegative");
    return (shape.blocksMax / shape.wordsMax) * tl + tw;
}

double
latencyBudget(const SmvpShape &shape, double tc_target, double tw)
{
    checkShape(shape);
    QUAKE_EXPECT(shape.blocksMax > 0, "shape needs positive blocksMax");
    QUAKE_EXPECT(tc_target > 0 && tw >= 0,
                 "tc_target must be positive, tw nonnegative");
    return (tc_target - tw) * shape.wordsMax / shape.blocksMax;
}

double
latencyForBurstBandwidth(const SmvpShape &shape, double tc_target,
                         double burst_bytes_per_sec)
{
    QUAKE_EXPECT(burst_bytes_per_sec > 0,
                 "burst bandwidth must be positive");
    const double tw = kBytesPerWord / burst_bytes_per_sec;
    return latencyBudget(shape, tc_target, tw);
}

HalfBandwidthPoint
halfBandwidthPoint(const SmvpShape &shape, double tc_target)
{
    checkShape(shape);
    QUAKE_EXPECT(shape.blocksMax > 0, "shape needs positive blocksMax");
    QUAKE_EXPECT(tc_target > 0, "tc_target must be positive");

    const double t_comm = shape.wordsMax * tc_target;
    HalfBandwidthPoint point;
    // C_max * T_w = T_comm / 2  =>  T_w = T_comm / (2 C_max) = tc / 2.
    const double tw = t_comm / (2.0 * shape.wordsMax);
    point.burstBandwidthBytes = kBytesPerWord / tw;
    // B_max * T_l = T_comm / 2.
    point.latency = t_comm / (2.0 * shape.blocksMax);
    return point;
}

double
requiredBisectionBandwidth(const SmvpShape &shape,
                           std::int64_t bisection_words, double e,
                           double tf)
{
    QUAKE_EXPECT(bisection_words >= 0, "negative bisection volume");
    const double t_comm = shape.wordsMax * requiredTc(shape, e, tf);
    if (t_comm <= 0)
        return 0.0;
    return static_cast<double>(bisection_words) * kBytesPerWord / t_comm;
}

SmvpShape
withFixedBlockSize(const SmvpShape &shape, double block_words)
{
    QUAKE_EXPECT(block_words > 0, "block size must be positive");
    SmvpShape out = shape;
    out.blocksMax = shape.wordsMax / block_words;
    return out;
}

double
tfFromMflops(double mflops)
{
    QUAKE_EXPECT(mflops > 0, "MFLOPS rating must be positive");
    return 1.0 / (mflops * 1e6);
}

double
bandwidthFromTc(double tc)
{
    QUAKE_EXPECT(tc > 0, "tc must be positive");
    return kBytesPerWord / tc;
}

} // namespace quake::core
