#include "core/requirements.h"

#include <cmath>

#include "common/error.h"

namespace quake::core
{

std::vector<RequirementRow>
requirementSweep(const SmvpShape &shape,
                 const std::vector<OperatingPoint> &grid,
                 std::int64_t bisection_words)
{
    std::vector<RequirementRow> rows;
    rows.reserve(grid.size());
    for (const OperatingPoint &point : grid) {
        RequirementRow row;
        row.point = point;
        const double tf = tfFromMflops(point.mflops);
        row.tc = requiredTc(shape, point.efficiency, tf);
        row.sustainedBandwidthBytes = bandwidthFromTc(row.tc);
        if (bisection_words > 0) {
            row.bisectionBandwidthBytes = requiredBisectionBandwidth(
                shape, bisection_words, point.efficiency, tf);
        }
        rows.push_back(row);
    }
    return rows;
}

std::vector<OperatingPoint>
gridFromMeasuredTf(double tf_seconds,
                   const std::vector<double> &efficiencies)
{
    QUAKE_EXPECT(tf_seconds > 0, "measured T_f must be positive");
    std::vector<OperatingPoint> grid;
    grid.reserve(efficiencies.size());
    for (double e : efficiencies) {
        QUAKE_EXPECT(e > 0 && e < 1,
                     "target efficiency must be in (0, 1)");
        grid.push_back(OperatingPoint{1.0 / (tf_seconds * 1e6), e});
    }
    return grid;
}

std::vector<RequirementRow>
requirementSweepFromTf(const SmvpShape &shape, double tf_seconds,
                       const std::vector<double> &efficiencies,
                       std::int64_t bisection_words)
{
    return requirementSweep(shape,
                            gridFromMeasuredTf(tf_seconds, efficiencies),
                            bisection_words);
}

std::vector<TradeoffPoint>
tradeoffCurve(const SmvpShape &shape, double tc_target, double bw_min_bytes,
              double bw_max_bytes, int num_points)
{
    QUAKE_EXPECT(num_points >= 2, "need at least two sweep points");
    std::vector<TradeoffPoint> curve;
    for (double bw : logspace(bw_min_bytes, bw_max_bytes, num_points)) {
        const double tl = latencyForBurstBandwidth(shape, tc_target, bw);
        if (tl < 0)
            continue; // infeasible: burst time alone exceeds the budget
        curve.push_back(TradeoffPoint{bw, tl});
    }
    return curve;
}

Headline
computeHeadline(const SmvpShape &shape, double mflops, double efficiency)
{
    const double tf = tfFromMflops(mflops);
    const double tc = requiredTc(shape, efficiency, tf);

    Headline h;
    h.sustainedBandwidthBytes = bandwidthFromTc(tc);
    h.halfPoint = halfBandwidthPoint(shape, tc);
    h.infiniteBurstLatency = latencyBudget(shape, tc, 0.0);
    return h;
}

std::vector<double>
logspace(double lo, double hi, int num)
{
    QUAKE_EXPECT(lo > 0 && hi > lo, "logspace needs 0 < lo < hi");
    QUAKE_EXPECT(num >= 2, "logspace needs at least two points");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(num));
    const double step = std::log(hi / lo) / (num - 1);
    for (int i = 0; i < num; ++i)
        out.push_back(lo * std::exp(step * i));
    return out;
}

} // namespace quake::core
