/**
 * @file
 * Estimating the machine constants T_l and T_w from measurements —
 * the "simple methodology for estimating these parameters on real
 * systems" the paper defers to its companion technical report (§3.3).
 *
 * A block transfer of k words costs T_l + k*T_w, so a set of measured
 * (k_i, t_i) samples determines (T_l, T_w) by ordinary least squares;
 * the fit quality (R^2) tells whether the linear block model holds on
 * the machine at all.  estimateMachine() runs the whole recipe the way
 * the paper's authors would have on the T3E: time a ladder of block
 * sizes, fit the line, sanity-check the residuals.
 */

#ifndef QUAKE98_CORE_PARAM_FIT_H_
#define QUAKE98_CORE_PARAM_FIT_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace quake::core
{

/** One timed transfer: a block of `words` took `seconds`. */
struct TransferSample
{
    double words = 0.0;
    double seconds = 0.0;
};

/** Result of the least-squares fit t = T_l + k * T_w. */
struct BlockFit
{
    double tl = 0.0;       ///< intercept: block latency (seconds)
    double tw = 0.0;       ///< slope: seconds per word
    double rSquared = 0.0; ///< goodness of fit in [0, 1]

    /** Burst bandwidth implied by the slope, bytes/second. */
    double burstBandwidthBytes() const { return 8.0 / tw; }
};

/**
 * Ordinary least squares on the samples.  Requires at least two
 * distinct block sizes; throws FatalError otherwise.  A negative
 * fitted intercept is clamped to zero (measurement noise on machines
 * whose latency is below timer resolution).
 */
BlockFit fitBlockModel(const std::vector<TransferSample> &samples);

/** A transfer function: seconds to move a block of `words` words. */
using TransferFn = std::function<double(std::int64_t words)>;

/**
 * The full recipe: time `repetitions` transfers at each block size in
 * `sizes` through `transfer`, average, and fit.  `transfer` may be a
 * real communication call or a machine model (tests use the latter to
 * verify the recipe recovers known constants, including under noise).
 */
BlockFit estimateMachine(const TransferFn &transfer,
                         const std::vector<std::int64_t> &sizes,
                         int repetitions = 3);

/**
 * The standard block-size ladder used by the estimate: powers of two
 * from 1 to 64K words (the range of real SMVP messages per Figure 7).
 */
std::vector<std::int64_t> standardBlockLadder();

} // namespace quake::core

#endif // QUAKE98_CORE_PARAM_FIT_H_
