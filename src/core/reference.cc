#include "core/reference.h"

#include "common/error.h"

namespace quake::core::reference
{

namespace
{

constexpr std::array<MeshSizes, kNumMeshes> kFigure2 = {{
    {7'294, 35'025, 44'922},          // sf10
    {30'169, 151'239, 190'377},       // sf5
    {378'747, 2'067'739, 2'509'064},  // sf2
    {2'461'694, 13'980'162, 16'684'112}, // sf1
}};

/**
 * Figure 7, transcribed row group by row group.  Outer index: subdomain
 * count (4, 8, 16, 32, 64, 128); inner index: mesh (sf10, sf5, sf2, sf1).
 */
constexpr Figure7Entry kFigure7[6][kNumMeshes] = {
    // 4 subdomains
    {{453'924, 2'352, 6, 369, 193},
     {1'899'396, 7'746, 6, 1'290, 245},
     {24'640'110, 55'338, 6, 8'682, 445},
     {162'372'024, 186'162, 6, 27'540, 872}},
    // 8 subdomains
    {{235'566, 2'550, 12, 237, 92},
     {970'740, 7'080, 12, 699, 137},
     {12'414'006, 35'148, 10, 4'152, 353},
     {81'602'442, 151'764, 14, 13'761, 538}},
    // 16 subdomains
    {{122'742, 2'208, 18, 159, 56},
     {496'872, 5'292, 20, 342, 94},
     {6'278'076, 28'482, 16, 1'920, 220},
     {41'116'374, 119'280, 18, 7'434, 345}},
    // 32 subdomains
    {{64'980, 2'172, 30, 87, 30},
     {257'004, 4'476, 30, 213, 57},
     {3'191'436, 24'018, 26, 1'239, 133},
     {20'740'734, 87'228, 26, 4'044, 238}},
    // 64 subdomains
    {{34'956, 1'764, 38, 57, 20},
     {134'424, 4'296, 40, 135, 31},
     {1'632'708, 20'520, 36, 765, 80},
     {10'511'586, 73'062, 38, 2'712, 144}},
    // 128 subdomains
    {{18'954, 1'740, 62, 36, 11},
     {70'956, 3'360, 52, 135, 21},
     {838'224, 16'260, 50, 459, 52},
     {5'332'806, 51'048, 46, 1'515, 104}},
};

/** Figure 6: beta bounds, same index order as kFigure7. */
constexpr double kFigure6[6][kNumMeshes] = {
    {1.00, 1.00, 1.00, 1.00}, // 4
    {1.00, 1.00, 1.00, 1.00}, // 8
    {1.09, 1.10, 1.07, 1.00}, // 16
    {1.01, 1.01, 1.15, 1.00}, // 32
    {1.03, 1.08, 1.11, 1.05}, // 64
    {1.03, 1.04, 1.04, 1.11}, // 128
};

int
subdomainIndex(int subdomains)
{
    for (std::size_t i = 0; i < kSubdomainCounts.size(); ++i)
        if (kSubdomainCounts[i] == subdomains)
            return static_cast<int>(i);
    quake::common::fatal("subdomain count " + std::to_string(subdomains) +
                         " is not tabulated in the paper (use 4, 8, 16, "
                         "32, 64, or 128)");
}

} // namespace

std::string
paperMeshName(PaperMesh mesh)
{
    switch (mesh) {
      case PaperMesh::kSf10: return "sf10";
      case PaperMesh::kSf5: return "sf5";
      case PaperMesh::kSf2: return "sf2";
      case PaperMesh::kSf1: return "sf1";
    }
    QUAKE_PANIC("unknown PaperMesh");
}

PaperMesh
paperMeshFromName(const std::string &name)
{
    if (name == "sf10")
        return PaperMesh::kSf10;
    if (name == "sf5")
        return PaperMesh::kSf5;
    if (name == "sf2")
        return PaperMesh::kSf2;
    if (name == "sf1")
        return PaperMesh::kSf1;
    quake::common::fatal("unknown paper mesh '" + name + "'");
}

const MeshSizes &
figure2(PaperMesh mesh)
{
    return kFigure2[static_cast<int>(mesh)];
}

const Figure7Entry &
figure7(PaperMesh mesh, int subdomains)
{
    return kFigure7[subdomainIndex(subdomains)][static_cast<int>(mesh)];
}

double
figure6Beta(PaperMesh mesh, int subdomains)
{
    return kFigure6[subdomainIndex(subdomains)][static_cast<int>(mesh)];
}

SmvpShape
shapeFor(PaperMesh mesh, int subdomains)
{
    const Figure7Entry &e = figure7(mesh, subdomains);
    SmvpShape shape;
    shape.flops = static_cast<double>(e.flops);
    shape.wordsMax = static_cast<double>(e.wordsMax);
    shape.blocksMax = static_cast<double>(e.blocksMax);
    return shape;
}

const CommIntensity &
exflowIntensity()
{
    static const CommIntensity intensity{2.0, 144.0, 66.0, 2.2};
    return intensity;
}

const CommIntensity &
quakeSf2Intensity()
{
    static const CommIntensity intensity{2.0, 155.0, 60.0, 3.6};
    return intensity;
}

CommIntensity
intensityFrom(const SmvpCharacterization &ch, double memory_per_pe_mbytes)
{
    QUAKE_EXPECT(!ch.pes.empty(), "characterization has no PEs");

    double total_flops = 0.0;
    for (const PeLoad &pe : ch.pes)
        total_flops += static_cast<double>(pe.flops);

    double total_words = 0.0;
    for (std::int64_t m : ch.messageSizes)
        total_words += static_cast<double>(m);
    const double total_messages =
        static_cast<double>(ch.messageSizes.size());

    CommIntensity intensity;
    intensity.memoryPerPeMBytes = memory_per_pe_mbytes;
    const double mflops = total_flops / 1e6;
    intensity.commKBytesPerMflop =
        mflops > 0 ? total_words * kBytesPerWord / 1e3 / mflops : 0.0;
    intensity.messagesPerMflop =
        mflops > 0 ? total_messages / mflops : 0.0;
    intensity.avgMessageKBytes =
        total_messages > 0
            ? total_words * kBytesPerWord / 1e3 / total_messages
            : 0.0;
    return intensity;
}

} // namespace quake::core::reference
