#include "core/report.h"

#include <ostream>

#include "common/error.h"
#include "common/table.h"

namespace quake::core
{

AnalysisReport
analyze(const SmvpCharacterization &ch, const AnalysisRequest &request)
{
    QUAKE_EXPECT(!request.mflopsGrid.empty() &&
                     !request.efficiencyGrid.empty(),
                 "analysis grids must be nonempty");
    QUAKE_EXPECT(request.fixedBlockWords > 0,
                 "fixed block size must be positive");

    AnalysisReport report;
    report.name = ch.name;
    report.summary = summarize(ch);
    const SmvpShape shape = SmvpShape::fromSummary(report.summary);
    const SmvpShape fixed_shape = withFixedBlockSize(
        shape, static_cast<double>(request.fixedBlockWords));

    for (double mflops : request.mflopsGrid) {
        for (double e : request.efficiencyGrid) {
            const double tf = tfFromMflops(mflops);
            const double tc = requiredTc(shape, e, tf);

            AnalysisEntry entry;
            entry.mflops = mflops;
            entry.efficiency = e;
            entry.sustainedBandwidthBytes = bandwidthFromTc(tc);
            entry.bisectionBandwidthBytes = requiredBisectionBandwidth(
                shape, report.summary.bisectionWords, e, tf);
            entry.maximalBlocks = halfBandwidthPoint(shape, tc);
            entry.fixedBlocks = halfBandwidthPoint(
                fixed_shape, requiredTc(fixed_shape, e, tf));
            entry.infiniteBurstLatency = latencyBudget(shape, tc, 0.0);
            report.entries.push_back(entry);
        }
    }
    return report;
}

void
printReport(const AnalysisReport &report, std::ostream &os)
{
    using common::formatBandwidth;
    using common::formatCount;
    using common::formatFixed;
    using common::formatTime;

    os << "SMVP analysis: " << report.name << "\n\n";

    common::Table properties({"application property", "value"});
    const CharacterizationSummary &s = report.summary;
    properties.addRow({"F (flops/PE, max)", formatCount(s.flopsMax)});
    properties.addRow({"C_max (words)", formatCount(s.wordsMax)});
    properties.addRow({"B_max (blocks)", formatCount(s.blocksMax)});
    properties.addRow({"M_avg (words)",
                       formatFixed(s.messageSizeAvg, 0)});
    properties.addRow({"F/C_max", formatFixed(s.flopsPerWord, 1)});
    properties.addRow({"beta bound", formatFixed(s.beta, 3)});
    properties.addRow({"flop balance", formatFixed(s.flopBalance, 3)});
    properties.addRow({"word balance", formatFixed(s.wordBalance, 3)});
    properties.addRow({"block balance",
                       formatFixed(s.blockBalance, 3)});
    properties.addRow({"bisection volume (words)",
                       formatCount(s.bisectionWords)});
    properties.print(os);

    os << "\ncommunication-system requirements:\n";
    common::Table reqs({"MFLOPS", "E", "sustained bw", "bisection bw",
                        "burst (max blk)", "T_l (max blk)",
                        "burst (fixed blk)", "T_l (fixed blk)",
                        "T_l @ inf burst"});
    for (const AnalysisEntry &entry : report.entries) {
        reqs.addRow({formatFixed(entry.mflops, 0),
                     formatFixed(entry.efficiency, 2),
                     formatBandwidth(entry.sustainedBandwidthBytes),
                     entry.bisectionBandwidthBytes > 0
                         ? formatBandwidth(entry.bisectionBandwidthBytes)
                         : "n/a",
                     formatBandwidth(
                         entry.maximalBlocks.burstBandwidthBytes),
                     formatTime(entry.maximalBlocks.latency),
                     formatBandwidth(
                         entry.fixedBlocks.burstBandwidthBytes),
                     formatTime(entry.fixedBlocks.latency),
                     formatTime(entry.infiniteBurstLatency)});
    }
    reqs.print(os);
}

} // namespace quake::core
