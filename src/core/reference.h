/**
 * @file
 * The paper's published measurements, embedded as data.
 *
 * Figures 8-11 of the paper are *derived* figures: they apply Equations
 * (1) and (2) to the application properties tabulated in Figure 7.  With
 * those properties embedded here, the benchmark harnesses can regenerate
 * the derived figures exactly as the authors did, independently of the
 * synthetic mesh pipeline (DESIGN.md §2 explains this two-mode approach).
 */

#ifndef QUAKE98_CORE_REFERENCE_H_
#define QUAKE98_CORE_REFERENCE_H_

#include <array>
#include <cstdint>
#include <string>

#include "core/perf_model.h"

namespace quake::core::reference
{

/** Index order of the Quake applications everywhere in this module. */
enum class PaperMesh : int
{
    kSf10 = 0,
    kSf5 = 1,
    kSf2 = 2,
    kSf1 = 3,
};

/** Number of Quake applications. */
inline constexpr int kNumMeshes = 4;

/** Subdomain counts used throughout the paper's tables. */
inline constexpr std::array<int, 6> kSubdomainCounts = {4,  8,  16,
                                                        32, 64, 128};

/** Name ("sf10", ...) of a paper mesh. */
std::string paperMeshName(PaperMesh mesh);

/** Parse "sf10"/"sf5"/"sf2"/"sf1"; throws FatalError otherwise. */
PaperMesh paperMeshFromName(const std::string &name);

/** One column of Figure 2: mesh sizes. */
struct MeshSizes
{
    std::int64_t nodes;
    std::int64_t elements;
    std::int64_t edges;
};

/** Figure 2 entry for a mesh. */
const MeshSizes &figure2(PaperMesh mesh);

/** One cell group of Figure 7: SMVP properties of mesh/subdomains. */
struct Figure7Entry
{
    std::int64_t flops;       ///< F: flops per PE
    std::int64_t wordsMax;    ///< C_max
    std::int64_t blocksMax;   ///< B_max
    std::int64_t messageAvg;  ///< M_avg (words), as printed in the paper
    std::int64_t flopsPerWord; ///< F/C_max, as printed (rounded)
};

/**
 * Figure 7 entry for (mesh, subdomains); `subdomains` must be one of
 * kSubdomainCounts.
 */
const Figure7Entry &figure7(PaperMesh mesh, int subdomains);

/** Figure 6: the beta error bound for (mesh, subdomains). */
double figure6Beta(PaperMesh mesh, int subdomains);

/** Equation-(1)/(2) input shape built from the Figure 7 entry. */
SmvpShape shapeFor(PaperMesh mesh, int subdomains);

// ---------------------------------------------------------------------
// Machine constants quoted in the paper (§3.1, §3.3, §4).
// ---------------------------------------------------------------------

inline constexpr double kCrayT3dTf = 30e-9; ///< measured T_f, T3D (§3.1)
inline constexpr double kCrayT3eTf = 14e-9; ///< measured T_f, T3E (§3.1)
inline constexpr double kCrayT3eTl = 22e-6; ///< measured T_l, T3E (§3.3)
inline constexpr double kCrayT3eTw = 55e-9; ///< measured T_w, T3E (§3.3)

/** The paper's hypothetical machines (§4): sustained local MFLOPS. */
inline constexpr double kCurrentMachineMflops = 100.0;
inline constexpr double kFutureMachineMflops = 200.0;

/** Efficiency grid used by Figures 8, 9, and 11. */
inline constexpr std::array<double, 3> kEfficiencyGrid = {0.5, 0.8, 0.9};

// ---------------------------------------------------------------------
// The EXFLOW comparison (§1).
// ---------------------------------------------------------------------

/** Communication intensity of one application, per MFLOP of work. */
struct CommIntensity
{
    double memoryPerPeMBytes;   ///< resident data per PE
    double commKBytesPerMflop;  ///< communication volume / MFLOP
    double messagesPerMflop;    ///< messages / MFLOP
    double avgMessageKBytes;    ///< average message size
};

/** Published EXFLOW numbers (512-PE fluid dynamics code, ref [5]). */
const CommIntensity &exflowIntensity();

/** Published numbers for the comparable Quake instance (sf2/128). */
const CommIntensity &quakeSf2Intensity();

/**
 * Derive the same intensity metrics from a characterization (aggregate
 * over PEs: total volume / total flops, etc.).
 */
CommIntensity intensityFrom(const SmvpCharacterization &ch,
                            double memory_per_pe_mbytes);

} // namespace quake::core::reference

#endif // QUAKE98_CORE_REFERENCE_H_
