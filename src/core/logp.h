/**
 * @file
 * The LogP/LogGP view of the SMVP communication phase (paper §3.3).
 *
 * The paper situates its model against LogP (Culler et al., ref [4]):
 * "our T_l parameter is similar to the overhead parameter o in LogP",
 * while T_f, T_w, F, B_max, C_max "have no counterparts".  This module
 * makes the correspondence precise using LogGP (LogP with a Gap-per-
 * byte G for long messages):
 *
 *   per directed message of k words:  o_send + (k - 1) G + L + o_recv
 *   per-PE phase time: sum of its send overheads and gaps + sum of its
 *   receive overheads and gaps (+ one wire latency L on the critical
 *   path)
 *
 * With o = T_l, G = T_w, and L -> 0 this reduces exactly to the
 * paper's Equation (2) accounting (each PE pays B_i block overheads
 * and ~C_i word times), which is the comparison the bench prints.
 */

#ifndef QUAKE98_CORE_LOGP_H_
#define QUAKE98_CORE_LOGP_H_

#include "core/characterization.h"

namespace quake::core
{

/** LogGP machine parameters (seconds; G is per 64-bit word here). */
struct LogGpParams
{
    double latency = 0.0;  ///< L: wire latency
    double overhead = 0.0; ///< o: per-message CPU overhead (each side)
    double gap = 0.0;      ///< g: minimum inter-message gap
    double gapPerWord = 0.0; ///< G: per-word gap for long messages

    /** The paper's correspondence: o = T_l, G = T_w, L and g chosen. */
    static LogGpParams fromBlockModel(double tl, double tw,
                                      double wire_latency = 0.0,
                                      double message_gap = 0.0);
};

/** Per-phase times under the LogGP accounting. */
struct LogGpPhase
{
    double tComm = 0.0;       ///< max over PEs of the phase time
    double commOfMaxPe = 0.0; ///< the same PE's overhead-only portion
};

/**
 * LogGP time of the SMVP exchange phase for `ch`.  Each PE serializes
 * its sends (o + (k-1)G each, separated by at least g) and its
 * receives likewise; one wire latency L sits on the critical path.
 * Message sizes per PE are derived from the characterization: each
 * PE's messages are its share of ch.messageSizes (B_i/2 sends of
 * C_i / B_i words on average) — exact per-message sizes are not needed
 * because the accounting is linear in them.
 */
LogGpPhase logGpCommTime(const SmvpCharacterization &ch,
                         const LogGpParams &params);

/**
 * The paper's Equation (2) communication time for the same inputs:
 * max over PEs of B_i * T_l + C_i * T_w.  Provided here so callers can
 * print the two models side by side.
 */
double blockModelCommTime(const SmvpCharacterization &ch, double tl,
                          double tw);

} // namespace quake::core

#endif // QUAKE98_CORE_LOGP_H_
