/**
 * @file
 * Characterizations of the paper's comparison workloads.
 *
 * §4.1 places the Quake SMVP "in an interesting middle ground between
 * difficult applications like the 2D FFT that require an all-to-all
 * communication, and simple applications like regular grid problems
 * wherein PEs communicate with at most four neighbors."  This module
 * builds exact SmvpCharacterizations for those two poles — a 3D
 * regular-grid stencil with block decomposition, and an all-to-all
 * transpose — so the claim can be shown quantitatively next to the
 * Quake numbers (bench_middle_ground).
 */

#ifndef QUAKE98_CORE_SYNTHETIC_WORKLOADS_H_
#define QUAKE98_CORE_SYNTHETIC_WORKLOADS_H_

#include "core/characterization.h"

namespace quake::core
{

/**
 * A periodic 3D regular grid of `grid_n`^3 cells updated with a
 * 7-point stencil, block-decomposed over `pe_side`^3 PEs.  Every PE
 * holds a (grid_n / pe_side)^3 subgrid and exchanges one face halo
 * with each of its six neighbours per step.
 *
 * Flops: 2 per stencil coefficient per cell (the F = 2m convention).
 * Requires pe_side to divide grid_n.
 */
SmvpCharacterization regularGrid3d(std::int64_t grid_n, int pe_side);

/**
 * An all-to-all exchange (the 2D FFT transpose pattern): every PE
 * sends `words_per_peer` words to each of the other p-1 PEs, and
 * performs `flops_per_pe` arithmetic.
 */
SmvpCharacterization allToAll(int pes, std::int64_t words_per_peer,
                              std::int64_t flops_per_pe);

} // namespace quake::core

#endif // QUAKE98_CORE_SYNTHETIC_WORKLOADS_H_
