#include "core/characterization.h"

#include <algorithm>

#include "common/error.h"

namespace quake::core
{

CharacterizationSummary
summarize(const SmvpCharacterization &ch)
{
    QUAKE_EXPECT(!ch.pes.empty(), "characterization has no PEs");

    CharacterizationSummary s;
    double flop_sum = 0.0;
    double word_sum = 0.0;
    double block_sum = 0.0;
    std::int64_t communicating = 0;
    for (const PeLoad &pe : ch.pes) {
        s.flopsMax = std::max(s.flopsMax, pe.flops);
        s.wordsMax = std::max(s.wordsMax, pe.words);
        s.blocksMax = std::max(s.blocksMax, pe.blocks);
        flop_sum += static_cast<double>(pe.flops);
        if (pe.words > 0) {
            word_sum += static_cast<double>(pe.words);
            block_sum += static_cast<double>(pe.blocks);
            ++communicating;
        }
    }
    s.flopsMean = flop_sum / static_cast<double>(ch.pes.size());
    if (communicating > 0 && word_sum > 0)
        s.wordBalance = static_cast<double>(s.wordsMax) /
                        (word_sum / static_cast<double>(communicating));
    if (communicating > 0 && block_sum > 0)
        s.blockBalance =
            static_cast<double>(s.blocksMax) /
            (block_sum / static_cast<double>(communicating));
    s.flopBalance =
        s.flopsMean > 0 ? static_cast<double>(s.flopsMax) / s.flopsMean
                        : 1.0;

    if (!ch.messageSizes.empty()) {
        std::int64_t total = 0;
        for (std::int64_t m : ch.messageSizes)
            total += m;
        s.messageSizeAvg = static_cast<double>(total) /
                           static_cast<double>(ch.messageSizes.size());
    }

    s.flopsPerWord = s.wordsMax > 0 ? static_cast<double>(s.flopsMax) /
                                          static_cast<double>(s.wordsMax)
                                    : 0.0;
    s.bisectionWords = ch.bisectionWords;

    // Paper §3.4: the overestimate bound.  Equal to 1 when some PE
    // attains both maxima simultaneously.
    if (s.wordsMax > 0 && s.blocksMax > 0) {
        double min_term = 1.0; // beta never exceeds 2
        for (const PeLoad &pe : ch.pes) {
            if (pe.words <= 0 || pe.blocks <= 0)
                continue;
            const double cmax = static_cast<double>(s.wordsMax);
            const double bmax = static_cast<double>(s.blocksMax);
            const double ci = static_cast<double>(pe.words);
            const double bi = static_cast<double>(pe.blocks);
            const double term =
                std::max(cmax * (bmax - bi) / (ci * bmax),
                         bmax * (cmax - ci) / (bi * cmax));
            min_term = std::min(min_term, term);
        }
        s.beta = 1.0 + min_term;
    }
    return s;
}

} // namespace quake::core
