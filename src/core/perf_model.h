/**
 * @file
 * The paper's SMVP performance models (§3) and the requirement analyses
 * built on them (§4).
 *
 * Model of one global SMVP (Equation 1, the high-level view):
 *
 *     T_smvp = T_comp + T_comm
 *     T_comp = F * T_f
 *     T_comm = C_max * T_c
 *     E      = T_comp / T_smvp
 *  => T_c    = (F / C_max) * ((1 - E) / E) * T_f
 *
 * Block-level decomposition (Equation 2, the low-level view):
 *
 *     T_comm = B_max * T_l + C_max * T_w
 *  => T_c    = (B_max / C_max) * T_l + T_w
 *
 * All times are in seconds; rates derived from them are in flops/sec or
 * words/sec (a word is 64 bits; multiply by 8 for bytes).
 */

#ifndef QUAKE98_CORE_PERF_MODEL_H_
#define QUAKE98_CORE_PERF_MODEL_H_

#include <vector>

#include "core/characterization.h"

namespace quake::core
{

/** Bytes per communication word (the paper uses 64-bit values). */
inline constexpr double kBytesPerWord = 8.0;

/** Application-side inputs of Equation (1): F and C_max for one SMVP. */
struct SmvpShape
{
    double flops = 0.0;    ///< F: flops per PE per SMVP
    double wordsMax = 0.0; ///< C_max: max words per PE per SMVP
    double blocksMax = 0.0; ///< B_max: max blocks per PE per SMVP

    /** Extract from a characterization summary. */
    static SmvpShape fromSummary(const CharacterizationSummary &s);
};

// ---------------------------------------------------------------------
// Equation (1): sustained bandwidth requirement.
// ---------------------------------------------------------------------

/**
 * Required amortized time per communication word T_c (seconds) to hit
 * efficiency `e` with per-flop time `tf`.
 *
 * @param shape Application shape (uses flops and wordsMax).
 * @param e     Target efficiency in (0, 1).
 * @param tf    Amortized seconds per flop (inverse sustained MFLOPS).
 */
double requiredTc(const SmvpShape &shape, double e, double tf);

/** Sustained per-PE bandwidth T_c^-1 in bytes/second for the same goal. */
double requiredSustainedBandwidth(const SmvpShape &shape, double e,
                                  double tf);

/**
 * Efficiency achieved when the communication system delivers amortized
 * word time `tc`: E = T_comp / (T_comp + T_comm).
 */
double achievedEfficiency(const SmvpShape &shape, double tf, double tc);

// ---------------------------------------------------------------------
// Equation (2): block latency / burst bandwidth decomposition.
// ---------------------------------------------------------------------

/** T_c produced by block latency `tl` and per-word burst time `tw`. */
double tcFromBlocks(const SmvpShape &shape, double tl, double tw);

/**
 * Largest block latency T_l that still meets a target T_c given burst
 * word time `tw` (Equation 2 solved for T_l).  Returns a negative value
 * when even zero latency cannot meet the target (tw >= tc).
 */
double latencyBudget(const SmvpShape &shape, double tc_target, double tw);

/**
 * One point of the Figure 10 tradeoff curve: for a given burst bandwidth
 * (bytes/sec), the admissible block latency (seconds).
 */
double latencyForBurstBandwidth(const SmvpShape &shape, double tc_target,
                                double burst_bytes_per_sec);

/** The half-bandwidth design point of §4.4. */
struct HalfBandwidthPoint
{
    double burstBandwidthBytes = 0.0; ///< burst bandwidth T_w^-1 (bytes/s)
    double latency = 0.0;             ///< half-bandwidth latency T_l (s)
};

/**
 * The design point where block latency and burst transfer each consume
 * half of the communication phase:
 *   C_max * T_w = B_max * T_l = T_comm / 2.
 */
HalfBandwidthPoint halfBandwidthPoint(const SmvpShape &shape,
                                      double tc_target);

// ---------------------------------------------------------------------
// Bisection bandwidth (§4.2).
// ---------------------------------------------------------------------

/**
 * Sustained bisection bandwidth (bytes/sec) required so that the
 * `bisection_words` crossing the fixed bisection fit inside the
 * communication phase T_comm = C_max * T_c.
 */
double requiredBisectionBandwidth(const SmvpShape &shape,
                                  std::int64_t bisection_words, double e,
                                  double tf);

// ---------------------------------------------------------------------
// Fixed-size blocks (§4.4, Figure 10b): cache-line style transfers.
// ---------------------------------------------------------------------

/**
 * Reshape a characterization for fixed `block_words`-word transfer units:
 * B_max becomes C_max / block_words (the paper's modeling choice for
 * shared-memory machines with cache-line interchange).
 */
SmvpShape withFixedBlockSize(const SmvpShape &shape, double block_words);

// ---------------------------------------------------------------------
// Convenience conversions.
// ---------------------------------------------------------------------

/** seconds-per-flop from a sustained MFLOPS rating. */
double tfFromMflops(double mflops);

/** bytes/second from an amortized per-word time. */
double bandwidthFromTc(double tc);

} // namespace quake::core

#endif // QUAKE98_CORE_PERF_MODEL_H_
