/**
 * @file
 * Machine-independent characterization of one parallel SMVP instance —
 * the quantities the paper's models consume (Figure 4): per-PE flops F,
 * communication words C_i, communication blocks B_i, the message-size
 * distribution, and the bisection volume.  These are pure application +
 * partitioner properties; quake::parallel produces them from a mesh and
 * a partition, and the models in perf_model.h turn them into
 * communication-system requirements.
 */

#ifndef QUAKE98_CORE_CHARACTERIZATION_H_
#define QUAKE98_CORE_CHARACTERIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace quake::core
{

/** Per-PE load for one SMVP (paper Figure 4 symbols F, C_i, B_i). */
struct PeLoad
{
    std::int64_t flops = 0;  ///< F: adds+multiplies in the local SMVP
    std::int64_t words = 0;  ///< C_i: 64-bit words sent + received
    std::int64_t blocks = 0; ///< B_i: blocks sent + received
};

/** A machine-independent description of one parallel SMVP instance. */
struct SmvpCharacterization
{
    std::string name;     ///< e.g. "sf2/128"
    int numPes = 0;       ///< p, the number of subdomains
    std::vector<PeLoad> pes;

    /**
     * Size in words of every directed message (maximally aggregated:
     * one message per ordered PE pair that shares nodes).
     */
    std::vector<std::int64_t> messageSizes;

    /**
     * Words crossing the fixed bisection {0..p/2-1} | {p/2..p-1} in both
     * directions (paper §4.2's V).
     */
    std::int64_t bisectionWords = 0;
};

/** The derived row of the paper's Figure 7, plus the Figure 6 bound. */
struct CharacterizationSummary
{
    std::int64_t flopsMax = 0;      ///< F (max over PEs)
    double flopsMean = 0.0;         ///< mean F_i, for balance reporting
    std::int64_t wordsMax = 0;      ///< C_max
    std::int64_t blocksMax = 0;     ///< B_max
    double messageSizeAvg = 0.0;    ///< M_avg (words)
    double flopsPerWord = 0.0;      ///< F / C_max
    double beta = 1.0;              ///< error bound on T_c (paper §3.4)
    std::int64_t bisectionWords = 0;
    double flopBalance = 1.0;       ///< max F_i / mean F_i

    /**
     * Communication balance: C_max / mean C_i and B_max / mean B_i
     * over communicating PEs.  Ref [15]'s observation — partitioners
     * balance computation well but words and blocks less well — is
     * exactly why the §3.4 beta bound is needed; these make it
     * measurable.
     */
    double wordBalance = 1.0;
    double blockBalance = 1.0;
};

/**
 * Reduce a characterization to the paper's summary statistics.
 *
 * The beta bound is computed exactly as in §3.4:
 *   beta = 1 + min over PEs i of
 *            max( C_max (B_max - B_i) / (C_i B_max),
 *                 B_max (C_max - C_i) / (B_i C_max) ).
 * PEs with zero words or blocks are skipped in the min (an isolated PE
 * communicates nothing and cannot bound the overestimate).
 */
CharacterizationSummary summarize(const SmvpCharacterization &ch);

} // namespace quake::core

#endif // QUAKE98_CORE_CHARACTERIZATION_H_
