#include "core/logp.h"

#include <algorithm>

#include "common/error.h"

namespace quake::core
{

LogGpParams
LogGpParams::fromBlockModel(double tl, double tw, double wire_latency,
                            double message_gap)
{
    QUAKE_EXPECT(tl >= 0 && tw >= 0, "tl and tw must be nonnegative");
    QUAKE_EXPECT(wire_latency >= 0 && message_gap >= 0,
                 "latency and gap must be nonnegative");
    LogGpParams p;
    p.overhead = tl;
    p.gapPerWord = tw;
    p.latency = wire_latency;
    p.gap = message_gap;
    return p;
}

LogGpPhase
logGpCommTime(const SmvpCharacterization &ch, const LogGpParams &params)
{
    QUAKE_EXPECT(!ch.pes.empty(), "characterization has no PEs");

    LogGpPhase phase;
    for (const PeLoad &pe : ch.pes) {
        if (pe.blocks <= 0) {
            // PE communicates nothing; costs only the barrier.
            continue;
        }
        // B_i counts blocks sent + received; each costs one overhead o
        // and is separated from its neighbour by at least max(g, its
        // own gap train).  Word payload: (C_i - B_i) extra words at G
        // each ((k-1) per message, summed over B_i messages of C_i
        // total words).
        const double msgs = static_cast<double>(pe.blocks);
        const double words = static_cast<double>(pe.words);
        const double overhead_part = msgs * params.overhead;
        const double gap_part =
            msgs > 1 ? (msgs - 1) * params.gap : 0.0;
        const double payload_part =
            std::max(0.0, words - msgs) * params.gapPerWord;
        const double t = overhead_part + gap_part + payload_part +
                         params.latency;
        if (t > phase.tComm) {
            phase.tComm = t;
            phase.commOfMaxPe = overhead_part;
        }
    }
    return phase;
}

double
blockModelCommTime(const SmvpCharacterization &ch, double tl, double tw)
{
    QUAKE_EXPECT(!ch.pes.empty(), "characterization has no PEs");
    double worst = 0.0;
    for (const PeLoad &pe : ch.pes) {
        const double t = static_cast<double>(pe.blocks) * tl +
                         static_cast<double>(pe.words) * tw;
        worst = std::max(worst, t);
    }
    return worst;
}

} // namespace quake::core
