#include "core/synthetic_workloads.h"

#include "common/error.h"

namespace quake::core
{

SmvpCharacterization
regularGrid3d(std::int64_t grid_n, int pe_side)
{
    QUAKE_EXPECT(grid_n > 0 && pe_side > 0, "sizes must be positive");
    QUAKE_EXPECT(grid_n % pe_side == 0,
                 "pe_side must divide grid_n (block decomposition)");
    const std::int64_t local_side = grid_n / pe_side;
    const std::int64_t local_cells =
        local_side * local_side * local_side;
    const std::int64_t face_words = local_side * local_side;
    const int p = pe_side * pe_side * pe_side;

    SmvpCharacterization ch;
    ch.name = "grid-" + std::to_string(grid_n) + "^3/" +
              std::to_string(p);
    ch.numPes = p;

    // Every PE is interior (periodic grid): 6 sends + 6 receives of one
    // face each; 7-point stencil = 7 coefficients = 14 flops per cell.
    // When pe_side == 1 (or 2, where +1 and -1 are the same peer) the
    // distinct-neighbour count shrinks.
    int neighbours = 6;
    if (pe_side == 1)
        neighbours = 0;
    else if (pe_side == 2)
        neighbours = 3; // +1 and -1 wrap to the same PE per axis

    PeLoad load;
    load.flops = 14 * local_cells;
    load.words = 2 * neighbours * face_words;
    load.blocks = 2 * neighbours;
    ch.pes.assign(static_cast<std::size_t>(p), load);

    // One directed message per (PE, neighbour).
    ch.messageSizes.assign(
        static_cast<std::size_t>(p) * neighbours, face_words);

    // Bisection {0 .. p/2-1} | {p/2 .. p-1}: with PEs numbered
    // x-major ((i * pe_side + j) * pe_side + k splits at i = pe_side/2),
    // the crossing traffic is the two x-planes (one interior cut plus
    // the periodic wrap), each pe_side^2 PE pairs exchanging both ways.
    if (pe_side >= 2) {
        const std::int64_t crossing_pairs =
            2 * static_cast<std::int64_t>(pe_side) * pe_side;
        ch.bisectionWords = 2 * crossing_pairs * face_words;
    }
    return ch;
}

SmvpCharacterization
allToAll(int pes, std::int64_t words_per_peer, std::int64_t flops_per_pe)
{
    QUAKE_EXPECT(pes >= 2, "all-to-all needs at least two PEs");
    QUAKE_EXPECT(words_per_peer > 0 && flops_per_pe > 0,
                 "sizes must be positive");

    SmvpCharacterization ch;
    ch.name = "all-to-all/" + std::to_string(pes);
    ch.numPes = pes;

    PeLoad load;
    load.flops = flops_per_pe;
    load.words = 2 * static_cast<std::int64_t>(pes - 1) * words_per_peer;
    load.blocks = 2 * (pes - 1);
    ch.pes.assign(static_cast<std::size_t>(pes), load);

    ch.messageSizes.assign(static_cast<std::size_t>(pes) * (pes - 1),
                           words_per_peer);

    // Bisection: each of the p/2 PEs on one side sends to the p/2 PEs
    // on the other, both directions.
    const std::int64_t half = pes / 2;
    ch.bisectionWords = 2 * half * (pes - half) * words_per_peer;
    return ch;
}

} // namespace quake::core
