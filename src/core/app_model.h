/**
 * @file
 * Whole-application performance model.
 *
 * The paper reduces the Quake applications to the SMVP because the
 * SMVP dominates (>80% of sequential time) and is the only
 * communicating operation.  This module closes the loop: a model of
 * the *entire* explicit time-stepping run — 6000 steps of one SMVP
 * plus the pointwise vector update — so end-to-end running time,
 * speedup, and parallel efficiency can be predicted for any machine
 * and any Figure 7 instance, and the "SMVP fraction" itself becomes a
 * derived quantity that can be checked against §2.3.
 */

#ifndef QUAKE98_CORE_APP_MODEL_H_
#define QUAKE98_CORE_APP_MODEL_H_

#include "core/perf_model.h"

namespace quake::core
{

/** Parameters of the whole application run. */
struct AppModelParams
{
    /** Time steps (the paper's runs take 6000). */
    std::int64_t steps = 6000;

    /**
     * Pointwise (non-SMVP) flops per mesh node per step: the central-
     * difference update u_{n+1} = 2u - u_prev + dt^2 M^{-1} (f - Ku)
     * costs ~5 flops per DOF = 15 per node, plus source/sampling
     * incidentals.
     */
    double vectorFlopsPerNode = 18.0;

    /**
     * Effective per-flop time of the vector update relative to the
     * SMVP's T_f.  Streaming updates run faster than the irregular
     * SMVP; 0.5 is a typical ratio of streaming to gather kernels.
     */
    double vectorTfRatio = 0.5;
};

/** Machine constants the app model consumes (same as Figure 4's). */
struct AppMachine
{
    double tf = 0.0; ///< seconds per SMVP flop
    double tl = 0.0; ///< block latency
    double tw = 0.0; ///< seconds per word
};

/** Predicted end-to-end behaviour of one run. */
struct AppPrediction
{
    double stepSeconds = 0.0;  ///< one time step
    double totalSeconds = 0.0; ///< steps * stepSeconds
    double smvpFraction = 0.0; ///< SMVP share of a step (§2.3's >80%)
    double commFraction = 0.0; ///< communication share of a step
};

/**
 * Predict one run of the application on `p` PEs.
 *
 * @param shape          SMVP shape of the instance (per-PE F, C, B).
 * @param nodes_per_pe   Mesh nodes resident on one PE (for the vector
 *                       update term); shared replicas included.
 * @param machine        Machine constants.
 * @param params         Application parameters.
 */
AppPrediction predictRun(const SmvpShape &shape, double nodes_per_pe,
                         const AppMachine &machine,
                         const AppModelParams &params = {});

/**
 * Predicted speedup of the `p`-PE instance over the 1-PE run of the
 * same problem: S = T(1) / T(p).  The 1-PE baseline has no
 * communication and p times the work per PE.
 *
 * @param shape_p        Shape of the p-PE instance.
 * @param p              PE count of that instance.
 * @param total_nodes    Mesh nodes in the whole problem.
 * @param nodes_per_pe   Nodes per PE in the p-PE instance.
 */
double predictedSpeedup(const SmvpShape &shape_p, int p,
                        double total_nodes, double nodes_per_pe,
                        const AppMachine &machine,
                        const AppModelParams &params = {});

} // namespace quake::core

#endif // QUAKE98_CORE_APP_MODEL_H_
