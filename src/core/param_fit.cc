#include "core/param_fit.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace quake::core
{

BlockFit
fitBlockModel(const std::vector<TransferSample> &samples)
{
    QUAKE_EXPECT(samples.size() >= 2, "need at least two samples");

    double min_k = samples.front().words, max_k = min_k;
    double sum_k = 0, sum_t = 0;
    for (const TransferSample &s : samples) {
        QUAKE_EXPECT(s.words > 0 && s.seconds >= 0,
                     "samples need positive sizes, nonnegative times");
        min_k = std::min(min_k, s.words);
        max_k = std::max(max_k, s.words);
        sum_k += s.words;
        sum_t += s.seconds;
    }
    QUAKE_EXPECT(max_k > min_k, "need at least two distinct block sizes");

    const double n = static_cast<double>(samples.size());
    const double mean_k = sum_k / n;
    const double mean_t = sum_t / n;
    double sxx = 0, sxy = 0, stt = 0;
    for (const TransferSample &s : samples) {
        sxx += (s.words - mean_k) * (s.words - mean_k);
        sxy += (s.words - mean_k) * (s.seconds - mean_t);
        stt += (s.seconds - mean_t) * (s.seconds - mean_t);
    }

    BlockFit fit;
    fit.tw = sxy / sxx;
    fit.tl = mean_t - fit.tw * mean_k;
    if (fit.tl < 0)
        fit.tl = 0; // latency below timer resolution
    QUAKE_EXPECT(fit.tw > 0,
                 "fitted per-word time is not positive; the block "
                 "model does not describe these samples");

    if (stt > 0) {
        double ss_res = 0;
        for (const TransferSample &s : samples) {
            const double pred = fit.tl + fit.tw * s.words;
            ss_res += (s.seconds - pred) * (s.seconds - pred);
        }
        fit.rSquared = std::max(0.0, 1.0 - ss_res / stt);
    } else {
        fit.rSquared = 0.0;
    }
    return fit;
}

BlockFit
estimateMachine(const TransferFn &transfer,
                const std::vector<std::int64_t> &sizes, int repetitions)
{
    QUAKE_EXPECT(repetitions >= 1, "need at least one repetition");
    QUAKE_EXPECT(sizes.size() >= 2, "need at least two block sizes");

    std::vector<TransferSample> samples;
    samples.reserve(sizes.size());
    for (std::int64_t k : sizes) {
        QUAKE_EXPECT(k > 0, "block sizes must be positive");
        double total = 0;
        for (int r = 0; r < repetitions; ++r)
            total += transfer(k);
        samples.push_back(TransferSample{static_cast<double>(k),
                                         total / repetitions});
    }
    return fitBlockModel(samples);
}

std::vector<std::int64_t>
standardBlockLadder()
{
    std::vector<std::int64_t> sizes;
    for (std::int64_t k = 1; k <= 65'536; k *= 2)
        sizes.push_back(k);
    return sizes;
}

} // namespace quake::core
