/**
 * @file
 * Requirement sweeps (paper §4): given an application shape and a grid of
 * machine assumptions (sustained MFLOPS) and target efficiencies, produce
 * the data behind Figures 8-11 — required sustained bandwidth, bisection
 * bandwidth, latency/burst-bandwidth tradeoff curves, and half-bandwidth
 * design points.
 */

#ifndef QUAKE98_CORE_REQUIREMENTS_H_
#define QUAKE98_CORE_REQUIREMENTS_H_

#include <vector>

#include "core/perf_model.h"

namespace quake::core
{

/** A machine-assumption/efficiency operating point. */
struct OperatingPoint
{
    double mflops = 0.0;     ///< sustained local SMVP rate T_f^-1
    double efficiency = 0.0; ///< target E
};

/** One requirement row (Figure 9 and Figure 8 are built from these). */
struct RequirementRow
{
    OperatingPoint point;
    double tc = 0.0;                     ///< required T_c (seconds/word)
    double sustainedBandwidthBytes = 0.0; ///< T_c^-1 in bytes/sec
    double bisectionBandwidthBytes = 0.0; ///< §4.2, zero if volume unset
};

/** Requirements for one shape over a grid of operating points. */
std::vector<RequirementRow> requirementSweep(
    const SmvpShape &shape, const std::vector<OperatingPoint> &grid,
    std::int64_t bisection_words = 0);

/**
 * An operating-point grid pinned to a host-measured per-flop time
 * (the SMVP autotuner's winner) instead of a datasheet MFLOPS
 * assumption, one point per target efficiency.  This is how the
 * Figure 9/10 requirement targets are derived from the kernel that
 * actually runs, per §3.1's insistence that T_f is measured.
 *
 * @param tf_seconds   Measured seconds per flop (> 0).
 * @param efficiencies Target efficiencies, each in (0, 1).
 */
std::vector<OperatingPoint> gridFromMeasuredTf(
    double tf_seconds, const std::vector<double> &efficiencies);

/**
 * requirementSweep over gridFromMeasuredTf: re-derive the Equation (1)
 * requirement rows directly from a per-flop time — the path the MESI
 * co-simulator's predicted effective T_f feeds (arch/cosim.h), turning
 * a modeled memory hierarchy into §4 network requirements.
 */
std::vector<RequirementRow> requirementSweepFromTf(
    const SmvpShape &shape, double tf_seconds,
    const std::vector<double> &efficiencies,
    std::int64_t bisection_words = 0);

/** One point on a Figure 10 curve. */
struct TradeoffPoint
{
    double burstBandwidthBytes = 0.0; ///< x-axis: T_w^-1
    double latency = 0.0;             ///< y-axis: admissible T_l (seconds)
};

/**
 * The Figure 10 latency/burst-bandwidth tradeoff: admissible block
 * latency as a function of burst bandwidth, holding T_c at the value
 * required for the operating point.  Points with no feasible latency
 * (burst alone already exceeds the budget) are omitted, which is why the
 * curve has a vertical asymptote at C_max words/T_comm.
 *
 * @param shape        Application shape (use withFixedBlockSize() first
 *                     for the cache-line variant).
 * @param tc_target    Required amortized word time from Equation (1).
 * @param bw_min_bytes Smallest burst bandwidth on the sweep (bytes/s).
 * @param bw_max_bytes Largest burst bandwidth on the sweep (bytes/s).
 * @param num_points   Number of log-spaced samples.
 */
std::vector<TradeoffPoint> tradeoffCurve(const SmvpShape &shape,
                                         double tc_target,
                                         double bw_min_bytes,
                                         double bw_max_bytes,
                                         int num_points);

/** The §4 headline figures for one shape at one operating point. */
struct Headline
{
    double sustainedBandwidthBytes = 0.0; ///< Equation (1) requirement
    HalfBandwidthPoint halfPoint;         ///< §4.4 design point
    double infiniteBurstLatency = 0.0;    ///< T_l bound when T_w -> 0
};

/** Compute the headline numbers for (shape, mflops, efficiency). */
Headline computeHeadline(const SmvpShape &shape, double mflops,
                         double efficiency);

/** num log-spaced samples in [lo, hi]; lo and hi must be positive. */
std::vector<double> logspace(double lo, double hi, int num);

} // namespace quake::core

#endif // QUAKE98_CORE_REQUIREMENTS_H_
