#include "core/app_model.h"

#include "common/error.h"

namespace quake::core
{

AppPrediction
predictRun(const SmvpShape &shape, double nodes_per_pe,
           const AppMachine &machine, const AppModelParams &params)
{
    QUAKE_EXPECT(shape.flops > 0, "shape needs positive flops");
    QUAKE_EXPECT(nodes_per_pe > 0, "nodes per PE must be positive");
    QUAKE_EXPECT(machine.tf > 0, "tf must be positive");
    QUAKE_EXPECT(machine.tl >= 0 && machine.tw >= 0,
                 "tl and tw must be nonnegative");
    QUAKE_EXPECT(params.steps > 0, "steps must be positive");
    QUAKE_EXPECT(params.vectorFlopsPerNode >= 0 &&
                     params.vectorTfRatio > 0,
                 "vector-update parameters out of range");

    const double t_smvp_comp = shape.flops * machine.tf;
    const double t_comm = shape.blocksMax * machine.tl +
                          shape.wordsMax * machine.tw;
    const double t_vector = nodes_per_pe * params.vectorFlopsPerNode *
                            machine.tf * params.vectorTfRatio;

    AppPrediction out;
    out.stepSeconds = t_smvp_comp + t_comm + t_vector;
    out.totalSeconds = out.stepSeconds * static_cast<double>(params.steps);
    out.smvpFraction = (t_smvp_comp + t_comm) / out.stepSeconds;
    out.commFraction = t_comm / out.stepSeconds;
    return out;
}

double
predictedSpeedup(const SmvpShape &shape_p, int p, double total_nodes,
                 double nodes_per_pe, const AppMachine &machine,
                 const AppModelParams &params)
{
    QUAKE_EXPECT(p >= 1, "p must be >= 1");
    QUAKE_EXPECT(total_nodes > 0, "total nodes must be positive");

    // The 1-PE baseline: all the flops, none of the communication.
    SmvpShape sequential = shape_p;
    sequential.flops = shape_p.flops * p;
    sequential.wordsMax = 1; // harmless nonzero; comm charged at zero
    sequential.blocksMax = 0;
    AppMachine no_comm = machine;
    no_comm.tl = 0;
    no_comm.tw = 0;

    const AppPrediction base =
        predictRun(sequential, total_nodes, no_comm, params);
    const AppPrediction parallel =
        predictRun(shape_p, nodes_per_pe, machine, params);
    return base.totalSeconds / parallel.totalSeconds;
}

} // namespace quake::core
