/**
 * @file
 * One-call analysis report: everything Section 4 computes, generated
 * for an arbitrary SMVP characterization and machine assumption grid.
 * This is the library's "apply the paper to *your* application"
 * entry point (examples/analyze.cpp drives it).
 */

#ifndef QUAKE98_CORE_REPORT_H_
#define QUAKE98_CORE_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/requirements.h"

namespace quake::core
{

/** Inputs of one analysis. */
struct AnalysisRequest
{
    /** Sustained MFLOPS assumptions (the paper uses 100 and 200). */
    std::vector<double> mflopsGrid = {100.0, 200.0};

    /** Target efficiencies (the paper uses 0.5, 0.8, 0.9). */
    std::vector<double> efficiencyGrid = {0.5, 0.8, 0.9};

    /** Fixed block size (words) for the cache-line variant (§4.4). */
    int fixedBlockWords = 4;
};

/** One operating point's full requirement set. */
struct AnalysisEntry
{
    double mflops = 0.0;
    double efficiency = 0.0;
    double sustainedBandwidthBytes = 0.0;
    double bisectionBandwidthBytes = 0.0;
    HalfBandwidthPoint maximalBlocks;
    HalfBandwidthPoint fixedBlocks;
    double infiniteBurstLatency = 0.0; ///< maximal-block T_l ceiling
};

/** The complete analysis. */
struct AnalysisReport
{
    std::string name;
    CharacterizationSummary summary;
    std::vector<AnalysisEntry> entries; ///< grid order: mflops-major
};

/** Run the §4 analysis over the request grid. */
AnalysisReport analyze(const SmvpCharacterization &ch,
                       const AnalysisRequest &request = {});

/** Render the report as aligned text (the examples/benches format). */
void printReport(const AnalysisReport &report, std::ostream &os);

} // namespace quake::core

#endif // QUAKE98_CORE_REPORT_H_
