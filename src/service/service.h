/**
 * @file
 * The multi-tenant scenario service (DESIGN.md §14): a long-lived
 * server core that packs many concurrent earthquake scenarios onto one
 * shared machine.
 *
 * Pipeline per request:
 *
 *   submit() -> bounded MPMC queue -> executor lane:
 *     queue-wait shedding -> content-addressed prefix (mesh, partition,
 *     assembled stiffness; single-flight LRU cache) -> Eq. (1)
 *     admission check against the SLO deadline -> packing (small
 *     scenarios share the thread budget side by side, large ones span
 *     it exclusively) -> engine build over the cached prefix ->
 *     time stepping under a runtime deadline observer -> result
 *     (fingerprints + timings), optionally streamed to disk as an
 *     atomic JSON record.
 *
 * Correctness contract: a scenario executed through the service is
 * bitwise identical to the same request run standalone (verify
 * property `service_scenario_bitwise`).  This follows from two proven
 * invariants — cached prefixes are pure const input data keyed by
 * content, and the engine trajectory is bitwise invariant across
 * thread counts/topologies — so neither caching nor packing can change
 * a single bit of any tenant's answer.
 */

#ifndef QUAKE98_SERVICE_SERVICE_H_
#define QUAKE98_SERVICE_SERVICE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/prefix_cache.h"
#include "service/scenario.h"
#include "telemetry/collector.h"

namespace quake::service
{

/** Construction-time configuration of a ScenarioService. */
struct ServiceOptions
{
    /** Executor lanes pulling from the queue (>= 1). */
    int executors = 2;

    /**
     * Total worker-thread budget shared by all lanes; 0 = hardware
     * concurrency.  A small scenario runs with totalThreads/executors
     * threads; a spanning one takes the whole budget exclusively.
     */
    int totalThreads = 0;

    /**
     * Scenarios with numPes >= spanThreshold span the whole thread
     * budget (exclusive); smaller ones pack side by side.
     */
    int spanThreshold = 8;

    /** Prefix-cache byte budget; 0 disables caching (cold mode). */
    std::size_t cacheBytes = std::size_t{256} << 20;

    /** Admission queue capacity (>= 1). */
    std::size_t queueCapacity = 64;

    /**
     * Eq. (1) machine model for admission control: sustained MFLOPS
     * and amortized seconds per communication word.  modelMflops == 0
     * disables model-based admission (requests are admitted and only
     * the runtime deadline observer enforces the SLO).
     */
    double modelMflops = 0.0;
    double modelTcSecondsPerWord = 0.0;

    /** Slack multiplier on the model prediction (supervisor-style). */
    double admitSlack = 3.0;

    /** Shed requests the model predicts will miss their deadline. */
    bool shedOnPredictedMiss = true;

    /**
     * Shed requests that waited in the queue longer than this many
     * seconds (their deadline budget is already spent); 0 disables.
     */
    double maxQueueWaitSeconds = 0.0;

    /**
     * Directory for streamed per-scenario result records (atomic
     * write: temp + fsync + rename); empty disables streaming.
     */
    std::string resultDir;

    /**
     * Optional service-level telemetry (caller-owned).  Slots
     * [0, executors) are claimed at construction, one per lane —
     * single-writer preserved.  Engines never see the collector.
     */
    telemetry::Collector *collector = nullptr;

    /** Reject invalid options (FatalError naming the field). */
    void validate() const;
};

/** Per-tenant accounting split (BENCH-schema telemetry export). */
struct TenantStats
{
    std::uint64_t submitted = 0;      ///< requests dequeued for them
    std::uint64_t completed = 0;      ///< ran to completion
    std::uint64_t shed = 0;           ///< refused before execution
    std::uint64_t deadlineMisses = 0; ///< aborted at the SLO deadline
    double stepSeconds = 0.0;         ///< wall time in their engines
    double prefixSeconds = 0.0;       ///< wall time building prefixes
    std::uint64_t cacheHits = 0;      ///< prefix stages from cache
    std::uint64_t cacheMisses = 0;    ///< prefix stages computed
};

/**
 * The service.  Thread-safe: any number of client threads may submit
 * concurrently; `executors` internal lanes execute.  Destruction (or
 * shutdown()) closes the queue, drains every accepted request, and
 * joins the lanes — a submitted future always becomes ready.
 */
class ScenarioService
{
  public:
    explicit ScenarioService(ServiceOptions options);
    ~ScenarioService();

    ScenarioService(const ScenarioService &) = delete;
    ScenarioService &operator=(const ScenarioService &) = delete;

    /**
     * Validate and enqueue `request`; blocks while the queue is full.
     * The future resolves to the scenario's result (admitted or shed);
     * it only throws if the request is submitted after shutdown.
     */
    std::future<ScenarioResult> submit(ScenarioRequest request);

    /**
     * Non-blocking submit: false when the queue is full or closed
     * (the overload-shedding edge — callers turn this into 429s).
     */
    bool trySubmit(ScenarioRequest request,
                   std::future<ScenarioResult> *out);

    /** Close the queue, run every accepted request, join the lanes. */
    void shutdown();

    /** Prefix-cache counters. */
    PrefixCache::Stats cacheStats() const;

    /** Requests refused by trySubmit because the queue was full. */
    std::uint64_t queueRejections() const;

    /** Accounting for one tenant ({} when unknown). */
    TenantStats tenantStats(const std::string &tenant) const;

    /** All tenants, sorted by name. */
    std::vector<std::pair<std::string, TenantStats>> allTenantStats()
        const;

    /** The resolved total thread budget. */
    int totalThreads() const;

    /**
     * The oracle for the bitwise contract: run `request` exactly as a
     * standalone single run would (no cache, no queue, no packing —
     * engine built from scratch, default thread budget), producing
     * the same result fields, fingerprints included.
     */
    static ScenarioResult runStandalone(const ScenarioRequest &request);

    /**
     * Write the per-tenant splits as a BENCH-schema JSON (one record
     * per tenant, tenant name as the kernel field).
     */
    void writeTenantMetricsJson(const std::string &bench_name,
                                const std::string &path) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace quake::service

#endif // QUAKE98_SERVICE_SERVICE_H_
