/**
 * @file
 * A bounded multi-producer/multi-consumer queue — the admission edge of
 * the scenario service (DESIGN.md §14).  Boundedness is the point:
 * a full queue pushes back on producers (blocking push, or a failing
 * trySubmit the server can turn into load shedding) instead of letting
 * requests pile up unboundedly in memory.
 *
 * close() drains gracefully: producers are refused immediately, while
 * consumers keep popping until the queue is empty and only then see
 * `false` — so every accepted request is either executed or explicitly
 * failed, never silently dropped.
 */

#ifndef QUAKE98_SERVICE_MPMC_QUEUE_H_
#define QUAKE98_SERVICE_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/error.h"

namespace quake::service
{

/**
 * Bounded FIFO over a mutex and two condition variables.  All methods
 * are thread-safe; none spin.  T must be movable.
 */
template <typename T>
class BoundedMpmcQueue
{
  public:
    explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity)
    {
        QUAKE_EXPECT(capacity >= 1,
                     "queue capacity must be >= 1, got " << capacity);
    }

    BoundedMpmcQueue(const BoundedMpmcQueue &) = delete;
    BoundedMpmcQueue &operator=(const BoundedMpmcQueue &) = delete;

    /**
     * Block until there is room, then enqueue.  Returns false (and
     * drops `item`) when the queue is or becomes closed.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [&] {
            return closed_ || q_.size() < capacity_;
        });
        if (closed_)
            return false;
        q_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Enqueue only if there is room right now; never blocks. */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= capacity_)
                return false;
            q_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available and move it into `out`.  Returns
     * false only when the queue is closed AND drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [&] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return false; // closed and drained
        out = std::move(q_.front());
        q_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /** Refuse new items; wake all blocked producers and consumers. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> q_;
    const std::size_t capacity_;
    bool closed_ = false;
};

} // namespace quake::service

#endif // QUAKE98_SERVICE_MPMC_QUEUE_H_
