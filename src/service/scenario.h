/**
 * @file
 * The scenario request/result types of the multi-tenant service
 * (DESIGN.md §14).  A ScenarioRequest is a complete, self-contained
 * description of one earthquake simulation — mesh spec, soil model,
 * source, physics, fault assumptions, execution topology hint, and an
 * SLO deadline — plus the content-addressed stage keys that let the
 * service share the expensive prefix (generated mesh, partition,
 * assembled stiffness) between every request that agrees on it.
 *
 * Key discipline (see common::Fnv1aHasher): every semantically distinct
 * field is hashed individually with stage tags for domain separation;
 * later stages chain from earlier digests, so meshKey() is a prefix of
 * partitionKey() is a prefix of assemblyKey().  Execution-only knobs
 * (threads, topology hint, fused/unfused, deadline, faults) are
 * deliberately EXCLUDED from every key — the engine is proven bitwise
 * invariant across them — while the kernel backend IS included in the
 * scenario key because backends differ at ULP level.
 */

#ifndef QUAKE98_SERVICE_SCENARIO_H_
#define QUAKE98_SERVICE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "quake/simulation.h"

namespace quake::service
{

/** Which ground model the scenario simulates. */
enum class SoilKind
{
    kLayeredBasin,    ///< the default San Fernando-style basin
    kMultiBasinThree, ///< MultiBasinModel::threeBasins()
    kUniform,         ///< uniform half-space (uniformVs/uniformRho)
};

/** Stable display name ("layered-basin", ...). */
const char *soilKindName(SoilKind kind);

/** One tenant's request for one earthquake scenario. */
struct ScenarioRequest
{
    /** Owning tenant; non-empty (per-tenant accounting key). */
    std::string tenant;

    /** Free-form request tag (result-record naming); may be empty. */
    std::string label;

    // --- problem identity (enters the cache keys) ---
    mesh::MeshSpec meshSpec =
        mesh::MeshSpec::forClass(mesh::SfClass::kSf20, 1.5);
    SoilKind soil = SoilKind::kLayeredBasin;
    double uniformVs = 1.0;  ///< km/s, kUniform only
    double uniformRho = 2.6; ///< g/cm^3, kUniform only

    double durationSeconds = 10.0;
    std::int64_t maxSteps = 0; ///< 0 = no cap
    double cflSafety = 0.5;
    double poisson = 0.25;
    double dampingA0 = 0.0;
    mesh::Vec3 hypocenter{25.0, 25.0, 8.0};
    mesh::Vec3 sourceDirection{0.0, 0.0, 1.0};
    sim::RickerWavelet wavelet;
    int sampleInterval = 25;
    int numPes = 1;
    sim::SimulationConfig::KernelBackend kernelBackend =
        sim::SimulationConfig::KernelBackend::kBcsr3;

    // --- execution knobs (bitwise-invariant; excluded from keys) ---
    /** Run the fused step pipeline (scheduling only). */
    bool fusedStep = true;

    /**
     * Topology hint: "" lets the service pack the scenario onto its
     * shared pool; otherwise a parallel::Topology spec ("flat",
     * "auto", "SxT") the engine should run under.
     */
    std::string topologyHint;

    /**
     * Assumed network fault environment (capacity_planner-style): the
     * admission model inflates the predicted exchange cost by a
     * protocol-recovery factor derived from dropRate.  Does not change
     * the trajectory (faults are modeled, not injected, here).
     */
    bool faults = false;
    double faultDropRate = 1e-3; ///< in [0, 1]
    std::uint64_t faultSeed = 0x5eed;

    /**
     * SLO deadline for the whole scenario, milliseconds of wall time;
     * 0 = none.  Admission sheds requests the Eq. (1) model predicts
     * cannot finish in time; at runtime, a step observer aborts the
     * run the moment the deadline actually passes.
     */
    double deadlineMs = 0.0;

    /**
     * Reject invalid requests (FatalError naming the field): non-empty
     * tenant, a valid meshSpec and physics config (delegated to their
     * own validate()), positive uniform material when kUniform,
     * faultDropRate in [0, 1], deadlineMs >= 0.
     */
    void validate() const;

    /**
     * The equivalent single-run engine config (no collector, no
     * recorder; threads/topology left for the service to fill in).
     */
    sim::SimulationConfig toSimConfig() const;

    /** Instantiate the requested soil model. */
    std::unique_ptr<mesh::SoilModel> makeSoilModel() const;

    // --- content-addressed stage keys (DESIGN.md §14) ---

    /** Mesh stage: soil model + full mesh spec. */
    std::uint64_t meshKey() const;

    /** Partition stage: meshKey + numPes. */
    std::uint64_t partitionKey() const;

    /** Assembly stage (stiffness/problem): partitionKey + poisson. */
    std::uint64_t assemblyKey() const;

    /**
     * Full scenario identity: assemblyKey + physics + source + backend
     * + tenant/label.  Names result records; two requests with equal
     * scenario keys produce bitwise-identical trajectories.
     */
    std::uint64_t scenarioKey() const;
};

/** Everything the service reports back for one request. */
struct ScenarioResult
{
    std::string tenant;
    std::string label;
    std::uint64_t scenarioKey = 0;

    /** False = shed before execution (error says why). */
    bool admitted = false;

    /** True = ran to plannedSteps; false + deadlineMiss = aborted. */
    bool completed = false;

    /** The runtime SLO observer aborted the run mid-flight. */
    bool deadlineMiss = false;

    /** Why the request was shed or failed; empty on success. */
    std::string error;

    sim::SimulationReport report;

    /** Engine config fingerprint (trajectory identity). */
    std::uint64_t engineFingerprint = 0;

    /**
     * FNV-1a fingerprint of the final integrator state + report — the
     * value the bitwise service-vs-standalone contract compares
     * (resilience::stateFingerprint over a final-state checkpoint).
     */
    std::uint64_t stateFingerprint = 0;

    /** Which prefix stages were served from cache. */
    bool meshCacheHit = false;
    bool partitionCacheHit = false;
    bool assemblyCacheHit = false;

    /** Stage totals: hits out of attempts (2 sequential, 3 dist). */
    int cacheStagesHit = 0;
    int cacheStagesTotal = 0;

    /** Wall-clock breakdown, seconds. */
    double queueSeconds = 0.0;  ///< admission queue wait
    double prefixSeconds = 0.0; ///< mesh/partition/assembly (or cache)
    double stepSeconds = 0.0;   ///< engine build + time stepping

    /** Eq. (1) model prediction the admission decision used (s). */
    double predictedSeconds = 0.0;

    /** Worker threads the engine ran with. */
    int threadsUsed = 0;

    /** Executor lane that ran it; -1 = never executed. */
    int lane = -1;

    /** True when the scenario spanned the whole pool (large). */
    bool spanned = false;

    /** Streamed result record path; empty when streaming is off. */
    std::string resultPath;
};

} // namespace quake::service

#endif // QUAKE98_SERVICE_SCENARIO_H_
