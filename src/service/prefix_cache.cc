#include "service/prefix_cache.h"

#include <condition_variable>
#include <exception>
#include <list>
#include <mutex>
#include <unordered_map>

namespace quake::service
{

namespace
{

/** One resident entry, in LRU order (list front = most recent). */
struct Entry
{
    std::uint64_t key = 0;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
};

/** One in-flight computation other callers can join. */
struct Inflight
{
    bool done = false;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::exception_ptr error;
};

} // namespace

struct PrefixCache::Impl
{
    mutable std::mutex mu;
    std::condition_variable cv; ///< signals in-flight completions
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>>
        inflight;
    Stats stats;

    /** Evict from the LRU tail until the payload fits the budget. */
    void
    evictToFit(std::size_t budget)
    {
        while (stats.bytes > budget && !lru.empty()) {
            const Entry &victim = lru.back();
            stats.bytes -= victim.bytes;
            stats.entries -= 1;
            stats.evictions += 1;
            index.erase(victim.key);
            lru.pop_back();
        }
    }
};

PrefixCache::PrefixCache(std::size_t byte_budget)
    : budget_(byte_budget), impl_(std::make_unique<Impl>())
{}

PrefixCache::~PrefixCache() = default;

std::shared_ptr<const void>
PrefixCache::getOrComputeErased(std::uint64_t key, const ComputeFn &fn,
                                bool *hit)
{
    if (budget_ == 0) {
        // Caching disabled: every call computes, nothing is shared —
        // the cold-cache arm of the service benchmark.  Misses are
        // still counted so cold-mode accounting stays honest.
        {
            std::lock_guard<std::mutex> lock(impl_->mu);
            impl_->stats.misses += 1;
        }
        if (hit != nullptr)
            *hit = false;
        return fn().first;
    }

    std::shared_ptr<Inflight> flight;
    {
        std::unique_lock<std::mutex> lock(impl_->mu);
        for (;;) {
            const auto it = impl_->index.find(key);
            if (it != impl_->index.end()) {
                // Resident: refresh LRU position and share the value.
                impl_->lru.splice(impl_->lru.begin(), impl_->lru,
                                  it->second);
                impl_->stats.hits += 1;
                if (hit != nullptr)
                    *hit = true;
                return it->second->value;
            }
            const auto in = impl_->inflight.find(key);
            if (in == impl_->inflight.end())
                break; // this caller leads the computation
            // Join the flight: wait for the leader, then share its
            // result (or rethrow its failure).
            const std::shared_ptr<Inflight> joined = in->second;
            impl_->cv.wait(lock, [&] { return joined->done; });
            if (joined->error)
                std::rethrow_exception(joined->error);
            impl_->stats.hits += 1;
            if (hit != nullptr)
                *hit = true;
            return joined->value;
            // (A completed flight may have been evicted already; the
            // joined shared_ptr keeps the value alive regardless.)
        }
        flight = std::make_shared<Inflight>();
        impl_->inflight.emplace(key, flight);
        impl_->stats.misses += 1;
    }

    // Compute outside the lock: mesh generation or assembly can take
    // seconds, and other keys must keep hitting meanwhile.
    try {
        auto [value, bytes] = fn();
        flight->value = std::move(value);
        flight->bytes = bytes;
    } catch (...) {
        flight->error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        flight->done = true;
        impl_->inflight.erase(key);
        if (!flight->error && flight->bytes <= budget_) {
            impl_->lru.push_front(
                Entry{key, flight->value, flight->bytes});
            impl_->index[key] = impl_->lru.begin();
            impl_->stats.bytes += flight->bytes;
            impl_->stats.entries += 1;
            impl_->evictToFit(budget_);
        }
        // An entry larger than the whole budget is handed to the
        // caller but never retained (it would evict everything else
        // and then itself).
    }
    impl_->cv.notify_all();

    if (flight->error)
        std::rethrow_exception(flight->error);
    if (hit != nullptr)
        *hit = false;
    return flight->value;
}

PrefixCache::Stats
PrefixCache::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->stats;
}

} // namespace quake::service
