#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <iomanip>
#include <shared_mutex>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/bench_json.h"
#include "common/error.h"
#include "parallel/characterize.h"
#include "parallel/worker_pool.h"
#include "partition/geometric_bisection.h"
#include "resilience/checkpoint.h"
#include "resilience/supervisor.h"
#include "service/mpmc_queue.h"
#include "sparse/assembly.h"

namespace quake::service
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point t0)
{
    return std::chrono::duration<double>(SteadyClock::now() - t0)
        .count();
}

/** Thrown by the step observer the moment the SLO deadline passes. */
struct DeadlineMiss
{
    double elapsedSeconds = 0.0;
};

/** One queued request plus its completion channel. */
struct Job
{
    ScenarioRequest request;
    std::promise<ScenarioResult> promise;
    SteadyClock::time_point enqueued{};
};

std::string
hex64(std::uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

// --- payload byte estimates for the cache budget (heuristics: they
// need to track the real footprint, not equal it) ---

std::size_t
meshBytes(const mesh::GeneratedMesh &g)
{
    return g.mesh.nodes().size() * sizeof(mesh::Vec3) +
           g.mesh.tets().size() * sizeof(mesh::Tet);
}

std::size_t
matrixBytes(const sparse::Bcsr3Matrix &k)
{
    return k.xadj().size() * sizeof(std::int64_t) +
           k.blockCols().size() * sizeof(std::int32_t) +
           static_cast<std::size_t>(k.numBlocks()) * 9 * sizeof(double);
}

std::size_t
problemBytes(const parallel::DistributedProblem &p)
{
    std::size_t bytes =
        p.partition.elementPart.size() * sizeof(partition::PartId);
    for (const parallel::Subdomain &sub : p.subdomains) {
        bytes += matrixBytes(sub.stiffness);
        bytes += sub.globalNodes.size() * sizeof(mesh::NodeId);
        bytes += sub.elements.size() * sizeof(mesh::TetId);
        bytes += sub.localMesh.nodes().size() * sizeof(mesh::Vec3) +
                 sub.localMesh.tets().size() * sizeof(mesh::Tet);
        bytes += (sub.boundaryRows.size() + sub.interiorRows.size()) *
                 sizeof(std::int64_t);
    }
    return bytes;
}

/**
 * Eq. (1) application shape for admission.  Distributed problems go
 * through the real characterization; the sequential engine has no
 * exchange, so its shape is just the flop count of the global matrix
 * (2 flops per stored scalar, 9 scalars per block).
 */
core::SmvpShape
admissionShape(const sim::EnginePrefix &prefix, const std::string &name)
{
    if (prefix.problem != nullptr)
        return core::SmvpShape::fromSummary(core::summarize(
            parallel::characterize(*prefix.problem, name)));
    core::SmvpShape shape;
    shape.flops =
        18.0 * static_cast<double>(prefix.globalK->numBlocks());
    return shape;
}

/**
 * Crude protocol-recovery inflation for an assumed lossy network:
 * every dropped message costs roughly one timeout + retransmission,
 * so the exchange term grows super-linearly in the drop rate.  The
 * admission model only needs monotone and bounded.
 */
double
faultInflation(const ScenarioRequest &req)
{
    if (!req.faults)
        return 1.0;
    const double r = std::min(req.faultDropRate, 0.5);
    return 1.0 / (1.0 - r) + 4.0 * r;
}

/** Final-state fingerprint, exactly as the resilience supervisor. */
std::uint64_t
finalStateFingerprint(const sim::SimulationEngine &engine,
                      const sim::SimulationReport &report)
{
    resilience::Checkpoint fin;
    fin.fingerprint = engine.fingerprint;
    fin.dt = engine.dt;
    fin.plannedSteps = engine.plannedSteps;
    engine.stepper->saveState(fin.state);
    fin.reportPeak = report.peakDisplacement;
    fin.samples = report.samples;
    return resilience::stateFingerprint(fin);
}

} // namespace

void
ServiceOptions::validate() const
{
    QUAKE_EXPECT(executors >= 1,
                 "executors must be >= 1, got " << executors);
    QUAKE_EXPECT(totalThreads >= 0,
                 "totalThreads must be >= 1, or 0 for hardware "
                 "concurrency; got "
                     << totalThreads);
    QUAKE_EXPECT(spanThreshold >= 1,
                 "spanThreshold must be >= 1, got " << spanThreshold);
    QUAKE_EXPECT(queueCapacity >= 1,
                 "queueCapacity must be >= 1, got " << queueCapacity);
    QUAKE_EXPECT(modelMflops >= 0 && std::isfinite(modelMflops),
                 "modelMflops must be >= 0 and finite, got "
                     << modelMflops);
    QUAKE_EXPECT(modelTcSecondsPerWord >= 0 &&
                     std::isfinite(modelTcSecondsPerWord),
                 "modelTcSecondsPerWord must be >= 0 and finite, got "
                     << modelTcSecondsPerWord);
    QUAKE_EXPECT(admitSlack > 0 && std::isfinite(admitSlack),
                 "admitSlack must be positive and finite, got "
                     << admitSlack);
    QUAKE_EXPECT(maxQueueWaitSeconds >= 0,
                 "maxQueueWaitSeconds must be >= 0, got "
                     << maxQueueWaitSeconds);
}

struct ScenarioService::Impl
{
    explicit Impl(ServiceOptions o)
        : opt(std::move(o)), cache(opt.cacheBytes),
          queue(opt.queueCapacity)
    {}

    ServiceOptions opt;
    int totalThreads = 0;
    PrefixCache cache;
    BoundedMpmcQueue<Job> queue;

    /**
     * The packing lock: small scenarios take it shared and run side
     * by side on their lane's slice of the thread budget; a spanning
     * scenario takes it exclusive and gets the whole budget with no
     * neighbours competing.
     */
    std::shared_mutex packMu;

    mutable std::mutex tenantsMu;
    std::map<std::string, TenantStats> tenants;

    std::atomic<std::uint64_t> rejections{0};

    std::vector<std::thread> lanes;
    std::mutex shutdownMu;
    bool shutdownDone = false;

    void laneLoop(int lane);
    ScenarioResult execute(const ScenarioRequest &request,
                           SteadyClock::time_point enqueued, int lane);
    void account(const ScenarioResult &result, int lane);
    void streamResult(ScenarioResult &result, int lane) const;
    void collectorAdd(int lane, telemetry::Counter c,
                      std::uint64_t n) const;
};

void
ScenarioService::Impl::collectorAdd(int lane, telemetry::Counter c,
                                    std::uint64_t n) const
{
    if (opt.collector != nullptr && opt.collector->enabled() && n > 0)
        opt.collector->add(lane, c, n);
}

void
ScenarioService::Impl::laneLoop(int lane)
{
    Job job;
    while (queue.pop(job)) {
        ScenarioResult result;
        try {
            result = execute(job.request, job.enqueued, lane);
        } catch (const std::exception &e) {
            // Defensive: execute() converts expected failures into
            // shed/errored results itself; anything escaping is a
            // bug surfaced to the caller, not a wedged future.
            result.tenant = job.request.tenant;
            result.label = job.request.label;
            result.error = e.what();
        }
        account(result, lane);
        try {
            streamResult(result, lane);
        } catch (const std::exception &e) {
            // A failed result write must not wedge the lane; the
            // caller still gets the in-memory result plus the error.
            result.resultPath.clear();
            result.error += result.error.empty() ? "" : "; ";
            result.error += e.what();
        }
        job.promise.set_value(std::move(result));
    }
}

ScenarioResult
ScenarioService::Impl::execute(const ScenarioRequest &request,
                               SteadyClock::time_point enqueued,
                               int lane)
{
    ScenarioResult result;
    result.tenant = request.tenant;
    result.label = request.label;
    result.scenarioKey = request.scenarioKey();
    result.lane = lane;
    result.queueSeconds = secondsSince(enqueued);

    // Queue-wait shedding: a request that aged out in the queue has
    // already spent its budget — refuse it before any prefix work.
    const double deadline_s = request.deadlineMs / 1000.0;
    if (opt.maxQueueWaitSeconds > 0 &&
        result.queueSeconds > opt.maxQueueWaitSeconds) {
        std::ostringstream os;
        os << "shed: queued " << result.queueSeconds
           << " s, max queue wait " << opt.maxQueueWaitSeconds << " s";
        result.error = os.str();
        return result;
    }
    if (deadline_s > 0 && result.queueSeconds > deadline_s) {
        std::ostringstream os;
        os << "shed: queued " << result.queueSeconds
           << " s, past the " << request.deadlineMs << " ms deadline";
        result.error = os.str();
        return result;
    }

    // --- content-addressed prefix (DESIGN.md §14) ---
    const SteadyClock::time_point prefix_t0 = SteadyClock::now();
    const std::unique_ptr<mesh::SoilModel> model =
        request.makeSoilModel();

    const std::shared_ptr<const mesh::GeneratedMesh> generated =
        cache.getOrCompute<mesh::GeneratedMesh>(
            request.meshKey(),
            [&] {
                auto g = std::make_shared<const mesh::GeneratedMesh>(
                    mesh::generateMesh(*model, request.meshSpec));
                return std::make_pair(g, meshBytes(*g));
            },
            &result.meshCacheHit);

    sim::EnginePrefix prefix;
    if (request.numPes > 1) {
        const std::shared_ptr<const partition::Partition> part =
            cache.getOrCompute<partition::Partition>(
                request.partitionKey(),
                [&] {
                    const partition::GeometricBisection partitioner;
                    auto p =
                        std::make_shared<const partition::Partition>(
                            partitioner.partition(generated->mesh,
                                                  request.numPes));
                    return std::make_pair(
                        p, p->elementPart.size() *
                               sizeof(partition::PartId));
                },
                &result.partitionCacheHit);
        prefix.problem =
            cache.getOrCompute<parallel::DistributedProblem>(
                request.assemblyKey(),
                [&] {
                    auto p = std::make_shared<
                        const parallel::DistributedProblem>(
                        parallel::distribute(generated->mesh, *model,
                                             *part, request.poisson));
                    return std::make_pair(p, problemBytes(*p));
                },
                &result.assemblyCacheHit);
    } else {
        // Sequential scenarios have no partition stage; the assembly
        // stage caches the global stiffness directly.
        result.partitionCacheHit = false;
        prefix.globalK = cache.getOrCompute<sparse::Bcsr3Matrix>(
            request.assemblyKey(),
            [&] {
                auto k = std::make_shared<const sparse::Bcsr3Matrix>(
                    sparse::assembleStiffness(generated->mesh, *model,
                                              request.poisson));
                return std::make_pair(k, matrixBytes(*k));
            },
            &result.assemblyCacheHit);
    }
    result.prefixSeconds = secondsSince(prefix_t0);
    result.cacheStagesTotal = request.numPes > 1 ? 3 : 2;
    result.cacheStagesHit =
        static_cast<int>(result.meshCacheHit) +
        static_cast<int>(result.partitionCacheHit) +
        static_cast<int>(result.assemblyCacheHit);

    // --- packing: size the thread slice, then take the lock ---
    const bool span = request.numPes > 1 &&
                      request.numPes >= opt.spanThreshold;
    const int lane_threads =
        std::max(1, totalThreads / std::max(1, opt.executors));
    sim::SimulationConfig config = request.toSimConfig();
    config.smvpThreads = span ? totalThreads : lane_threads;
    result.spanned = span;
    result.threadsUsed = config.smvpThreads;

    const SteadyClock::time_point step_t0 = SteadyClock::now();
    std::shared_lock<std::shared_mutex> packed(packMu, std::defer_lock);
    std::unique_lock<std::shared_mutex> exclusive(packMu,
                                                  std::defer_lock);
    if (span)
        exclusive.lock();
    else
        packed.lock();

    sim::SimulationEngine engine = sim::makeSimulationEngineWith(
        generated->mesh, *model, config, prefix);
    result.engineFingerprint = engine.fingerprint;

    // --- admission: Eq. (1) prediction vs the SLO (DESIGN.md §14) ---
    if (opt.modelMflops > 0) {
        const double tf = 1.0 / (opt.modelMflops * 1e6);
        const double tc = opt.modelTcSecondsPerWord;
        const core::SmvpShape shape =
            admissionShape(prefix, request.tenant);
        // The supervisor's model path: the per-step watchdog deadline
        // modelStepDeadline derives (floor included) bounds a single
        // healthy step, and the full-run prediction scales the same
        // Eq. (1) step estimate out to plannedSteps.
        const std::chrono::milliseconds step_deadline =
            resilience::modelStepDeadline(shape, tf, tc,
                                          opt.admitSlack);
        const double step_seconds =
            shape.flops * tf + shape.wordsMax * tc;
        result.predictedSeconds =
            opt.admitSlack * step_seconds *
            static_cast<double>(engine.plannedSteps) *
            faultInflation(request);
        if (deadline_s > 0 && opt.shedOnPredictedMiss) {
            const bool step_over =
                static_cast<double>(step_deadline.count()) / 1000.0 >
                deadline_s;
            const bool total_over = result.queueSeconds +
                                        result.prefixSeconds +
                                        result.predictedSeconds >
                                    deadline_s;
            if (step_over || total_over) {
                std::ostringstream os;
                os << "shed: model predicts "
                   << (step_over ? "one step alone needs "
                                 : "stepping needs ")
                   << (step_over
                           ? static_cast<double>(
                                 step_deadline.count()) /
                                 1000.0
                           : result.predictedSeconds)
                   << " s, over the " << request.deadlineMs
                   << " ms deadline";
                result.error = os.str();
                return result;
            }
        }
    }
    result.admitted = true;

    // --- time stepping under the runtime SLO observer ---
    result.report.dt = engine.dt;
    sim::StepObserver observer;
    if (deadline_s > 0) {
        observer = [enqueued, deadline_s](std::int64_t) {
            const double elapsed = secondsSince(enqueued);
            if (elapsed > deadline_s)
                throw DeadlineMiss{elapsed};
        };
    }
    try {
        sim::advanceSimulation(engine, config, result.report, observer);
        result.completed = true;
    } catch (const DeadlineMiss &miss) {
        result.deadlineMiss = true;
        std::ostringstream os;
        os << "deadline miss: " << miss.elapsedSeconds
           << " s elapsed at step " << engine.stepper->stepCount()
           << " of " << engine.plannedSteps;
        result.error = os.str();
    }
    result.stateFingerprint =
        finalStateFingerprint(engine, result.report);
    result.stepSeconds = secondsSince(step_t0);
    return result;
}

void
ScenarioService::Impl::account(const ScenarioResult &result, int lane)
{
    const std::uint64_t hits =
        static_cast<std::uint64_t>(result.cacheStagesHit);
    const std::uint64_t misses = static_cast<std::uint64_t>(
        result.cacheStagesTotal - result.cacheStagesHit);
    {
        std::lock_guard<std::mutex> lock(tenantsMu);
        TenantStats &t = tenants[result.tenant];
        t.submitted += 1;
        t.stepSeconds += result.stepSeconds;
        t.prefixSeconds += result.prefixSeconds;
        t.cacheHits += hits;
        t.cacheMisses += misses;
        if (result.completed)
            t.completed += 1;
        else if (result.deadlineMiss)
            t.deadlineMisses += 1;
        else
            t.shed += 1;
    }

    collectorAdd(lane, telemetry::Counter::kScenariosSubmitted, 1);
    if (result.completed)
        collectorAdd(lane, telemetry::Counter::kScenariosCompleted, 1);
    else if (result.deadlineMiss)
        collectorAdd(lane,
                     telemetry::Counter::kScenarioDeadlineMisses, 1);
    else
        collectorAdd(lane, telemetry::Counter::kScenariosShed, 1);
    collectorAdd(lane, telemetry::Counter::kScenarioCacheHits, hits);
    collectorAdd(lane, telemetry::Counter::kScenarioCacheMisses,
                 misses);
}

void
ScenarioService::Impl::streamResult(ScenarioResult &result,
                                    int lane) const
{
    if (opt.resultDir.empty() || result.tenant.empty())
        return;
    std::ostringstream os;
    os << "{\n"
       << "  \"tenant\": \""
       << common::jsonEscape(result.tenant) << "\",\n"
       << "  \"label\": \"" << common::jsonEscape(result.label)
       << "\",\n"
       << "  \"scenario_key\": \"" << hex64(result.scenarioKey)
       << "\",\n"
       << "  \"admitted\": " << (result.admitted ? "true" : "false")
       << ",\n"
       << "  \"completed\": " << (result.completed ? "true" : "false")
       << ",\n"
       << "  \"deadline_miss\": "
       << (result.deadlineMiss ? "true" : "false") << ",\n"
       << "  \"error\": \"" << common::jsonEscape(result.error)
       << "\",\n"
       << "  \"steps\": " << result.report.steps << ",\n"
       << "  \"dt\": " << common::jsonNumber(result.report.dt) << ",\n"
       << "  \"peak_displacement\": "
       << common::jsonNumber(result.report.peakDisplacement) << ",\n"
       << "  \"engine_fingerprint\": \""
       << hex64(result.engineFingerprint) << "\",\n"
       << "  \"state_fingerprint\": \""
       << hex64(result.stateFingerprint) << "\",\n"
       << "  \"queue_seconds\": "
       << common::jsonNumber(result.queueSeconds) << ",\n"
       << "  \"prefix_seconds\": "
       << common::jsonNumber(result.prefixSeconds) << ",\n"
       << "  \"step_seconds\": "
       << common::jsonNumber(result.stepSeconds) << ",\n"
       << "  \"threads_used\": " << result.threadsUsed << ",\n"
       << "  \"spanned\": " << (result.spanned ? "true" : "false")
       << "\n}\n";
    const std::string payload = os.str();
    result.resultPath = opt.resultDir + "/" + result.tenant + "-" +
                        hex64(result.scenarioKey) + ".json";
    common::writeFileAtomic(result.resultPath, payload);
    collectorAdd(lane, telemetry::Counter::kScenarioResultBytes,
                 payload.size());
}

ScenarioService::ScenarioService(ServiceOptions options)
{
    options.validate();
    if (!options.resultDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.resultDir, ec);
        QUAKE_EXPECT(!ec, "cannot create result directory "
                              << options.resultDir << ": "
                              << ec.message());
    }
    impl_ = std::make_unique<Impl>(std::move(options));
    impl_->totalThreads =
        impl_->opt.totalThreads > 0
            ? impl_->opt.totalThreads
            : std::max(1, parallel::WorkerPool::hardwareThreads());
    if (impl_->opt.collector != nullptr &&
        impl_->opt.collector->enabled())
        impl_->opt.collector->ensureSlots(impl_->opt.executors);
    impl_->lanes.reserve(
        static_cast<std::size_t>(impl_->opt.executors));
    for (int lane = 0; lane < impl_->opt.executors; ++lane)
        impl_->lanes.emplace_back(
            [this, lane] { impl_->laneLoop(lane); });
}

ScenarioService::~ScenarioService() { shutdown(); }

std::future<ScenarioResult>
ScenarioService::submit(ScenarioRequest request)
{
    request.validate();
    Job job;
    job.request = std::move(request);
    job.enqueued = SteadyClock::now();
    std::future<ScenarioResult> future = job.promise.get_future();
    QUAKE_EXPECT(impl_->queue.push(std::move(job)),
                 "submit after shutdown");
    return future;
}

bool
ScenarioService::trySubmit(ScenarioRequest request,
                           std::future<ScenarioResult> *out)
{
    request.validate();
    Job job;
    job.request = std::move(request);
    job.enqueued = SteadyClock::now();
    std::future<ScenarioResult> future = job.promise.get_future();
    if (!impl_->queue.tryPush(std::move(job))) {
        impl_->rejections.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (out != nullptr)
        *out = std::move(future);
    return true;
}

void
ScenarioService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(impl_->shutdownMu);
        if (impl_->shutdownDone)
            return;
        impl_->shutdownDone = true;
    }
    impl_->queue.close();
    for (std::thread &t : impl_->lanes)
        t.join();
    impl_->lanes.clear();
    // Lanes are joined: the cache-internal eviction total (the one
    // stat not attributable to a single request) can be flushed into
    // the collector without racing any per-lane writer.
    if (impl_->opt.collector != nullptr &&
        impl_->opt.collector->enabled())
        impl_->collectorAdd(
            0, telemetry::Counter::kScenarioCacheEvictions,
            impl_->cache.stats().evictions);
}

PrefixCache::Stats
ScenarioService::cacheStats() const
{
    return impl_->cache.stats();
}

std::uint64_t
ScenarioService::queueRejections() const
{
    return impl_->rejections.load(std::memory_order_relaxed);
}

TenantStats
ScenarioService::tenantStats(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(impl_->tenantsMu);
    const auto it = impl_->tenants.find(tenant);
    return it != impl_->tenants.end() ? it->second : TenantStats{};
}

std::vector<std::pair<std::string, TenantStats>>
ScenarioService::allTenantStats() const
{
    std::lock_guard<std::mutex> lock(impl_->tenantsMu);
    return {impl_->tenants.begin(), impl_->tenants.end()};
}

int
ScenarioService::totalThreads() const
{
    return impl_->totalThreads;
}

ScenarioResult
ScenarioService::runStandalone(const ScenarioRequest &request)
{
    request.validate();
    ScenarioResult result;
    result.tenant = request.tenant;
    result.label = request.label;
    result.scenarioKey = request.scenarioKey();
    result.admitted = true;

    const std::unique_ptr<mesh::SoilModel> model =
        request.makeSoilModel();
    const mesh::GeneratedMesh generated =
        mesh::generateMesh(*model, request.meshSpec);
    const sim::SimulationConfig config = request.toSimConfig();
    sim::SimulationEngine engine =
        sim::makeSimulationEngine(generated.mesh, *model, config);
    result.engineFingerprint = engine.fingerprint;
    result.report.dt = engine.dt;
    const SteadyClock::time_point t0 = SteadyClock::now();
    sim::advanceSimulation(engine, config, result.report);
    result.stepSeconds = secondsSince(t0);
    result.completed = true;
    result.threadsUsed = config.smvpThreads;
    result.stateFingerprint =
        finalStateFingerprint(engine, result.report);
    return result;
}

void
ScenarioService::writeTenantMetricsJson(const std::string &bench_name,
                                        const std::string &path) const
{
    std::vector<common::BenchJsonRecord> records;
    for (const auto &[tenant, t] : allTenantStats()) {
        common::BenchJsonRecord r;
        r.kernel = tenant;
        r.rows = static_cast<std::int64_t>(t.submitted);
        r.nnz = static_cast<std::int64_t>(t.completed);
        r.secondsPerSmvp =
            t.completed > 0
                ? t.stepSeconds / static_cast<double>(t.completed)
                : 0.0;
        r.extra = {
            {"shed", static_cast<double>(t.shed)},
            {"deadline_misses",
             static_cast<double>(t.deadlineMisses)},
            {"cache_hits", static_cast<double>(t.cacheHits)},
            {"cache_misses", static_cast<double>(t.cacheMisses)},
            {"prefix_seconds", t.prefixSeconds},
            {"step_seconds", t.stepSeconds},
        };
        records.push_back(std::move(r));
    }
    const PrefixCache::Stats s = cacheStats();
    common::writeBenchJson(
        bench_name, records,
        {{"cache_hits", std::to_string(s.hits)},
         {"cache_misses", std::to_string(s.misses)},
         {"cache_evictions", std::to_string(s.evictions)},
         {"queue_rejections", std::to_string(queueRejections())}},
        path);
}

} // namespace quake::service
