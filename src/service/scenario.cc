#include "service/scenario.h"

#include "common/error.h"
#include "common/fnv.h"

namespace quake::service
{

const char *
soilKindName(SoilKind kind)
{
    switch (kind) {
      case SoilKind::kLayeredBasin: return "layered-basin";
      case SoilKind::kMultiBasinThree: return "multi-basin-3";
      case SoilKind::kUniform: return "uniform";
    }
    return "unknown";
}

void
ScenarioRequest::validate() const
{
    QUAKE_EXPECT(!tenant.empty(), "tenant must be non-empty");
    meshSpec.validate();
    if (soil == SoilKind::kUniform) {
        QUAKE_EXPECT(uniformVs > 0,
                     "uniformVs must be positive, got " << uniformVs);
        QUAKE_EXPECT(uniformRho > 0,
                     "uniformRho must be positive, got " << uniformRho);
    }
    QUAKE_EXPECT(faultDropRate >= 0.0 && faultDropRate <= 1.0,
                 "faultDropRate must be in [0, 1], got "
                     << faultDropRate);
    QUAKE_EXPECT(deadlineMs >= 0,
                 "deadlineMs must be >= 0, got " << deadlineMs);
    // Physics/execution ranges (duration, cfl, poisson, damping,
    // numPes, sampleInterval, maxSteps, topology spec) are the engine
    // config's own contract.
    toSimConfig().validate();
}

sim::SimulationConfig
ScenarioRequest::toSimConfig() const
{
    sim::SimulationConfig config;
    config.durationSeconds = durationSeconds;
    config.maxSteps = maxSteps;
    config.cflSafety = cflSafety;
    config.poisson = poisson;
    config.dampingA0 = dampingA0;
    config.hypocenter = hypocenter;
    config.sourceDirection = sourceDirection;
    config.wavelet = wavelet;
    config.sampleInterval = sampleInterval;
    config.numPes = numPes;
    config.kernelBackend = kernelBackend;
    config.fusedStep = fusedStep;
    config.topologySpec = topologyHint;
    // Collector and recorder stay null: the service owns telemetry
    // (engine-side ensureSlots would race concurrent executors), and
    // results are streamed as records, not seismogram traces.
    return config;
}

std::unique_ptr<mesh::SoilModel>
ScenarioRequest::makeSoilModel() const
{
    switch (soil) {
      case SoilKind::kLayeredBasin:
          return std::make_unique<mesh::LayeredBasinModel>();
      case SoilKind::kMultiBasinThree:
          return std::make_unique<mesh::MultiBasinModel>(
              mesh::MultiBasinModel::threeBasins());
      case SoilKind::kUniform:
          return std::make_unique<mesh::UniformModel>(
              mesh::Aabb{mesh::Vec3{0.0, 0.0, 0.0},
                         mesh::Vec3{50.0, 50.0, 10.0}},
              uniformVs, uniformRho);
    }
    QUAKE_PANIC("unreachable soil kind");
}

std::uint64_t
ScenarioRequest::meshKey() const
{
    common::Fnv1aHasher h;
    h.str("mesh/v1");
    h.value(static_cast<int>(soil));
    if (soil == SoilKind::kUniform)
        h.value(uniformVs).value(uniformRho);
    h.value(meshSpec.periodSeconds)
        .value(meshSpec.pointsPerWavelength)
        .value(meshSpec.hScale)
        .value(meshSpec.hMin)
        .value(meshSpec.coarseNx)
        .value(meshSpec.coarseNy)
        .value(meshSpec.coarseNz)
        .value(meshSpec.jitterFraction)
        .value(meshSpec.seed)
        .value(meshSpec.refine.maxPasses)
        .value(meshSpec.refine.maxElements);
    return h.digest();
}

std::uint64_t
ScenarioRequest::partitionKey() const
{
    common::Fnv1aHasher h(meshKey());
    h.str("partition/v1").value(numPes);
    return h.digest();
}

std::uint64_t
ScenarioRequest::assemblyKey() const
{
    common::Fnv1aHasher h(partitionKey());
    h.str("assembly/v1").value(poisson);
    return h.digest();
}

std::uint64_t
ScenarioRequest::scenarioKey() const
{
    common::Fnv1aHasher h(assemblyKey());
    h.str("scenario/v1")
        .value(durationSeconds)
        .value(maxSteps)
        .value(cflSafety)
        .value(dampingA0)
        .value(hypocenter.x)
        .value(hypocenter.y)
        .value(hypocenter.z)
        .value(sourceDirection.x)
        .value(sourceDirection.y)
        .value(sourceDirection.z)
        .value(wavelet.peakFrequencyHz)
        .value(wavelet.delaySeconds)
        .value(wavelet.amplitude)
        .value(sampleInterval)
        .value(static_cast<int>(kernelBackend));
    h.str(tenant).str(label);
    return h.digest();
}

} // namespace quake::service
