/**
 * @file
 * The content-addressed prefix cache (DESIGN.md §14): an LRU map from
 * 64-bit FNV-1a content keys to immutable, shareable prefix objects —
 * generated meshes, partitions, distributed problems, assembled global
 * stiffness matrices — with a byte budget enforced by tail eviction.
 *
 * Two properties make this safe to share across concurrent scenario
 * executors:
 *
 *  - Entries are `shared_ptr<const T>`: a cached matrix or problem is
 *    pure input data, read concurrently by any number of engines
 *    (multiply/multiplyFusedStep are const and scratch-free), and an
 *    evicted entry stays alive for whoever still holds the pointer.
 *
 *  - getOrCompute is single-flight: when N executors miss on the same
 *    key simultaneously, exactly one computes while the rest block on
 *    the in-flight entry — the expensive prefix (mesh generation,
 *    partitioning, assembly) is never duplicated.  A failing compute
 *    propagates its exception to every waiter and caches nothing.
 *
 * A byte budget of 0 disables the cache entirely: every call computes
 * (no single-flight either), which is exactly the "cold" arm of
 * bench_scenario_service.
 */

#ifndef QUAKE98_SERVICE_PREFIX_CACHE_H_
#define QUAKE98_SERVICE_PREFIX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace quake::service
{

/**
 * Thread-safe content-addressed LRU cache.  Keys must be collision-free
 * content hashes with domain separation between object kinds (the
 * stage-tagged keys of service::ScenarioRequest); the cache itself is
 * type-erased and trusts the key to determine the type.
 */
class PrefixCache
{
  public:
    /** Monotonic counters + current occupancy, all under one lock. */
    struct Stats
    {
        std::uint64_t hits = 0;     ///< returned an existing entry
        std::uint64_t misses = 0;   ///< computed (leader of a flight)
        std::uint64_t evictions = 0; ///< entries dropped for the budget
        std::size_t bytes = 0;      ///< resident payload bytes
        std::size_t entries = 0;    ///< resident entry count
    };

    /** Compute callback: the value plus its payload byte estimate. */
    using ComputeFn = std::function<
        std::pair<std::shared_ptr<const void>, std::size_t>()>;

    /** @param byte_budget Max resident payload bytes; 0 disables. */
    explicit PrefixCache(std::size_t byte_budget);
    ~PrefixCache();

    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    /**
     * Return the entry for `key`, computing it via `fn` on a miss.
     * Waiters joining an in-flight computation of the same key count
     * as hits.  An entry larger than the whole budget is returned but
     * not retained.  `hit`, when non-null, reports whether this call
     * avoided running `fn` itself.
     */
    std::shared_ptr<const void> getOrComputeErased(std::uint64_t key,
                                                   const ComputeFn &fn,
                                                   bool *hit = nullptr);

    /** Typed wrapper; T must match what `key` was derived for. */
    template <typename T>
    std::shared_ptr<const T>
    getOrCompute(
        std::uint64_t key,
        const std::function<std::pair<std::shared_ptr<const T>,
                                      std::size_t>()> &fn,
        bool *hit = nullptr)
    {
        return std::static_pointer_cast<const T>(getOrComputeErased(
            key,
            [&fn]() -> std::pair<std::shared_ptr<const void>,
                                 std::size_t> {
                auto [value, bytes] = fn();
                return {std::static_pointer_cast<const void>(value),
                        bytes};
            },
            hit));
    }

    Stats stats() const;
    std::size_t byteBudget() const { return budget_; }

  private:
    struct Impl;
    const std::size_t budget_;
    std::unique_ptr<Impl> impl_;
};

} // namespace quake::service

#endif // QUAKE98_SERVICE_PREFIX_CACHE_H_
