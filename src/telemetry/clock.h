/**
 * @file
 * The telemetry time source.
 *
 * All telemetry timestamps are unsigned nanosecond counts read through a
 * plain function pointer.  A function pointer (rather than a virtual
 * interface) keeps the hot-path read a direct call with no allocation
 * and no indirection through a vtable, and lets tests substitute a
 * deterministic fake clock so trace exports can be golden-tested.
 */

#ifndef QUAKE98_TELEMETRY_CLOCK_H_
#define QUAKE98_TELEMETRY_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace quake::telemetry
{

/** Monotonic nanosecond clock behind a swappable function pointer. */
class Clock
{
  public:
    /** Signature of a time source: monotonic nanoseconds. */
    using NowFn = std::uint64_t (*)();

    /** The real time source: steady_clock nanoseconds since its epoch. */
    static std::uint64_t
    steadyNanos()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
};

} // namespace quake::telemetry

#endif // QUAKE98_TELEMETRY_CLOCK_H_
