/**
 * @file
 * Model validation: the measured compute/exchange split of a telemetry
 * run held up against the paper's Equation (1)/(2) predictions
 * (core/perf_model.h, core/requirements.h).
 *
 * The paper assumes an efficiency E and derives the communication
 * budget T_c the machine must deliver; Bienz et al. (arXiv:1806.02030)
 * and Schubert et al. (arXiv:1101.0091) both show such models are only
 * trustworthy when checked against in-kernel phase measurements.  This
 * report closes that loop: from the collector's local-phase and
 * exchange-phase histograms it derives the measured T_f, T_c, and E,
 * and prints them next to the Eq. (1) requirement at the assumed E.
 */

#ifndef QUAKE98_TELEMETRY_REPORT_H_
#define QUAKE98_TELEMETRY_REPORT_H_

#include <iosfwd>

#include "core/perf_model.h"
#include "telemetry/collector.h"

namespace quake::telemetry
{

/** Application-shape inputs of the validation. */
struct ModelReportInputs
{
    /** Eq. (1) shape: F (max flops/PE), C_max, B_max. */
    core::SmvpShape shape;

    /** Sum of F_i over all PEs, per SMVP (for the aggregate T_f). */
    double totalFlops = 0.0;

    /** Sum of C_i over all PEs, per SMVP (for the aggregate T_c). */
    double totalWords = 0.0;

    /** The efficiency the paper's analysis assumes (its tables use
     *  E in {0.5, 0.75, 0.9}). */
    double assumedE = 0.75;
};

/** Measured-vs-modeled phase accounting for one run. */
struct ModelValidation
{
    std::int64_t smvpCalls = 0;  ///< multiplies / fused steps measured

    // --- measured, from the phase histograms (CPU-seconds, summed
    //     over threads, normalized per SMVP) ---
    double computeSecondsPerSmvp = 0.0;  ///< local phase
    double exchangeSecondsPerSmvp = 0.0; ///< exchange phase (incl. spin)
    double measuredE = 0.0;  ///< compute / (compute + exchange)
    double measuredTf = 0.0; ///< compute / totalFlops (s per flop)
    double measuredTc = 0.0; ///< exchange / totalWords (s per word)

    // --- modeled, Eq. (1) at the assumed E and the measured T_f ---
    double assumedE = 0.0;
    double requiredTc = 0.0; ///< T_c budget for assumedE (s per word)
    double predictedExchangeSecondsPerSmvp = 0.0; ///< C_max * requiredTc

    /** E that Eq. (1) implies for the measured (T_f, T_c) pair. */
    double modelImpliedE = 0.0;
};

/**
 * Derive the validation from a collector's merged phase histograms.
 * Requires at least one recorded SMVP and positive flop/word totals;
 * violations raise common::FatalError.
 */
ModelValidation validateModel(const Collector &collector,
                              const ModelReportInputs &inputs);

/** Print the measured-vs-modeled table (earthquake_sim --trace). */
void printModelValidation(const ModelValidation &v, std::ostream &out);

} // namespace quake::telemetry

#endif // QUAKE98_TELEMETRY_REPORT_H_
