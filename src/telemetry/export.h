/**
 * @file
 * Telemetry exporters.
 *
 * Two formats, both deterministic for a fixed clock (golden-tested):
 *
 *  - Chrome `trace_event` JSON: complete duration events ("ph": "X"),
 *    one per recorded span, ordered by ascending thread slot and then
 *    recording order.  Loadable directly in about://tracing and
 *    https://ui.perfetto.dev.
 *  - Flat metrics JSON in the exact BENCH_<name>.json schema that
 *    bench_util's writeBenchJson emits (common/bench_json.h), so the
 *    perf-trajectory tooling ingests phase splits, percentiles, and
 *    protocol counters with no new parser.
 */

#ifndef QUAKE98_TELEMETRY_EXPORT_H_
#define QUAKE98_TELEMETRY_EXPORT_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/collector.h"

namespace quake::telemetry
{

/** Write the Chrome trace_event JSON for every recorded span. */
void writeChromeTrace(const Collector &collector, std::ostream &out);

/**
 * Write the Chrome trace to `path`.  Returns false (with a note on
 * stderr) when the file cannot be opened.
 */
bool writeChromeTrace(const Collector &collector, const std::string &path);

/**
 * Fraction of the trace's wall-clock window covered by `top`-category
 * spans on the control slot (slot 0).  The window runs from the
 * earliest begin to the latest end over all recorded spans; top-level
 * step spans are sequential, so their summed duration over the window
 * is the coverage the ISSUE acceptance bar asks for.  Returns 0 when
 * nothing was recorded.
 */
double traceCoverage(const Collector &collector, Span top = Span::kStep);

/**
 * Export merged metrics as a BENCH-schema JSON file: one record per
 * histogram (count, mean, p50/p95/p99, max in nanoseconds) and one per
 * nonzero counter.  An empty `path` selects BENCH_<name>.json.
 */
void writeMetricsBenchJson(
    const Collector &collector, const std::string &name,
    const std::vector<std::pair<std::string, std::string>> &info = {},
    const std::string &path = "");

} // namespace quake::telemetry

#endif // QUAKE98_TELEMETRY_EXPORT_H_
