#include "telemetry/collector.h"

#include <bit>
#include <cmath>

#include "common/error.h"

namespace quake::telemetry
{

const char *
spanName(Span s)
{
    switch (s) {
      case Span::kStep: return "step";
      case Span::kSmvp: return "smvp";
      case Span::kLocalPhase: return "local_phase";
      case Span::kBoundaryPhase: return "boundary_phase";
      case Span::kExchange: return "exchange";
      case Span::kAcquireSpin: return "acquire_spin";
      case Span::kForkJoin: return "fork_join";
      case Span::kCount: break;
    }
    return "unknown";
}

const char *
counterName(Counter c)
{
    switch (c) {
      case Counter::kSmvpCalls: return "smvp_calls";
      case Counter::kStepsSampled: return "steps_sampled";
      case Counter::kPoolRuns: return "pool_runs";
      case Counter::kWorkerWaitNanos: return "worker_wait_nanos";
      case Counter::kAcquireSpinNanos: return "acquire_spin_nanos";
      case Counter::kAcquireSpins: return "acquire_spins";
      case Counter::kRetransmissions: return "retransmissions";
      case Counter::kSpuriousRetransmissions:
          return "spurious_retransmissions";
      case Counter::kTimeoutsFired: return "timeouts_fired";
      case Counter::kAcksSent: return "acks_sent";
      case Counter::kAcksDropped: return "acks_dropped";
      case Counter::kDataSent: return "data_sent";
      case Counter::kDataDropped: return "data_dropped";
      case Counter::kBackoffWaitNanos: return "backoff_wait_nanos";
      case Counter::kCheckpointsWritten: return "checkpoints_written";
      case Counter::kCheckpointBytes: return "checkpoint_bytes";
      case Counter::kRunRestarts: return "run_restarts";
      case Counter::kRunDegradations: return "run_degradations";
      case Counter::kEllSliceMultiplies: return "ell_slice_multiplies";
      case Counter::kEllPaddedBlocks: return "ell_padded_blocks";
      case Counter::kPinFailures: return "pin_failures";
      case Counter::kShardRemoteBytes: return "shard_remote_bytes";
      case Counter::kShardLocalBytes: return "shard_local_bytes";
      case Counter::kShardImbalanceMilli:
          return "shard_imbalance_milli";
      case Counter::kScenariosSubmitted: return "scenarios_submitted";
      case Counter::kScenariosCompleted: return "scenarios_completed";
      case Counter::kScenariosShed: return "scenarios_shed";
      case Counter::kScenarioDeadlineMisses:
          return "scenario_deadline_misses";
      case Counter::kScenarioCacheHits: return "scenario_cache_hits";
      case Counter::kScenarioCacheMisses: return "scenario_cache_misses";
      case Counter::kScenarioCacheEvictions:
          return "scenario_cache_evictions";
      case Counter::kScenarioResultBytes:
          return "scenario_result_bytes";
      case Counter::kCount: break;
    }
    return "unknown";
}

const char *
histName(Hist h)
{
    switch (h) {
      case Hist::kStepNanos: return "step_nanos";
      case Hist::kSmvpNanos: return "smvp_nanos";
      case Hist::kLocalPhaseNanos: return "local_phase_nanos";
      case Hist::kExchangeNanos: return "exchange_nanos";
      case Hist::kAcquireSpinNanos: return "acquire_spin_nanos";
      case Hist::kForkJoinNanos: return "fork_join_nanos";
      case Hist::kCount: break;
    }
    return "unknown";
}

int
Histogram::binIndex(std::uint64_t v)
{
    if (v == 0)
        return 0;
    // bit_width(v) = floor(log2 v) + 1, so bin b >= 1 holds
    // [2^(b-1), 2^b).  Values >= 2^62 share the last bin.
    const int b = std::bit_width(v);
    return b < kBins ? b : kBins - 1;
}

std::uint64_t
Histogram::binLowerEdge(int b)
{
    if (b <= 0)
        return 0;
    return std::uint64_t{1} << (b - 1);
}

std::uint64_t
Histogram::binUpperEdge(int b)
{
    if (b <= 0)
        return 0;
    if (b >= kBins - 1)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
}

void
Histogram::merge(const Histogram &other)
{
    for (int b = 0; b < kBins; ++b)
        bins_[b] += other.bins_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_)
        max_ = other.max_;
}

double
Histogram::percentile(double p) const
{
    QUAKE_EXPECT(p >= 0.0 && p <= 100.0,
                 "percentile must be in [0, 100], got " << p);
    if (count_ == 0)
        return 0.0;
    // Rank of the requested percentile, at least 1 so p = 0 returns the
    // smallest occupied bin.
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (target < 1)
        target = 1;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBins; ++b) {
        cum += bins_[b];
        if (cum >= target) {
            const double upper =
                static_cast<double>(binUpperEdge(b));
            const double mx = static_cast<double>(max_);
            return upper < mx ? upper : mx;
        }
    }
    return static_cast<double>(max_);
}

Collector::Collector(CollectorConfig config)
    : enabled_(config.enabled), now_(config.now),
      sample_every_(config.sampleEvery),
      span_capacity_(config.spanCapacity)
{
    QUAKE_EXPECT(config.sampleEvery >= 1,
                 "sampleEvery must be >= 1, got " << config.sampleEvery);
    QUAKE_EXPECT(config.now != nullptr, "clock function must be set");
    if (enabled_)
        ensureSlots(config.threadSlots);
}

void
Collector::ensureSlots(int n)
{
    if (!enabled_)
        return;
    while (static_cast<int>(slots_.size()) < n) {
        auto slot = std::make_unique<ThreadSlot>();
        slot->spans.resize(span_capacity_);
        slots_.push_back(std::move(slot));
    }
}

void
Collector::setStep(std::int64_t step)
{
    if (!enabled_)
        return;
    step_.store(step, std::memory_order_relaxed);
    const bool sampled = step % sample_every_ == 0;
    sampled_.store(sampled, std::memory_order_relaxed);
    if (sampled && !slots_.empty())
        slots_[0]->counters[static_cast<std::size_t>(
            Counter::kStepsSampled)] += 1;
}

std::uint64_t
Collector::counterTotal(Counter c) const
{
    std::uint64_t total = 0;
    for (const auto &slot : slots_)
        total += slot->counters[static_cast<std::size_t>(c)];
    return total;
}

Histogram
Collector::mergedHistogram(Hist h) const
{
    Histogram merged;
    for (const auto &slot : slots_)
        merged.merge(slot->hists[static_cast<std::size_t>(h)]);
    return merged;
}

std::uint64_t
Collector::spansDropped() const
{
    std::uint64_t total = 0;
    for (const auto &slot : slots_)
        total += slot->spansDropped;
    return total;
}

std::uint64_t
Collector::spansRecorded() const
{
    std::uint64_t total = 0;
    for (const auto &slot : slots_)
        total += slot->spanCount;
    return total;
}

} // namespace quake::telemetry
