#include "telemetry/report.h"

#include <ostream>

#include "common/error.h"
#include "common/table.h"

namespace quake::telemetry
{

ModelValidation
validateModel(const Collector &collector, const ModelReportInputs &inputs)
{
    const std::int64_t calls = static_cast<std::int64_t>(
        collector.counterTotal(Counter::kSmvpCalls));
    QUAKE_EXPECT(calls > 0,
                 "model validation needs at least one recorded SMVP");
    QUAKE_EXPECT(inputs.totalFlops > 0 && inputs.totalWords > 0,
                 "model validation needs positive flop and word totals");
    QUAKE_EXPECT(inputs.assumedE > 0 && inputs.assumedE < 1,
                 "assumed efficiency must be in (0, 1), got "
                     << inputs.assumedE);

    const double compute =
        static_cast<double>(
            collector.mergedHistogram(Hist::kLocalPhaseNanos).sum()) /
        1e9;
    const double exchange =
        static_cast<double>(
            collector.mergedHistogram(Hist::kExchangeNanos).sum()) /
        1e9;
    QUAKE_EXPECT(compute > 0,
                 "model validation needs recorded local-phase time; "
                 "was the engine's collector hook set?");

    ModelValidation v;
    v.smvpCalls = calls;
    v.computeSecondsPerSmvp = compute / static_cast<double>(calls);
    v.exchangeSecondsPerSmvp = exchange / static_cast<double>(calls);
    v.measuredE = compute / (compute + exchange);
    v.measuredTf =
        v.computeSecondsPerSmvp / inputs.totalFlops;
    v.measuredTc =
        v.exchangeSecondsPerSmvp / inputs.totalWords;

    v.assumedE = inputs.assumedE;
    v.requiredTc =
        core::requiredTc(inputs.shape, inputs.assumedE, v.measuredTf);
    v.predictedExchangeSecondsPerSmvp =
        inputs.shape.wordsMax * v.requiredTc;
    v.modelImpliedE = core::achievedEfficiency(inputs.shape, v.measuredTf,
                                               v.measuredTc);
    return v;
}

void
printModelValidation(const ModelValidation &v, std::ostream &out)
{
    const double split =
        v.computeSecondsPerSmvp + v.exchangeSecondsPerSmvp;
    out << "Measured vs. modeled phase split (" << v.smvpCalls
        << " SMVPs):\n";
    common::Table t({"quantity", "measured", "Eq. (1) @ assumed E"});
    t.addRow({"compute share",
              common::formatFixed(100.0 * v.computeSecondsPerSmvp / split,
                                  1) +
                  "%",
              common::formatFixed(100.0 * v.assumedE, 1) + "%"});
    t.addRow({"exchange share",
              common::formatFixed(
                  100.0 * v.exchangeSecondsPerSmvp / split, 1) +
                  "%",
              common::formatFixed(100.0 * (1.0 - v.assumedE), 1) + "%"});
    t.addRow({"T_c (ns/word)",
              common::formatFixed(v.measuredTc * 1e9, 2),
              common::formatFixed(v.requiredTc * 1e9, 2)});
    t.addRow({"exchange s/SMVP",
              common::formatFixed(v.exchangeSecondsPerSmvp * 1e3, 4) +
                  " ms",
              common::formatFixed(
                  v.predictedExchangeSecondsPerSmvp * 1e3, 4) +
                  " ms"});
    t.print(out);
    out << "measured E = " << common::formatFixed(v.measuredE, 3)
        << " (paper assumes E = "
        << common::formatFixed(v.assumedE, 2)
        << "; Eq. (1) at the measured T_f/T_c implies E = "
        << common::formatFixed(v.modelImpliedE, 3) << ")\n"
        << "measured T_f = "
        << common::formatFixed(v.measuredTf * 1e9, 3)
        << " ns/flop (aggregate CPU-seconds per flop across threads)\n";
}

} // namespace quake::telemetry
