#include "telemetry/export.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>

#include "common/bench_json.h"

namespace quake::telemetry
{

namespace
{

using common::jsonEscape;
using common::jsonNumber;

/** Microseconds (Chrome trace units) from a nanosecond timestamp. */
double
micros(std::uint64_t nanos)
{
    return static_cast<double>(nanos) / 1e3;
}

} // namespace

void
writeChromeTrace(const Collector &collector, std::ostream &out)
{
    out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;

    // Thread-name metadata first so Perfetto labels the rows.
    for (int i = 0; i < collector.numSlots(); ++i) {
        if (!first)
            out << ",\n";
        first = false;
        out << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << i
            << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
            << (i == 0 ? std::string("control")
                       : "worker-" + std::to_string(i - 1))
            << "\"}}";
    }

    // Ascending slot, then recording order — the deterministic ordering
    // the golden test pins down.
    for (int i = 0; i < collector.numSlots(); ++i) {
        const ThreadSlot &slot = collector.slot(i);
        for (std::size_t e = 0; e < slot.spanCount; ++e) {
            const SpanEvent &ev = slot.spans[e];
            if (!first)
                out << ",\n";
            first = false;
            out << "{\"name\": \"" << jsonEscape(spanName(ev.cat))
                << "\", \"cat\": \"quake\", \"ph\": \"X\", \"pid\": 0, "
                   "\"tid\": "
                << i << ", \"ts\": " << jsonNumber(micros(ev.begin))
                << ", \"dur\": "
                << jsonNumber(micros(ev.end - ev.begin));
            if (ev.arg >= 0)
                out << ", \"args\": {\"arg\": " << ev.arg << "}";
            out << "}";
        }
    }
    out << "\n]\n}\n";
}

bool
writeChromeTrace(const Collector &collector, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[telemetry] cannot write " << path << "\n";
        return false;
    }
    writeChromeTrace(collector, out);
    return true;
}

double
traceCoverage(const Collector &collector, Span top)
{
    std::uint64_t window_begin = ~std::uint64_t{0};
    std::uint64_t window_end = 0;
    std::uint64_t covered = 0;
    bool any = false;
    for (int i = 0; i < collector.numSlots(); ++i) {
        const ThreadSlot &slot = collector.slot(i);
        for (std::size_t e = 0; e < slot.spanCount; ++e) {
            const SpanEvent &ev = slot.spans[e];
            any = true;
            window_begin = std::min(window_begin, ev.begin);
            window_end = std::max(window_end, ev.end);
            if (i == 0 && ev.cat == top)
                covered += ev.end - ev.begin;
        }
    }
    if (!any || window_end <= window_begin)
        return 0.0;
    return static_cast<double>(covered) /
           static_cast<double>(window_end - window_begin);
}

void
writeMetricsBenchJson(
    const Collector &collector, const std::string &name,
    const std::vector<std::pair<std::string, std::string>> &info,
    const std::string &path)
{
    std::vector<common::BenchJsonRecord> records;

    for (int h = 0; h < static_cast<int>(Hist::kCount); ++h) {
        const Hist id = static_cast<Hist>(h);
        const Histogram merged = collector.mergedHistogram(id);
        if (merged.count() == 0)
            continue;
        common::BenchJsonRecord rec;
        rec.kernel = std::string("hist:") + histName(id);
        rec.extra.emplace_back("count",
                               static_cast<double>(merged.count()));
        rec.extra.emplace_back("sum_ns",
                               static_cast<double>(merged.sum()));
        rec.extra.emplace_back("mean_ns", merged.mean());
        rec.extra.emplace_back("p50_ns", merged.percentile(50.0));
        rec.extra.emplace_back("p95_ns", merged.percentile(95.0));
        rec.extra.emplace_back("p99_ns", merged.percentile(99.0));
        rec.extra.emplace_back("max_ns",
                               static_cast<double>(merged.max()));
        records.push_back(std::move(rec));
    }

    for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
        const Counter id = static_cast<Counter>(c);
        const std::uint64_t total = collector.counterTotal(id);
        if (total == 0 && id != Counter::kSmvpCalls)
            continue;
        common::BenchJsonRecord rec;
        rec.kernel = std::string("counter:") + counterName(id);
        rec.extra.emplace_back("value", static_cast<double>(total));
        records.push_back(std::move(rec));
    }

    {
        common::BenchJsonRecord rec;
        rec.kernel = "counter:spans_recorded";
        rec.extra.emplace_back(
            "value", static_cast<double>(collector.spansRecorded()));
        records.push_back(std::move(rec));
    }
    {
        common::BenchJsonRecord rec;
        rec.kernel = "counter:spans_dropped";
        rec.extra.emplace_back(
            "value", static_cast<double>(collector.spansDropped()));
        records.push_back(std::move(rec));
    }

    common::writeBenchJson(name, records, info, path);
}

} // namespace quake::telemetry
