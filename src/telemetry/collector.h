/**
 * @file
 * The telemetry collector: zero-steady-state-allocation runtime
 * observability for the SMVP engine (DESIGN.md §9).
 *
 * The paper's argument is a time accounting — where do the two phases
 * of the SMVP loop spend their cycles (Eq. 1/2, §4.4)?  The collector
 * makes that accounting measurable from inside the engine instead of
 * inferred from whole-run wall clocks:
 *
 *  - per-thread, cache-line-padded slots so recording never contends or
 *    false-shares between workers;
 *  - begin/end span events (thread, category, argument) appended to
 *    buffers preallocated at setup — when a buffer fills, events are
 *    dropped and counted, never reallocated;
 *  - named counters and log-binned latency histograms (p50/p95/p99/max)
 *    merged deterministically in ascending thread-slot order;
 *  - a step register so fine-grained instrumentation (per-PE phase
 *    spans) can be sampled every N steps while cheap aggregates
 *    (histograms, counters) accumulate on every step.
 *
 * Everything is compiled in but off by default: a disabled collector
 * allocates nothing and every record call is a single predictable
 * branch.  Recording performs no arithmetic on simulation data, so
 * enabling telemetry cannot change y = Kx or the fused-step
 * displacement bitwise (tested in test_telemetry.cc).
 */

#ifndef QUAKE98_TELEMETRY_COLLECTOR_H_
#define QUAKE98_TELEMETRY_COLLECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/clock.h"

namespace quake::telemetry
{

/** Span categories: what a begin/end interval measured. */
enum class Span : std::uint8_t
{
    kStep,          ///< one whole time step (stepper, every step)
    kSmvp,          ///< the SMVP (or fused SMVP+update) inside a step
    kLocalPhase,    ///< a worker's full local phase of one multiply
    kBoundaryPhase, ///< one PE's gather + boundary rows + publish
    kExchange,      ///< one PE's receive + ascending-peer sum
    kAcquireSpin,   ///< waiting for a peer's buffer to publish
    kForkJoin,      ///< one WorkerPool::run dispatch round trip
    kCount
};

/** Stable display name of a span category (trace export). */
const char *spanName(Span s);

/** Monotonically accumulating named counters. */
enum class Counter : std::uint8_t
{
    kSmvpCalls,        ///< multiplies / fused steps issued
    kStepsSampled,     ///< steps on which fine-grained spans fired
    kPoolRuns,         ///< WorkerPool fork/join dispatches
    kWorkerWaitNanos,  ///< workers blocked between dispatches
    kAcquireSpinNanos, ///< time spent spinning on unpublished buffers
    kAcquireSpins,     ///< number of spins that actually waited
    // Reliable-exchange protocol counters (reliable_exchange.h).
    kRetransmissions,
    kSpuriousRetransmissions,
    kTimeoutsFired,
    kAcksSent,
    kAcksDropped,
    kDataSent,
    kDataDropped,
    kBackoffWaitNanos, ///< sender wait represented by fired timers
    // Resilience counters (resilience/supervisor.h).
    kCheckpointsWritten, ///< checkpoints committed to disk
    kCheckpointBytes,    ///< serialized checkpoint bytes written
    kRunRestarts,        ///< attempts that resumed from a checkpoint
    kRunDegradations,    ///< thread-budget halvings after stalls
    // Per-kernel backend counters (sliced-ELL engine, DESIGN.md §12).
    kEllSliceMultiplies, ///< sliced-ELL slice kernels executed
    kEllPaddedBlocks,    ///< zero-padding blocks streamed by those slices
    // Hierarchical shard x thread engine counters (DESIGN.md §13).
    kPinFailures,         ///< advisory thread pins that failed
    kShardRemoteBytes,    ///< exchange bytes crossing a shard boundary
    kShardLocalBytes,     ///< exchange bytes staying inside a shard
    kShardImbalanceMilli, ///< (max shard rows / mean - 1) * 1000
    // Scenario-service counters (service/service.h, DESIGN.md §14).
    kScenariosSubmitted,     ///< requests accepted into the queue
    kScenariosCompleted,     ///< scenarios that ran to completion
    kScenariosShed,          ///< requests shed (queue or admission)
    kScenarioDeadlineMisses, ///< runs aborted at an SLO deadline
    kScenarioCacheHits,      ///< prefix-cache stage hits
    kScenarioCacheMisses,    ///< prefix-cache stage misses (computed)
    kScenarioCacheEvictions, ///< LRU entries evicted for byte budget
    kScenarioResultBytes,    ///< result-record bytes streamed to disk
    kCount
};

/** Stable display name of a counter (metrics export). */
const char *counterName(Counter c);

/** Log-binned latency histograms (nanoseconds). */
enum class Hist : std::uint8_t
{
    kStepNanos,        ///< whole-step latency
    kSmvpNanos,        ///< SMVP (or fused pass) latency
    kLocalPhaseNanos,  ///< per-thread local-phase (compute) time
    kExchangeNanos,    ///< per-thread exchange-phase time
    kAcquireSpinNanos, ///< individual publish waits
    kForkJoinNanos,    ///< pool dispatch round trips
    kCount
};

/** Stable display name of a histogram (metrics export). */
const char *histName(Hist h);

/** One recorded begin/end interval. */
struct SpanEvent
{
    std::uint64_t begin = 0; ///< clock nanos at entry
    std::uint64_t end = 0;   ///< clock nanos at exit
    std::int32_t arg = -1;   ///< PE id or step number; -1 = none
    Span cat = Span::kStep;
};

/**
 * A power-of-two log-binned histogram over nonnegative nanosecond
 * values.  Bin 0 holds exactly {0}; bin b >= 1 holds [2^(b-1), 2^b).
 * Percentiles are reported as the upper edge of the bin containing the
 * requested rank, clamped to the exact observed maximum — closed-form
 * and therefore unit-testable (test_telemetry.cc).
 */
class Histogram
{
  public:
    static constexpr int kBins = 64;

    /** Bin index of value v (see class comment for the edges). */
    static int binIndex(std::uint64_t v);

    /** Inclusive lower edge of bin b. */
    static std::uint64_t binLowerEdge(int b);

    /** Inclusive upper edge of bin b (0 for bin 0). */
    static std::uint64_t binUpperEdge(int b);

    /** Record one value. */
    void
    record(std::uint64_t v)
    {
        bins_[binIndex(v)] += 1;
        count_ += 1;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    /** Fold `other` into this histogram (bin-wise; max of maxima). */
    void merge(const Histogram &other);

    /**
     * Value at percentile p in [0, 100]: the upper edge of the bin
     * where the cumulative count first reaches ceil(p/100 * count),
     * clamped to the exact maximum.  Returns 0 on an empty histogram.
     */
    double percentile(double p) const;

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }

    /** Mean of the recorded values (exact: sum / count). */
    double
    mean() const
    {
        return count_ > 0
                   ? static_cast<double>(sum_) / static_cast<double>(count_)
                   : 0.0;
    }

    /** Raw count in bin b (tests and exporters). */
    std::uint64_t binCount(int b) const { return bins_[b]; }

  private:
    std::array<std::uint64_t, kBins> bins_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Everything one thread records, padded so two slots never share a
 * cache line.  Slot 0 is the control (main) thread; slot 1 + tid is
 * worker tid of the engine's pool.
 */
struct alignas(64) ThreadSlot
{
    std::vector<SpanEvent> spans; ///< preallocated; spanCount live
    std::size_t spanCount = 0;
    std::uint64_t spansDropped = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
        counters{};
    std::array<Histogram, static_cast<std::size_t>(Hist::kCount)> hists{};
};

/** Construction-time configuration of a Collector. */
struct CollectorConfig
{
    /** Master switch; a disabled collector allocates and records nothing. */
    bool enabled = true;

    /**
     * Thread slots preallocated up front (0 = grow on demand via
     * ensureSlots, which instrumented components call at setup).
     */
    int threadSlots = 0;

    /** Span events preallocated per thread slot. */
    std::size_t spanCapacity = 1 << 16;

    /** Record fine-grained per-PE spans every this many steps (>= 1). */
    std::int64_t sampleEvery = 16;

    /** Time source; tests substitute a deterministic fake. */
    Clock::NowFn now = &Clock::steadyNanos;
};

/**
 * The collector.  Setup (construction, ensureSlots, setStep from the
 * control thread) allocates; steady-state recording never does.
 * Recording methods are wait-free: each thread writes only its own
 * padded slot, so no locks and no false sharing.
 */
class Collector
{
  public:
    explicit Collector(CollectorConfig config = {});

    bool enabled() const { return enabled_; }

    /** Read the configured clock. */
    std::uint64_t now() const { return now_(); }

    /** The fine-grained sampling period. */
    std::int64_t sampleEvery() const { return sample_every_; }

    /** Allocated thread slots (0 on a disabled collector). */
    int
    numSlots() const
    {
        return static_cast<int>(slots_.size());
    }

    /**
     * Grow to at least n slots.  Setup-time only: must not race with
     * recording.  No-op on a disabled collector.
     */
    void ensureSlots(int n);

    /**
     * Publish the current step number (control thread, once per step).
     * Fine-grained span recording fires on steps where
     * step % sampleEvery == 0.
     */
    void setStep(std::int64_t step);

    /** Latest published step. */
    std::int64_t
    step() const
    {
        return step_.load(std::memory_order_relaxed);
    }

    /** Whether fine-grained spans should be recorded right now. */
    bool
    sampledStep() const
    {
        return enabled_ && sampled_.load(std::memory_order_relaxed);
    }

    /** Append a span event to `slot`'s buffer (drops when full). */
    void
    recordSpan(int slot, Span cat, std::int32_t arg, std::uint64_t begin,
               std::uint64_t end)
    {
        if (!enabled_)
            return;
        ThreadSlot &s = *slots_[static_cast<std::size_t>(slot)];
        if (s.spanCount < s.spans.size()) {
            s.spans[s.spanCount++] = SpanEvent{begin, end, arg, cat};
        } else {
            s.spansDropped += 1;
        }
    }

    /** Add n to a counter in `slot`. */
    void
    add(int slot, Counter c, std::uint64_t n)
    {
        if (!enabled_)
            return;
        slots_[static_cast<std::size_t>(slot)]
            ->counters[static_cast<std::size_t>(c)] += n;
    }

    /** Record a nanosecond observation into a histogram in `slot`. */
    void
    observe(int slot, Hist h, std::uint64_t nanos)
    {
        if (!enabled_)
            return;
        slots_[static_cast<std::size_t>(slot)]
            ->hists[static_cast<std::size_t>(h)]
            .record(nanos);
    }

    /** Read-only view of one slot (exporters, tests). */
    const ThreadSlot &
    slot(int i) const
    {
        return *slots_[static_cast<std::size_t>(i)];
    }

    /** Sum of a counter over all slots, ascending slot order. */
    std::uint64_t counterTotal(Counter c) const;

    /** Histogram merged over all slots, ascending slot order. */
    Histogram mergedHistogram(Hist h) const;

    /** Total span events dropped across all slots. */
    std::uint64_t spansDropped() const;

    /** Total span events recorded across all slots. */
    std::uint64_t spansRecorded() const;

  private:
    bool enabled_;
    Clock::NowFn now_;
    std::int64_t sample_every_;
    std::size_t span_capacity_;
    std::atomic<std::int64_t> step_{0};
    std::atomic<bool> sampled_{true}; ///< step 0 is always sampled

    /** unique_ptr so slot addresses stay stable across ensureSlots. */
    std::vector<std::unique_ptr<ThreadSlot>> slots_;
};

/**
 * RAII span: reads the clock at construction and records on
 * destruction.  All cost collapses to one branch when the collector is
 * null or disabled.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Collector *c, int slot, Span cat, std::int32_t arg = -1)
        : c_(c != nullptr && c->enabled() ? c : nullptr), slot_(slot),
          cat_(cat), arg_(arg), begin_(c_ != nullptr ? c_->now() : 0)
    {}

    ~ScopedSpan()
    {
        if (c_ != nullptr)
            c_->recordSpan(slot_, cat_, arg_, begin_, c_->now());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Collector *c_;
    int slot_;
    Span cat_;
    std::int32_t arg_;
    std::uint64_t begin_;
};

} // namespace quake::telemetry

#endif // QUAKE98_TELEMETRY_COLLECTOR_H_
