/**
 * @file
 * Baseline partitioners used to show what the geometric partitioner buys
 * (the partition-quality ablation in DESIGN.md §4).  RandomPartitioner is
 * the no-locality worst case; SlabPartitioner cuts the domain into 1D
 * strips, which is balanced and local but has an O(n) boundary surface
 * instead of the geometric partitioner's O(n^{2/3}).
 */

#ifndef QUAKE98_PARTITION_BASELINES_H_
#define QUAKE98_PARTITION_BASELINES_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace quake::partition
{

/**
 * Assigns elements to parts uniformly at random (exactly balanced: a
 * shuffled block assignment).  Deterministic under a fixed seed.
 */
class RandomPartitioner : public Partitioner
{
  public:
    explicit RandomPartitioner(std::uint64_t seed = 0x9a9'7ee'd5ULL)
        : seed_(seed)
    {}

    Partition partition(const mesh::TetMesh &mesh,
                        int num_parts) const override;

    std::string name() const override { return "random"; }

  private:
    std::uint64_t seed_;
};

/**
 * Splits the element set into `num_parts` equal-count slabs ordered by
 * centroid x-coordinate (a 1D strip decomposition).
 */
class SlabPartitioner : public Partitioner
{
  public:
    Partition partition(const mesh::TetMesh &mesh,
                        int num_parts) const override;

    std::string name() const override { return "slab-x"; }
};

} // namespace quake::partition

#endif // QUAKE98_PARTITION_BASELINES_H_
