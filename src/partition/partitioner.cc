#include "partition/partitioner.h"

#include "common/error.h"

namespace quake::partition
{

std::vector<mesh::TetId>
Partition::elementsOf(PartId part) const
{
    std::vector<mesh::TetId> out;
    for (std::size_t t = 0; t < elementPart.size(); ++t)
        if (elementPart[t] == part)
            out.push_back(static_cast<mesh::TetId>(t));
    return out;
}

std::vector<std::int64_t>
Partition::partSizes() const
{
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(numParts), 0);
    for (PartId p : elementPart)
        ++sizes[p];
    return sizes;
}

void
Partition::validate(const mesh::TetMesh &mesh) const
{
    QUAKE_REQUIRE(numParts >= 1, "partition must have at least one part");
    QUAKE_REQUIRE(static_cast<std::int64_t>(elementPart.size()) ==
                      mesh.numElements(),
                  "partition size does not match element count");
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(numParts), 0);
    for (PartId p : elementPart) {
        QUAKE_REQUIRE(p >= 0 && p < numParts, "part id out of range");
        ++sizes[p];
    }
    for (int p = 0; p < numParts; ++p)
        QUAKE_REQUIRE(sizes[p] > 0, "part " << p << " is empty");
}

} // namespace quake::partition
