#include "partition/partition_stats.h"

#include <algorithm>

#include "common/error.h"

namespace quake::partition
{

NodeParts
buildNodeParts(const mesh::TetMesh &mesh, const Partition &partition)
{
    partition.validate(mesh);
    const std::int64_t n = mesh.numNodes();
    const std::int64_t m = mesh.numElements();

    NodeParts np;
    np.xadj.assign(static_cast<std::size_t>(n) + 1, 0);

    // Count (node, part) incidences with duplicates, then compact.
    for (mesh::TetId t = 0; t < m; ++t)
        for (mesh::NodeId v : mesh.tet(t).v)
            ++np.xadj[v + 1];
    for (std::int64_t i = 0; i < n; ++i)
        np.xadj[i + 1] += np.xadj[i];

    std::vector<PartId> raw(static_cast<std::size_t>(np.xadj[n]));
    std::vector<std::int64_t> cursor(np.xadj.begin(), np.xadj.end() - 1);
    for (mesh::TetId t = 0; t < m; ++t) {
        const PartId p = partition.elementPart[t];
        for (mesh::NodeId v : mesh.tet(t).v)
            raw[cursor[v]++] = p;
    }

    np.parts.reserve(static_cast<std::size_t>(n) * 2);
    std::int64_t write_start = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        auto first = raw.begin() + np.xadj[i];
        auto last = raw.begin() + np.xadj[i + 1];
        std::sort(first, last);
        auto unique_end = std::unique(first, last);
        np.parts.insert(np.parts.end(), first, unique_end);
        np.xadj[i] = write_start;
        write_start = static_cast<std::int64_t>(np.parts.size());
    }
    np.xadj[n] = write_start;
    return np;
}

PartitionStats
computePartitionStats(const mesh::TetMesh &mesh, const Partition &partition)
{
    PartitionStats stats;
    stats.numParts = partition.numParts;

    const std::vector<std::int64_t> sizes = partition.partSizes();
    stats.minElements = *std::min_element(sizes.begin(), sizes.end());
    stats.maxElements = *std::max_element(sizes.begin(), sizes.end());
    const double mean =
        static_cast<double>(mesh.numElements()) / partition.numParts;
    stats.elementImbalance = static_cast<double>(stats.maxElements) / mean;

    const NodeParts np = buildNodeParts(mesh, partition);
    for (mesh::NodeId i = 0; i < mesh.numNodes(); ++i) {
        const int mult = np.multiplicity(i);
        stats.maxNodeMultiplicity = std::max(stats.maxNodeMultiplicity,
                                             mult);
        if (mult >= 2) {
            ++stats.sharedNodes;
            stats.totalReplicas += mult - 1;
        }
    }
    return stats;
}

} // namespace quake::partition
