#include "partition/refine_boundary.h"

#include <algorithm>

#include "common/error.h"

namespace quake::partition
{

namespace
{

/**
 * Per-node incidence counts: for each node, the list of (part, number
 * of incident elements in that part).  Node multiplicities are tiny
 * (a handful of parts touch any one node), so flat vectors beat maps.
 */
class NodePartCounts
{
  public:
    NodePartCounts(const mesh::TetMesh &mesh, const Partition &partition)
        : counts_(static_cast<std::size_t>(mesh.numNodes()))
    {
        for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
            const PartId p = partition.elementPart[t];
            for (mesh::NodeId v : mesh.tet(t).v)
                add(v, p);
        }
    }

    int
    count(mesh::NodeId v, PartId p) const
    {
        for (const auto &[part, n] : counts_[v])
            if (part == p)
                return n;
        return 0;
    }

    /** Number of distinct parts touching node v. */
    int
    multiplicity(mesh::NodeId v) const
    {
        return static_cast<int>(counts_[v].size());
    }

    /** Parts currently touching node v. */
    const std::vector<std::pair<PartId, int>> &
    parts(mesh::NodeId v) const
    {
        return counts_[v];
    }

    void
    add(mesh::NodeId v, PartId p)
    {
        for (auto &[part, n] : counts_[v]) {
            if (part == p) {
                ++n;
                return;
            }
        }
        counts_[v].emplace_back(p, 1);
    }

    void
    remove(mesh::NodeId v, PartId p)
    {
        auto &list = counts_[v];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].first == p) {
                if (--list[i].second == 0) {
                    list[i] = list.back();
                    list.pop_back();
                }
                return;
            }
        }
        QUAKE_PANIC("removing a (node, part) incidence that is absent");
    }

    /** Total replicas: sum over nodes of (multiplicity - 1). */
    std::int64_t
    totalReplicas() const
    {
        std::int64_t total = 0;
        for (const auto &list : counts_)
            if (!list.empty())
                total += static_cast<std::int64_t>(list.size()) - 1;
        return total;
    }

  private:
    std::vector<std::vector<std::pair<PartId, int>>> counts_;
};

/** Replica change if element t (currently in `from`) moved to `to`. */
int
moveGain(const mesh::TetMesh &mesh, const NodePartCounts &counts,
         mesh::TetId t, PartId from, PartId to)
{
    int delta = 0;
    for (mesh::NodeId v : mesh.tet(t).v) {
        if (counts.count(v, from) == 1)
            --delta; // `from` disappears from this node
        if (counts.count(v, to) == 0)
            ++delta; // `to` appears at this node
    }
    return delta;
}

} // namespace

BoundaryRefineReport
refineBoundary(const mesh::TetMesh &mesh, Partition &partition,
               const BoundaryRefineOptions &options)
{
    partition.validate(mesh);
    QUAKE_EXPECT(options.maxImbalance >= 1.0,
                 "maxImbalance must be >= 1");

    NodePartCounts counts(mesh, partition);
    std::vector<std::int64_t> sizes = partition.partSizes();
    const double mean = static_cast<double>(mesh.numElements()) /
                        partition.numParts;
    const std::int64_t size_cap = static_cast<std::int64_t>(
        options.maxImbalance * mean);

    BoundaryRefineReport report;
    report.replicasBefore = counts.totalReplicas();

    for (int pass = 0; pass < options.maxPasses; ++pass) {
        std::int64_t moves_this_pass = 0;
        for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
            const PartId from = partition.elementPart[t];
            if (sizes[from] <= 1)
                continue; // never empty a part

            // Candidate targets: parts already present at this
            // element's nodes.
            PartId best_to = from;
            int best_gain = 0;
            for (mesh::NodeId v : mesh.tet(t).v) {
                if (counts.multiplicity(v) < 2)
                    continue;
                for (const auto &[to, n] : counts.parts(v)) {
                    (void)n;
                    if (to == from || sizes[to] + 1 > size_cap)
                        continue;
                    const int gain = moveGain(mesh, counts, t, from, to);
                    if (gain < best_gain ||
                        (gain == best_gain && gain < 0 &&
                         to < best_to)) {
                        best_gain = gain;
                        best_to = to;
                    }
                }
            }
            if (best_gain < 0) {
                for (mesh::NodeId v : mesh.tet(t).v) {
                    counts.remove(v, from);
                    counts.add(v, best_to);
                }
                partition.elementPart[t] = best_to;
                --sizes[from];
                ++sizes[best_to];
                ++moves_this_pass;
            }
        }
        ++report.passes;
        report.moves += moves_this_pass;
        if (moves_this_pass == 0)
            break;
    }

    report.replicasAfter = counts.totalReplicas();
    partition.validate(mesh);
    return report;
}

} // namespace quake::partition
