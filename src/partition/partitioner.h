/**
 * @file
 * Mesh partitioning interfaces (paper §2.2).
 *
 * Archimedes assigns each *element* to exactly one subdomain (one per PE);
 * mesh nodes on subdomain boundaries are replicated on every PE whose
 * elements touch them.  A Partition is therefore a map from element id to
 * part id.  Partition quality drives every number in the paper's Figure 7:
 * element balance determines F, and the shared-node surface determines
 * C_max and B_max.
 */

#ifndef QUAKE98_PARTITION_PARTITIONER_H_
#define QUAKE98_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/tet_mesh.h"

namespace quake::partition
{

/** Identifier of a subdomain / processing element. */
using PartId = std::int32_t;

/** An assignment of every mesh element to a subdomain. */
struct Partition
{
    /** Number of subdomains p. */
    int numParts = 0;

    /** Part of each element; size = mesh.numElements(), values in [0, p). */
    std::vector<PartId> elementPart;

    /** Elements assigned to part `part` (linear scan; used by tooling). */
    std::vector<mesh::TetId> elementsOf(PartId part) const;

    /** Histogram of elements per part. */
    std::vector<std::int64_t> partSizes() const;

    /**
     * Check invariants against a mesh: size matches the element count,
     * every value is a valid part, and no part is empty.
     */
    void validate(const mesh::TetMesh &mesh) const;
};

/** Strategy interface implemented by the concrete partitioners. */
class Partitioner
{
  public:
    virtual ~Partitioner() = default;

    /**
     * Partition `mesh` into `num_parts` subdomains.
     *
     * @param mesh      Mesh to partition; must have >= num_parts elements.
     * @param num_parts Number of subdomains (>= 1).
     */
    virtual Partition partition(const mesh::TetMesh &mesh,
                                int num_parts) const = 0;

    /** Human-readable strategy name for reports. */
    virtual std::string name() const = 0;
};

} // namespace quake::partition

#endif // QUAKE98_PARTITION_PARTITIONER_H_
