#include "partition/baselines.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace quake::partition
{

Partition
RandomPartitioner::partition(const mesh::TetMesh &mesh, int num_parts) const
{
    QUAKE_EXPECT(num_parts >= 1, "num_parts must be >= 1");
    QUAKE_EXPECT(mesh.numElements() >= num_parts,
                 "mesh has fewer elements than parts");

    const std::size_t m = static_cast<std::size_t>(mesh.numElements());
    std::vector<mesh::TetId> order(m);
    std::iota(order.begin(), order.end(), 0);

    // Fisher-Yates with the library RNG for determinism.
    quake::common::SplitMix64 rng(seed_);
    for (std::size_t i = m - 1; i > 0; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.nextBounded(i + 1));
        std::swap(order[i], order[j]);
    }

    Partition result;
    result.numParts = num_parts;
    result.elementPart.assign(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
        result.elementPart[order[i]] = static_cast<PartId>(
            i * static_cast<std::size_t>(num_parts) / m);
    }
    result.validate(mesh);
    return result;
}

Partition
SlabPartitioner::partition(const mesh::TetMesh &mesh, int num_parts) const
{
    QUAKE_EXPECT(num_parts >= 1, "num_parts must be >= 1");
    QUAKE_EXPECT(mesh.numElements() >= num_parts,
                 "mesh has fewer elements than parts");

    const std::size_t m = static_cast<std::size_t>(mesh.numElements());
    std::vector<mesh::TetId> order(m);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](mesh::TetId a, mesh::TetId b) {
                  const double xa = mesh.tetCentroidOf(a).x;
                  const double xb = mesh.tetCentroidOf(b).x;
                  return xa < xb || (xa == xb && a < b);
              });

    Partition result;
    result.numParts = num_parts;
    result.elementPart.assign(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
        result.elementPart[order[i]] = static_cast<PartId>(
            i * static_cast<std::size_t>(num_parts) / m);
    }
    result.validate(mesh);
    return result;
}

} // namespace quake::partition
