/**
 * @file
 * Recursive geometric bisection (paper §2.2, ref [12]).
 *
 * The Quake applications are partitioned by a recursive geometric algorithm
 * (Miller, Teng, Thurston, Vavasis) that divides elements equally while
 * minimizing the shared-node surface.  This implementation recursively
 * splits the element set at the median of its centroids' projection onto a
 * separating axis; the axis is either the longest extent of the subset's
 * bounding box (coordinate bisection) or the principal axis of the
 * centroid distribution (inertial bisection).  Both produce compact,
 * well-balanced subdomains with the O(n^{2/3}) shared-node surface the
 * paper's analysis relies on.
 */

#ifndef QUAKE98_PARTITION_GEOMETRIC_BISECTION_H_
#define QUAKE98_PARTITION_GEOMETRIC_BISECTION_H_

#include "partition/partitioner.h"

namespace quake::partition
{

/** How the separating axis is chosen at each bisection step. */
enum class BisectionAxis
{
    kLongestExtent, ///< longest side of the subset's centroid bounding box
    kInertial,      ///< principal axis of the centroid covariance
};

/** Recursive geometric bisection partitioner. */
class GeometricBisection : public Partitioner
{
  public:
    explicit GeometricBisection(
        BisectionAxis axis = BisectionAxis::kInertial)
        : axis_(axis)
    {}

    Partition partition(const mesh::TetMesh &mesh,
                        int num_parts) const override;

    std::string name() const override;

  private:
    BisectionAxis axis_;
};

} // namespace quake::partition

#endif // QUAKE98_PARTITION_GEOMETRIC_BISECTION_H_
