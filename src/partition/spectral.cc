#include "partition/spectral.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace quake::partition
{

DualGraph
buildDualGraph(const mesh::TetMesh &mesh)
{
    using FaceKey = std::array<mesh::NodeId, 3>;
    // face -> (first element, or -1 once paired)
    std::map<FaceKey, std::pair<std::int32_t, std::int32_t>> faces;

    const std::int64_t m = mesh.numElements();
    for (mesh::TetId t = 0; t < m; ++t) {
        const mesh::Tet &e = mesh.tet(t);
        for (const auto &f : mesh::kTetFaces) {
            FaceKey key{e.v[f[0]], e.v[f[1]], e.v[f[2]]};
            std::sort(key.begin(), key.end());
            auto [it, inserted] =
                faces.emplace(key, std::make_pair(t, -1));
            if (!inserted) {
                QUAKE_REQUIRE(it->second.second == -1,
                              "face shared by more than two elements");
                it->second.second = t;
            }
        }
    }

    DualGraph g;
    g.xadj.assign(static_cast<std::size_t>(m) + 1, 0);
    for (const auto &[key, pair] : faces) {
        (void)key;
        if (pair.second >= 0) {
            ++g.xadj[pair.first + 1];
            ++g.xadj[pair.second + 1];
        }
    }
    for (std::int64_t i = 0; i < m; ++i)
        g.xadj[i + 1] += g.xadj[i];
    g.adjncy.resize(static_cast<std::size_t>(g.xadj[m]));
    std::vector<std::int64_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
    for (const auto &[key, pair] : faces) {
        (void)key;
        if (pair.second >= 0) {
            g.adjncy[cursor[pair.first]++] = pair.second;
            g.adjncy[cursor[pair.second]++] = pair.first;
        }
    }
    return g;
}

namespace
{

/**
 * Smallest eigenpair of the symmetric tridiagonal matrix T given by
 * diagonals alpha[0..m) and off-diagonals beta[0..m-1).  Eigenvalue by
 * Sturm-sequence bisection, eigenvector by inverse iteration.
 */
struct TridiagEig
{
    double value = 0.0;
    std::vector<double> vector;
};

int
sturmCountBelow(const std::vector<double> &alpha,
                const std::vector<double> &beta, double x)
{
    // Number of eigenvalues of T strictly below x.
    const std::size_t m = alpha.size();
    int count = 0;
    double d = alpha[0] - x;
    if (d < 0)
        ++count;
    for (std::size_t i = 1; i < m; ++i) {
        const double b2 = beta[i - 1] * beta[i - 1];
        const double denom =
            std::fabs(d) < 1e-300 ? std::copysign(1e-300, d) : d;
        d = alpha[i] - x - b2 / denom;
        if (d < 0)
            ++count;
    }
    return count;
}

TridiagEig
smallestTridiagEig(const std::vector<double> &alpha,
                   const std::vector<double> &beta)
{
    const std::size_t m = alpha.size();
    TridiagEig out;
    if (m == 1) {
        out.value = alpha[0];
        out.vector = {1.0};
        return out;
    }

    // Gershgorin bounds.
    double lo = alpha[0], hi = alpha[0];
    for (std::size_t i = 0; i < m; ++i) {
        const double r = (i > 0 ? std::fabs(beta[i - 1]) : 0.0) +
                         (i + 1 < m ? std::fabs(beta[i]) : 0.0);
        lo = std::min(lo, alpha[i] - r);
        hi = std::max(hi, alpha[i] + r);
    }

    // Bisection for the smallest eigenvalue.
    for (int iter = 0; iter < 200 && hi - lo > 1e-13 * (1 + std::fabs(hi));
         ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (sturmCountBelow(alpha, beta, mid) >= 1)
            hi = mid;
        else
            lo = mid;
    }
    out.value = 0.5 * (lo + hi);

    // Inverse iteration: (T - (lambda - eps) I) x = b, tridiagonal LU
    // with partial pivoting (two-band upper factor).
    const double shift = out.value - 1e-10 * (1.0 + std::fabs(out.value));
    std::vector<double> x(m, 1.0 / std::sqrt(static_cast<double>(m)));
    for (int pass = 0; pass < 3; ++pass) {
        // Solve (T - shift I) y = x in place via the Thomas algorithm
        // with a tiny diagonal regularizer for robustness.
        std::vector<double> d(m), c(m, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            d[i] = alpha[i] - shift;
        std::vector<double> y = x;
        for (std::size_t i = 1; i < m; ++i) {
            const double denom = std::fabs(d[i - 1]) < 1e-30
                                     ? std::copysign(1e-30, d[i - 1])
                                     : d[i - 1];
            const double w = beta[i - 1] / denom;
            d[i] -= w * beta[i - 1];
            y[i] -= w * y[i - 1];
            c[i - 1] = beta[i - 1];
        }
        const double denom_last =
            std::fabs(d[m - 1]) < 1e-30 ? std::copysign(1e-30, d[m - 1])
                                        : d[m - 1];
        y[m - 1] /= denom_last;
        for (std::size_t i = m - 1; i-- > 0;) {
            const double denom = std::fabs(d[i]) < 1e-30
                                     ? std::copysign(1e-30, d[i])
                                     : d[i];
            y[i] = (y[i] - c[i] * y[i + 1]) / denom;
        }
        double norm = 0;
        for (double v : y)
            norm += v * v;
        norm = std::sqrt(norm);
        QUAKE_REQUIRE(norm > 0, "inverse iteration collapsed");
        for (std::size_t i = 0; i < m; ++i)
            x[i] = y[i] / norm;
    }
    out.vector = std::move(x);
    return out;
}

/** Induced subgraph Laplacian operator context. */
struct SubgraphContext
{
    const DualGraph &graph;
    const std::vector<std::int32_t> &vertices; ///< global ids, this subset
    std::vector<std::int32_t> local_of;        ///< global -> local or -1

    SubgraphContext(const DualGraph &g,
                    const std::vector<std::int32_t> &verts)
        : graph(g), vertices(verts),
          local_of(static_cast<std::size_t>(g.numVertices()), -1)
    {
        for (std::size_t i = 0; i < verts.size(); ++i)
            local_of[verts[i]] = static_cast<std::int32_t>(i);
    }

    /** y = L x on the induced subgraph. */
    void
    applyLaplacian(const std::vector<double> &x,
                   std::vector<double> &y) const
    {
        const std::size_t n = vertices.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::int32_t g = vertices[i];
            double degree = 0.0;
            double sum = 0.0;
            for (std::int64_t k = graph.xadj[g]; k < graph.xadj[g + 1];
                 ++k) {
                const std::int32_t nb = local_of[graph.adjncy[k]];
                if (nb < 0)
                    continue; // neighbour outside this subset
                degree += 1.0;
                sum += x[static_cast<std::size_t>(nb)];
            }
            y[i] = degree * x[i] - sum;
        }
    }
};

/** Remove the component along the all-ones vector and normalize. */
void
deflateConstant(std::vector<double> &v)
{
    double mean = 0;
    for (double x : v)
        mean += x;
    mean /= static_cast<double>(v.size());
    double norm = 0;
    for (double &x : v) {
        x -= mean;
        norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm > 0)
        for (double &x : v)
            x /= norm;
}

/**
 * Approximate Fiedler vector of the induced subgraph via Lanczos with
 * full reorthogonalization against the basis and the constant vector.
 */
std::vector<double>
fiedlerVector(const SubgraphContext &ctx, const SpectralOptions &options,
              std::uint64_t seed)
{
    const std::size_t n = ctx.vertices.size();
    QUAKE_REQUIRE(n >= 2, "fiedler needs at least two vertices");

    common::SplitMix64 rng(seed);
    std::vector<std::vector<double>> basis;
    std::vector<double> alpha, beta;

    std::vector<double> q(n);
    for (double &x : q)
        x = rng.uniform(-1, 1);
    deflateConstant(q);

    std::vector<double> w(n), prev;
    const int max_iter =
        std::min<std::int64_t>(options.maxIterations,
                               static_cast<std::int64_t>(n) - 1);
    double prev_ritz = std::numeric_limits<double>::infinity();

    for (int j = 0; j < max_iter; ++j) {
        basis.push_back(q);
        ctx.applyLaplacian(q, w);
        if (!prev.empty())
            for (std::size_t i = 0; i < n; ++i)
                w[i] -= beta.back() * prev[i];
        double a = 0;
        for (std::size_t i = 0; i < n; ++i)
            a += w[i] * q[i];
        alpha.push_back(a);
        for (std::size_t i = 0; i < n; ++i)
            w[i] -= a * q[i];

        // Full reorthogonalization (against the basis and constants).
        for (const std::vector<double> &b : basis) {
            double dot = 0;
            for (std::size_t i = 0; i < n; ++i)
                dot += w[i] * b[i];
            for (std::size_t i = 0; i < n; ++i)
                w[i] -= dot * b[i];
        }
        // Deflate the constant (lambda = 0) eigenvector: subtract the
        // mean, but keep the norm — it is the Lanczos beta.
        double mean = 0;
        for (double x : w)
            mean += x;
        mean /= static_cast<double>(n);
        double norm = 0;
        for (double &x : w) {
            x -= mean;
            norm += x * x;
        }
        norm = std::sqrt(norm);
        if (norm < 1e-12 || !std::isfinite(norm))
            break; // Krylov space exhausted

        // Convergence check on the smallest Ritz value every few steps.
        if (j >= 3 && j % 4 == 0) {
            const TridiagEig eig = smallestTridiagEig(alpha, beta);
            if (std::fabs(prev_ritz - eig.value) <=
                options.tolerance * (1.0 + std::fabs(eig.value))) {
                prev_ritz = eig.value;
                break;
            }
            prev_ritz = eig.value;
        }

        beta.push_back(norm);
        prev = q;
        q = w;
        for (double &x : q)
            x /= norm;
    }

    // Assemble the Ritz vector in the original space.
    const TridiagEig eig = smallestTridiagEig(alpha, beta);
    std::vector<double> fiedler(n, 0.0);
    for (std::size_t j = 0; j < basis.size() && j < eig.vector.size();
         ++j)
        for (std::size_t i = 0; i < n; ++i)
            fiedler[i] += eig.vector[j] * basis[j][i];
    return fiedler;
}

struct SpectralContext
{
    const DualGraph &graph;
    const SpectralOptions &options;
    std::vector<PartId> &element_part;
};

void
spectralRecurse(SpectralContext &ctx, std::vector<std::int32_t> vertices,
                PartId part_lo, int parts, std::uint64_t seed)
{
    if (parts == 1) {
        for (std::int32_t v : vertices)
            ctx.element_part[v] = part_lo;
        return;
    }

    const int parts_left = parts / 2;
    const std::size_t count_left =
        vertices.size() * static_cast<std::size_t>(parts_left) /
        static_cast<std::size_t>(parts);

    const SubgraphContext sub(ctx.graph, vertices);
    const std::vector<double> fiedler =
        fiedlerVector(sub, ctx.options, seed);

    // Sort subset vertices by Fiedler value; split proportionally.
    std::vector<std::int32_t> order(vertices.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::int32_t a, std::int32_t b) {
                  return fiedler[a] < fiedler[b] ||
                         (fiedler[a] == fiedler[b] &&
                          vertices[a] < vertices[b]);
              });

    std::vector<std::int32_t> left, right;
    left.reserve(count_left);
    right.reserve(vertices.size() - count_left);
    for (std::size_t i = 0; i < order.size(); ++i)
        (i < count_left ? left : right).push_back(vertices[order[i]]);

    spectralRecurse(ctx, std::move(left), part_lo, parts_left,
                    seed * 6364136223846793005ULL + 1);
    spectralRecurse(ctx, std::move(right), part_lo + parts_left,
                    parts - parts_left,
                    seed * 6364136223846793005ULL + 2);
}

} // namespace

Partition
SpectralBisection::partition(const mesh::TetMesh &mesh,
                             int num_parts) const
{
    QUAKE_EXPECT(num_parts >= 1, "num_parts must be >= 1");
    QUAKE_EXPECT(mesh.numElements() >= num_parts,
                 "mesh has fewer elements than parts");

    const DualGraph graph = buildDualGraph(mesh);
    Partition result;
    result.numParts = num_parts;
    result.elementPart.assign(
        static_cast<std::size_t>(mesh.numElements()), 0);

    std::vector<std::int32_t> all(
        static_cast<std::size_t>(mesh.numElements()));
    std::iota(all.begin(), all.end(), 0);

    SpectralContext ctx{graph, options_, result.elementPart};
    spectralRecurse(ctx, std::move(all), 0, num_parts, options_.seed);
    result.validate(mesh);
    return result;
}

} // namespace quake::partition
