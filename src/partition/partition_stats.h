/**
 * @file
 * Partition quality metrics (paper §2.2): element balance and the
 * shared-node surface.  A node is *shared* when elements from more than
 * one subdomain touch it; shared nodes are replicated on every touching
 * PE and are exactly the values exchanged in the SMVP communication phase.
 */

#ifndef QUAKE98_PARTITION_PARTITION_STATS_H_
#define QUAKE98_PARTITION_PARTITION_STATS_H_

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"

namespace quake::partition
{

/** Map from each node to the set of parts whose elements touch it. */
struct NodeParts
{
    /** CSR offsets; size numNodes + 1. */
    std::vector<std::int64_t> xadj;
    /** Concatenated sorted part lists per node. */
    std::vector<PartId> parts;

    /** Number of parts touching node n. */
    int
    multiplicity(mesh::NodeId n) const
    {
        return static_cast<int>(xadj[n + 1] - xadj[n]);
    }
};

/** Aggregate partition quality numbers. */
struct PartitionStats
{
    int numParts = 0;
    std::int64_t minElements = 0; ///< smallest part, in elements
    std::int64_t maxElements = 0; ///< largest part, in elements
    double elementImbalance = 0;  ///< max / mean element count
    std::int64_t sharedNodes = 0; ///< nodes touched by >= 2 parts
    std::int64_t totalReplicas = 0; ///< sum over nodes of (parts - 1)
    int maxNodeMultiplicity = 0;  ///< most parts touching one node
};

/** Compute the node -> parts incidence for a partition. */
NodeParts buildNodeParts(const mesh::TetMesh &mesh,
                         const Partition &partition);

/** Compute aggregate quality statistics for a partition. */
PartitionStats computePartitionStats(const mesh::TetMesh &mesh,
                                     const Partition &partition);

} // namespace quake::partition

#endif // QUAKE98_PARTITION_PARTITION_STATS_H_
