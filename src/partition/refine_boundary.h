/**
 * @file
 * Greedy boundary refinement of an element partition — the
 * Kernighan-Lin/Fiduccia-Mattheyses idea specialized to the shared-node
 * objective the paper cares about (C_max in Figure 7 is 6x the shared
 * node count of the worst PE pair chain).
 *
 * Each pass visits elements on subdomain boundaries and moves one to a
 * neighbouring subdomain when the move strictly reduces the number of
 * (node, part) replicas without pushing the element balance past a
 * threshold.  This is the cheap "polish" step partitioning packages
 * (Chaco, ref [8]) run after a global method; the ablation bench shows
 * what it buys on top of geometric and spectral bisection.
 */

#ifndef QUAKE98_PARTITION_REFINE_BOUNDARY_H_
#define QUAKE98_PARTITION_REFINE_BOUNDARY_H_

#include "partition/partitioner.h"

namespace quake::partition
{

/** Controls for the refinement sweeps. */
struct BoundaryRefineOptions
{
    /** Maximum sweeps over the boundary; stops early when no move helps. */
    int maxPasses = 8;

    /** Maximum allowed elements-per-part ratio to the mean (balance). */
    double maxImbalance = 1.03;
};

/** What a refinement run did. */
struct BoundaryRefineReport
{
    int passes = 0;
    std::int64_t moves = 0;          ///< elements moved between parts
    std::int64_t replicasBefore = 0; ///< sum over nodes of (parts - 1)
    std::int64_t replicasAfter = 0;
};

/**
 * Refine `partition` in place.  The objective is the total number of
 * node replicas (the global communication volume in words / 6); each
 * accepted move strictly decreases it.  Balance is enforced against
 * options.maxImbalance, and no part is ever emptied.
 */
BoundaryRefineReport refineBoundary(
    const mesh::TetMesh &mesh, Partition &partition,
    const BoundaryRefineOptions &options = {});

/** A partitioner decorator: base method + boundary refinement. */
class RefinedPartitioner : public Partitioner
{
  public:
    RefinedPartitioner(const Partitioner &base,
                       const BoundaryRefineOptions &options = {})
        : base_(base), options_(options)
    {}

    Partition
    partition(const mesh::TetMesh &mesh, int num_parts) const override
    {
        Partition p = base_.partition(mesh, num_parts);
        refineBoundary(mesh, p, options_);
        return p;
    }

    std::string
    name() const override
    {
        return base_.name() + "+refine";
    }

  private:
    const Partitioner &base_;
    BoundaryRefineOptions options_;
};

} // namespace quake::partition

#endif // QUAKE98_PARTITION_REFINE_BOUNDARY_H_
