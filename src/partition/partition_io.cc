#include "partition/partition_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace quake::partition
{

void
writePartition(const Partition &partition, std::ostream &os)
{
    os << partition.elementPart.size() << ' ' << partition.numParts
       << '\n';
    for (std::size_t t = 0; t < partition.elementPart.size(); ++t)
        os << t << ' ' << partition.elementPart[t] << '\n';
}

void
writePartition(const Partition &partition, const std::string &path)
{
    std::ofstream os(path);
    QUAKE_EXPECT(os.good(), "cannot open " << path << " for writing");
    writePartition(partition, os);
}

namespace
{

bool
nextRecord(std::istream &is, std::istringstream &record)
{
    std::string line;
    while (std::getline(is, line)) {
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        record.clear();
        record.str(line);
        return true;
    }
    return false;
}

} // namespace

Partition
readPartition(std::istream &is)
{
    std::istringstream record;
    QUAKE_EXPECT(nextRecord(is, record), ".part stream is empty");
    std::int64_t num_elements = 0;
    int num_parts = 0;
    QUAKE_EXPECT(static_cast<bool>(record >> num_elements >> num_parts),
                 "malformed .part header");
    QUAKE_EXPECT(num_elements >= 0 && num_parts >= 1,
                 "invalid .part header counts");

    Partition partition;
    partition.numParts = num_parts;
    partition.elementPart.assign(
        static_cast<std::size_t>(num_elements), -1);

    long long first_index = 0;
    for (std::int64_t i = 0; i < num_elements; ++i) {
        QUAKE_EXPECT(nextRecord(is, record),
                     ".part stream truncated at record " << i);
        long long idx = 0;
        long long part = 0;
        QUAKE_EXPECT(static_cast<bool>(record >> idx >> part),
                     "malformed .part record " << i);
        if (i == 0) {
            QUAKE_EXPECT(idx == 0 || idx == 1,
                         "first element index must be 0 or 1");
            first_index = idx;
        }
        QUAKE_EXPECT(idx == first_index + i,
                     ".part indices must be consecutive");
        QUAKE_EXPECT(part >= 0 && part < num_parts,
                     ".part part id out of range");
        partition.elementPart[i] = static_cast<PartId>(part);
    }
    return partition;
}

Partition
readPartition(const std::string &path)
{
    std::ifstream is(path);
    QUAKE_EXPECT(is.good(), "cannot open " << path);
    return readPartition(is);
}

} // namespace quake::partition
