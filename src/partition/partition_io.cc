#include "partition/partition_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/error.h"

namespace quake::partition
{

void
writePartition(const Partition &partition, std::ostream &os)
{
    os << partition.elementPart.size() << ' ' << partition.numParts
       << '\n';
    for (std::size_t t = 0; t < partition.elementPart.size(); ++t)
        os << t << ' ' << partition.elementPart[t] << '\n';
}

void
writePartition(const Partition &partition, const std::string &path)
{
    std::ofstream os(path);
    const std::string why = common::errnoMessage();
    QUAKE_EXPECT(os.good(),
                 "cannot open " << path << " for writing: " << why);
    writePartition(partition, os);
}

namespace
{

/**
 * Largest element/part count a header may declare; a corrupt header
 * must fail loudly instead of driving a huge allocation.
 */
constexpr std::int64_t kMaxDeclaredCount = 1'000'000'000;

bool
nextRecord(std::istream &is, std::istringstream &record)
{
    std::string line;
    while (std::getline(is, line)) {
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        record.clear();
        record.str(line);
        return true;
    }
    return false;
}

} // namespace

Partition
readPartition(std::istream &is)
{
    std::istringstream record;
    QUAKE_EXPECT(nextRecord(is, record), ".part stream is empty");
    std::int64_t num_elements = 0;
    std::int64_t num_parts = 0;
    QUAKE_EXPECT(static_cast<bool>(record >> num_elements >> num_parts),
                 "malformed .part header (non-numeric counts): '"
                     << record.str() << "'");
    QUAKE_EXPECT(num_elements >= 0,
                 "negative .part element count " << num_elements);
    QUAKE_EXPECT(num_parts >= 1,
                 ".part part count must be >= 1, got " << num_parts);
    QUAKE_EXPECT(num_elements <= kMaxDeclaredCount,
                 ".part element count " << num_elements
                                        << " exceeds the supported maximum "
                                        << kMaxDeclaredCount
                                        << " (corrupt header?)");
    QUAKE_EXPECT(num_parts <= kMaxDeclaredCount,
                 ".part part count " << num_parts
                                     << " exceeds the supported maximum "
                                     << kMaxDeclaredCount
                                     << " (corrupt header?)");

    Partition partition;
    partition.numParts = static_cast<int>(num_parts);
    partition.elementPart.assign(
        static_cast<std::size_t>(num_elements), -1);

    long long first_index = 0;
    for (std::int64_t i = 0; i < num_elements; ++i) {
        QUAKE_EXPECT(nextRecord(is, record),
                     ".part stream truncated at record " << i << " of "
                                                         << num_elements);
        long long idx = 0;
        long long part = 0;
        QUAKE_EXPECT(static_cast<bool>(record >> idx >> part),
                     "malformed .part record " << i
                                               << " (non-numeric token): '"
                                               << record.str() << "'");
        if (i == 0) {
            QUAKE_EXPECT(idx == 0 || idx == 1,
                         "first element index must be 0 or 1, got "
                             << idx);
            first_index = idx;
        }
        QUAKE_EXPECT(idx == first_index + i,
                     ".part indices must be consecutive: record " << i
                         << " has index " << idx);
        QUAKE_EXPECT(part >= 0 && part < num_parts,
                     ".part record " << i << " part id " << part
                                     << " out of range [0, " << num_parts
                                     << ")");
        partition.elementPart[i] = static_cast<PartId>(part);
    }
    return partition;
}

Partition
readPartition(const std::string &path)
{
    std::ifstream is(path);
    const std::string why = common::errnoMessage();
    QUAKE_EXPECT(is.good(), "cannot open " << path << ": " << why);
    return readPartition(is);
}

} // namespace quake::partition
