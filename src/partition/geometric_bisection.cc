#include "partition/geometric_bisection.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "mesh/geometry.h"

namespace quake::partition
{

namespace
{

using mesh::TetId;
using mesh::Vec3;

/** Longest-extent axis of the bounding box of centroids[lo..hi). */
Vec3
longestExtentAxis(const std::vector<Vec3> &centroids,
                  const std::vector<TetId> &order, std::size_t lo,
                  std::size_t hi)
{
    mesh::Aabb box{centroids[order[lo]], centroids[order[lo]]};
    for (std::size_t i = lo + 1; i < hi; ++i)
        box.expand(centroids[order[i]]);
    const Vec3 ext = box.extent();
    if (ext.x >= ext.y && ext.x >= ext.z)
        return Vec3{1, 0, 0};
    if (ext.y >= ext.x && ext.y >= ext.z)
        return Vec3{0, 1, 0};
    return Vec3{0, 0, 1};
}

/**
 * Principal axis of the centroid cloud via power iteration on the 3x3
 * covariance matrix.  Deterministic: fixed start vector, fixed iteration
 * count (the matrix is symmetric PSD, so convergence is fast; exact
 * eigenvector accuracy is irrelevant for a median split).
 */
Vec3
inertialAxis(const std::vector<Vec3> &centroids,
             const std::vector<TetId> &order, std::size_t lo, std::size_t hi)
{
    const double count = static_cast<double>(hi - lo);
    Vec3 mean{};
    for (std::size_t i = lo; i < hi; ++i)
        mean += centroids[order[i]];
    mean = mean / count;

    // Covariance, upper triangle.
    double cxx = 0, cxy = 0, cxz = 0, cyy = 0, cyz = 0, czz = 0;
    for (std::size_t i = lo; i < hi; ++i) {
        const Vec3 d = centroids[order[i]] - mean;
        cxx += d.x * d.x;
        cxy += d.x * d.y;
        cxz += d.x * d.z;
        cyy += d.y * d.y;
        cyz += d.y * d.z;
        czz += d.z * d.z;
    }

    Vec3 v{1.0, 0.7548776662466927, 0.5698402909980532}; // incommensurate
    for (int iter = 0; iter < 24; ++iter) {
        const Vec3 w{cxx * v.x + cxy * v.y + cxz * v.z,
                     cxy * v.x + cyy * v.y + cyz * v.z,
                     cxz * v.x + cyz * v.y + czz * v.z};
        const double norm = w.norm();
        if (norm < 1e-30)
            return longestExtentAxis(centroids, order, lo, hi);
        v = w / norm;
    }
    return v;
}

struct BisectContext
{
    const std::vector<Vec3> &centroids;
    std::vector<TetId> &order;
    std::vector<PartId> &element_part;
    BisectionAxis mode;
};

/**
 * Assign parts [part_lo, part_lo + parts) to elements order[lo..hi),
 * splitting element counts proportionally to the part counts on each side
 * so that non-power-of-two part counts stay balanced.
 */
void
bisect(BisectContext &ctx, std::size_t lo, std::size_t hi, PartId part_lo,
       int parts)
{
    if (parts == 1) {
        for (std::size_t i = lo; i < hi; ++i)
            ctx.element_part[ctx.order[i]] = part_lo;
        return;
    }

    const int parts_left = parts / 2;
    const std::size_t count = hi - lo;
    const std::size_t count_left =
        count * static_cast<std::size_t>(parts_left) /
        static_cast<std::size_t>(parts);

    const Vec3 axis =
        ctx.mode == BisectionAxis::kInertial
            ? inertialAxis(ctx.centroids, ctx.order, lo, hi)
            : longestExtentAxis(ctx.centroids, ctx.order, lo, hi);

    auto first = ctx.order.begin() + static_cast<std::ptrdiff_t>(lo);
    auto nth = first + static_cast<std::ptrdiff_t>(count_left);
    auto last = ctx.order.begin() + static_cast<std::ptrdiff_t>(hi);
    std::nth_element(first, nth, last, [&](TetId a, TetId b) {
        const double pa = ctx.centroids[a].dot(axis);
        const double pb = ctx.centroids[b].dot(axis);
        // Tie-break on element id for determinism.
        return pa < pb || (pa == pb && a < b);
    });

    bisect(ctx, lo, lo + count_left, part_lo, parts_left);
    bisect(ctx, lo + count_left, hi, part_lo + parts_left,
           parts - parts_left);
}

} // namespace

Partition
GeometricBisection::partition(const mesh::TetMesh &mesh,
                              int num_parts) const
{
    QUAKE_EXPECT(num_parts >= 1, "num_parts must be >= 1");
    QUAKE_EXPECT(mesh.numElements() >= num_parts,
                 "mesh has fewer elements (" << mesh.numElements()
                                             << ") than parts ("
                                             << num_parts << ")");

    const std::size_t m = static_cast<std::size_t>(mesh.numElements());
    std::vector<Vec3> centroids(m);
    for (std::size_t t = 0; t < m; ++t)
        centroids[t] = mesh.tetCentroidOf(static_cast<TetId>(t));

    std::vector<TetId> order(m);
    std::iota(order.begin(), order.end(), 0);

    Partition result;
    result.numParts = num_parts;
    result.elementPart.assign(m, 0);

    BisectContext ctx{centroids, order, result.elementPart, axis_};
    bisect(ctx, 0, m, 0, num_parts);
    result.validate(mesh);
    return result;
}

std::string
GeometricBisection::name() const
{
    return axis_ == BisectionAxis::kInertial
               ? "geometric-inertial"
               : "geometric-coordinate";
}

} // namespace quake::partition
