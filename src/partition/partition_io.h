/**
 * @file
 * Partition serialization in the TetGen/Archimedes ".part" style:
 *   <#elements> <#parts>
 *   <element-index> <part>
 * Lets partitions computed once (e.g. an expensive spectral run) be
 * reused across experiments, the way the Quake mesh suite ships
 * pre-partitioned meshes.
 */

#ifndef QUAKE98_PARTITION_PARTITION_IO_H_
#define QUAKE98_PARTITION_PARTITION_IO_H_

#include <iosfwd>
#include <string>

#include "partition/partitioner.h"

namespace quake::partition
{

/** Write `partition` in .part format (zero-based element indices). */
void writePartition(const Partition &partition, std::ostream &os);

/** Write to `path`; throws FatalError when the file cannot be opened. */
void writePartition(const Partition &partition, const std::string &path);

/**
 * Read a .part stream.  Accepts zero- or one-based element indices
 * (detected from the first record).  Throws FatalError on malformed
 * input.
 */
Partition readPartition(std::istream &is);

/** Read from `path`. */
Partition readPartition(const std::string &path);

} // namespace quake::partition

#endif // QUAKE98_PARTITION_PARTITION_IO_H_
