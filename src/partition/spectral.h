/**
 * @file
 * Recursive spectral bisection (Barnard & Simon, the paper's ref [3]) —
 * the classic alternative the geometric partitioner is judged against
 * in §2.2 ("generates partitions that are competitive with those
 * produced by other modern partitioning algorithms").
 *
 * The element-dual graph (elements adjacent when they share a face) is
 * bisected recursively at the median of the Fiedler vector — the
 * eigenvector of the graph Laplacian's second-smallest eigenvalue —
 * computed by Lanczos iteration with full reorthogonalization and
 * deflation of the constant vector.
 */

#ifndef QUAKE98_PARTITION_SPECTRAL_H_
#define QUAKE98_PARTITION_SPECTRAL_H_

#include "partition/partitioner.h"

namespace quake::partition
{

/** Tunables for the Lanczos eigensolver. */
struct SpectralOptions
{
    /** Maximum Lanczos iterations per bisection. */
    int maxIterations = 120;

    /** Convergence tolerance on the Ritz residual (relative). */
    double tolerance = 1e-6;

    /** Seed for the deterministic random start vector. */
    std::uint64_t seed = 0x57ec7a1ULL;
};

/** Recursive spectral bisection on the element-dual graph. */
class SpectralBisection : public Partitioner
{
  public:
    explicit SpectralBisection(const SpectralOptions &options = {})
        : options_(options)
    {}

    Partition partition(const mesh::TetMesh &mesh,
                        int num_parts) const override;

    std::string name() const override { return "spectral"; }

  private:
    SpectralOptions options_;
};

/**
 * The element-dual graph in CSR form: vertices are elements, edges join
 * elements sharing a triangular face (so degree <= 4).  Exposed for
 * tests and for the boundary-refinement pass.
 */
struct DualGraph
{
    std::vector<std::int64_t> xadj;
    std::vector<std::int32_t> adjncy;

    std::int64_t
    numVertices() const
    {
        return static_cast<std::int64_t>(xadj.size()) - 1;
    }
};

/** Build the face-adjacency dual graph of a mesh. */
DualGraph buildDualGraph(const mesh::TetMesh &mesh);

} // namespace quake::partition

#endif // QUAKE98_PARTITION_SPECTRAL_H_
