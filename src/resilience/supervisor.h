/**
 * @file
 * Watchdog-supervised scenario execution (DESIGN.md §11).  The paper's
 * runs are long — hours of wall time across thousands of SMVP steps —
 * so the resilience layer wraps the stepping loop in a supervisor that
 * (a) heartbeats step progress, (b) cancels an attempt whose heartbeat
 * stalls past a deadline derived from the Eq.(1) per-step model
 * prediction, (c) restores from the last good checkpoint and retries
 * under capped exponential backoff, and (d) degrades the thread count
 * after repeated stalls, on the theory that a straggling core is the
 * most common cause of stuck progress on shared machines.
 *
 * The supervisor is generic over the attempt body so the retry /
 * backoff / watchdog state machine is unit-testable with injected
 * failures and a fake sleeper; runSupervisedSimulation binds it to the
 * real engine + checkpoint subsystem.
 */

#ifndef QUAKE98_RESILIENCE_SUPERVISOR_H_
#define QUAKE98_RESILIENCE_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/perf_model.h"
#include "quake/simulation.h"
#include "resilience/checkpoint.h"

namespace quake::resilience
{

/**
 * Shared progress channel between an attempt and its watchdog: the
 * attempt beats once per completed step; the watchdog cancels by flag,
 * which the attempt observes at its next step boundary.
 */
class Heartbeat
{
  public:
    /** Record progress at `step` (called by the attempt, per step). */
    void
    beat(std::int64_t step)
    {
        last_step_.store(step, std::memory_order_relaxed);
        beats_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Most recent step reported. */
    std::int64_t
    lastStep() const
    {
        return last_step_.load(std::memory_order_relaxed);
    }

    /** Total beats observed (monotone; the watchdog watches this). */
    std::uint64_t
    beats() const
    {
        return beats_.load(std::memory_order_relaxed);
    }

    /** Ask the attempt to stop at its next step boundary. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Re-arm for the next attempt. */
    void
    reset()
    {
        last_step_.store(0, std::memory_order_relaxed);
        beats_.store(0, std::memory_order_relaxed);
        cancelled_.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> last_step_{0};
    std::atomic<std::uint64_t> beats_{0};
    std::atomic<bool> cancelled_{false};
};

/** Thrown inside an attempt when the watchdog cancels it. */
struct StallError : std::runtime_error
{
    explicit StallError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Retry / watchdog policy. */
struct SupervisorOptions
{
    /** Maximum attempts (first run + retries); >= 1. */
    int maxAttempts = 3;

    /**
     * Watchdog deadline: cancel the attempt when no heartbeat arrives
     * for this long.  0 disables the watchdog (retry policy still
     * applies to thrown failures).
     */
    std::chrono::milliseconds stallTimeout{0};

    /** Watchdog poll interval. */
    std::chrono::milliseconds pollInterval{50};

    /** First backoff delay before a retry. */
    std::chrono::milliseconds backoffBase{100};

    /** Backoff multiplier per additional retry. */
    double backoffFactor = 2.0;

    /** Backoff ceiling. */
    std::chrono::milliseconds backoffCap{5000};

    /**
     * Halve the attempt's thread budget after a stall-cancelled
     * attempt (never below 1).  Thread-count changes are bitwise-safe:
     * the engine is proven invariant across thread counts.
     */
    bool degradeThreadsOnStall = true;

    /** Reject nonsensical policies (FatalError naming the field). */
    void validate() const;
};

/** What happened across all attempts of one supervised run. */
struct RunOutcome
{
    bool succeeded = false;
    int attempts = 0;       ///< attempts started (>= 1)
    int restarts = 0;       ///< attempts that resumed from a checkpoint
    int degradations = 0;   ///< thread-budget halvings applied
    int stalls = 0;         ///< attempts cancelled by the watchdog
    std::int64_t resumedFromStep = 0; ///< last resume point (0 = cold)
    int finalThreads = 0;   ///< thread budget of the final attempt
    std::string error;      ///< last failure message when !succeeded
    sim::SimulationReport report;   ///< valid when succeeded
    std::uint64_t stateFingerprint = 0; ///< final-state hash (succeeded)
};

/**
 * The per-attempt body: run (or resume) the scenario under `threads`,
 * beating `heartbeat` every step and aborting promptly once
 * heartbeat.cancelled().  Throws to report failure.
 */
using AttemptFn =
    std::function<sim::SimulationReport(int threads, Heartbeat &heartbeat)>;

/** Injectable sleep for tests (defaults to std::this_thread). */
using SleepFn = std::function<void(std::chrono::milliseconds)>;

/**
 * Retry/backoff/watchdog driver, generic over the attempt body.
 * Runs `attempt` up to options.maxAttempts times; between attempts
 * sleeps min(cap, base * factor^(retries-1)); when the watchdog is
 * armed, a heartbeat silence past stallTimeout cancels the attempt
 * (cooperatively — the attempt must poll heartbeat.cancelled()) and
 * optionally halves the thread budget for the next one.
 */
class RunSupervisor
{
  public:
    explicit RunSupervisor(SupervisorOptions options, SleepFn sleep = {});

    /**
     * Supervise `attempt` starting with `initialThreads` (0 = hardware
     * concurrency).  Never throws on attempt failure — the outcome
     * carries the last error; configuration errors (bad options) still
     * throw FatalError.
     */
    RunOutcome supervise(const AttemptFn &attempt, int initialThreads);

    /** Backoff before retry number `retry` (1-based) — exposed for tests. */
    std::chrono::milliseconds backoffDelay(int retry) const;

  private:
    SupervisorOptions options_;
    SleepFn sleep_;
};

/**
 * Per-step stall deadline from the Eq.(1) performance model (core/
 * perf_model.h): predicted SMVP seconds
 *   T_smvp = F * T_f + C_max * T_c
 * for the shape under per-flop time `tf` and per-word time `tc`, times
 * `slack`.  Gives the watchdog a model-informed timeout instead of a
 * magic constant; clamped below by `floor` so tiny problems aren't
 * starved by timer granularity.  FatalError on non-positive slack/tf
 * or negative tc.
 */
std::chrono::milliseconds
modelStepDeadline(const core::SmvpShape &shape, double tf, double tc,
                  double slack,
                  std::chrono::milliseconds floor =
                      std::chrono::milliseconds{50});

/** Options for a supervised, checkpointed scenario run. */
struct ResilientRunOptions
{
    /** Checkpoint file path; empty disables checkpointing. */
    std::string checkpointPath;

    /** Steps between checkpoints; 0 disables. */
    std::int64_t checkpointEvery = 0;

    /** Resume from checkpointPath if it exists and is compatible. */
    bool resume = false;

    SupervisorOptions supervisor;
};

/**
 * Run the full scenario under supervision: build the engine, optionally
 * restore from options.checkpointPath, advance with per-step heartbeat
 * + periodic atomic checkpoints, and on failure restore from the last
 * good checkpoint and retry per the supervisor policy.  config's
 * smvpThreads seeds the (degradable) thread budget.
 */
RunOutcome runSupervisedSimulation(const mesh::TetMesh &mesh,
                                   const mesh::SoilModel &model,
                                   const sim::SimulationConfig &config,
                                   const ResilientRunOptions &options);

} // namespace quake::resilience

#endif // QUAKE98_RESILIENCE_SUPERVISOR_H_
