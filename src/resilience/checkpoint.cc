#include "resilience/checkpoint.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/error.h"
#include "common/fnv.h"

namespace quake::resilience
{

namespace
{

/** File magic: 8 bytes at offset 0. */
constexpr char kMagic[8] = {'Q', 'K', '9', '8', 'C', 'K', 'P', '1'};

/** Section tags (stable on-disk identifiers). */
enum SectionTag : std::uint32_t
{
    kSecMeta = 0x4d455441,    // "META": fingerprint, dt, steps
    kSecU = 0x55435552,       // "UCUR": u_n
    kSecUp = 0x55505256,      // "UPRV": u_{n-1}
    kSecStats = 0x53544154,   // "STAT": cached partials + validity
    kSecReport = 0x52505254,  // "RPRT": running peak + samples
};

/** Fixed-size payload of the META section. */
struct MetaPayload
{
    std::uint64_t fingerprint = 0;
    double dt = 0.0;
    std::int64_t plannedSteps = 0;
    std::int64_t steps = 0;
};

/** Fixed-size payload of the STAT section. */
struct StatsPayload
{
    double peak = 0.0;
    double energy = 0.0;
    std::uint64_t statsValid = 0;
};

void
appendBytes(std::vector<std::uint8_t> &out, const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    out.insert(out.end(), b, b + n);
}

/** Append one section: tag u32 | payload len u64 | FNV-1a u64 | payload. */
void
appendSection(std::vector<std::uint8_t> &out, std::uint32_t tag,
              const void *payload, std::size_t n)
{
    const std::uint64_t len = n;
    const std::uint64_t sum = common::fnv1a(payload, n);
    appendBytes(out, &tag, sizeof(tag));
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &sum, sizeof(sum));
    appendBytes(out, payload, n);
}

/** Bounds-checked reader over the on-disk image. */
class Reader
{
  public:
    Reader(const std::vector<std::uint8_t> &bytes,
           const std::string &origin)
        : bytes_(bytes), origin_(origin)
    {
    }

    void
    read(void *out, std::size_t n, const char *what)
    {
        QUAKE_EXPECT(pos_ + n <= bytes_.size(),
                     "checkpoint truncated: " << origin_ << " ends inside "
                                              << what << " (need " << n
                                              << " bytes at offset "
                                              << pos_ << ", have "
                                              << bytes_.size() - pos_
                                              << ")");
        std::memcpy(out, bytes_.data() + pos_, n);
        pos_ += n;
    }

    const std::uint8_t *
    peek(std::size_t n, const char *what)
    {
        QUAKE_EXPECT(pos_ + n <= bytes_.size(),
                     "checkpoint truncated: " << origin_ << " ends inside "
                                              << what << " (need " << n
                                              << " bytes at offset "
                                              << pos_ << ", have "
                                              << bytes_.size() - pos_
                                              << ")");
        const std::uint8_t *p = bytes_.data() + pos_;
        pos_ += n;
        return p;
    }

    bool atEnd() const { return pos_ == bytes_.size(); }
    std::size_t pos() const { return pos_; }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::string origin_;
    std::size_t pos_ = 0;
};

const char *
sectionName(std::uint32_t tag)
{
    switch (tag) {
    case kSecMeta: return "META";
    case kSecU: return "UCUR";
    case kSecUp: return "UPRV";
    case kSecStats: return "STAT";
    case kSecReport: return "RPRT";
    default: return "unknown";
    }
}

/**
 * Read one section, verify its checksum, and return its payload view.
 * The expected tag is enforced so sections cannot be reordered.
 */
const std::uint8_t *
readSection(Reader &r, std::uint32_t expect_tag, std::uint64_t &len,
            const std::string &origin)
{
    std::uint32_t tag = 0;
    std::uint64_t sum = 0;
    r.read(&tag, sizeof(tag), "section header");
    QUAKE_EXPECT(tag == expect_tag,
                 "checkpoint section order corrupt in "
                     << origin << ": expected " << sectionName(expect_tag)
                     << ", found " << sectionName(tag) << " (0x"
                     << std::hex << tag << ")");
    r.read(&len, sizeof(len), "section header");
    r.read(&sum, sizeof(sum), "section header");
    const std::uint8_t *payload = r.peek(len, sectionName(tag));
    const std::uint64_t actual = common::fnv1a(payload, len);
    QUAKE_EXPECT(actual == sum,
                 "checkpoint section " << sectionName(tag)
                                       << " checksum mismatch in "
                                       << origin
                                       << " (file is corrupt): expected 0x"
                                       << std::hex << sum << ", computed 0x"
                                       << actual);
    return payload;
}

/** Parse a double vector payload (count-prefixed). */
std::vector<double>
parseVector(const std::uint8_t *payload, std::uint64_t len,
            const char *what, const std::string &origin)
{
    QUAKE_EXPECT(len >= sizeof(std::uint64_t),
                 "checkpoint truncated: " << origin << " section " << what
                                          << " too short for its count");
    std::uint64_t count = 0;
    std::memcpy(&count, payload, sizeof(count));
    QUAKE_EXPECT(len == sizeof(count) + count * sizeof(double),
                 "checkpoint section "
                     << what << " in " << origin << " declares " << count
                     << " doubles but holds "
                     << (len - sizeof(count)) / sizeof(double));
    std::vector<double> v(count);
    std::memcpy(v.data(), payload + sizeof(count),
                count * sizeof(double));
    return v;
}

void
appendVector(std::vector<std::uint8_t> &out, std::uint32_t tag,
             const std::vector<double> &v)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(sizeof(std::uint64_t) + v.size() * sizeof(double));
    const std::uint64_t count = v.size();
    appendBytes(payload, &count, sizeof(count));
    appendBytes(payload, v.data(), v.size() * sizeof(double));
    appendSection(out, tag, payload.data(), payload.size());
}

} // namespace

std::vector<std::uint8_t>
serializeCheckpoint(const Checkpoint &ckpt)
{
    std::vector<std::uint8_t> out;
    const std::size_t dof_bytes = ckpt.state.u.size() * sizeof(double);
    out.reserve(2 * dof_bytes + ckpt.samples.size() * sizeof(sim::FieldSample) +
                256);

    appendBytes(out, kMagic, sizeof(kMagic));
    const std::uint32_t version = kCheckpointVersion;
    appendBytes(out, &version, sizeof(version));

    MetaPayload meta;
    meta.fingerprint = ckpt.fingerprint;
    meta.dt = ckpt.dt;
    meta.plannedSteps = ckpt.plannedSteps;
    meta.steps = ckpt.state.steps;
    appendSection(out, kSecMeta, &meta, sizeof(meta));

    appendVector(out, kSecU, ckpt.state.u);
    appendVector(out, kSecUp, ckpt.state.up);

    StatsPayload stats;
    stats.peak = ckpt.state.partials.peak;
    stats.energy = ckpt.state.partials.energy;
    stats.statsValid = ckpt.state.statsValid ? 1 : 0;
    appendSection(out, kSecStats, &stats, sizeof(stats));

    std::vector<std::uint8_t> report;
    report.reserve(sizeof(double) + sizeof(std::uint64_t) +
                   ckpt.samples.size() * 3 * sizeof(double));
    appendBytes(report, &ckpt.reportPeak, sizeof(ckpt.reportPeak));
    const std::uint64_t nsamples = ckpt.samples.size();
    appendBytes(report, &nsamples, sizeof(nsamples));
    for (const sim::FieldSample &s : ckpt.samples) {
        appendBytes(report, &s.time, sizeof(s.time));
        appendBytes(report, &s.peakDisplacement,
                    sizeof(s.peakDisplacement));
        appendBytes(report, &s.kineticEnergy, sizeof(s.kineticEnergy));
    }
    appendSection(out, kSecReport, report.data(), report.size());
    return out;
}

Checkpoint
parseCheckpoint(const std::vector<std::uint8_t> &bytes,
                const std::string &origin)
{
    Reader r(bytes, origin);

    char magic[8];
    r.read(magic, sizeof(magic), "magic");
    QUAKE_EXPECT(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 origin << " is not a quake98 checkpoint (bad magic)");

    std::uint32_t version = 0;
    r.read(&version, sizeof(version), "version");
    QUAKE_EXPECT(version == kCheckpointVersion,
                 "unsupported checkpoint version "
                     << version << " in " << origin << " (this build reads "
                     << kCheckpointVersion << ")");

    Checkpoint ckpt;

    std::uint64_t len = 0;
    const std::uint8_t *p = readSection(r, kSecMeta, len, origin);
    QUAKE_EXPECT(len == sizeof(MetaPayload),
                 "checkpoint META section in " << origin << " has "
                                               << len << " bytes, expected "
                                               << sizeof(MetaPayload));
    MetaPayload meta;
    std::memcpy(&meta, p, sizeof(meta));
    ckpt.fingerprint = meta.fingerprint;
    ckpt.dt = meta.dt;
    ckpt.plannedSteps = meta.plannedSteps;
    ckpt.state.steps = meta.steps;

    p = readSection(r, kSecU, len, origin);
    ckpt.state.u = parseVector(p, len, "UCUR", origin);
    p = readSection(r, kSecUp, len, origin);
    ckpt.state.up = parseVector(p, len, "UPRV", origin);
    QUAKE_EXPECT(ckpt.state.u.size() == ckpt.state.up.size(),
                 "checkpoint " << origin << " has mismatched field sizes: "
                               << ckpt.state.u.size() << " vs "
                               << ckpt.state.up.size());

    p = readSection(r, kSecStats, len, origin);
    QUAKE_EXPECT(len == sizeof(StatsPayload),
                 "checkpoint STAT section in " << origin << " has "
                                               << len << " bytes, expected "
                                               << sizeof(StatsPayload));
    StatsPayload stats;
    std::memcpy(&stats, p, sizeof(stats));
    ckpt.state.partials.peak = stats.peak;
    ckpt.state.partials.energy = stats.energy;
    ckpt.state.statsValid = stats.statsValid != 0;

    p = readSection(r, kSecReport, len, origin);
    QUAKE_EXPECT(len >= sizeof(double) + sizeof(std::uint64_t),
                 "checkpoint truncated: " << origin
                                          << " RPRT section too short");
    std::memcpy(&ckpt.reportPeak, p, sizeof(double));
    std::uint64_t nsamples = 0;
    std::memcpy(&nsamples, p + sizeof(double), sizeof(nsamples));
    QUAKE_EXPECT(len == sizeof(double) + sizeof(std::uint64_t) +
                            nsamples * 3 * sizeof(double),
                 "checkpoint RPRT section in "
                     << origin << " declares " << nsamples
                     << " samples but its length disagrees");
    const std::uint8_t *sp =
        p + sizeof(double) + sizeof(std::uint64_t);
    ckpt.samples.resize(nsamples);
    for (std::uint64_t i = 0; i < nsamples; ++i) {
        sim::FieldSample &s = ckpt.samples[i];
        std::memcpy(&s.time, sp, sizeof(double));
        std::memcpy(&s.peakDisplacement, sp + sizeof(double),
                    sizeof(double));
        std::memcpy(&s.kineticEnergy, sp + 2 * sizeof(double),
                    sizeof(double));
        sp += 3 * sizeof(double);
    }

    QUAKE_EXPECT(r.atEnd(),
                 "checkpoint has trailing garbage: " << origin
                                                     << " holds "
                                                     << bytes.size() - r.pos()
                                                     << " bytes past the "
                                                        "last section");
    return ckpt;
}

std::size_t
writeCheckpoint(const std::string &path, const Checkpoint &ckpt)
{
    const std::vector<std::uint8_t> bytes = serializeCheckpoint(ckpt);
    common::writeFileAtomic(path, bytes.data(), bytes.size());
    return bytes.size();
}

Checkpoint
readCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    const std::string why = common::errnoMessage();
    QUAKE_EXPECT(in.good(),
                 "cannot open checkpoint " << path << ": " << why);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    QUAKE_EXPECT(!in.bad(), "cannot read checkpoint " << path);
    return parseCheckpoint(bytes, path);
}

void
requireCompatible(const Checkpoint &ckpt,
                  const sim::SimulationEngine &engine)
{
    QUAKE_EXPECT(ckpt.fingerprint == engine.fingerprint,
                 "checkpoint fingerprint mismatch: checkpoint was taken "
                 "under config 0x"
                     << std::hex << ckpt.fingerprint
                     << " but the engine was built under 0x"
                     << engine.fingerprint << std::dec
                     << " — refusing to resume against a different "
                        "mesh/partition/matrix/source");
}

std::uint64_t
stateFingerprint(const Checkpoint &ckpt)
{
    std::uint64_t h = common::kFnvOffsetBasis;
    h = common::fnv1aValue(ckpt.state.steps, h);
    h = common::fnv1aVector(ckpt.state.u, h);
    h = common::fnv1aVector(ckpt.state.up, h);
    h = common::fnv1aValue(ckpt.state.partials.peak, h);
    h = common::fnv1aValue(ckpt.state.partials.energy, h);
    h = common::fnv1aValue(ckpt.reportPeak, h);
    for (const sim::FieldSample &s : ckpt.samples) {
        h = common::fnv1aValue(s.time, h);
        h = common::fnv1aValue(s.peakDisplacement, h);
        h = common::fnv1aValue(s.kineticEnergy, h);
    }
    return h;
}

} // namespace quake::resilience
