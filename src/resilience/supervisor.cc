#include "resilience/supervisor.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <thread>

#include "common/error.h"

namespace quake::resilience
{

void
SupervisorOptions::validate() const
{
    QUAKE_EXPECT(maxAttempts >= 1,
                 "maxAttempts must be >= 1, got " << maxAttempts);
    QUAKE_EXPECT(stallTimeout.count() >= 0,
                 "stallTimeout must be >= 0 ms, got "
                     << stallTimeout.count());
    QUAKE_EXPECT(pollInterval.count() > 0,
                 "pollInterval must be positive, got "
                     << pollInterval.count());
    QUAKE_EXPECT(backoffBase.count() >= 0,
                 "backoffBase must be >= 0 ms, got "
                     << backoffBase.count());
    QUAKE_EXPECT(backoffFactor >= 1.0 && std::isfinite(backoffFactor),
                 "backoffFactor must be >= 1 and finite, got "
                     << backoffFactor);
    QUAKE_EXPECT(backoffCap >= backoffBase,
                 "backoffCap (" << backoffCap.count()
                                << " ms) must be >= backoffBase ("
                                << backoffBase.count() << " ms)");
}

RunSupervisor::RunSupervisor(SupervisorOptions options, SleepFn sleep)
    : options_(options), sleep_(std::move(sleep))
{
    options_.validate();
    if (!sleep_)
        sleep_ = [](std::chrono::milliseconds d) {
            std::this_thread::sleep_for(d);
        };
}

std::chrono::milliseconds
RunSupervisor::backoffDelay(int retry) const
{
    QUAKE_REQUIRE(retry >= 1, "backoffDelay retry index must be >= 1");
    double ms = static_cast<double>(options_.backoffBase.count()) *
                std::pow(options_.backoffFactor, retry - 1);
    ms = std::min(ms, static_cast<double>(options_.backoffCap.count()));
    return std::chrono::milliseconds{
        static_cast<std::chrono::milliseconds::rep>(ms)};
}

namespace
{

/**
 * Watchdog thread body: poll the heartbeat; when no new beat arrives
 * for `timeout`, cancel the attempt and exit.  `done` stops the
 * watchdog when the attempt finishes on its own.
 */
void
watchdogLoop(Heartbeat &hb, std::atomic<bool> &done,
             std::chrono::milliseconds timeout,
             std::chrono::milliseconds poll)
{
    auto last_change = std::chrono::steady_clock::now();
    std::uint64_t last_beats = hb.beats();
    while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(poll);
        const std::uint64_t beats = hb.beats();
        const auto now = std::chrono::steady_clock::now();
        if (beats != last_beats) {
            last_beats = beats;
            last_change = now;
            continue;
        }
        if (now - last_change >= timeout) {
            hb.cancel();
            return;
        }
    }
}

} // namespace

RunOutcome
RunSupervisor::supervise(const AttemptFn &attempt, int initialThreads)
{
    QUAKE_EXPECT(static_cast<bool>(attempt),
                 "supervise requires a non-null attempt body");
    QUAKE_EXPECT(initialThreads >= 0,
                 "initialThreads must be >= 0, got " << initialThreads);
    int threads = initialThreads > 0
                      ? initialThreads
                      : std::max(1u, std::thread::hardware_concurrency());

    RunOutcome outcome;
    Heartbeat hb;
    for (int att = 1; att <= options_.maxAttempts; ++att) {
        outcome.attempts = att;
        outcome.finalThreads = threads;
        hb.reset();

        std::atomic<bool> done{false};
        std::thread watchdog;
        if (options_.stallTimeout.count() > 0)
            watchdog = std::thread(watchdogLoop, std::ref(hb),
                                   std::ref(done), options_.stallTimeout,
                                   options_.pollInterval);

        bool stalled = false;
        try {
            outcome.report = attempt(threads, hb);
            outcome.succeeded = true;
            outcome.error.clear();
        } catch (const StallError &e) {
            stalled = true;
            outcome.error = e.what();
        } catch (const std::exception &e) {
            outcome.error = e.what();
            // A cancel that surfaced as some other exception is still a
            // stall for policy purposes.
            stalled = hb.cancelled();
        }
        done.store(true, std::memory_order_relaxed);
        if (watchdog.joinable())
            watchdog.join();

        if (outcome.succeeded)
            return outcome;

        if (stalled) {
            ++outcome.stalls;
            if (options_.degradeThreadsOnStall && threads > 1) {
                threads = std::max(1, threads / 2);
                ++outcome.degradations;
            }
        }
        if (att < options_.maxAttempts) {
            const auto delay = backoffDelay(att);
            if (delay.count() > 0)
                sleep_(delay);
        }
    }
    return outcome;
}

std::chrono::milliseconds
modelStepDeadline(const core::SmvpShape &shape, double tf, double tc,
                  double slack, std::chrono::milliseconds floor)
{
    QUAKE_EXPECT(tf > 0 && std::isfinite(tf),
                 "tf must be positive and finite, got " << tf);
    QUAKE_EXPECT(tc >= 0 && std::isfinite(tc),
                 "tc must be >= 0 and finite, got " << tc);
    QUAKE_EXPECT(slack > 0 && std::isfinite(slack),
                 "slack must be positive and finite, got " << slack);
    const double step_seconds =
        shape.flops * tf + shape.wordsMax * tc;
    const double ms = 1000.0 * slack * step_seconds;
    const auto deadline = std::chrono::milliseconds{
        static_cast<std::chrono::milliseconds::rep>(std::ceil(ms))};
    return std::max(deadline, floor);
}

namespace
{

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Shared between attempts of one supervised scenario run. */
struct ScenarioState
{
    int attemptsStarted = 0;
    int resumes = 0;
    std::int64_t lastResumeStep = 0;
    std::uint64_t finalFingerprint = 0;
};

} // namespace

RunOutcome
runSupervisedSimulation(const mesh::TetMesh &mesh,
                        const mesh::SoilModel &model,
                        const sim::SimulationConfig &config,
                        const ResilientRunOptions &options)
{
    config.validate();
    options.supervisor.validate();
    QUAKE_EXPECT(options.checkpointEvery >= 0,
                 "checkpointEvery must be >= 0, got "
                     << options.checkpointEvery);
    QUAKE_EXPECT(options.checkpointEvery == 0 ||
                     !options.checkpointPath.empty(),
                 "checkpointEvery > 0 requires a checkpoint path");
    QUAKE_EXPECT(!options.resume || !options.checkpointPath.empty(),
                 "--resume requires a checkpoint path");

    auto state = std::make_shared<ScenarioState>();

    const AttemptFn attempt = [&, state](int threads,
                                         Heartbeat &hb) {
        sim::SimulationConfig cfg = config;
        if (cfg.numPes > 1)
            cfg.smvpThreads = threads;
        sim::SimulationEngine engine =
            sim::makeSimulationEngine(mesh, model, cfg);
        sim::ExplicitTimeStepper &stepper = *engine.stepper;

        sim::SimulationReport report;
        report.dt = engine.dt;

        // Resume when asked (first attempt) or when a prior attempt of
        // this very run left a checkpoint behind (retries).
        ++state->attemptsStarted;
        const bool try_resume =
            !options.checkpointPath.empty() &&
            (options.resume || state->attemptsStarted > 1) &&
            fileExists(options.checkpointPath);
        if (try_resume) {
            const Checkpoint ckpt =
                readCheckpoint(options.checkpointPath);
            requireCompatible(ckpt, engine);
            stepper.restoreState(ckpt.state);
            report.peakDisplacement = ckpt.reportPeak;
            report.samples = ckpt.samples;
            ++state->resumes;
            state->lastResumeStep = ckpt.state.steps;
            if (cfg.collector != nullptr)
                cfg.collector->add(0, telemetry::Counter::kRunRestarts,
                                   1);
        }

        if (options.checkpointEvery > 0) {
            // The hook fires inside step() before the loop folds the
            // current step into the live report, so fold it here: the
            // snapshot must equal what an uninterrupted run's report
            // holds after this step.
            auto *collector = cfg.collector;
            auto *report_p = &report;
            const auto *engine_p = &engine;
            const int sample_every = cfg.sampleInterval;
            stepper.checkpointEvery(
                options.checkpointEvery,
                [collector, report_p, engine_p, sample_every,
                 &options](const sim::ExplicitTimeStepper &st) {
                    Checkpoint ckpt;
                    ckpt.fingerprint = engine_p->fingerprint;
                    ckpt.dt = engine_p->dt;
                    ckpt.plannedSteps = engine_p->plannedSteps;
                    st.saveState(ckpt.state);
                    ckpt.reportPeak =
                        std::max(report_p->peakDisplacement,
                                 st.peakDisplacement());
                    ckpt.samples = report_p->samples;
                    if (sample_every > 0 &&
                        st.stepCount() % sample_every == 0)
                        ckpt.samples.push_back(sim::FieldSample{
                            st.time(), st.peakDisplacement(),
                            st.kineticEnergy()});
                    const std::size_t bytes =
                        writeCheckpoint(options.checkpointPath, ckpt);
                    if (collector != nullptr && collector->enabled()) {
                        collector->add(
                            0, telemetry::Counter::kCheckpointsWritten,
                            1);
                        collector->add(
                            0, telemetry::Counter::kCheckpointBytes,
                            bytes);
                    }
                });
        }

        sim::advanceSimulation(engine, cfg, report,
                               [&hb](std::int64_t step) {
                                   hb.beat(step);
                                   if (hb.cancelled())
                                       throw StallError(
                                           "attempt cancelled by the "
                                           "watchdog (heartbeat stall)");
                               });

        // Final-state fingerprint for the outcome (and for textual
        // comparison by the kill/resume smoke).
        Checkpoint fin;
        fin.fingerprint = engine.fingerprint;
        fin.dt = engine.dt;
        fin.plannedSteps = engine.plannedSteps;
        stepper.saveState(fin.state);
        fin.reportPeak = report.peakDisplacement;
        fin.samples = report.samples;
        state->finalFingerprint = stateFingerprint(fin);
        return report;
    };

    RunSupervisor supervisor(options.supervisor);
    RunOutcome outcome = supervisor.supervise(
        attempt, config.numPes > 1 ? config.smvpThreads : 1);
    outcome.restarts = state->resumes;
    outcome.resumedFromStep = state->lastResumeStep;
    outcome.stateFingerprint = state->finalFingerprint;
    if (config.collector != nullptr && outcome.degradations > 0) {
        config.collector->ensureSlots(1);
        config.collector->add(0, telemetry::Counter::kRunDegradations,
                              static_cast<std::uint64_t>(
                                  outcome.degradations));
    }
    return outcome;
}

} // namespace quake::resilience
