/**
 * @file
 * Deterministic checkpoint/restart for the Quake engine (DESIGN.md
 * §11).  A checkpoint is a versioned, sectioned, per-section-checksummed
 * binary snapshot of everything the stepping loop owns that the engine
 * construction does not reproduce: the displacement triad's live pair
 * (u_n, u_{n-1}), the step index, the cached peak/energy reductions,
 * and the report prefix (running peak + recorded samples).  Everything
 * else — matrix, mass, dt, damping, source — is rebuilt from the
 * scenario config and guarded by the engine's config fingerprint, so a
 * checkpoint can never silently resume against the wrong problem.
 *
 * Writes are atomic (temp file + fsync + rename): a crash mid-write
 * leaves the previous checkpoint intact, never a torn file.  Loads
 * refuse — with distinct FatalError messages — truncated files, foreign
 * files, version skew, per-section checksum mismatches, and config
 * fingerprint mismatches.
 */

#ifndef QUAKE98_RESILIENCE_CHECKPOINT_H_
#define QUAKE98_RESILIENCE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "quake/simulation.h"
#include "quake/time_stepper.h"

namespace quake::resilience
{

/** Format version; bumped on any layout change. */
constexpr std::uint32_t kCheckpointVersion = 1;

/** In-memory image of one checkpoint. */
struct Checkpoint
{
    /** Engine config fingerprint the state was produced under. */
    std::uint64_t fingerprint = 0;

    /** Time step, recorded for reporting (covered by the fingerprint). */
    double dt = 0.0;

    /** Planned total steps of the run being checkpointed. */
    std::int64_t plannedSteps = 0;

    /** Full integrator state at the checkpointed step. */
    sim::StepperState state;

    /** Running report prefix: peak over steps 1..state.steps. */
    double reportPeak = 0.0;

    /** Samples recorded up to and including the checkpointed step. */
    std::vector<sim::FieldSample> samples;
};

/**
 * Serialise `ckpt` and write it to `path` atomically (temp file in the
 * same directory + fsync + rename).  FatalError with errno context on
 * any IO failure.  Returns the serialised byte count.
 */
std::size_t writeCheckpoint(const std::string &path,
                            const Checkpoint &ckpt);

/**
 * Read and fully validate the checkpoint at `path`.  Throws FatalError
 * with a distinct message per failure class:
 *  - unreadable file (errno context),
 *  - "not a quake98 checkpoint" (bad magic),
 *  - "unsupported checkpoint version",
 *  - "checkpoint truncated" (short header/section/payload),
 *  - "checkpoint section ... checksum mismatch" (bit corruption),
 *  - "checkpoint has trailing garbage".
 */
Checkpoint readCheckpoint(const std::string &path);

/**
 * Refuse (FatalError) unless `ckpt` was produced under an engine whose
 * fingerprint matches — i.e. the same mesh, partition count, matrix,
 * mass, dt, damping, and source.
 */
void requireCompatible(const Checkpoint &ckpt,
                       const sim::SimulationEngine &engine);

/**
 * FNV-1a fingerprint of the resumable state (step index, u, u_prev,
 * cached stats, report prefix).  Two runs with equal state fingerprints
 * at the same step are bitwise identical continuations; printed by the
 * CLI so the kill/resume smoke can compare runs textually.
 */
std::uint64_t stateFingerprint(const Checkpoint &ckpt);

/** Serialise to bytes (exact on-disk image) — exposed for tests. */
std::vector<std::uint8_t> serializeCheckpoint(const Checkpoint &ckpt);

/** Parse the on-disk image — exposed for tests. */
Checkpoint parseCheckpoint(const std::vector<std::uint8_t> &bytes,
                           const std::string &origin);

} // namespace quake::resilience

#endif // QUAKE98_RESILIENCE_CHECKPOINT_H_
