/**
 * @file
 * Multi-PE trace replay over the MESI hierarchy (DESIGN.md §15).
 *
 * This is the glue between the per-format address-stream emitters
 * (sparse/access_trace.h) and the multi-level MESI simulator
 * (arch/mesi_hierarchy.h): partition a matrix's block rows across
 * simulated PEs, emit each PE's program-order reference stream for the
 * chosen storage format, and replay the streams interleaved through
 * one shared hierarchy.
 *
 * Sharing is surfaced the way the paper's kernels surface it:
 *
 *  - x and y are SHARED vectors, ping-ponged across iterations
 *    (iteration k's output vector is iteration k+1's input), so a
 *    boundary-row x gather in iteration k+1 reads lines a NEIGHBORING
 *    PE wrote in iteration k — true sharing, plus false sharing where
 *    3-scalar (24 B) row records straddle a partition cut inside one
 *    cache line;
 *  - the symmetric format's transposed scatter read-modify-writes
 *    y[col] in OTHER PEs' partitions within a single iteration;
 *  - BCSR3 / SymBcsr3 matrix arrays are shared read-only (one copy in
 *    the CMP address space); SlicedEll3 builds a private per-PE slab
 *    (fromBcsr3Rows) with per-PE array bases, as the slabbed engine
 *    does.
 *
 * Replay order is CANONICAL: traces are sorted by PE id and
 * interleaved round-robin in fixed-size chunks.  Per-PE program order
 * is always preserved, and the schedule is a pure function of the
 * trace set + options — NOT of the order traces are handed in, and
 * not of wall-clock anything.  That is the determinism contract the
 * `arch_replay_deterministic` property and the bench gate check.
 */

#ifndef QUAKE98_ARCH_COSIM_H_
#define QUAKE98_ARCH_COSIM_H_

#include <cstdint>
#include <vector>

#include "arch/mesi_hierarchy.h"
#include "sparse/access_trace.h"
#include "sparse/bcsr3.h"

namespace quake::arch
{

/** Storage format whose kernel address stream is replayed. */
enum class TraceFormat
{
    kBcsr3,
    kSymBcsr3,
    kSlicedEll3,
};

/** Stable lowercase name ("bcsr3", "sym", "ell") for reports/CLIs. */
const char *traceFormatName(TraceFormat format);

/** How to build and schedule the per-PE streams. */
struct CosimOptions
{
    TraceFormat format = TraceFormat::kBcsr3;
    int numPes = 1;

    /**
     * SMVP iterations, ping-ponging x and y.  Two or more make
     * iteration k's remote writes visible to iteration k+1's gathers.
     */
    int iterations = 2;

    /** Slice height for kSlicedEll3 (ignored otherwise). */
    std::int64_t sliceHeight = 8;

    /** References per PE per round-robin turn of the canonical replay. */
    int chunkRefs = 64;

    /** Per-PE peak, for the flop-bound side of the effective time. */
    double peakFlopsPerSecond = 600e6;
};

/** One PE's program-order stream. */
struct PeTrace
{
    int pe = 0;
    sparse::AccessTrace trace;
};

/** Replay outcome: raw MESI stats plus the derived T_f story. */
struct CosimResult
{
    CosimOptions options;
    MesiStats stats;

    std::vector<std::int64_t> peFlops; ///< useful flops per PE
    std::int64_t totalFlops = 0;
    std::int64_t totalRefs = 0;

    /**
     * Modeled wall time of the bulk-synchronous multiply set: max over
     * PEs of max(memory seconds, flops / peak).
     */
    double effectiveSeconds = 0.0;

    /** Effective per-PE time per flop — feeds core::gridFromMeasuredTf. */
    double tfSeconds = 0.0;

    /** Aggregate sustained MFLOPS across all PEs. */
    double mflops = 0.0;

    /** mflops / (numPes * peak) — the paper's ~12% sustained fraction. */
    double fractionOfPeak = 0.0;
};

/**
 * Contiguous block-row partition boundaries (numPes + 1 entries,
 * first 0, last numBlockRows), balanced by stored-block count.
 */
std::vector<std::int64_t> partitionBlockRows(
    const sparse::Bcsr3Matrix &matrix, int num_pes);

/**
 * Emit the per-PE streams for `options.format` over `matrix`
 * (options.iterations ping-ponged SMVPs).  Traces are returned in PE
 * order; each holds that PE's full program order.
 */
std::vector<PeTrace> buildCosimTraces(const sparse::Bcsr3Matrix &matrix,
                                      const CosimOptions &options);

/**
 * Replay `traces` through one MESI hierarchy on the canonical
 * schedule (sorted by PE id, round-robin chunks of `chunk_refs`).
 * The result is invariant to the order of `traces`.
 */
MesiStats replayTraces(const std::vector<PeTrace> &traces,
                       const MesiHierarchyConfig &config, int chunk_refs);

/** buildCosimTraces + replayTraces + the derived T_f numbers. */
CosimResult runCosim(const sparse::Bcsr3Matrix &matrix,
                     const MesiHierarchyConfig &config,
                     const CosimOptions &options);

} // namespace quake::arch

#endif // QUAKE98_ARCH_COSIM_H_
