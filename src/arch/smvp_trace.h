/**
 * @file
 * SMVP address-stream replay: predict T_f from the memory hierarchy.
 *
 * The local SMVP's arithmetic is trivial; its sustained rate is set by
 * the memory system (paper §3.1/§4: the T3E sustains 12% of peak on
 * this kernel).  This module walks the exact address sequence of the
 * 3x3-block CSR product — row pointers, block column indices, block
 * values, the gathered x entries, the y writes — through a modeled
 * hierarchy and converts the access-time total into a predicted T_f.
 *
 * The irregular, mesh-dependent part is the x gather: its locality is
 * the node-numbering locality of the mesh, which is exactly why the
 * paper's measured T_f is an application property, not a datasheet
 * number.
 */

#ifndef QUAKE98_ARCH_SMVP_TRACE_H_
#define QUAKE98_ARCH_SMVP_TRACE_H_

#include "arch/cache_model.h"
#include "sparse/bcsr3.h"

namespace quake::arch
{

/** Predicted kernel performance from the hierarchy replay. */
struct TfPrediction
{
    HierarchyStats memory; ///< access counts and service time
    std::int64_t flops = 0;
    double flopSeconds = 0.0; ///< issue-limited arithmetic time
    double seconds = 0.0;     ///< max(memory time, arithmetic time)
    double tf = 0.0;          ///< predicted seconds per flop
    double mflops = 0.0;      ///< predicted sustained rate
};

/** Arithmetic-side parameters. */
struct CoreModel
{
    /** Peak flops/second of the core (e.g. 600e6 for the 21164). */
    double peakFlopsPerSecond = 600e6;
};

/**
 * Replay one y = Kx of the block matrix through `hierarchy` and
 * predict the sustained rate.  Array base addresses are laid out
 * contiguously in a synthetic address space in the same order a real
 * allocation would produce.  The prediction takes the max of memory
 * time and issue-limited arithmetic time (a simple bound, no overlap
 * modeling — consistent with the paper's conservative style).
 */
TfPrediction predictSmvpTf(const sparse::Bcsr3Matrix &matrix,
                           const MemoryHierarchy &hierarchy,
                           const CoreModel &core = {});

} // namespace quake::arch

#endif // QUAKE98_ARCH_SMVP_TRACE_H_
