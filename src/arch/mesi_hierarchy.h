/**
 * @file
 * Multi-level MESI memory-hierarchy co-simulator (DESIGN.md §15).
 *
 * The flat two-level model in cache_model.h can say WHY one PE's
 * sustained SMVP rate sits at ~12% of peak (paper §3.1/§4), but it
 * cannot represent sharing between PEs — the boundary-row x gathers
 * that read lines another PE just wrote, the symmetric scatter's
 * remote read-modify-writes, the false sharing at partition edges.
 * This module grows the substrate into a configurable per-PE L1/L2 +
 * optional shared-LLC hierarchy with a simple MESI protocol between
 * simulated PEs:
 *
 *  - private inclusive L1/L2 per PE (set-associative, LRU);
 *  - a per-line directory at the shared level tracking the sharer set
 *    and the (single) modified owner;
 *  - remote writes invalidate other sharers; remote reads downgrade a
 *    modified owner (writeback + Shared);
 *  - private-hierarchy misses are classified cold / coherence /
 *    capacity-conflict, and coherence misses are further split into
 *    true vs false sharing by the written-word mask of the
 *    invalidating writer (paper §4.3's cache-line-block story: a
 *    70-100 ns block moves whether or not the requested word was the
 *    one written).
 *
 * The model is deliberately untimed between PEs: the replay engine
 * (cosim.h) interleaves per-PE streams on a canonical schedule, so a
 * given trace set + config produces bit-identical statistics on every
 * run and regardless of the order traces are handed in.  What the
 * co-sim does NOT model is documented in DESIGN.md §15.
 */

#ifndef QUAKE98_ARCH_MESI_HIERARCHY_H_
#define QUAKE98_ARCH_MESI_HIERARCHY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/cache_model.h"

namespace quake::arch
{

/** Geometry + service times of a multi-level multi-PE hierarchy. */
struct MesiHierarchyConfig
{
    int numPes = 1;

    CacheConfig l1{32 * 1024, 64, 8};        ///< per-PE
    CacheConfig l2{256 * 1024, 64, 8};       ///< per-PE
    CacheConfig llc{8 * 1024 * 1024, 64, 16}; ///< shared
    bool hasLlc = true; ///< false = L2 misses go straight to DRAM

    double l1HitSeconds = 1.4e-9;
    double l2HitSeconds = 3.4e-9;
    double llcHitSeconds = 13e-9;
    double dramSeconds = 65e-9;

    /**
     * Extra service charged when a request is satisfied by another
     * PE's modified line or must invalidate remote sharers (the
     * cache-to-cache / snoop round trip).
     */
    double coherenceSeconds = 20e-9;

    /**
     * Check invariants; throws FatalError with a distinct message per
     * violated field (geometry via CacheConfig::validate, positive
     * latencies, matching line sizes across levels, positive PE
     * count).
     */
    void validate() const;

    /**
     * The modeled-1998 configuration: a T3E node's 21164 (8KB direct
     * L1, 96KB 3-way L2, no shared level, ~100 ns memory — §4.3's
     * cache-line-block latency), one PE per node.
     */
    static MesiHierarchyConfig t3e1998(int num_pes = 1);

    /**
     * A modeled modern CMP shaped like the sesc-pleasetm nehalem
     * configuration (SNIPPETS.md §1): 4 PEs per node, 64B lines,
     * 32KB/8-way L1, 256KB/8-way L2, 8MB/16-way shared LLC, 2.93 GHz
     * cycle-derived latencies.
     */
    static MesiHierarchyConfig nehalemCmp(int num_pes = 4);
};

/** Per-PE access counters of one replay. */
struct PeStats
{
    std::int64_t accesses = 0;
    std::int64_t reads = 0;
    std::int64_t writes = 0;

    std::int64_t l1Misses = 0;
    std::int64_t l2Misses = 0;  ///< private-hierarchy misses
    std::int64_t llcMisses = 0; ///< of this PE's requests

    // Classification of the l2Misses (cold + coherence + capacity ==
    // l2Misses, and coherence == trueSharing + falseSharing).
    std::int64_t coldMisses = 0;
    std::int64_t coherenceMisses = 0;
    std::int64_t capacityMisses = 0; ///< capacity OR conflict
    std::int64_t trueSharingMisses = 0;
    std::int64_t falseSharingMisses = 0;

    /** Write hits that needed remote invalidations (S -> M upgrades). */
    std::int64_t upgrades = 0;

    /** Lines this PE lost to a remote writer's invalidation. */
    std::int64_t invalidationsReceived = 0;

    /** Modified lines this PE wrote back (downgrade or eviction). */
    std::int64_t writebacks = 0;

    /** Modeled service time of this PE's stream, in seconds. */
    double seconds = 0.0;

    double
    l1MissRate() const
    {
        return accesses > 0 ? static_cast<double>(l1Misses) / accesses
                            : 0.0;
    }
};

/** Whole-replay statistics: per PE plus shared-level aggregates. */
struct MesiStats
{
    std::vector<PeStats> pe;

    std::int64_t llcAccesses = 0; ///< private misses reaching the LLC
    std::int64_t llcMisses = 0;
    std::int64_t bytesFromDram = 0; ///< line fills + writebacks to DRAM

    /** Sum of a per-PE counter over all PEs. */
    std::int64_t totalAccesses() const;
    std::int64_t totalL1Misses() const;
    std::int64_t totalL2Misses() const;
    std::int64_t totalCoherenceMisses() const;

    /** Slowest PE's modeled seconds — the bulk-synchronous bound. */
    double maxPeSeconds() const;
};

/**
 * The stateful multi-PE MESI simulator.  Drive it with read()/write()
 * in any (externally scheduled) order; per-PE program order is the
 * caller's contract.  All state transitions are deterministic
 * functions of the access sequence.
 */
class MesiHierarchySim
{
  public:
    explicit MesiHierarchySim(const MesiHierarchyConfig &config);

    /** One load of `bytes` at `address` by `pe`. */
    void read(int pe, std::uint64_t address, int bytes = 8);

    /** One store of `bytes` at `address` by `pe`. */
    void write(int pe, std::uint64_t address, int bytes = 8);

    const MesiStats &stats() const { return stats_; }
    const MesiHierarchyConfig &config() const { return config_; }

    /** Forget all contents and statistics. */
    void reset();

  private:
    /** One private set-associative LRU level with invalidation support. */
    class PrivateCache
    {
      public:
        void init(const CacheConfig &config);
        bool lookup(std::uint64_t line);

        /**
         * Insert `line`; returns the evicted line or kNoLine.  The
         * caller maintains inclusion (an L2 eviction also invalidates
         * L1) and the directory.
         */
        std::uint64_t insert(std::uint64_t line);
        void invalidate(std::uint64_t line);

        static constexpr std::uint64_t kNoLine = ~0ULL;

      private:
        std::int64_t num_sets_ = 0;
        int assoc_ = 0;
        std::vector<std::uint64_t> lines_; ///< kNoLine = empty way
        std::vector<std::uint32_t> lru_;
        std::uint32_t tick_ = 0;
    };

    /** Directory entry: who holds the line, who modified it. */
    struct DirEntry
    {
        std::uint32_t sharers = 0; ///< bitmask over PEs
        int owner = -1;            ///< PE holding the line Modified
        std::uint64_t writtenWords = 0; ///< owner's written-word mask
    };

    /** Why a PE no longer holds a line it once held. */
    struct LossRecord
    {
        bool byRemoteWrite = false;     ///< else capacity/inclusion
        std::uint64_t writtenWords = 0; ///< writer's mask at loss time
    };

    void access(int pe, std::uint64_t address, int bytes, bool is_write);

    /** Fill `line` into pe's L2+L1, maintaining inclusion + presence. */
    void fillPrivate(int pe, std::uint64_t line);

    /** Drop `line` from pe's private caches and the sharer set. */
    void dropFromPe(int pe, std::uint64_t line, bool by_remote_write,
                    std::uint64_t written_words);

    std::uint64_t wordMask(std::uint64_t address, int bytes) const;

    MesiHierarchyConfig config_;
    int line_shift_ = 0;
    std::vector<PrivateCache> l1_;
    std::vector<PrivateCache> l2_;
    PrivateCache llc_; ///< shared; unused when !hasLlc
    std::unordered_map<std::uint64_t, DirEntry> directory_;

    /** Per PE: lines ever touched (cold-miss classification). */
    std::vector<std::unordered_map<std::uint64_t, char>> touched_;

    /** Per PE: lines lost since last held, with the loss reason. */
    std::vector<std::unordered_map<std::uint64_t, LossRecord>> lost_;

    MesiStats stats_;
};

} // namespace quake::arch

#endif // QUAKE98_ARCH_MESI_HIERARCHY_H_
