#include "arch/cache_model.h"

#include <algorithm>

#include "common/error.h"

namespace quake::arch
{

namespace
{

bool
isPowerOfTwo(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

int
log2OfPowerOfTwo(std::int64_t v)
{
    int shift = 0;
    while ((std::int64_t{1} << shift) < v)
        ++shift;
    return shift;
}

} // namespace

std::int64_t
CacheConfig::numSets() const
{
    return sizeBytes / (static_cast<std::int64_t>(lineBytes) *
                        associativity);
}

void
CacheConfig::validate() const
{
    QUAKE_EXPECT(sizeBytes > 0, "cache size must be positive");
    QUAKE_EXPECT(lineBytes > 0, "line size must be positive");
    QUAKE_EXPECT(associativity > 0, "associativity must be positive");
    QUAKE_EXPECT(isPowerOfTwo(lineBytes),
                 "line size must be a power of two");
    QUAKE_EXPECT(sizeBytes % (static_cast<std::int64_t>(lineBytes) *
                              associativity) ==
                     0,
                 "size must be a multiple of line * associativity");
    QUAKE_EXPECT(isPowerOfTwo(numSets()),
                 "set count must be a power of two");
}

CacheSim::CacheSim(const CacheConfig &config) : config_(config)
{
    config_.validate();
    num_sets_ = config_.numSets();
    line_shift_ = log2OfPowerOfTwo(config_.lineBytes);
    reset();
}

void
CacheSim::reset()
{
    const std::size_t slots = static_cast<std::size_t>(
        num_sets_ * config_.associativity);
    ways_.assign(slots, kInvalidTag);
    lru_.assign(slots, 0);
    accesses_ = 0;
    misses_ = 0;
}

bool
CacheSim::access(std::uint64_t address)
{
    ++accesses_;
    const std::uint64_t line = address >> line_shift_;
    const std::uint64_t set =
        line & static_cast<std::uint64_t>(num_sets_ - 1);
    const std::uint64_t tag = line >> log2OfPowerOfTwo(num_sets_);

    const std::size_t base = static_cast<std::size_t>(
        set * static_cast<std::uint64_t>(config_.associativity));

    // Hit: refresh LRU ages.
    int hit_way = -1;
    for (int w = 0; w < config_.associativity; ++w) {
        if (ways_[base + w] == tag) {
            hit_way = w;
            break;
        }
    }
    const bool hit = hit_way >= 0;

    if (hit_way < 0) {
        ++misses_;
        // Victim: the way with the largest age (or an invalid way).
        int victim = 0;
        std::uint32_t oldest = 0;
        for (int w = 0; w < config_.associativity; ++w) {
            if (ways_[base + w] == kInvalidTag) {
                victim = w;
                break;
            }
            if (lru_[base + w] >= oldest) {
                oldest = lru_[base + w];
                victim = w;
            }
        }
        ways_[base + victim] = tag;
        hit_way = victim;
    }

    // Age everyone in the set; zero the touched way.
    for (int w = 0; w < config_.associativity; ++w)
        ++lru_[base + w];
    lru_[base + hit_way] = 0;
    return hit;
}

double
CacheSim::missRate()
    const
{
    return accesses_ > 0 ? static_cast<double>(misses_) / accesses_
                         : 0.0;
}

HierarchySim::HierarchySim(const MemoryHierarchy &config)
    : config_(config), l1_(config.l1), l2_(config.l2)
{
    QUAKE_EXPECT(config.l1HitSeconds >= 0 && config.l2HitSeconds >= 0 &&
                     config.memorySeconds >= 0,
                 "service times must be nonnegative");
}

void
HierarchySim::access(std::uint64_t address)
{
    ++stats_.accesses;
    stats_.seconds += config_.l1HitSeconds;
    if (l1_.access(address))
        return;
    ++stats_.l1Misses;
    stats_.seconds += config_.l2HitSeconds;
    if (l2_.access(address))
        return;
    ++stats_.l2Misses;
    stats_.seconds += config_.memorySeconds;
}

void
HierarchySim::reset()
{
    l1_.reset();
    l2_.reset();
    stats_ = HierarchyStats{};
}

} // namespace quake::arch
