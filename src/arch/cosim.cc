#include "arch/cosim.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"

namespace quake::arch
{

namespace
{

constexpr std::uint64_t kMatrixBase = 0x100000;

std::uint64_t
alignUp64(std::uint64_t v)
{
    return (v + 63) & ~std::uint64_t{63};
}

void
validateOptions(const CosimOptions &options)
{
    QUAKE_EXPECT(options.numPes >= 1, "cosim PE count must be positive");
    QUAKE_EXPECT(options.iterations >= 1,
                 "cosim iteration count must be positive");
    QUAKE_EXPECT(options.chunkRefs >= 1,
                 "cosim replay chunk must be positive");
    QUAKE_EXPECT(options.sliceHeight >= 1 &&
                     options.sliceHeight <=
                         sparse::SlicedEll3Matrix::kMaxSliceHeight,
                 "cosim slice height out of range");
    QUAKE_EXPECT(options.peakFlopsPerSecond > 0,
                 "peak flop rate must be positive");
}

} // namespace

const char *
traceFormatName(TraceFormat format)
{
    switch (format) {
    case TraceFormat::kBcsr3:
        return "bcsr3";
    case TraceFormat::kSymBcsr3:
        return "sym";
    case TraceFormat::kSlicedEll3:
        return "ell";
    }
    return "unknown";
}

std::vector<std::int64_t>
partitionBlockRows(const sparse::Bcsr3Matrix &matrix, int num_pes)
{
    QUAKE_EXPECT(num_pes >= 1, "cosim PE count must be positive");
    const std::int64_t rows = matrix.numBlockRows();
    const std::int64_t total = matrix.numBlocks();
    const auto &xadj = matrix.xadj();

    std::vector<std::int64_t> cuts(static_cast<std::size_t>(num_pes) + 1,
                                   rows);
    cuts[0] = 0;
    std::int64_t row = 0;
    for (int p = 1; p < num_pes; ++p) {
        const std::int64_t target = (total * p) / num_pes;
        while (row < rows && xadj[row] < target)
            ++row;
        cuts[static_cast<std::size_t>(p)] = row;
    }
    return cuts;
}

std::vector<PeTrace>
buildCosimTraces(const sparse::Bcsr3Matrix &matrix,
                 const CosimOptions &options)
{
    validateOptions(options);
    const int pes = options.numPes;
    const std::vector<std::int64_t> cuts =
        partitionBlockRows(matrix, pes);

    std::vector<PeTrace> traces(static_cast<std::size_t>(pes));
    for (int p = 0; p < pes; ++p)
        traces[static_cast<std::size_t>(p)].pe = p;

    // Matrix-side layouts first (vector bases patched per iteration).
    // BCSR3 / SymBcsr3: ONE shared copy of xadj/cols/values.
    // SlicedEll3: a private slab per PE, packed back to back.
    sparse::SymBcsr3Matrix sym;
    std::vector<sparse::SlicedEll3Matrix> slabs;
    std::vector<sparse::TraceLayout> layouts;
    std::uint64_t matrix_end = 0;

    switch (options.format) {
    case TraceFormat::kBcsr3: {
        layouts.assign(static_cast<std::size_t>(pes),
                       sparse::layoutBcsr3(matrix, kMatrixBase, 0, 0));
        matrix_end = layouts[0].end;
        break;
    }
    case TraceFormat::kSymBcsr3: {
        // 1e-9 relative tolerance, as the kernel suite uses for
        // assembled (floating-point-symmetric) stiffness matrices.
        sym = sparse::SymBcsr3Matrix::fromBcsr3(matrix, 1e-9);
        layouts.assign(static_cast<std::size_t>(pes),
                       sparse::layoutSymBcsr3(sym, kMatrixBase, 0, 0));
        matrix_end = layouts[0].end;
        break;
    }
    case TraceFormat::kSlicedEll3: {
        slabs.reserve(static_cast<std::size_t>(pes));
        std::uint64_t base = kMatrixBase;
        for (int p = 0; p < pes; ++p) {
            const std::int64_t begin = cuts[static_cast<std::size_t>(p)];
            const std::int64_t end =
                cuts[static_cast<std::size_t>(p) + 1];
            std::vector<std::int64_t> rows(
                static_cast<std::size_t>(end - begin));
            std::iota(rows.begin(), rows.end(), begin);
            slabs.push_back(sparse::SlicedEll3Matrix::fromBcsr3Rows(
                matrix, rows.data(),
                static_cast<std::int64_t>(rows.size()),
                options.sliceHeight));
            layouts.push_back(
                sparse::layoutSlicedEll3(slabs.back(), base, 0, 0));
            base = layouts.back().end;
        }
        matrix_end = base;
        break;
    }
    }

    // Two shared vector buffers, ping-ponged: iteration k reads
    // vec[k % 2] as x and writes vec[(k + 1) % 2] as y.
    const std::uint64_t vec_bytes =
        alignUp64(24 * static_cast<std::uint64_t>(matrix.numBlockRows()));
    const std::uint64_t vec[2] = {alignUp64(matrix_end),
                                  alignUp64(matrix_end) + vec_bytes};

    for (int it = 0; it < options.iterations; ++it) {
        const std::uint64_t x_base = vec[it % 2];
        const std::uint64_t y_base = vec[(it + 1) % 2];
        for (int p = 0; p < pes; ++p) {
            sparse::TraceLayout l = layouts[static_cast<std::size_t>(p)];
            l.x = x_base;
            l.y = y_base;
            sparse::AccessTrace &out =
                traces[static_cast<std::size_t>(p)].trace;
            const std::int64_t begin = cuts[static_cast<std::size_t>(p)];
            const std::int64_t end =
                cuts[static_cast<std::size_t>(p) + 1];
            switch (options.format) {
            case TraceFormat::kBcsr3:
                sparse::traceBcsr3Rows(matrix, l, begin, end, out);
                break;
            case TraceFormat::kSymBcsr3:
                sparse::traceSymBcsr3Rows(sym, l, begin, end, out);
                break;
            case TraceFormat::kSlicedEll3:
                sparse::traceSlicedEll3(
                    slabs[static_cast<std::size_t>(p)], l, out);
                break;
            }
        }
    }
    return traces;
}

MesiStats
replayTraces(const std::vector<PeTrace> &traces,
             const MesiHierarchyConfig &config, int chunk_refs)
{
    QUAKE_EXPECT(chunk_refs >= 1, "cosim replay chunk must be positive");

    // Canonical schedule: PE-id order, round-robin chunks.  The
    // container order of `traces` must not matter.
    std::vector<const PeTrace *> order;
    order.reserve(traces.size());
    for (const PeTrace &t : traces) {
        QUAKE_EXPECT(t.pe >= 0 && t.pe < config.numPes,
                     "trace PE id out of range for this hierarchy");
        order.push_back(&t);
    }
    std::sort(order.begin(), order.end(),
              [](const PeTrace *a, const PeTrace *b) {
                  return a->pe < b->pe;
              });
    for (std::size_t i = 1; i < order.size(); ++i)
        QUAKE_EXPECT(order[i]->pe != order[i - 1]->pe,
                     "duplicate PE id in trace set");

    MesiHierarchySim sim(config);
    std::vector<std::size_t> cursor(order.size(), 0);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (std::size_t t = 0; t < order.size(); ++t) {
            const std::vector<sparse::MemRef> &refs =
                order[t]->trace.refs;
            std::size_t c = cursor[t];
            const std::size_t stop =
                std::min(refs.size(),
                         c + static_cast<std::size_t>(chunk_refs));
            for (; c < stop; ++c) {
                const sparse::MemRef &r = refs[c];
                if (r.write)
                    sim.write(order[t]->pe, r.address, r.bytes);
                else
                    sim.read(order[t]->pe, r.address, r.bytes);
            }
            if (c != cursor[t]) {
                cursor[t] = c;
                progressed = true;
            }
        }
    }
    return sim.stats();
}

CosimResult
runCosim(const sparse::Bcsr3Matrix &matrix,
         const MesiHierarchyConfig &config, const CosimOptions &options)
{
    validateOptions(options);
    QUAKE_EXPECT(options.numPes == config.numPes,
                 "cosim PE count must match hierarchy PE count");

    CosimResult r;
    r.options = options;

    const std::vector<PeTrace> traces =
        buildCosimTraces(matrix, options);
    r.stats = replayTraces(traces, config, options.chunkRefs);

    r.peFlops.assign(traces.size(), 0);
    for (const PeTrace &t : traces) {
        r.peFlops[static_cast<std::size_t>(t.pe)] = t.trace.flops;
        r.totalFlops += t.trace.flops;
        r.totalRefs += static_cast<std::int64_t>(t.trace.refs.size());
    }

    for (int p = 0; p < options.numPes; ++p) {
        const double flop_seconds =
            static_cast<double>(r.peFlops[static_cast<std::size_t>(p)]) /
            options.peakFlopsPerSecond;
        const double pe_seconds = std::max(
            r.stats.pe[static_cast<std::size_t>(p)].seconds, flop_seconds);
        r.effectiveSeconds = std::max(r.effectiveSeconds, pe_seconds);
    }

    if (r.totalFlops > 0 && r.effectiveSeconds > 0) {
        const double flops_per_pe =
            static_cast<double>(r.totalFlops) / options.numPes;
        r.tfSeconds = r.effectiveSeconds / flops_per_pe;
        r.mflops = static_cast<double>(r.totalFlops) /
                   r.effectiveSeconds / 1e6;
        r.fractionOfPeak =
            (static_cast<double>(r.totalFlops) / r.effectiveSeconds) /
            (options.numPes * options.peakFlopsPerSecond);
    }
    return r;
}

} // namespace quake::arch
