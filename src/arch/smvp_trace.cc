#include "arch/smvp_trace.h"

#include <algorithm>

#include "common/error.h"

namespace quake::arch
{

TfPrediction
predictSmvpTf(const sparse::Bcsr3Matrix &matrix,
              const MemoryHierarchy &hierarchy, const CoreModel &core)
{
    QUAKE_EXPECT(matrix.numBlockRows() > 0, "empty matrix");
    QUAKE_EXPECT(core.peakFlopsPerSecond > 0,
                 "peak rate must be positive");

    HierarchySim sim(hierarchy);

    // Synthetic contiguous layout, in allocation order.
    const std::uint64_t xadj_base = 0x10000;
    const std::uint64_t cols_base =
        xadj_base +
        static_cast<std::uint64_t>(matrix.xadj().size()) * 8;
    const std::uint64_t values_base =
        cols_base +
        static_cast<std::uint64_t>(matrix.blockCols().size()) * 4;
    const std::uint64_t x_base =
        values_base +
        static_cast<std::uint64_t>(matrix.numBlocks()) * 72;
    const std::uint64_t y_base =
        x_base + static_cast<std::uint64_t>(matrix.numRows()) * 8;

    const auto &xadj = matrix.xadj();
    const auto &cols = matrix.blockCols();

    for (std::int64_t br = 0; br < matrix.numBlockRows(); ++br) {
        // Row bounds: two 8-byte loads (the second is reused next row
        // in real code; modeling both is the conservative choice).
        sim.access(xadj_base + static_cast<std::uint64_t>(br) * 8);
        sim.access(xadj_base + static_cast<std::uint64_t>(br + 1) * 8);

        for (std::int64_t k = xadj[br]; k < xadj[br + 1]; ++k) {
            // Column index: one 4-byte load.
            sim.access(cols_base + static_cast<std::uint64_t>(k) * 4);
            // Block values: nine 8-byte loads.
            const std::uint64_t blk =
                values_base + static_cast<std::uint64_t>(k) * 72;
            for (int v = 0; v < 9; ++v)
                sim.access(blk + static_cast<std::uint64_t>(v) * 8);
            // Gathered x: three 8-byte loads at the block column.
            const std::uint64_t xaddr =
                x_base + static_cast<std::uint64_t>(cols[k]) * 24;
            for (int v = 0; v < 3; ++v)
                sim.access(xaddr + static_cast<std::uint64_t>(v) * 8);
        }

        // y writes: three 8-byte stores.
        const std::uint64_t yaddr =
            y_base + static_cast<std::uint64_t>(br) * 24;
        for (int v = 0; v < 3; ++v)
            sim.access(yaddr + static_cast<std::uint64_t>(v) * 8);
    }

    TfPrediction out;
    out.memory = sim.stats();
    out.flops = matrix.flopsPerMultiply();
    out.flopSeconds =
        static_cast<double>(out.flops) / core.peakFlopsPerSecond;
    out.seconds = std::max(out.memory.seconds, out.flopSeconds);
    out.tf = out.seconds / static_cast<double>(out.flops);
    out.mflops = 1.0 / (out.tf * 1e6);
    return out;
}

} // namespace quake::arch
