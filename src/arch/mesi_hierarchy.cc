#include "arch/mesi_hierarchy.h"

#include <algorithm>

#include "common/error.h"

namespace quake::arch
{

namespace
{

int
log2OfPowerOfTwo(std::int64_t v)
{
    int shift = 0;
    while ((std::int64_t{1} << shift) < v)
        ++shift;
    return shift;
}

} // namespace

// ------------------------------------------------------------- config

void
MesiHierarchyConfig::validate() const
{
    QUAKE_EXPECT(numPes >= 1, "PE count must be positive");
    QUAKE_EXPECT(numPes <= 32,
                 "PE count must be at most 32 (sharer bitmask width)");
    l1.validate();
    l2.validate();
    if (hasLlc)
        llc.validate();
    QUAKE_EXPECT(l1HitSeconds > 0, "L1 hit latency must be positive");
    QUAKE_EXPECT(l2HitSeconds > 0, "L2 hit latency must be positive");
    if (hasLlc)
        QUAKE_EXPECT(llcHitSeconds > 0,
                     "LLC hit latency must be positive");
    QUAKE_EXPECT(dramSeconds > 0, "DRAM latency must be positive");
    QUAKE_EXPECT(coherenceSeconds >= 0,
                 "coherence service time must be nonnegative");
    QUAKE_EXPECT(l1.lineBytes == l2.lineBytes &&
                     (!hasLlc || l2.lineBytes == llc.lineBytes),
                 "line sizes must match across levels");
}

MesiHierarchyConfig
MesiHierarchyConfig::t3e1998(int num_pes)
{
    MesiHierarchyConfig c;
    c.numPes = num_pes;
    c.l1 = CacheConfig{8 * 1024, 32, 1};   // 21164 8KB direct Dcache
    c.l2 = CacheConfig{96 * 1024, 32, 3};  // 96KB 3-way Scache
    c.hasLlc = false;
    c.l1HitSeconds = 3.3e-9;  // ~1 cycle at 300 MHz
    c.l2HitSeconds = 20e-9;
    c.dramSeconds = 100e-9;   // §4.3's 70-100 ns cache-line block
    c.coherenceSeconds = 100e-9;
    return c;
}

MesiHierarchyConfig
MesiHierarchyConfig::nehalemCmp(int num_pes)
{
    MesiHierarchyConfig c;
    c.numPes = num_pes; // procsPerNode = 4 in the nehalem conf
    c.l1 = CacheConfig{32 * 1024, 64, 8};
    c.l2 = CacheConfig{256 * 1024, 64, 8};
    c.llc = CacheConfig{8 * 1024 * 1024, 64, 16};
    c.hasLlc = true;
    // Cycle counts at the conf's 2.93 GHz: 4 / 10 / 38 cycles.
    c.l1HitSeconds = 1.4e-9;
    c.l2HitSeconds = 3.4e-9;
    c.llcHitSeconds = 13e-9;
    c.dramSeconds = 65e-9;
    c.coherenceSeconds = 20e-9;
    return c;
}

// -------------------------------------------------------------- stats

std::int64_t
MesiStats::totalAccesses() const
{
    std::int64_t t = 0;
    for (const PeStats &p : pe)
        t += p.accesses;
    return t;
}

std::int64_t
MesiStats::totalL1Misses() const
{
    std::int64_t t = 0;
    for (const PeStats &p : pe)
        t += p.l1Misses;
    return t;
}

std::int64_t
MesiStats::totalL2Misses() const
{
    std::int64_t t = 0;
    for (const PeStats &p : pe)
        t += p.l2Misses;
    return t;
}

std::int64_t
MesiStats::totalCoherenceMisses() const
{
    std::int64_t t = 0;
    for (const PeStats &p : pe)
        t += p.coherenceMisses;
    return t;
}

double
MesiStats::maxPeSeconds() const
{
    double m = 0.0;
    for (const PeStats &p : pe)
        m = std::max(m, p.seconds);
    return m;
}

// ------------------------------------------------------- PrivateCache

void
MesiHierarchySim::PrivateCache::init(const CacheConfig &config)
{
    num_sets_ = config.numSets();
    assoc_ = config.associativity;
    lines_.assign(static_cast<std::size_t>(num_sets_ * assoc_), kNoLine);
    lru_.assign(lines_.size(), 0);
    tick_ = 0;
}

bool
MesiHierarchySim::PrivateCache::lookup(std::uint64_t line)
{
    const std::size_t base = static_cast<std::size_t>(
        (line & static_cast<std::uint64_t>(num_sets_ - 1)) *
        static_cast<std::uint64_t>(assoc_));
    for (int w = 0; w < assoc_; ++w) {
        if (lines_[base + w] == line) {
            lru_[base + w] = ++tick_;
            return true;
        }
    }
    return false;
}

std::uint64_t
MesiHierarchySim::PrivateCache::insert(std::uint64_t line)
{
    const std::size_t base = static_cast<std::size_t>(
        (line & static_cast<std::uint64_t>(num_sets_ - 1)) *
        static_cast<std::uint64_t>(assoc_));
    int victim = 0;
    std::uint32_t oldest = ~0u;
    for (int w = 0; w < assoc_; ++w) {
        if (lines_[base + w] == line) { // already present: refresh
            lru_[base + w] = ++tick_;
            return kNoLine;
        }
        if (lines_[base + w] == kNoLine) {
            if (oldest != 0) { // prefer an empty way
                victim = w;
                oldest = 0;
            }
        } else if (lru_[base + w] < oldest) {
            victim = w;
            oldest = lru_[base + w];
        }
    }
    const std::uint64_t evicted = lines_[base + victim];
    lines_[base + victim] = line;
    lru_[base + victim] = ++tick_;
    return evicted;
}

void
MesiHierarchySim::PrivateCache::invalidate(std::uint64_t line)
{
    const std::size_t base = static_cast<std::size_t>(
        (line & static_cast<std::uint64_t>(num_sets_ - 1)) *
        static_cast<std::uint64_t>(assoc_));
    for (int w = 0; w < assoc_; ++w) {
        if (lines_[base + w] == line) {
            lines_[base + w] = kNoLine;
            lru_[base + w] = 0;
            return;
        }
    }
}

// ---------------------------------------------------- MesiHierarchySim

MesiHierarchySim::MesiHierarchySim(const MesiHierarchyConfig &config)
    : config_(config)
{
    config_.validate();
    line_shift_ = log2OfPowerOfTwo(config_.l1.lineBytes);
    reset();
}

void
MesiHierarchySim::reset()
{
    const std::size_t n = static_cast<std::size_t>(config_.numPes);
    l1_.assign(n, PrivateCache{});
    l2_.assign(n, PrivateCache{});
    for (std::size_t p = 0; p < n; ++p) {
        l1_[p].init(config_.l1);
        l2_[p].init(config_.l2);
    }
    if (config_.hasLlc)
        llc_.init(config_.llc);
    directory_.clear();
    touched_.assign(n, {});
    lost_.assign(n, {});
    stats_ = MesiStats{};
    stats_.pe.assign(n, PeStats{});
}

std::uint64_t
MesiHierarchySim::wordMask(std::uint64_t address, int bytes) const
{
    const std::uint64_t offset =
        address & static_cast<std::uint64_t>(config_.l1.lineBytes - 1);
    std::uint64_t first = offset >> 3;
    std::uint64_t last = (offset + static_cast<std::uint64_t>(bytes) - 1)
                         >> 3;
    const std::uint64_t words =
        static_cast<std::uint64_t>(config_.l1.lineBytes) >> 3;
    last = std::min(last, words - 1);
    std::uint64_t mask = 0;
    for (std::uint64_t w = first; w <= last; ++w)
        mask |= std::uint64_t{1} << w;
    return mask;
}

void
MesiHierarchySim::read(int pe, std::uint64_t address, int bytes)
{
    access(pe, address, bytes, false);
}

void
MesiHierarchySim::write(int pe, std::uint64_t address, int bytes)
{
    access(pe, address, bytes, true);
}

void
MesiHierarchySim::dropFromPe(int pe, std::uint64_t line,
                             bool by_remote_write,
                             std::uint64_t written_words)
{
    l1_[static_cast<std::size_t>(pe)].invalidate(line);
    l2_[static_cast<std::size_t>(pe)].invalidate(line);
    auto it = directory_.find(line);
    if (it != directory_.end()) {
        it->second.sharers &= ~(1u << pe);
        if (it->second.owner == pe) {
            it->second.owner = -1;
            it->second.writtenWords = 0;
        }
    }
    lost_[static_cast<std::size_t>(pe)][line] =
        LossRecord{by_remote_write, written_words};
}

void
MesiHierarchySim::fillPrivate(int pe, std::uint64_t line)
{
    const std::size_t p = static_cast<std::size_t>(pe);
    const std::uint64_t ev2 = l2_[p].insert(line);
    if (ev2 != PrivateCache::kNoLine) {
        // Inclusion: an L2 victim leaves L1 too, and this PE stops
        // being a sharer of it.
        l1_[p].invalidate(ev2);
        auto it = directory_.find(ev2);
        if (it != directory_.end()) {
            it->second.sharers &= ~(1u << pe);
            if (it->second.owner == pe) {
                it->second.owner = -1;
                it->second.writtenWords = 0;
                ++stats_.pe[p].writebacks;
                if (!config_.hasLlc)
                    stats_.bytesFromDram += config_.l2.lineBytes;
                // With an LLC the dirty victim is absorbed there
                // (strictly inclusive shared level, already present).
            }
        }
        lost_[p][ev2] = LossRecord{false, 0};
    }
    l1_[p].insert(line); // L1 victims stay in L2: presence unchanged
}

void
MesiHierarchySim::access(int pe, std::uint64_t address, int bytes,
                         bool is_write)
{
    QUAKE_EXPECT(pe >= 0 && pe < config_.numPes,
                 "PE id out of range for this hierarchy");
    QUAKE_EXPECT(bytes > 0, "access size must be positive");
    const std::size_t p = static_cast<std::size_t>(pe);
    PeStats &ps = stats_.pe[p];
    const std::uint64_t line = address >> line_shift_;
    const std::uint64_t req_words = wordMask(address, bytes);
    const std::uint32_t pe_bit = 1u << pe;

    ++ps.accesses;
    if (is_write)
        ++ps.writes;
    else
        ++ps.reads;
    ps.seconds += config_.l1HitSeconds;

    const bool l1_hit = l1_[p].lookup(line);
    bool present = l1_hit;
    if (!l1_hit) {
        ++ps.l1Misses;
        ps.seconds += config_.l2HitSeconds;
        if (l2_[p].lookup(line)) {
            present = true;
            l1_[p].insert(line); // refill L1 from L2
        }
    }

    if (present) {
        if (!is_write)
            return;
        // Write hit: silent when already Modified/Exclusive, an
        // upgrade (invalidate remote sharers) when Shared.
        DirEntry &d = directory_[line];
        if (d.owner == pe) {
            d.writtenWords |= req_words;
            return;
        }
        const std::uint32_t others = d.sharers & ~pe_bit;
        if (others != 0) {
            ps.seconds += config_.coherenceSeconds;
            ++ps.upgrades;
            for (int o = 0; o < config_.numPes; ++o) {
                if ((others & (1u << o)) == 0)
                    continue;
                dropFromPe(o, line, true, req_words);
                ++stats_.pe[static_cast<std::size_t>(o)]
                      .invalidationsReceived;
            }
        }
        d.owner = pe;
        d.sharers = pe_bit;
        d.writtenWords = req_words;
        return;
    }

    // Private-hierarchy miss: classify, then service at the shared
    // level.  Classification priority: serviced-by-remote-dirty and
    // lost-to-remote-write are coherence (the communication misses
    // the paper's §4.3 block latencies price); untouched lines are
    // cold; the rest are capacity/conflict.
    ++ps.l2Misses;
    DirEntry &d = directory_[line];
    const bool remote_dirty = d.owner >= 0 && d.owner != pe;

    auto lost_it = lost_[p].find(line);
    const bool lost_to_write =
        lost_it != lost_[p].end() && lost_it->second.byRemoteWrite;
    if (remote_dirty || lost_to_write) {
        ++ps.coherenceMisses;
        const std::uint64_t writer_words =
            remote_dirty ? d.writtenWords : lost_it->second.writtenWords;
        if ((writer_words & req_words) != 0)
            ++ps.trueSharingMisses;
        else
            ++ps.falseSharingMisses;
    } else if (touched_[p].find(line) == touched_[p].end()) {
        ++ps.coldMisses;
    } else {
        ++ps.capacityMisses;
    }
    touched_[p][line] = 1;
    if (lost_it != lost_[p].end())
        lost_[p].erase(lost_it);

    if (remote_dirty) {
        // Cache-to-cache service: the owner writes back and either
        // downgrades to Shared (read) or is invalidated (write).
        const int owner = d.owner;
        ps.seconds += config_.coherenceSeconds;
        ++stats_.pe[static_cast<std::size_t>(owner)].writebacks;
        if (config_.hasLlc) {
            const std::uint64_t ev = llc_.insert(line);
            if (ev != PrivateCache::kNoLine && ev != line) {
                // Back-invalidate the inclusive victim everywhere.
                auto vit = directory_.find(ev);
                if (vit != directory_.end()) {
                    const std::uint32_t sharers = vit->second.sharers;
                    if (vit->second.owner >= 0) {
                        ++stats_.pe[static_cast<std::size_t>(
                                        vit->second.owner)]
                              .writebacks;
                        stats_.bytesFromDram += config_.l2.lineBytes;
                    }
                    for (int o = 0; o < config_.numPes; ++o)
                        if (sharers & (1u << o))
                            dropFromPe(o, ev, false, 0);
                    directory_.erase(ev);
                }
            }
        } else {
            stats_.bytesFromDram += config_.l2.lineBytes; // writeback
        }
        if (is_write) {
            dropFromPe(owner, line, true, req_words);
            ++stats_.pe[static_cast<std::size_t>(owner)]
                  .invalidationsReceived;
            d.owner = pe;
            d.sharers = pe_bit;
            d.writtenWords = req_words;
        } else {
            d.owner = -1;
            d.writtenWords = 0;
            d.sharers |= pe_bit;
        }
        fillPrivate(pe, line);
        return;
    }

    // Clean (or absent) line: service from the LLC or DRAM.
    if (config_.hasLlc) {
        ++stats_.llcAccesses;
        ps.seconds += config_.llcHitSeconds;
        if (!llc_.lookup(line)) {
            ++ps.llcMisses;
            ++stats_.llcMisses;
            ps.seconds += config_.dramSeconds;
            stats_.bytesFromDram += config_.llc.lineBytes;
            const std::uint64_t ev = llc_.insert(line);
            if (ev != PrivateCache::kNoLine && ev != line) {
                auto vit = directory_.find(ev);
                if (vit != directory_.end()) {
                    const std::uint32_t sharers = vit->second.sharers;
                    if (vit->second.owner >= 0) {
                        ++stats_.pe[static_cast<std::size_t>(
                                        vit->second.owner)]
                              .writebacks;
                        stats_.bytesFromDram += config_.l2.lineBytes;
                    }
                    for (int o = 0; o < config_.numPes; ++o)
                        if (sharers & (1u << o))
                            dropFromPe(o, ev, false, 0);
                    directory_.erase(ev);
                }
            }
        }
    } else {
        ps.seconds += config_.dramSeconds;
        stats_.bytesFromDram += config_.l2.lineBytes;
    }

    if (is_write) {
        const std::uint32_t others = d.sharers & ~pe_bit;
        if (others != 0) {
            ps.seconds += config_.coherenceSeconds;
            for (int o = 0; o < config_.numPes; ++o) {
                if ((others & (1u << o)) == 0)
                    continue;
                dropFromPe(o, line, true, req_words);
                ++stats_.pe[static_cast<std::size_t>(o)]
                      .invalidationsReceived;
            }
        }
        d.owner = pe;
        d.sharers = pe_bit;
        d.writtenWords = req_words;
    } else {
        d.sharers |= pe_bit;
    }
    fillPrivate(pe, line);
}

} // namespace quake::arch
