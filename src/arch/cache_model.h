/**
 * @file
 * A set-associative LRU cache simulator.
 *
 * The paper's §4 explains why sustained SMVP rates sit far below peak:
 * "irregular memory reference patterns and ... data structures too
 * large to fit in cache" (the T3E sustains 70 MFLOPS of a 600-MFLOPS
 * peak — 12%).  This substrate makes that argument executable: replay
 * the SMVP's address stream through a modeled hierarchy and predict
 * T_f from first principles (see smvp_trace.h).
 */

#ifndef QUAKE98_ARCH_CACHE_MODEL_H_
#define QUAKE98_ARCH_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

namespace quake::arch
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::int64_t sizeBytes = 8 * 1024;
    int lineBytes = 32;
    int associativity = 1;

    /** Number of sets implied by the geometry. */
    std::int64_t numSets() const;

    /** Check invariants (powers of two, divisibility); throws. */
    void validate() const;
};

/** One set-associative LRU cache level. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config);

    /**
     * Access one byte address; returns true on hit.  Misses fill the
     * line (allocate-on-miss for reads and writes alike).
     */
    bool access(std::uint64_t address);

    /** Accesses so far. */
    std::int64_t accesses() const { return accesses_; }

    /** Misses so far. */
    std::int64_t misses() const { return misses_; }

    /** Miss ratio in [0, 1]; zero before any access. */
    double missRate() const;

    /** Forget all contents and statistics. */
    void reset();

    const CacheConfig &config() const { return config_; }

  private:
    CacheConfig config_;
    std::int64_t num_sets_;
    int line_shift_;

    /**
     * ways_[set * associativity + way] holds the tag; lru_ the age
     * (smaller = more recently used).  Empty ways hold kInvalidTag.
     */
    std::vector<std::uint64_t> ways_;
    std::vector<std::uint32_t> lru_;

    std::int64_t accesses_ = 0;
    std::int64_t misses_ = 0;

    static constexpr std::uint64_t kInvalidTag = ~0ULL;
};

/** A two-level hierarchy with per-level service times. */
struct MemoryHierarchy
{
    CacheConfig l1{8 * 1024, 32, 1};      ///< 21164-like 8KB direct L1
    CacheConfig l2{96 * 1024, 64, 3};     ///< 21164-like 96KB 3-way L2
    double l1HitSeconds = 3.3e-9;  ///< ~1 cycle at 300 MHz
    double l2HitSeconds = 20e-9;   ///< L2 service on L1 miss
    double memorySeconds = 100e-9; ///< DRAM service on L2 miss
};

/** Access counts and predicted time for a replayed stream. */
struct HierarchyStats
{
    std::int64_t accesses = 0;
    std::int64_t l1Misses = 0;
    std::int64_t l2Misses = 0;
    double seconds = 0.0; ///< predicted total service time

    double
    l1MissRate() const
    {
        return accesses > 0
                   ? static_cast<double>(l1Misses) / accesses
                   : 0.0;
    }
};

/** Stateful two-level simulator built from a MemoryHierarchy. */
class HierarchySim
{
  public:
    explicit HierarchySim(const MemoryHierarchy &config);

    /** Access an address through L1 then (on miss) L2 then memory. */
    void access(std::uint64_t address);

    /** Stats accumulated so far. */
    const HierarchyStats &stats() const { return stats_; }

    /** Clear contents and statistics. */
    void reset();

    const MemoryHierarchy &config() const { return config_; }

  private:
    MemoryHierarchy config_;
    CacheSim l1_;
    CacheSim l2_;
    HierarchyStats stats_;
};

} // namespace quake::arch

#endif // QUAKE98_ARCH_CACHE_MODEL_H_
