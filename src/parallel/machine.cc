#include "parallel/machine.h"

#include "common/error.h"

namespace quake::parallel
{

void
MachineModel::validate() const
{
    QUAKE_EXPECT(tf > 0, "machine '" << name << "' needs tf > 0");
    QUAKE_EXPECT(tl >= 0, "machine '" << name << "' needs tl >= 0");
    QUAKE_EXPECT(tw >= 0, "machine '" << name << "' needs tw >= 0");
}

MachineModel
crayT3d()
{
    // T_f measured in the paper; the T3D's interface is roughly 2x the
    // T3E's latency with ~1/3 its burst rate (Stricker & Gross, ref
    // [19], report 30-40 MB/s optimal strided copies).
    return MachineModel{"Cray T3D", 30e-9, 44e-6, 160e-9};
}

MachineModel
crayT3e()
{
    return MachineModel{"Cray T3E", 14e-9, 22e-6, 55e-9};
}

MachineModel
currentMachine100()
{
    // 100 MFLOPS sustained; communication constants at T3E levels.
    return MachineModel{"current-100MFLOPS", 10e-9, 22e-6, 55e-9};
}

MachineModel
futureMachine200()
{
    // 200 MFLOPS sustained; the communication constants the paper's
    // conclusion calls for (2 us latency, 600 MB/s burst).
    return MachineModel{"future-200MFLOPS", 5e-9, 2e-6, 8.0 / 600e6};
}

MachineModel
customMachine(const std::string &name, double mflops, double tl,
              double burst_bytes_per_sec)
{
    QUAKE_EXPECT(mflops > 0, "MFLOPS must be positive");
    QUAKE_EXPECT(burst_bytes_per_sec > 0, "burst bandwidth must be positive");
    MachineModel m{name, 1.0 / (mflops * 1e6), tl,
                   8.0 / burst_bytes_per_sec};
    m.validate();
    return m;
}

} // namespace quake::parallel
