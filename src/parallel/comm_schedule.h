/**
 * @file
 * The SMVP communication schedule (paper §2.3): after each PE's local
 * SMVP, PEs that share mesh nodes exchange their partial y values for
 * those nodes and sum them.  Every ordered PE pair that shares nodes
 * exchanges exactly one (maximally aggregated) message per SMVP, and the
 * two directions of a pair carry the same node set — which is why the
 * paper's C_max values are even and divisible by three.
 */

#ifndef QUAKE98_PARALLEL_COMM_SCHEDULE_H_
#define QUAKE98_PARALLEL_COMM_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "mesh/tet_mesh.h"
#include "partition/partition_stats.h"
#include "partition/partitioner.h"

namespace quake::parallel
{

/** Degrees of freedom per mesh node (x/y/z displacement). */
inline constexpr int kDofPerNode = 3;

/**
 * One pairwise exchange: the nodes this PE shares with one peer.  An
 * empty node set is a legal zero-word message (it still costs one block
 * latency in the simulators); build() never produces one, but synthetic
 * schedules may.
 */
struct Exchange
{
    partition::PartId peer = 0;

    /** Global ids of the shared nodes, sorted ascending. */
    std::vector<mesh::NodeId> nodes;

    /** Words in the message for this exchange (one direction). */
    std::int64_t
    words() const
    {
        return static_cast<std::int64_t>(nodes.size()) * kDofPerNode;
    }
};

/** The full exchange list of one PE, peers sorted ascending. */
struct PeSchedule
{
    std::vector<Exchange> exchanges;

    /** C_i: words sent plus received (both directions are equal). */
    std::int64_t words() const;

    /**
     * B_i with maximal aggregation: one block per message, counting both
     * the sends and the receives (paper Figure 7 convention).
     */
    std::int64_t blocksMaximal() const;

    /**
     * B_i when transfers are fixed `block_words`-word units (cache-line
     * style): each message of L words costs ceil(L / block_words) blocks,
     * again counting both directions.
     */
    std::int64_t blocksFixed(int block_words) const;
};

/** The communication schedule of a partitioned SMVP. */
class CommSchedule
{
  public:
    /** Build the schedule for `partition` of `mesh`. */
    static CommSchedule build(const mesh::TetMesh &mesh,
                              const partition::Partition &partition);

    /** Overload reusing a precomputed node->parts incidence. */
    static CommSchedule build(const partition::Partition &partition,
                              const partition::NodeParts &node_parts);

    /**
     * Wrap externally assembled per-PE exchange lists (tests, synthetic
     * workloads).  Validates unless `validate_schedule` is false — the
     * escape hatch exists so tests can confirm that the simulators
     * reject malformed schedules themselves.
     */
    static CommSchedule fromPeSchedules(std::vector<PeSchedule> pes,
                                        bool validate_schedule = true);

    int numPes() const { return static_cast<int>(pes_.size()); }

    const PeSchedule &pe(int p) const { return pes_[p]; }

    /** Sizes (words) of all directed messages, in deterministic order. */
    std::vector<std::int64_t> messageSizes() const;

    /**
     * Words crossing the bisection that places PEs 0..p/2-1 on one side
     * and p/2..p-1 on the other, both directions counted (paper §4.2's V).
     */
    std::int64_t bisectionWords() const;

    /** Total words carried by all messages (each direction counted). */
    std::int64_t totalWords() const;

    /**
     * Consistency check: every peer id is a distinct in-range PE other
     * than the sender, node lists are sorted, and exchange lists are
     * symmetric (i lists j with node set S iff j lists i with S).
     * Raises common::FatalError with a diagnostic on violation; the
     * simulators call this on entry to reject malformed schedules.
     */
    void validate() const;

  private:
    std::vector<PeSchedule> pes_;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_COMM_SCHEDULE_H_
