/**
 * @file
 * Bridges the executable substrate to the paper's models: extracts a
 * machine-independent core::SmvpCharacterization (F_i, C_i, B_i, message
 * sizes, bisection volume) from a distributed problem.
 */

#ifndef QUAKE98_PARALLEL_CHARACTERIZE_H_
#define QUAKE98_PARALLEL_CHARACTERIZE_H_

#include <string>

#include "core/characterization.h"
#include "parallel/distributor.h"

namespace quake::parallel
{

/** How messages map onto transfer blocks (paper §3.3 and §4.4). */
enum class BlockMode
{
    kMaximal,   ///< one block per message (message passing, DSM w/ aggregation)
    kFixedSize, ///< cache-line style fixed-size blocks
};

/** Options for characterization. */
struct CharacterizeOptions
{
    BlockMode blockMode = BlockMode::kMaximal;

    /** Words per block when blockMode == kFixedSize (paper uses 4). */
    int blockWords = 4;
};

/**
 * Extract the model inputs from a distributed problem.
 *
 * Flops per PE come from the local stiffness when assembled (2 per
 * stored scalar), otherwise from the local mesh's stiffness *pattern*
 * (identical count — values do not change the flop count).
 *
 * @param problem Distributed problem (with or without matrices).
 * @param name    Label, e.g. "sf2/128".
 * @param options Block accounting mode.
 */
core::SmvpCharacterization characterize(
    const DistributedProblem &problem, const std::string &name,
    const CharacterizeOptions &options = {});

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_CHARACTERIZE_H_
