/**
 * @file
 * The Archimedes-style parceler (paper §2.2): turns a mesh plus an
 * element partition into per-PE subdomains — a local mesh with compact
 * node numbering, replicated shared nodes, a local stiffness matrix
 * assembled from the local elements only, and node-ownership flags —
 * together with the pairwise communication schedule.
 *
 * Data distribution follows the paper exactly: vectors are distributed
 * by node with shared nodes replicated on every touching PE, and K_ij
 * resides (as a partial sum of local element contributions) on every PE
 * where nodes i and j both reside.  Summing partial y values across PEs
 * after the local SMVPs reconstitutes the global y = Kx.
 */

#ifndef QUAKE98_PARALLEL_DISTRIBUTOR_H_
#define QUAKE98_PARALLEL_DISTRIBUTOR_H_

#include <cstdint>
#include <vector>

#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"
#include "parallel/comm_schedule.h"
#include "partition/partitioner.h"
#include "sparse/bcsr3.h"

namespace quake::parallel
{

/** One PE's share of the problem. */
struct Subdomain
{
    partition::PartId part = 0;

    /** Global ids of this PE's elements. */
    std::vector<mesh::TetId> elements;

    /**
     * Global ids of every node touched by a local element, sorted
     * ascending; the local id of a node is its index here.
     */
    std::vector<mesh::NodeId> globalNodes;

    /** Local copy of the subdomain's geometry, in local node ids. */
    mesh::TetMesh localMesh;

    /**
     * True for local nodes whose global value this PE is responsible
     * for writing back (the lowest-numbered PE touching the node).
     */
    std::vector<char> ownsNode;

    /**
     * Local stiffness assembled from the local elements; empty
     * (numBlockRows() == 0) when the subdomains were built pattern-only.
     */
    sparse::Bcsr3Matrix stiffness;

    /**
     * Local ids of boundary nodes — nodes replicated on at least one
     * other PE, i.e. exactly the nodes that appear in this PE's
     * exchanges — sorted ascending.  The SMVP engine computes these
     * block rows first so message buffers can be published while the
     * interior rows below are still being computed (the paper's
     * communication/computation overlap, footnote 1).
     */
    std::vector<std::int64_t> boundaryRows;

    /** Local ids of the remaining (interior) nodes, sorted ascending. */
    std::vector<std::int64_t> interiorRows;

    /** Local id of a global node; panics when absent. */
    std::int64_t localNodeOf(mesh::NodeId global_node) const;

    /** Number of local nodes (owned + replicated). */
    std::int64_t
    numLocalNodes() const
    {
        return static_cast<std::int64_t>(globalNodes.size());
    }
};

/** A fully distributed SMVP problem. */
struct DistributedProblem
{
    std::int64_t numGlobalNodes = 0;
    partition::Partition partition;
    CommSchedule schedule;
    std::vector<Subdomain> subdomains;

    int numPes() const { return partition.numParts; }
};

/**
 * Build the per-PE subdomains for `partition` of `mesh`.
 *
 * @param mesh      The global mesh.
 * @param partition Element partition (validated).
 * @param model     Soil model for stiffness assembly, or nullptr to skip
 *                  assembly and build topology only (characterization
 *                  does not need matrix values).
 * @param poisson   Poisson ratio for assembly.
 */
std::vector<Subdomain> buildSubdomains(const mesh::TetMesh &mesh,
                                       const partition::Partition &partition,
                                       const mesh::SoilModel *model,
                                       double poisson = 0.25);

/** Build the complete distributed problem (with stiffness matrices). */
DistributedProblem distribute(const mesh::TetMesh &mesh,
                              const mesh::SoilModel &model,
                              const partition::Partition &partition,
                              double poisson = 0.25);

/** Topology-only variant for characterization sweeps (no matrices). */
DistributedProblem distributeTopology(const mesh::TetMesh &mesh,
                                      const partition::Partition &partition);

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_DISTRIBUTOR_H_
