#include "parallel/distributor.h"

#include <algorithm>

#include "common/error.h"
#include "sparse/assembly.h"

namespace quake::parallel
{

std::int64_t
Subdomain::localNodeOf(mesh::NodeId global_node) const
{
    const auto it = std::lower_bound(globalNodes.begin(), globalNodes.end(),
                                     global_node);
    QUAKE_REQUIRE(it != globalNodes.end() && *it == global_node,
                  "node " << global_node << " is not on PE " << part);
    return it - globalNodes.begin();
}

std::vector<Subdomain>
buildSubdomains(const mesh::TetMesh &mesh,
                const partition::Partition &partition,
                const mesh::SoilModel *model, double poisson)
{
    partition.validate(mesh);
    const int num_parts = partition.numParts;

    std::vector<Subdomain> subdomains(
        static_cast<std::size_t>(num_parts));
    for (int p = 0; p < num_parts; ++p)
        subdomains[p].part = p;

    // Elements per part.
    for (mesh::TetId t = 0; t < mesh.numElements(); ++t)
        subdomains[partition.elementPart[t]].elements.push_back(t);

    // Lowest and highest part touching each node: the lowest assigns
    // ownership, and min != max identifies shared (boundary) nodes.
    std::vector<partition::PartId> min_part(
        static_cast<std::size_t>(mesh.numNodes()), num_parts);
    std::vector<partition::PartId> max_part(
        static_cast<std::size_t>(mesh.numNodes()), -1);
    for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
        const partition::PartId p = partition.elementPart[t];
        for (mesh::NodeId v : mesh.tet(t).v) {
            min_part[v] = std::min(min_part[v], p);
            max_part[v] = std::max(max_part[v], p);
        }
    }

    for (Subdomain &sub : subdomains) {
        // Touched global nodes, sorted and deduplicated.
        sub.globalNodes.reserve(sub.elements.size());
        for (mesh::TetId t : sub.elements)
            for (mesh::NodeId v : mesh.tet(t).v)
                sub.globalNodes.push_back(v);
        std::sort(sub.globalNodes.begin(), sub.globalNodes.end());
        sub.globalNodes.erase(
            std::unique(sub.globalNodes.begin(), sub.globalNodes.end()),
            sub.globalNodes.end());

        // Local mesh: copy geometry, renumber elements.
        sub.localMesh.reserve(
            static_cast<std::int64_t>(sub.globalNodes.size()),
            static_cast<std::int64_t>(sub.elements.size()));
        for (mesh::NodeId g : sub.globalNodes)
            sub.localMesh.addNode(mesh.node(g));
        for (mesh::TetId t : sub.elements) {
            const mesh::Tet &e = mesh.tet(t);
            sub.localMesh.addTet(
                static_cast<mesh::NodeId>(sub.localNodeOf(e.v[0])),
                static_cast<mesh::NodeId>(sub.localNodeOf(e.v[1])),
                static_cast<mesh::NodeId>(sub.localNodeOf(e.v[2])),
                static_cast<mesh::NodeId>(sub.localNodeOf(e.v[3])));
        }

        sub.ownsNode.resize(sub.globalNodes.size());
        for (std::size_t i = 0; i < sub.globalNodes.size(); ++i)
            sub.ownsNode[i] = (min_part[sub.globalNodes[i]] == sub.part);

        // Boundary-first row split: a local node is boundary iff some
        // other PE also touches it (it then appears in an exchange).
        for (std::size_t i = 0; i < sub.globalNodes.size(); ++i) {
            const mesh::NodeId g = sub.globalNodes[i];
            if (min_part[g] != max_part[g])
                sub.boundaryRows.push_back(
                    static_cast<std::int64_t>(i));
            else
                sub.interiorRows.push_back(static_cast<std::int64_t>(i));
        }

        if (model != nullptr)
            sub.stiffness =
                sparse::assembleStiffness(sub.localMesh, *model, poisson);
    }
    return subdomains;
}

DistributedProblem
distribute(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
           const partition::Partition &partition, double poisson)
{
    DistributedProblem problem;
    problem.numGlobalNodes = mesh.numNodes();
    problem.partition = partition;
    problem.schedule = CommSchedule::build(mesh, partition);
    problem.subdomains =
        buildSubdomains(mesh, partition, &model, poisson);
    return problem;
}

DistributedProblem
distributeTopology(const mesh::TetMesh &mesh,
                   const partition::Partition &partition)
{
    DistributedProblem problem;
    problem.numGlobalNodes = mesh.numNodes();
    problem.partition = partition;
    problem.schedule = CommSchedule::build(mesh, partition);
    problem.subdomains = buildSubdomains(mesh, partition, nullptr);
    return problem;
}

} // namespace quake::parallel
