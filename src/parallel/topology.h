/**
 * @file
 * Two-level execution topology for the SMVP engine (DESIGN.md §13).
 *
 * The paper's traffic analysis separates intra-node reuse from
 * inter-node exchange; a flat thread pool erases that distinction on
 * NUMA machines, where every per-PE slab competes for one memory
 * domain.  A Topology maps the simulated PEs onto node-level *shards*
 * — each shard owns a nested pinned worker pool whose threads
 * first-touch the shard's slabs so pages land in the local domain —
 * while the boundary exchange runs *between* shards, mirroring the
 * hybrid process x thread decomposition of the MPI+OpenMP SMVP
 * literature.
 *
 * Detection reads /sys/devices/system/node intersected with the
 * process affinity mask; tests and CLIs override it with explicit
 * shard x thread specs so results stay deterministic everywhere.  The
 * topology is an execution knob only: the engine is bitwise invariant
 * across every Topology (verify property `engine_hierarchy`).
 */

#ifndef QUAKE98_PARALLEL_TOPOLOGY_H_
#define QUAKE98_PARALLEL_TOPOLOGY_H_

#include <string>
#include <vector>

namespace quake::parallel
{

/**
 * Describes how the engine splits work across shards and threads.
 *
 * numShards coarse shards each run threadsPerShard worker threads
 * (0 = divide the thread budget evenly).  When shardCpus is non-empty
 * it holds one CPU list per shard (from NUMA detection or an explicit
 * spec) used for pthread pinning when pin is set; pinning is advisory
 * — failures are counted, never fatal.
 */
struct Topology
{
    /** Coarse shards (>= 1); clamped to the PE count by the engine. */
    int numShards = 1;

    /**
     * Worker threads inside each shard; 0 = divide threadBudget (or
     * the affinity-visible CPU count) evenly across shards.
     */
    int threadsPerShard = 0;

    /**
     * Total thread budget when threadsPerShard == 0; 0 = the
     * affinity-visible CPU count.  Lets Topology::flat(n) reproduce
     * the historical `num_threads` semantics exactly.
     */
    int threadBudget = 0;

    /** Pin shard threads to their shard's CPUs (advisory). */
    bool pin = false;

    /**
     * Per-shard CPU ids for pinning; empty = no placement known.
     * When present, size() must equal numShards (validate() checks).
     */
    std::vector<std::vector<int>> shardCpus;

    /** Single-shard topology with the historical thread semantics. */
    static Topology flat(int num_threads);

    /** Explicit shards x threads-per-shard, no CPU placement. */
    static Topology uniform(int shards, int threads_per_shard,
                            bool pin = false);

    /**
     * Detect NUMA domains from /sys/devices/system/node, intersect
     * each with the process affinity mask, and build one shard per
     * non-empty domain.  Falls back to a single shard spanning every
     * affinity-visible CPU when sysfs is absent (non-Linux or
     * container-restricted) or exposes a single node.
     */
    static Topology detect(bool pin = false);

    /**
     * Parse a CLI topology spec: "flat" (single shard), "auto" or
     * "detect" (NUMA detection), or "SxT" (e.g. "2x4" = 2 shards of 4
     * threads; T may be 0 for even division).  Malformed specs throw
     * common::FatalError naming the spec.
     */
    static Topology parse(const std::string &spec, bool pin = false);

    /** Reject invalid combinations (FatalError naming the field). */
    void validate() const;
};

/**
 * Parse a Linux cpulist ("0-3,8,10-11") into ascending CPU ids.
 * Malformed lists return empty (detection treats that as "unknown").
 */
std::vector<int> parseCpuList(const std::string &list);

/**
 * CPU ids the process may run on (sched_getaffinity).  Falls back to
 * [0, hardware_concurrency) where the syscall is unavailable.
 */
std::vector<int> affinityCpus();

/**
 * One CPU list per NUMA domain that intersects the affinity mask,
 * ascending by node id.  Empty when detection found nothing usable
 * (callers fall back to one domain spanning affinityCpus()).
 */
std::vector<std::vector<int>> detectNumaDomains();

/**
 * Pin the calling thread to `cpus` (pthread_setaffinity_np).  Returns
 * false — without side effects — on failure, empty input, or platforms
 * without the call; the engine counts failures but never aborts.
 */
bool pinCurrentThreadToCpus(const std::vector<int> &cpus);

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_TOPOLOGY_H_
