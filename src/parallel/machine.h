/**
 * @file
 * Machine models: the three hardware/software constants the paper's
 * models need (Figure 4) — amortized time per flop T_f, block latency
 * T_l, and per-word burst time T_w — plus the named machines the paper
 * measures or hypothesizes.
 */

#ifndef QUAKE98_PARALLEL_MACHINE_H_
#define QUAKE98_PARALLEL_MACHINE_H_

#include <string>

namespace quake::parallel
{

/** A machine as seen by the SMVP models. */
struct MachineModel
{
    std::string name;
    double tf = 0.0; ///< seconds per flop (sustained, local SMVP)
    double tl = 0.0; ///< block latency, seconds per block
    double tw = 0.0; ///< burst time, seconds per additional 64-bit word

    /** Sustained local computation rate in MFLOPS. */
    double mflops() const { return 1.0 / (tf * 1e6); }

    /** Burst bandwidth in bytes per second. */
    double burstBandwidthBytes() const { return 8.0 / tw; }

    /** Validate parameter ranges; throws FatalError when unusable. */
    void validate() const;
};

/**
 * Cray T3D (150 MHz Alpha 21064): the paper measures T_f = 30 ns for the
 * Quake local SMVP (§3.1).  T_l/T_w follow the companion technical
 * report's methodology; we use the T3E-style constants scaled to the
 * T3D's slower interface as a representative setting.
 */
MachineModel crayT3d();

/** Cray T3E (300 MHz Alpha 21164): T_f = 14 ns, T_l = 22 us, T_w = 55 ns
 * — all three quoted directly in the paper (§3.1, §3.3). */
MachineModel crayT3e();

/** The paper's hypothetical "current" machine: 100 MFLOPS sustained. */
MachineModel currentMachine100();

/** The paper's hypothetical "future" machine: 200 MFLOPS sustained. */
MachineModel futureMachine200();

/**
 * A machine with the given sustained MFLOPS and a communication system
 * described by block latency (seconds) and burst bandwidth (bytes/s).
 */
MachineModel customMachine(const std::string &name, double mflops,
                           double tl, double burst_bytes_per_sec);

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_MACHINE_H_
