/**
 * @file
 * Discrete-event simulation of the SMVP communication phase.
 *
 * The closed-form model (Equation 2) charges each PE B_i block
 * latencies plus C_i word times, assuming its sends and receives
 * serialize through one interface.  This simulator executes the actual
 * pairwise exchange schedule event by event against the Figure 5 PE
 * model — an output link and an input link per PE, a constant-latency
 * infinite-capacity network between them — and reports the resulting
 * per-PE timelines.  It sits between the closed-form model and a real
 * machine: scheduling effects the model ignores (a receiver whose
 * input link is busy, idle gaps waiting for senders) appear here.
 *
 * Semantics:
 *  - each PE issues its sends in schedule order; a send occupies the
 *    output link for T_l + k * T_w seconds;
 *  - the message then spends `wireLatency` in the network;
 *  - reception occupies the input link for T_l + k * T_w seconds;
 *    messages that find the link busy queue in arrival order;
 *  - a PE's phase ends when both links are finally idle.
 *
 * An optional FaultModel threads faults through the same timeline:
 * dropped transmissions simply never arrive, duplicated ones occupy
 * the receiver's input link twice, jitter shifts arrival times,
 * straggler PEs issue their first send late, and degraded links
 * stretch the per-word time of every transfer they carry.  This is
 * fault *injection* without *recovery* — lost data stays lost and is
 * reported in the counters; see reliable_exchange.h for the
 * ack/retransmit protocol layered on top.
 */

#ifndef QUAKE98_PARALLEL_EVENT_SIM_H_
#define QUAKE98_PARALLEL_EVENT_SIM_H_

#include <cstdint>
#include <vector>

#include "parallel/comm_schedule.h"
#include "parallel/fault_model.h"
#include "parallel/machine.h"

namespace quake::parallel
{

/** Options for the event-driven exchange simulation. */
struct EventSimOptions
{
    /** Constant network transit time (the paper assumes ~0). */
    double wireLatency = 0.0;

    /**
     * When true, the input and output links operate concurrently
     * (full duplex, the literal Figure 5 picture); when false the two
     * links share the interface, serializing sends and receives — the
     * paper's Equation (2) accounting.
     */
    bool fullDuplex = true;

    /**
     * Optional fault injection (not owned; must outlive the call).
     * nullptr, or a FaultModel with enabled() == false, reproduces the
     * fault-free timeline bit for bit.
     */
    const FaultModel *faults = nullptr;
};

/** Result of simulating one communication phase. */
struct EventSimResult
{
    /** Time at which each PE finished all sends and receives. */
    std::vector<double> peFinishTime;

    /** Phase time: max over PEs. */
    double tComm = 0.0;

    /** Total idle time across PEs (waiting for messages to arrive). */
    double totalIdle = 0.0;

    /** Index of the finishing (slowest) PE. */
    int criticalPe = 0;

    // --- fault counters (all zero on a fault-free run) ---

    /** Data transmissions issued (one per directed exchange here). */
    std::int64_t messagesSent = 0;

    /** Copies that reached their receiver (includes duplicates). */
    std::int64_t messagesDelivered = 0;

    /** Transmissions lost in the network and never recovered. */
    std::int64_t messagesDropped = 0;

    /** Extra copies the network delivered. */
    std::int64_t duplicatesDelivered = 0;

    /**
     * Per-PE straggler attribution: seconds each PE entered the phase
     * late.  Empty when no fault model was supplied.
     */
    std::vector<double> peStartDelay;
};

/**
 * Simulate the exchange phase of `schedule` on `machine`.
 *
 * All PEs begin at time zero (the phase starts at a barrier).  The
 * simulation is deterministic: sends are issued in exchange order
 * (ascending peer), receptions are processed in arrival-time order
 * with ties broken by sender id.  The schedule and machine are
 * validated on entry; malformed input raises common::FatalError.
 */
EventSimResult simulateExchange(const CommSchedule &schedule,
                                const MachineModel &machine,
                                const EventSimOptions &options = {});

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_EVENT_SIM_H_
