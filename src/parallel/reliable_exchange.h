/**
 * @file
 * Ack/timeout/retransmission protocol layered on the event-driven
 * exchange simulator.
 *
 * The baseline simulator (event_sim.h) executes the SMVP exchange on a
 * perfectly reliable network; with a FaultModel it can *inject* faults
 * but lost data stays lost.  This module simulates the protocol a real
 * system would run on such a network:
 *
 *  - every data message must be acknowledged by its receiver;
 *  - a sender arms a retransmission timer when a send completes; if no
 *    ack arrives before it fires, the message is retransmitted with
 *    exponential backoff (capped), up to a retry budget;
 *  - when the budget is exhausted the sender *gives up* on that
 *    exchange and the phase still completes — graceful degradation —
 *    with the lost exchanges and a stale-boundary-value error bound
 *    reported instead of the simulation hanging;
 *  - receivers deduplicate: redundant copies (network duplicates,
 *    retransmissions of already-delivered data) occupy the input link
 *    (wasted work the counters expose) but are summed only once.
 *
 * Modelling choices, documented in DESIGN.md:
 *  - Acks travel on an out-of-band control channel: they experience
 *    wire latency, jitter, and drops, but occupy no data-link time.
 *  - Retransmission timers are armed only when the spec can actually
 *    lose something (data or ack drops); a fault-free spec therefore
 *    reproduces the baseline simulator's timeline *bit for bit*.
 *  - All fault decisions are hash-derived from the seed (fault_model.h),
 *    so a fixed seed gives identical counters and timelines across
 *    runs, hosts, and event orderings.
 */

#ifndef QUAKE98_PARALLEL_RELIABLE_EXCHANGE_H_
#define QUAKE98_PARALLEL_RELIABLE_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "parallel/comm_schedule.h"
#include "parallel/fault_model.h"
#include "parallel/machine.h"
#include "telemetry/collector.h"

namespace quake::parallel
{

/** Options for the reliable exchange simulation. */
struct ReliableExchangeOptions
{
    /** Constant network transit time (as in EventSimOptions). */
    double wireLatency = 0.0;

    /** Full-duplex (Figure 5) or shared-interface link discipline. */
    bool fullDuplex = true;

    /** Faults to inject; an all-zero spec reproduces the baseline. */
    FaultSpec faults;

    /**
     * Initial retransmission timeout (seconds).  0 selects an automatic
     * per-message value: the receiver's worst-case input-link service
     * demand (a BSP sender knows the schedule) plus 4x the fault-free
     * round trip (send + wire + receive + ack return), so a timer can
     * only fire spuriously when traffic was actually lost or delayed.
     */
    double timeoutSeconds = 0.0;

    /** Multiplier applied to the timeout after each retry (>= 1). */
    double backoffFactor = 2.0;

    /**
     * Upper bound on the backed-off timeout (seconds).  0 selects 64x
     * the initial timeout.
     */
    double timeoutCapSeconds = 0.0;

    /** Retransmissions allowed per message before the sender gives up. */
    int maxRetries = 8;

    /**
     * Optional telemetry sink (DESIGN.md §9).  When set and enabled,
     * the simulation's protocol traffic — data/ack transmissions and
     * drops, retransmissions (total and spurious), timeouts fired, and
     * the modelled backoff wait (in simulated nanoseconds) — is added
     * to the collector's control-slot counters on completion, so fault
     * sweeps accumulate protocol cost next to the engine's phase
     * timings.  The result struct is unchanged.
     */
    telemetry::Collector *collector = nullptr;

    /** Reject out-of-range parameters with FatalError. */
    void validate() const;
};

/** One exchange whose sender exhausted its retry budget. */
struct LostExchange
{
    int src = 0;
    int dst = 0;
    std::int64_t words = 0;
    int attempts = 0; ///< transmissions issued before giving up
};

/** Result of one reliable exchange phase. */
struct ReliableExchangeResult
{
    // --- timeline (same semantics as EventSimResult) ---

    /** Time each PE's data links went finally idle. */
    std::vector<double> peFinishTime;

    /** Phase time: max over PEs of data-link completion. */
    double tComm = 0.0;

    /** Total data-link idle time across PEs. */
    double totalIdle = 0.0;

    /** Index of the finishing (slowest) PE. */
    int criticalPe = 0;

    /**
     * Time the whole protocol went quiet (last ack/timer processed);
     * >= tComm because control traffic outlives the data links.
     */
    double tProtocolQuiesce = 0.0;

    // --- traffic counters ---

    std::int64_t dataSent = 0;      ///< transmissions incl. retransmissions
    std::int64_t dataDelivered = 0; ///< copies that reached a receiver
    std::int64_t dataDropped = 0;   ///< transmissions lost in the network
    std::int64_t duplicatesDelivered = 0; ///< network-duplicated copies
    std::int64_t redundantDeliveries = 0; ///< copies after the first delivery

    // --- protocol counters ---

    std::int64_t retransmissions = 0; ///< timer-triggered resends
    std::int64_t spuriousRetransmissions = 0; ///< resends of delivered data
    std::int64_t acksSent = 0;
    std::int64_t acksDropped = 0;
    std::int64_t timeoutsFired = 0;

    /** Total sender wait represented by fired timers (seconds). */
    double timeoutWaitSeconds = 0.0;

    /** Per-PE straggler attribution: seconds each PE started late. */
    std::vector<double> peStartDelay;

    // --- graceful degradation ---

    /** Exchanges whose sender exhausted the retry budget. */
    std::vector<LostExchange> lostExchanges;

    /**
     * Words of y = Kx boundary data that never reached their receiver.
     * Each such word leaves one entry of the receiver's y stale by the
     * sender's partial sum — the structural error bound on the product.
     * (A lost exchange whose data did arrive but whose acks were all
     * dropped contributes to lostExchanges but not here.)
     */
    std::int64_t staleWords = 0;

    /** staleWords / total directed words (0 when nothing was lost). */
    double staleFraction = 0.0;

    /** True when any exchange was given up or left undelivered. */
    bool degraded = false;
};

/**
 * Simulate one reliable exchange phase of `schedule` on `machine`.
 *
 * Deterministic for a fixed options.faults.seed: identical timelines
 * and counters across runs.  With an all-zero fault spec the result's
 * timeline fields equal simulateExchange()'s bit for bit.  Malformed
 * schedules, machines, and options raise common::FatalError.
 */
ReliableExchangeResult
simulateReliableExchange(const CommSchedule &schedule,
                         const MachineModel &machine,
                         const ReliableExchangeOptions &options = {});

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_RELIABLE_EXCHANGE_H_
