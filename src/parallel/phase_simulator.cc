#include "parallel/phase_simulator.h"

#include <algorithm>

#include "common/error.h"

namespace quake::parallel
{

PhaseTimes
simulateSmvp(const core::SmvpCharacterization &ch,
             const MachineModel &machine, OverlapMode overlap, NiMode ni)
{
    QUAKE_EXPECT(!ch.pes.empty(), "characterization has no PEs");
    machine.validate();
    for (std::size_t i = 0; i < ch.pes.size(); ++i) {
        const core::PeLoad &pe = ch.pes[i];
        QUAKE_EXPECT(pe.flops >= 0 && pe.words >= 0 && pe.blocks >= 0,
                     "characterization '"
                         << ch.name << "' PE " << i
                         << " has a negative load (flops=" << pe.flops
                         << ", words=" << pe.words
                         << ", blocks=" << pe.blocks << ")");
        QUAKE_EXPECT(pe.words == 0 || pe.blocks > 0,
                     "characterization '"
                         << ch.name << "' PE " << i << " moves "
                         << pe.words << " words in zero blocks");
    }

    PhaseTimes times;
    for (const core::PeLoad &pe : ch.pes) {
        times.tComp = std::max(
            times.tComp, static_cast<double>(pe.flops) * machine.tf);
        double comm = static_cast<double>(pe.blocks) * machine.tl +
                      static_cast<double>(pe.words) * machine.tw;
        // Full duplex: the schedule is symmetric (every send matched by
        // an equal receive), so each link carries exactly half the
        // blocks and words and the two links run concurrently.
        if (ni == NiMode::kFullDuplex)
            comm *= 0.5;
        times.tComm = std::max(times.tComm, comm);
    }
    times.tSmvp = overlap == OverlapMode::kNone
                      ? times.tComp + times.tComm
                      : std::max(times.tComp, times.tComm);
    times.efficiency =
        times.tSmvp > 0 ? times.tComp / times.tSmvp : 1.0;
    return times;
}

ModelAccuracy
evaluateModelAccuracy(const core::SmvpCharacterization &ch,
                      const MachineModel &machine)
{
    machine.validate();
    const core::CharacterizationSummary summary = core::summarize(ch);

    ModelAccuracy acc;
    acc.beta = summary.beta;
    acc.modelTcomm =
        static_cast<double>(summary.blocksMax) * machine.tl +
        static_cast<double>(summary.wordsMax) * machine.tw;

    const PhaseTimes times = simulateSmvp(ch, machine);
    acc.trueTcomm = times.tComm;
    acc.ratio = acc.trueTcomm > 0 ? acc.modelTcomm / acc.trueTcomm : 1.0;
    return acc;
}

} // namespace quake::parallel
