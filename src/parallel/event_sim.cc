#include "parallel/event_sim.h"

#include <algorithm>
#include <queue>
#include <tuple>

#include "common/error.h"

namespace quake::parallel
{

namespace
{

/** A message queued at a receiver. */
struct QueuedArrival
{
    double time;
    int src;
    std::int64_t words;
    bool duplicate;

    bool
    operator>(const QueuedArrival &o) const
    {
        return std::tie(time, src) > std::tie(o.time, o.src);
    }
};

/** Global simulation events, ordered by (time, kind, pe, src). */
struct Event
{
    enum Kind : int
    {
        kArrival = 0,  ///< a message reaches its receiver
        kLinkFree = 1, ///< a link finishes its current task
        kStart = 2,    ///< a straggler PE enters the phase
    };

    double time;
    Kind kind;
    int pe;
    int src;            ///< sender (arrivals only)
    std::int64_t words; ///< payload (arrivals only)
    int link;           ///< 0 = out / shared, 1 = in (link-free only)
    bool duplicate;     ///< network-duplicated copy (arrivals only)

    bool
    operator>(const Event &o) const
    {
        return std::tie(time, kind, pe, src) >
               std::tie(o.time, o.kind, o.pe, o.src);
    }
};

struct PeState
{
    const PeSchedule *schedule = nullptr;
    std::size_t nextSend = 0;
    bool started = true;
    std::priority_queue<QueuedArrival, std::vector<QueuedArrival>,
                        std::greater<QueuedArrival>>
        arrivals;
    bool linkBusy[2] = {false, false};
    double linkBusyTime[2] = {0.0, 0.0};
    double linkLastDone[2] = {0.0, 0.0};
    double finish = 0.0;
};

} // namespace

EventSimResult
simulateExchange(const CommSchedule &schedule, const MachineModel &machine,
                 const EventSimOptions &options)
{
    machine.validate();
    schedule.validate();
    QUAKE_EXPECT(options.wireLatency >= 0,
                 "wire latency must be nonnegative");

    const int p = schedule.numPes();
    static const FaultModel benign;
    const FaultModel &faults = options.faults ? *options.faults : benign;
    QUAKE_EXPECT(faults.numPes() == 0 || faults.numPes() >= p,
                 "fault model covers " << faults.numPes()
                                       << " PEs, schedule has " << p);

    EventSimResult result;
    std::vector<PeState> pes(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
        pes[i].schedule = &schedule.pe(i);

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;

    // A transfer's duration depends on the link that carries it: a
    // degraded PE stretches the per-word time on its own links.
    auto transferTime = [&](std::int64_t words, int pe) {
        return machine.tl + static_cast<double>(words) * machine.tw *
                                faults.bandwidthFactor(pe);
    };

    // In half-duplex mode both roles share link 0.
    const int in_link = options.fullDuplex ? 1 : 0;

    // Try to start the next task on a link; returns true if started.
    auto tryStart = [&](int pe, int link, double now) {
        PeState &state = pes[pe];
        if (state.linkBusy[link])
            return;

        // Sends are served first (they are ready from the PE's phase
        // start); the input role serves the earliest queued arrival.
        const bool can_send =
            (link == 0) && state.started &&
            state.nextSend < state.schedule->exchanges.size();
        const bool can_recv = (link == in_link) &&
                              !state.arrivals.empty() &&
                              state.arrivals.top().time <= now;

        if (can_send) {
            const std::size_t msg = state.nextSend++;
            const Exchange &ex = state.schedule->exchanges[msg];
            const double duration = transferTime(ex.words(), pe);
            state.linkBusy[link] = true;
            state.linkBusyTime[link] += duration;
            state.linkLastDone[link] = now + duration;
            events.push(Event{now + duration, Event::kLinkFree, pe, -1,
                              0, link, false});
            ++result.messagesSent;
            // The message is fully on the wire when the send ends; the
            // network may then lose it, delay it, or deliver it twice.
            if (faults.dropData(pe, ex.peer, 0)) {
                ++result.messagesDropped;
            } else {
                events.push(
                    Event{now + duration + options.wireLatency +
                              faults.deliveryJitter(pe, ex.peer, 0, 0),
                          Event::kArrival, ex.peer, pe, ex.words(), 0,
                          false});
                if (faults.duplicateData(pe, ex.peer, 0))
                    events.push(
                        Event{now + duration + options.wireLatency +
                                  faults.deliveryJitter(pe, ex.peer, 0,
                                                        1),
                              Event::kArrival, ex.peer, pe, ex.words(),
                              0, true});
            }
        } else if (can_recv) {
            const QueuedArrival arrival = state.arrivals.top();
            state.arrivals.pop();
            const double duration = transferTime(arrival.words, pe);
            state.linkBusy[link] = true;
            state.linkBusyTime[link] += duration;
            state.linkLastDone[link] = now + duration;
            events.push(Event{now + duration, Event::kLinkFree, pe,
                              arrival.src, 0, link, false});
        }
    };

    for (int i = 0; i < p; ++i) {
        const double delay = faults.startDelay(i);
        if (delay > 0) {
            pes[i].started = false;
            events.push(
                Event{delay, Event::kStart, i, -1, 0, 0, false});
        } else {
            tryStart(i, 0, 0.0);
        }
    }

    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        PeState &state = pes[ev.pe];
        if (ev.kind == Event::kArrival) {
            ++result.messagesDelivered;
            if (ev.duplicate)
                ++result.duplicatesDelivered;
            state.arrivals.push(
                QueuedArrival{ev.time, ev.src, ev.words, ev.duplicate});
            tryStart(ev.pe, in_link, ev.time);
        } else if (ev.kind == Event::kStart) {
            state.started = true;
            tryStart(ev.pe, 0, ev.time);
        } else {
            state.linkBusy[ev.link] = false;
            state.finish = std::max(state.finish, ev.time);
            // The freed link may pick up a send or a queued arrival.
            tryStart(ev.pe, ev.link, ev.time);
        }
    }

    // Every send must have been issued and every arrival consumed.
    for (int i = 0; i < p; ++i) {
        QUAKE_REQUIRE(pes[i].nextSend ==
                          pes[i].schedule->exchanges.size(),
                      "simulation ended with unsent messages");
        QUAKE_REQUIRE(pes[i].arrivals.empty(),
                      "simulation ended with unconsumed arrivals");
    }
    QUAKE_REQUIRE(result.messagesDelivered ==
                      result.messagesSent - result.messagesDropped +
                          result.duplicatesDelivered,
                  "message conservation violated");

    result.peFinishTime.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        result.peFinishTime[i] = pes[i].finish;
        if (pes[i].finish > result.tComm) {
            result.tComm = pes[i].finish;
            result.criticalPe = i;
        }
        // Idle: time each active link spent not transferring before it
        // completed its last task (straggler start delays included).
        for (int link = 0; link < (options.fullDuplex ? 2 : 1); ++link) {
            if (pes[i].linkBusyTime[link] > 0)
                result.totalIdle += pes[i].linkLastDone[link] -
                                    pes[i].linkBusyTime[link];
        }
    }
    if (options.faults) {
        result.peStartDelay.resize(static_cast<std::size_t>(p));
        for (int i = 0; i < p; ++i)
            result.peStartDelay[i] = faults.startDelay(i);
    }
    return result;
}

} // namespace quake::parallel
