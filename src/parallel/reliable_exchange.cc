#include "parallel/reliable_exchange.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <tuple>

#include "common/error.h"

namespace quake::parallel
{

namespace
{

/** A data copy queued at a receiver's input link. */
struct QueuedArrival
{
    double time;
    int src;
    std::size_t msg; ///< index into the sender's exchange list
    std::int64_t words;
    int attempt;
    bool duplicate;

    bool
    operator>(const QueuedArrival &o) const
    {
        return std::tie(time, src, msg) > std::tie(o.time, o.src, o.msg);
    }
};

/**
 * Global simulation events.  Kind values for data events match
 * event_sim.cc so that a fault-free run replays the exact baseline
 * ordering; control events sort after data events at equal times.
 */
struct Event
{
    enum Kind : int
    {
        kArrival = 0,  ///< a data copy reaches its receiver
        kLinkFree = 1, ///< a data link finishes its current task
        kStart = 2,    ///< a straggler PE enters the phase
        kAck = 3,      ///< an acknowledgement reaches the sender
        kTimeout = 4,  ///< a retransmission timer fires
    };

    double time;
    Kind kind;
    int pe;  ///< PE the event happens at
    int src; ///< data sender (arrivals/receptions/acks), else -1
    std::size_t msg = 0;
    int attempt = 0;
    std::int64_t words = 0;
    int link = 0;
    bool duplicate = false;
    std::uint64_t seq = 0; ///< deterministic final tiebreak (push order)

    bool
    operator>(const Event &o) const
    {
        return std::tie(time, kind, pe, src, seq) >
               std::tie(o.time, o.kind, o.pe, o.src, o.seq);
    }
};

/** Protocol state of one directed exchange. */
struct ExchState
{
    int attempts = 0;     ///< transmissions issued so far
    bool acked = false;   ///< sender received an acknowledgement
    bool lost = false;    ///< sender exhausted the retry budget
    bool delivered = false; ///< receiver has the data (any copy)
};

struct PeState
{
    const PeSchedule *schedule = nullptr;
    std::size_t nextSend = 0;
    bool started = true;
    std::deque<std::size_t> retransmits;
    std::vector<ExchState> exch;
    std::priority_queue<QueuedArrival, std::vector<QueuedArrival>,
                        std::greater<QueuedArrival>>
        arrivals;
    bool linkBusy[2] = {false, false};
    double linkBusyTime[2] = {0.0, 0.0};
    double linkLastDone[2] = {0.0, 0.0};
    double finish = 0.0;
};

} // namespace

void
ReliableExchangeOptions::validate() const
{
    faults.validate();
    QUAKE_EXPECT(wireLatency >= 0, "wire latency must be nonnegative");
    QUAKE_EXPECT(timeoutSeconds >= 0,
                 "timeout must be nonnegative, got " << timeoutSeconds);
    QUAKE_EXPECT(backoffFactor >= 1,
                 "backoff factor must be >= 1, got " << backoffFactor);
    QUAKE_EXPECT(timeoutCapSeconds >= 0,
                 "timeout cap must be nonnegative, got "
                     << timeoutCapSeconds);
    QUAKE_EXPECT(maxRetries >= 0,
                 "max retries must be nonnegative, got " << maxRetries);
}

ReliableExchangeResult
simulateReliableExchange(const CommSchedule &schedule,
                         const MachineModel &machine,
                         const ReliableExchangeOptions &options)
{
    machine.validate();
    schedule.validate();
    options.validate();

    const int p = schedule.numPes();
    const FaultModel faults(options.faults, p);

    // Timers exist to recover losses; when nothing can be lost they
    // could only fire spuriously, so they stay disarmed — which also
    // makes the fault-free timeline bit-identical to the baseline.
    const bool arm_timers = options.faults.dropProbability > 0 ||
                            options.faults.ackDropProbability > 0;

    ReliableExchangeResult result;
    std::vector<PeState> pes(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        pes[i].schedule = &schedule.pe(i);
        pes[i].exch.assign(schedule.pe(i).exchanges.size(), ExchState{});
    }

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;
    std::uint64_t next_seq = 0;
    auto push = [&](Event ev) {
        ev.seq = next_seq++;
        events.push(ev);
    };

    auto transferTime = [&](std::int64_t words, int pe) {
        return machine.tl + static_cast<double>(words) * machine.tw *
                                faults.bandwidthFactor(pe);
    };

    // Worst-case service demand on each PE's input link: every inbound
    // message, plus (half duplex) the sends competing for the same
    // link.  A BSP sender knows the schedule, so its timer must not
    // fire while the receiver may still be draining legitimate traffic.
    std::vector<double> inboundWork(static_cast<std::size_t>(p), 0.0);
    for (int i = 0; i < p; ++i) {
        for (const Exchange &ex : schedule.pe(i).exchanges)
            inboundWork[i] += machine.tl +
                              static_cast<double>(ex.words()) *
                                  machine.tw * faults.bandwidthFactor(i);
        if (!options.fullDuplex)
            inboundWork[i] *= 2.0;
    }

    // Retransmission timeout for attempt k of a message: exponential
    // backoff from a per-message base, capped.
    auto timeoutFor = [&](std::int64_t words, int dst, int attempt) {
        const double nominal = machine.tl +
                               static_cast<double>(words) * machine.tw;
        const double base =
            options.timeoutSeconds > 0
                ? options.timeoutSeconds
                : inboundWork[dst] +
                      4.0 * (2.0 * options.wireLatency + 2.0 * nominal);
        const double cap = options.timeoutCapSeconds > 0
                               ? options.timeoutCapSeconds
                               : 64.0 * base;
        return std::min(base * std::pow(options.backoffFactor,
                                        static_cast<double>(attempt)),
                        cap);
    };

    const int in_link = options.fullDuplex ? 1 : 0;

    auto tryStart = [&](int pe, int link, double now) {
        PeState &state = pes[pe];
        if (state.linkBusy[link])
            return;

        // Drop retransmit-queue entries cancelled by a late ack or by
        // the sender having given up.
        while (!state.retransmits.empty()) {
            const ExchState &st = state.exch[state.retransmits.front()];
            if (st.acked || st.lost)
                state.retransmits.pop_front();
            else
                break;
        }

        const bool can_retransmit =
            (link == 0) && state.started && !state.retransmits.empty();
        const bool can_send =
            can_retransmit ||
            ((link == 0) && state.started &&
             state.nextSend < state.schedule->exchanges.size());
        const bool can_recv = (link == in_link) &&
                              !state.arrivals.empty() &&
                              state.arrivals.top().time <= now;

        if (can_send) {
            std::size_t msg;
            if (can_retransmit) {
                msg = state.retransmits.front();
                state.retransmits.pop_front();
            } else {
                msg = state.nextSend++;
            }
            const Exchange &ex = state.schedule->exchanges[msg];
            ExchState &st = state.exch[msg];
            const int attempt = st.attempts++;
            const double duration = transferTime(ex.words(), pe);
            const double done = now + duration;
            state.linkBusy[link] = true;
            state.linkBusyTime[link] += duration;
            state.linkLastDone[link] = done;
            push(Event{done, Event::kLinkFree, pe, -1, msg, attempt, 0,
                       link, false});

            ++result.dataSent;
            if (attempt > 0) {
                ++result.retransmissions;
                if (st.delivered)
                    ++result.spuriousRetransmissions;
            }
            if (faults.dropData(pe, ex.peer, attempt)) {
                ++result.dataDropped;
            } else {
                push(Event{done + options.wireLatency +
                               faults.deliveryJitter(pe, ex.peer,
                                                     attempt, 0),
                           Event::kArrival, ex.peer, pe, msg, attempt,
                           ex.words(), 0, false});
                if (faults.duplicateData(pe, ex.peer, attempt))
                    push(Event{done + options.wireLatency +
                                   faults.deliveryJitter(pe, ex.peer,
                                                         attempt, 1),
                               Event::kArrival, ex.peer, pe, msg,
                               attempt, ex.words(), 0, true});
            }
            if (arm_timers)
                push(Event{done + timeoutFor(ex.words(), ex.peer,
                                             attempt),
                           Event::kTimeout, pe, -1, msg, attempt, 0, 0,
                           false});
        } else if (can_recv) {
            const QueuedArrival arrival = state.arrivals.top();
            state.arrivals.pop();
            const double duration = transferTime(arrival.words, pe);
            state.linkBusy[link] = true;
            state.linkBusyTime[link] += duration;
            state.linkLastDone[link] = now + duration;
            push(Event{now + duration, Event::kLinkFree, pe, arrival.src,
                       arrival.msg, arrival.attempt, arrival.words, link,
                       arrival.duplicate});
        }
    };

    for (int i = 0; i < p; ++i) {
        const double delay = faults.startDelay(i);
        if (delay > 0) {
            pes[i].started = false;
            push(Event{delay, Event::kStart, i, -1, 0, 0, 0, 0, false});
        } else {
            tryStart(i, 0, 0.0);
        }
    }

    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        result.tProtocolQuiesce =
            std::max(result.tProtocolQuiesce, ev.time);
        PeState &state = pes[ev.pe];

        switch (ev.kind) {
        case Event::kArrival:
            ++result.dataDelivered;
            if (ev.duplicate)
                ++result.duplicatesDelivered;
            state.arrivals.push(QueuedArrival{ev.time, ev.src, ev.msg,
                                              ev.words, ev.attempt,
                                              ev.duplicate});
            tryStart(ev.pe, in_link, ev.time);
            break;

        case Event::kStart:
            state.started = true;
            tryStart(ev.pe, 0, ev.time);
            break;

        case Event::kLinkFree: {
            state.linkBusy[ev.link] = false;
            state.finish = std::max(state.finish, ev.time);
            if (ev.src >= 0) {
                // A reception completed: the data is in memory, so
                // acknowledge it (acks ride the out-of-band control
                // channel and occupy no data-link time).
                ExchState &st = pes[ev.src].exch[ev.msg];
                if (st.delivered)
                    ++result.redundantDeliveries;
                st.delivered = true;
                ++result.acksSent;
                if (faults.dropAck(ev.src, ev.pe, ev.attempt)) {
                    ++result.acksDropped;
                } else {
                    push(Event{ev.time + options.wireLatency +
                                   faults.ackJitter(ev.src, ev.pe,
                                                    ev.attempt),
                               Event::kAck, ev.src, ev.pe, ev.msg,
                               ev.attempt, 0, 0, false});
                }
            }
            tryStart(ev.pe, ev.link, ev.time);
            break;
        }

        case Event::kAck: {
            ExchState &st = state.exch[ev.msg];
            if (!st.acked && !st.lost)
                st.acked = true;
            break;
        }

        case Event::kTimeout: {
            ExchState &st = state.exch[ev.msg];
            if (st.acked || st.lost)
                break; // stale timer
            const Exchange &ex = state.schedule->exchanges[ev.msg];
            ++result.timeoutsFired;
            result.timeoutWaitSeconds +=
                timeoutFor(ex.words(), ex.peer, ev.attempt);
            if (st.attempts > options.maxRetries) {
                st.lost = true;
                result.lostExchanges.push_back(LostExchange{
                    ev.pe, ex.peer, ex.words(), st.attempts});
            } else {
                state.retransmits.push_back(ev.msg);
                tryStart(ev.pe, 0, ev.time);
            }
            break;
        }
        }
    }

    // Every exchange must have terminated: acknowledged or given up.
    for (int i = 0; i < p; ++i) {
        QUAKE_REQUIRE(pes[i].nextSend ==
                          pes[i].schedule->exchanges.size(),
                      "simulation ended with unsent messages");
        QUAKE_REQUIRE(pes[i].arrivals.empty(),
                      "simulation ended with unconsumed arrivals");
        for (const ExchState &st : pes[i].exch)
            QUAKE_REQUIRE(st.acked || st.lost,
                          "exchange ended neither acked nor lost");
    }

    result.peFinishTime.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        result.peFinishTime[i] = pes[i].finish;
        if (pes[i].finish > result.tComm) {
            result.tComm = pes[i].finish;
            result.criticalPe = i;
        }
        for (int link = 0; link < (options.fullDuplex ? 2 : 1); ++link) {
            if (pes[i].linkBusyTime[link] > 0)
                result.totalIdle += pes[i].linkLastDone[link] -
                                    pes[i].linkBusyTime[link];
        }
    }

    result.peStartDelay.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
        result.peStartDelay[i] = faults.startDelay(i);

    // Receiver-side staleness: words whose data never arrived leave the
    // matching y = Kx boundary entries stale by the missing partial sum.
    for (int i = 0; i < p; ++i) {
        const PeSchedule &sched = *pes[i].schedule;
        for (std::size_t m = 0; m < sched.exchanges.size(); ++m)
            if (!pes[i].exch[m].delivered)
                result.staleWords += sched.exchanges[m].words();
    }
    const std::int64_t total = schedule.totalWords();
    result.staleFraction =
        total > 0 ? static_cast<double>(result.staleWords) /
                        static_cast<double>(total)
                  : 0.0;
    result.degraded =
        !result.lostExchanges.empty() || result.staleWords > 0;

    if (options.collector != nullptr && options.collector->enabled()) {
        telemetry::Collector &tc = *options.collector;
        using telemetry::Counter;
        tc.ensureSlots(1);
        tc.add(0, Counter::kDataSent, result.dataSent);
        tc.add(0, Counter::kDataDropped, result.dataDropped);
        tc.add(0, Counter::kAcksSent, result.acksSent);
        tc.add(0, Counter::kAcksDropped, result.acksDropped);
        tc.add(0, Counter::kRetransmissions, result.retransmissions);
        tc.add(0, Counter::kSpuriousRetransmissions,
               result.spuriousRetransmissions);
        tc.add(0, Counter::kTimeoutsFired, result.timeoutsFired);
        tc.add(0, Counter::kBackoffWaitNanos,
               static_cast<std::uint64_t>(result.timeoutWaitSeconds *
                                          1e9));
    }
    return result;
}

} // namespace quake::parallel
