#include "parallel/topology.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace quake::parallel
{

namespace
{

/** Parse a nonnegative integer; -1 on anything else. */
int
parseNonNegative(const std::string &s)
{
    if (s.empty())
        return -1;
    long v = 0;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        v = v * 10 + (c - '0');
        if (v > 1 << 22) // absurd CPU/shard id: reject, avoid overflow
            return -1;
    }
    return static_cast<int>(v);
}

} // namespace

std::vector<int>
parseCpuList(const std::string &list)
{
    std::vector<int> cpus;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        // Trim whitespace (sysfs cpulist files end in '\n').
        while (!item.empty() &&
               std::isspace(static_cast<unsigned char>(item.back())))
            item.pop_back();
        while (!item.empty() &&
               std::isspace(static_cast<unsigned char>(item.front())))
            item.erase(item.begin());
        if (item.empty())
            continue;
        const std::size_t dash = item.find('-');
        if (dash == std::string::npos) {
            const int c = parseNonNegative(item);
            if (c < 0)
                return {};
            cpus.push_back(c);
        } else {
            const int lo = parseNonNegative(item.substr(0, dash));
            const int hi = parseNonNegative(item.substr(dash + 1));
            if (lo < 0 || hi < lo)
                return {};
            for (int c = lo; c <= hi; ++c)
                cpus.push_back(c);
        }
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

std::vector<int>
affinityCpus()
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        std::vector<int> cpus;
        for (int c = 0; c < CPU_SETSIZE; ++c)
            if (CPU_ISSET(c, &set))
                cpus.push_back(c);
        if (!cpus.empty())
            return cpus;
    }
#endif
    const int n = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    std::vector<int> cpus(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c)
        cpus[static_cast<std::size_t>(c)] = c;
    return cpus;
}

std::vector<std::vector<int>>
detectNumaDomains()
{
    std::vector<std::vector<int>> domains;
#if defined(__linux__)
    const std::vector<int> affinity = affinityCpus();
    // "possible" bounds the node scan; nodes may be sparse, so each
    // node<k> directory is probed individually via its cpulist.
    std::ifstream possible("/sys/devices/system/node/possible");
    if (!possible)
        return domains;
    std::string range;
    std::getline(possible, range);
    const std::vector<int> nodes = parseCpuList(range);
    for (int node : nodes) {
        std::ifstream cpulist("/sys/devices/system/node/node" +
                              std::to_string(node) + "/cpulist");
        if (!cpulist)
            continue;
        std::string line;
        std::getline(cpulist, line);
        std::vector<int> cpus = parseCpuList(line);
        // Keep only CPUs the process may actually run on.
        std::vector<int> usable;
        std::set_intersection(cpus.begin(), cpus.end(), affinity.begin(),
                              affinity.end(),
                              std::back_inserter(usable));
        if (!usable.empty())
            domains.push_back(std::move(usable));
    }
#endif
    return domains;
}

bool
pinCurrentThreadToCpus(const std::vector<int> &cpus)
{
#if defined(__linux__)
    if (cpus.empty())
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int c : cpus) {
        if (c < 0 || c >= CPU_SETSIZE)
            return false;
        CPU_SET(c, &set);
    }
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpus;
    return false;
#endif
}

Topology
Topology::flat(int num_threads)
{
    Topology t;
    t.numShards = 1;
    t.threadsPerShard = 0;
    t.threadBudget = num_threads;
    return t;
}

Topology
Topology::uniform(int shards, int threads_per_shard, bool pin)
{
    Topology t;
    t.numShards = shards;
    t.threadsPerShard = threads_per_shard;
    t.pin = pin;
    t.validate();
    return t;
}

Topology
Topology::detect(bool pin)
{
    std::vector<std::vector<int>> domains = detectNumaDomains();
    if (domains.empty())
        domains.push_back(affinityCpus());
    Topology t;
    t.numShards = static_cast<int>(domains.size());
    t.threadsPerShard = 0; // divide the visible CPUs evenly
    t.pin = pin;
    t.shardCpus = std::move(domains);
    return t;
}

Topology
Topology::parse(const std::string &spec, bool pin)
{
    if (spec == "auto" || spec == "detect")
        return detect(pin);
    if (spec == "flat") {
        Topology t = flat(0);
        t.pin = pin;
        return t;
    }
    const std::size_t x = spec.find('x');
    QUAKE_EXPECT(x != std::string::npos,
                 "topology spec must be 'flat', 'auto', or SxT (e.g. "
                 "2x4); got '"
                     << spec << "'");
    const int shards = parseNonNegative(spec.substr(0, x));
    const int tps = parseNonNegative(spec.substr(x + 1));
    QUAKE_EXPECT(shards >= 1 && tps >= 0,
                 "topology spec '"
                     << spec
                     << "' must be SxT with S >= 1 and T >= 0");
    Topology t;
    t.numShards = shards;
    t.threadsPerShard = tps;
    t.pin = pin;
    return t;
}

void
Topology::validate() const
{
    QUAKE_EXPECT(numShards >= 1,
                 "topology numShards must be >= 1, got " << numShards);
    QUAKE_EXPECT(threadsPerShard >= 0,
                 "topology threadsPerShard must be >= 0, got "
                     << threadsPerShard);
    QUAKE_EXPECT(threadBudget >= 0,
                 "topology threadBudget must be >= 0, got "
                     << threadBudget);
    QUAKE_EXPECT(shardCpus.empty() ||
                     static_cast<int>(shardCpus.size()) == numShards,
                 "topology shardCpus has " << shardCpus.size()
                                           << " entries for " << numShards
                                           << " shards");
}

} // namespace quake::parallel
