#include "parallel/worker_pool.h"

#include <algorithm>

#include "common/error.h"

namespace quake::parallel
{

int
WorkerPool::hardwareThreads()
{
    return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

WorkerPool::WorkerPool(int num_threads)
{
    QUAKE_EXPECT(num_threads >= 0, "thread count must be nonnegative");
    size_ = num_threads > 0 ? num_threads : hardwareThreads();
    if (size_ == 1)
        return; // run() executes inline; no workers needed
    threads_.reserve(static_cast<std::size_t>(size_));
    for (int t = 0; t < size_; ++t)
        threads_.emplace_back(&WorkerPool::workerLoop, this, t);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::setCollector(telemetry::Collector *collector)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (collector != nullptr)
        collector->ensureSlots(size_ + 1);
    tele_ = collector;
}

void
WorkerPool::workerLoop(int tid)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(int)> *task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            // Time parked between dispatches (wake latency + idle) —
            // the ISSUE's spin-wait accounting.  tele_ is read under
            // the same mutex setCollector takes.
            telemetry::Collector *tele =
                tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
            const std::uint64_t wait0 =
                tele != nullptr ? tele->now() : 0;
            cv_start_.wait(lock,
                           [&] { return stop_ || epoch_ != seen; });
            if (tele != nullptr)
                tele->add(1 + tid, telemetry::Counter::kWorkerWaitNanos,
                          tele->now() - wait0);
            if (stop_)
                return;
            seen = epoch_;
            task = task_;
        }
        (*task)(tid);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--remaining_ == 0)
                cv_done_.notify_all();
        }
    }
}

void
WorkerPool::dispatch(const std::function<void(int)> &fn)
{
    if (size_ == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &fn;
        remaining_ = size_;
        ++epoch_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
}

void
WorkerPool::run(const std::function<void(int)> &fn)
{
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    if (tele == nullptr) {
        dispatch(fn);
        return;
    }
    const std::uint64_t t0 = tele->now();
    dispatch(fn);
    const std::uint64_t t1 = tele->now();
    tele->add(0, telemetry::Counter::kPoolRuns, 1);
    tele->observe(0, telemetry::Hist::kForkJoinNanos, t1 - t0);
    if (tele->sampledStep())
        tele->recordSpan(0, telemetry::Span::kForkJoin, -1, t0, t1);
}

} // namespace quake::parallel
