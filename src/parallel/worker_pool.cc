#include "parallel/worker_pool.h"

#include <algorithm>

#include "common/error.h"
#include "parallel/topology.h"

namespace quake::parallel
{

int
WorkerPool::hardwareThreads()
{
    // affinityCpus() honors sched_getaffinity where available, so a
    // container restricted to 4 of 64 cores gets 4 workers instead of
    // oversubscribing 64 onto 4; it already falls back to
    // hardware_concurrency (clamped to >= 1) elsewhere.
    return static_cast<int>(affinityCpus().size());
}

WorkerPool::WorkerPool(int num_threads)
    : WorkerPool(num_threads, WorkerPoolOptions{})
{
}

WorkerPool::WorkerPool(int num_threads, WorkerPoolOptions options)
    : options_(std::move(options))
{
    QUAKE_EXPECT(num_threads >= 0, "thread count must be nonnegative");
    size_ = num_threads > 0 ? num_threads : hardwareThreads();
    if (size_ == 1)
        return; // run() executes inline; no workers needed
    threads_.reserve(static_cast<std::size_t>(size_));
    for (int t = 0; t < size_; ++t)
        threads_.emplace_back(&WorkerPool::workerLoop, this, t);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::setCollector(telemetry::Collector *collector,
                         int control_slot, int worker_base)
{
    QUAKE_EXPECT(control_slot >= 0 && worker_base >= 0,
                 "collector slots must be nonnegative");
    std::lock_guard<std::mutex> lock(mu_);
    if (collector != nullptr)
        collector->ensureSlots(
            std::max(control_slot + 1, worker_base + size_));
    tele_ = collector;
    control_slot_ = control_slot;
    worker_base_ = worker_base;
}

void
WorkerPool::workerLoop(int tid)
{
    // Self-pin before the first wait: any task this worker ever runs
    // (and any page it first-touches) executes post-pin.  Advisory —
    // a failure is counted and the worker keeps running unpinned.
    if (!options_.workerCpus.empty()) {
        const std::vector<int> &cpus =
            options_.workerCpus[static_cast<std::size_t>(tid) %
                                options_.workerCpus.size()];
        pin_attempts_.fetch_add(1, std::memory_order_relaxed);
        if (!pinCurrentThreadToCpus(cpus))
            pin_failures_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(int)> *task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            // Time parked between dispatches (wake latency + idle) —
            // the ISSUE's spin-wait accounting.  tele_ is read under
            // the same mutex setCollector takes.
            telemetry::Collector *tele =
                tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
            const int slot = worker_base_ + tid;
            const std::uint64_t wait0 =
                tele != nullptr ? tele->now() : 0;
            cv_start_.wait(lock,
                           [&] { return stop_ || epoch_ != seen; });
            if (tele != nullptr)
                tele->add(slot, telemetry::Counter::kWorkerWaitNanos,
                          tele->now() - wait0);
            if (stop_)
                return;
            seen = epoch_;
            task = task_;
        }
        (*task)(tid);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--remaining_ == 0)
                cv_done_.notify_all();
        }
    }
}

void
WorkerPool::dispatch(const std::function<void(int)> &fn)
{
    if (size_ == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &fn;
        remaining_ = size_;
        ++epoch_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
}

void
WorkerPool::run(const std::function<void(int)> &fn)
{
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    if (tele == nullptr) {
        dispatch(fn);
        return;
    }
    const std::uint64_t t0 = tele->now();
    dispatch(fn);
    const std::uint64_t t1 = tele->now();
    tele->add(control_slot_, telemetry::Counter::kPoolRuns, 1);
    tele->observe(control_slot_, telemetry::Hist::kForkJoinNanos,
                  t1 - t0);
    if (tele->sampledStep())
        tele->recordSpan(control_slot_, telemetry::Span::kForkJoin, -1,
                         t0, t1);
}

} // namespace quake::parallel
