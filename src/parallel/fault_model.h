/**
 * @file
 * Deterministic fault specification for the exchange simulators.
 *
 * The paper's Figure 5 PE model assumes a perfectly reliable,
 * constant-latency network and identical PEs.  Measurements of real
 * irregular exchanges (Bienz, Gropp & Olson; Schubert et al.) show
 * that queue contention, stragglers, and degraded links dominate the
 * deviation from postal-model predictions.  This module captures those
 * effects as a seeded, fully deterministic fault taxonomy:
 *
 *  - per-attempt message *drops* (the network loses a transmission),
 *  - per-attempt message *duplication* (the network delivers a copy
 *    twice),
 *  - exponential per-delivery *latency jitter* on top of the constant
 *    wire latency,
 *  - per-PE *straggler* delays (a slow PE enters the exchange phase
 *    late, modelling compute slowdown or OS noise),
 *  - per-PE *degraded links* (a PE whose interface sustains only a
 *    fraction of the nominal burst bandwidth).
 *
 * Determinism is the load-bearing property: every decision is a pure
 * function of (seed, message identity, attempt number), derived by
 * hashing rather than by consuming a shared stream.  Two simulations
 * with the same seed therefore inject byte-identical fault sequences
 * regardless of the order in which the event loop asks the questions.
 */

#ifndef QUAKE98_PARALLEL_FAULT_MODEL_H_
#define QUAKE98_PARALLEL_FAULT_MODEL_H_

#include <cstdint>
#include <vector>

namespace quake::parallel
{

/** User-facing description of the faults to inject. */
struct FaultSpec
{
    /** Seed for every fault decision; same seed => same faults. */
    std::uint64_t seed = 0x5eedULL;

    /** Probability a data transmission attempt is lost in the network. */
    double dropProbability = 0.0;

    /** Probability a delivered data message arrives twice. */
    double duplicateProbability = 0.0;

    /** Probability an acknowledgement is lost (reliable exchange only). */
    double ackDropProbability = 0.0;

    /** Mean of the exponential extra delivery latency (seconds; 0 = off). */
    double jitterMeanSeconds = 0.0;

    /** Probability a PE is a straggler this phase. */
    double stragglerProbability = 0.0;

    /** How late a straggler PE starts issuing its sends (seconds). */
    double stragglerDelaySeconds = 0.0;

    /** Probability a PE's network interface is degraded this phase. */
    double degradedLinkProbability = 0.0;

    /**
     * Per-word time multiplier on a degraded PE's links (>= 1; a factor
     * of 4 means the link sustains a quarter of the nominal burst
     * bandwidth).
     */
    double degradedBandwidthFactor = 1.0;

    /** True when any fault can actually occur under this spec. */
    bool any() const;

    /** Reject out-of-range parameters with FatalError. */
    void validate() const;
};

/**
 * A FaultSpec bound to a PE count: per-PE conditions (stragglers,
 * degraded links) are decided once at construction, per-message
 * conditions are answered on demand as pure hash functions.
 */
class FaultModel
{
  public:
    /** A model that injects nothing (all queries benign). */
    FaultModel() = default;

    /** Bind `spec` to `num_pes` PEs; validates the spec. */
    FaultModel(const FaultSpec &spec, int num_pes);

    const FaultSpec &spec() const { return spec_; }

    /** True when this model can inject at least one fault. */
    bool enabled() const { return enabled_; }

    /**
     * Is transmission attempt `attempt` of the (src -> dst) message
     * dropped by the network?  (Each ordered PE pair exchanges exactly
     * one message per SMVP, so (src, dst, attempt) names a transmission.)
     */
    bool dropData(int src, int dst, int attempt) const;

    /** Is this delivered attempt duplicated by the network? */
    bool duplicateData(int src, int dst, int attempt) const;

    /** Is the acknowledgement of this attempt dropped? */
    bool dropAck(int src, int dst, int attempt) const;

    /**
     * Extra delivery latency for copy `copy` (0 = original, 1 =
     * duplicate) of this attempt, in seconds.  Exponentially
     * distributed with mean jitterMeanSeconds; 0 when jitter is off.
     */
    double deliveryJitter(int src, int dst, int attempt, int copy) const;

    /** Extra latency on the acknowledgement of this attempt. */
    double ackJitter(int src, int dst, int attempt) const;

    /** Seconds PE `pe` enters the exchange phase late (0 if healthy). */
    double startDelay(int pe) const;

    /** Per-word time multiplier on `pe`'s links (1 if healthy). */
    double bandwidthFactor(int pe) const;

    /** Number of PEs bound at construction (0 for the benign model). */
    int numPes() const { return static_cast<int>(startDelay_.size()); }

    /** How many PEs straggle under this seed. */
    int numStragglers() const;

    /** How many PEs have degraded links under this seed. */
    int numDegradedLinks() const;

  private:
    double draw(std::uint64_t tag, int src, int dst, int attempt,
                int copy) const;

    FaultSpec spec_;
    bool enabled_ = false;
    std::vector<double> startDelay_;
    std::vector<double> bandwidthFactor_;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_FAULT_MODEL_H_
