#include "parallel/comm_schedule.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace quake::parallel
{

std::int64_t
PeSchedule::words() const
{
    std::int64_t total = 0;
    for (const Exchange &ex : exchanges)
        total += ex.words();
    return 2 * total; // sent plus received; directions are symmetric
}

std::int64_t
PeSchedule::blocksMaximal() const
{
    return 2 * static_cast<std::int64_t>(exchanges.size());
}

std::int64_t
PeSchedule::blocksFixed(int block_words) const
{
    QUAKE_EXPECT(block_words > 0, "block size must be positive");
    std::int64_t blocks = 0;
    for (const Exchange &ex : exchanges) {
        const std::int64_t w = ex.words();
        blocks += (w + block_words - 1) / block_words;
    }
    return 2 * blocks;
}

CommSchedule
CommSchedule::build(const mesh::TetMesh &mesh,
                    const partition::Partition &partition)
{
    return build(partition, partition::buildNodeParts(mesh, partition));
}

CommSchedule
CommSchedule::build(const partition::Partition &partition,
                    const partition::NodeParts &node_parts)
{
    CommSchedule schedule;
    schedule.pes_.resize(static_cast<std::size_t>(partition.numParts));

    // Collect, for every PE, a map peer -> shared nodes.  A node shared
    // by k PEs contributes to all k(k-1) ordered pairs: every owner
    // needs every other owner's partial sum.
    std::vector<std::map<partition::PartId, std::vector<mesh::NodeId>>>
        peers(static_cast<std::size_t>(partition.numParts));

    const std::int64_t num_nodes =
        static_cast<std::int64_t>(node_parts.xadj.size()) - 1;
    for (mesh::NodeId node = 0; node < num_nodes; ++node) {
        const std::int64_t begin = node_parts.xadj[node];
        const std::int64_t end = node_parts.xadj[node + 1];
        if (end - begin < 2)
            continue; // interior node: no communication
        for (std::int64_t a = begin; a < end; ++a) {
            for (std::int64_t b = begin; b < end; ++b) {
                if (a == b)
                    continue;
                peers[node_parts.parts[a]][node_parts.parts[b]].push_back(
                    node);
            }
        }
    }

    for (int p = 0; p < partition.numParts; ++p) {
        PeSchedule &pe = schedule.pes_[p];
        pe.exchanges.reserve(peers[p].size());
        for (auto &[peer, nodes] : peers[p]) {
            // Nodes were visited in ascending order, so each list is
            // already sorted and duplicate-free.
            Exchange ex;
            ex.peer = peer;
            ex.nodes = std::move(nodes);
            pe.exchanges.push_back(std::move(ex));
        }
    }
    schedule.validate();
    return schedule;
}

CommSchedule
CommSchedule::fromPeSchedules(std::vector<PeSchedule> pes,
                              bool validate_schedule)
{
    CommSchedule schedule;
    schedule.pes_ = std::move(pes);
    if (validate_schedule)
        schedule.validate();
    return schedule;
}

std::vector<std::int64_t>
CommSchedule::messageSizes() const
{
    std::vector<std::int64_t> sizes;
    for (const PeSchedule &pe : pes_)
        for (const Exchange &ex : pe.exchanges)
            sizes.push_back(ex.words());
    return sizes;
}

std::int64_t
CommSchedule::bisectionWords() const
{
    const int p = numPes();
    const int half = p / 2;
    std::int64_t words = 0;
    for (int i = 0; i < half; ++i)
        for (const Exchange &ex : pes_[i].exchanges)
            if (ex.peer >= half)
                words += ex.words();
    return 2 * words; // both directions cross the bisection
}

std::int64_t
CommSchedule::totalWords() const
{
    std::int64_t total = 0;
    for (const PeSchedule &pe : pes_)
        for (const Exchange &ex : pe.exchanges)
            total += ex.words();
    return total;
}

void
CommSchedule::validate() const
{
    for (int p = 0; p < numPes(); ++p) {
        partition::PartId prev_peer = -1;
        for (const Exchange &ex : pes_[p].exchanges) {
            QUAKE_EXPECT(ex.peer != p,
                         "PE " << p << " exchanges with itself");
            QUAKE_EXPECT(ex.peer >= 0 && ex.peer < numPes(),
                         "PE " << p << " lists peer " << ex.peer
                               << ", but the schedule has " << numPes()
                               << " PEs");
            QUAKE_EXPECT(ex.peer > prev_peer,
                         "PE " << p
                               << "'s exchange peers not sorted/unique"
                               << " at peer " << ex.peer);
            prev_peer = ex.peer;
            QUAKE_EXPECT(std::is_sorted(ex.nodes.begin(), ex.nodes.end()),
                         "exchange " << p << " -> " << ex.peer
                                     << " has unsorted nodes");

            // The mirrored exchange must exist with the same node set:
            // a missing or different mirror means the send/receive
            // pairs are asymmetric.
            const PeSchedule &peer = pes_[ex.peer];
            const auto it = std::lower_bound(
                peer.exchanges.begin(), peer.exchanges.end(), p,
                [](const Exchange &e, int part) { return e.peer < part; });
            QUAKE_EXPECT(it != peer.exchanges.end() && it->peer == p,
                         "exchange " << p << " -> " << ex.peer
                                     << " has no mirror (asymmetric "
                                        "send/receive pair)");
            QUAKE_EXPECT(it->nodes == ex.nodes,
                         "mirrored exchange " << ex.peer << " -> " << p
                                              << " carries a different "
                                                 "node set");
        }
    }
}

} // namespace quake::parallel
