#include "parallel/characterize.h"

#include "common/error.h"

namespace quake::parallel
{

core::SmvpCharacterization
characterize(const DistributedProblem &problem, const std::string &name,
             const CharacterizeOptions &options)
{
    QUAKE_EXPECT(!problem.subdomains.empty(), "problem has no subdomains");

    core::SmvpCharacterization ch;
    ch.name = name;
    ch.numPes = problem.numPes();
    ch.pes.resize(problem.subdomains.size());

    for (std::size_t p = 0; p < problem.subdomains.size(); ++p) {
        const Subdomain &sub = problem.subdomains[p];
        core::PeLoad &load = ch.pes[p];

        if (sub.stiffness.numBlockRows() > 0) {
            load.flops = sub.stiffness.flopsPerMultiply();
        } else {
            // Pattern-only: blocks = local edges (both directions) plus
            // the diagonal; 9 scalars per block, 2 flops per scalar.
            const mesh::NodeAdjacency adj =
                sub.localMesh.buildNodeAdjacency();
            const std::int64_t blocks =
                static_cast<std::int64_t>(adj.adjncy.size()) +
                sub.localMesh.numNodes();
            load.flops = 2 * 9 * blocks;
        }

        const PeSchedule &pe = problem.schedule.pe(static_cast<int>(p));
        load.words = pe.words();
        load.blocks = options.blockMode == BlockMode::kMaximal
                          ? pe.blocksMaximal()
                          : pe.blocksFixed(options.blockWords);
    }

    ch.messageSizes = problem.schedule.messageSizes();
    ch.bisectionWords = problem.schedule.bisectionWords();
    return ch;
}

} // namespace quake::parallel
