/**
 * @file
 * A persistent worker-thread pool for the executable SMVP engine.
 *
 * The Quake inner loop runs thousands of timesteps, each dominated by
 * one SMVP (paper §2.2); spawning and joining std::threads per multiply
 * costs more than the multiply itself on small subdomains.  The pool is
 * created once per engine lifetime and reused: workers sleep on a
 * condition variable between multiplies, so the steady-state dispatch
 * cost is one wake/notify round trip instead of num_threads clone()s.
 */

#ifndef QUAKE98_PARALLEL_WORKER_POOL_H_
#define QUAKE98_PARALLEL_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/collector.h"

namespace quake::parallel
{

/**
 * A fixed-size pool of persistent worker threads executing fork/join
 * tasks.  run(fn) invokes fn(tid) once per worker (tid in [0, size()))
 * and blocks until every invocation returns — the same structure as
 * spawning size() threads, without the per-call thread creation.
 *
 * Tasks must not throw: an exception escaping a worker terminates the
 * process (as it would from a plain std::thread).  run() itself is not
 * reentrant — one fork/join at a time per pool.
 */
class WorkerPool
{
  public:
    /** @param num_threads Workers; 0 means hardware concurrency. */
    explicit WorkerPool(int num_threads = 0);

    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Number of workers (>= 1). */
    int size() const { return size_; }

    /**
     * Execute fn(tid) for every tid in [0, size()); returns when all
     * invocations have finished.  With size() == 1 the call runs inline
     * on the caller's thread (no workers exist).
     */
    void run(const std::function<void(int)> &fn);

    /** Hardware concurrency, clamped to at least 1. */
    static int hardwareThreads();

    /**
     * Attach a telemetry collector (DESIGN.md §9): each run() records a
     * fork/join span + latency histogram on the control slot, and each
     * worker accumulates the nanoseconds it spent parked between
     * dispatches into Counter::kWorkerWaitNanos on its own slot.
     * Setup-time only — must not be called while a run is in flight;
     * pass nullptr to detach.  The collector must outlive the pool or
     * be detached first.
     */
    void setCollector(telemetry::Collector *collector);

  private:
    void workerLoop(int tid);

    /** The un-instrumented dispatch body of run(). */
    void dispatch(const std::function<void(int)> &fn);

    telemetry::Collector *tele_ = nullptr;

    int size_ = 1;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    const std::function<void(int)> *task_ = nullptr;
    std::uint64_t epoch_ = 0; ///< bumped once per run(); workers track it
    int remaining_ = 0;       ///< workers still inside the current task
    bool stop_ = false;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_WORKER_POOL_H_
