/**
 * @file
 * A persistent worker-thread pool for the executable SMVP engine.
 *
 * The Quake inner loop runs thousands of timesteps, each dominated by
 * one SMVP (paper §2.2); spawning and joining std::threads per multiply
 * costs more than the multiply itself on small subdomains.  The pool is
 * created once per engine lifetime and reused: workers sleep on a
 * condition variable between multiplies, so the steady-state dispatch
 * cost is one wake/notify round trip instead of num_threads clone()s.
 *
 * Pools may be nested (DESIGN.md §13): the hierarchical engine runs one
 * outer pool of shards, each of whose workers dispatches into its own
 * inner pool.  WorkerPoolOptions optionally pins each worker to a CPU
 * set so a shard's threads — and the pages they first-touch — stay in
 * one NUMA domain; pinning is advisory (failures counted, never fatal).
 */

#ifndef QUAKE98_PARALLEL_WORKER_POOL_H_
#define QUAKE98_PARALLEL_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/collector.h"

namespace quake::parallel
{

/** Optional per-pool placement knobs (see WorkerPool ctor). */
struct WorkerPoolOptions
{
    /**
     * CPU ids to pin worker t to (entry t, reused modulo size when
     * shorter); empty = no pinning.  Each worker pins itself before
     * its first dispatch, so every task runs post-pin.  Pinning is a
     * no-op for size-1 pools (work runs inline on the caller's thread,
     * which the pool must not hijack).
     */
    std::vector<std::vector<int>> workerCpus;
};

/**
 * A fixed-size pool of persistent worker threads executing fork/join
 * tasks.  run(fn) invokes fn(tid) once per worker (tid in [0, size()))
 * and blocks until every invocation returns — the same structure as
 * spawning size() threads, without the per-call thread creation.
 *
 * Tasks must not throw: an exception escaping a worker terminates the
 * process (as it would from a plain std::thread).  run() itself is not
 * reentrant — one fork/join at a time per pool.
 */
class WorkerPool
{
  public:
    /** @param num_threads Workers; 0 means hardwareThreads(). */
    explicit WorkerPool(int num_threads = 0);

    /** As above, with placement options (pinning). */
    WorkerPool(int num_threads, WorkerPoolOptions options);

    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Number of workers (>= 1). */
    int size() const { return size_; }

    /**
     * Execute fn(tid) for every tid in [0, size()); returns when all
     * invocations have finished.  With size() == 1 the call runs inline
     * on the caller's thread (no workers exist).
     */
    void run(const std::function<void(int)> &fn);

    /**
     * Usable concurrency: the number of CPUs in the process affinity
     * mask when the platform exposes it (container/cgroup cpusets
     * narrow it below the machine's core count), else
     * std::thread::hardware_concurrency; always >= 1.
     */
    static int hardwareThreads();

    /** Pin attempts made by this pool's workers (0 when unpinned). */
    std::int64_t pinAttempts() const
    {
        return pin_attempts_.load(std::memory_order_relaxed);
    }

    /** Pin attempts that failed (the advisory-fallback path). */
    std::int64_t pinFailures() const
    {
        return pin_failures_.load(std::memory_order_relaxed);
    }

    /**
     * Attach a telemetry collector (DESIGN.md §9): each run() records a
     * fork/join span + latency histogram on `control_slot`, and each
     * worker accumulates the nanoseconds it spent parked between
     * dispatches into Counter::kWorkerWaitNanos on slot
     * `worker_base + tid`.  The slot parameters let nested pools share
     * one collector without write collisions (DESIGN.md §13): the
     * hierarchical engine gives every pool a disjoint slot range.
     * Setup-time only — must not be called while a run is in flight;
     * pass nullptr to detach.  The collector must outlive the pool or
     * be detached first.
     */
    void setCollector(telemetry::Collector *collector,
                      int control_slot = 0, int worker_base = 1);

  private:
    void workerLoop(int tid);

    /** The un-instrumented dispatch body of run(). */
    void dispatch(const std::function<void(int)> &fn);

    telemetry::Collector *tele_ = nullptr;
    int control_slot_ = 0;
    int worker_base_ = 1;

    int size_ = 1;
    WorkerPoolOptions options_;
    std::atomic<std::int64_t> pin_attempts_{0};
    std::atomic<std::int64_t> pin_failures_{0};
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    const std::function<void(int)> *task_ = nullptr;
    std::uint64_t epoch_ = 0; ///< bumped once per run(); workers track it
    int remaining_ = 0;       ///< workers still inside the current task
    bool stop_ = false;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_WORKER_POOL_H_
