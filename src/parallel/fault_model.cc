#include "parallel/fault_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace quake::parallel
{

namespace
{

/** Substream tags: one independent hash stream per fault class. */
enum StreamTag : std::uint64_t
{
    kDropStream = 1,
    kDuplicateStream = 2,
    kAckDropStream = 3,
    kJitterStream = 4,
    kAckJitterStream = 5,
    kStragglerStream = 6,
    kDegradedStream = 7,
};

bool
isProbability(double p)
{
    return p >= 0.0 && p <= 1.0;
}

} // namespace

bool
FaultSpec::any() const
{
    return dropProbability > 0 || duplicateProbability > 0 ||
           ackDropProbability > 0 || jitterMeanSeconds > 0 ||
           (stragglerProbability > 0 && stragglerDelaySeconds > 0) ||
           (degradedLinkProbability > 0 && degradedBandwidthFactor > 1);
}

void
FaultSpec::validate() const
{
    QUAKE_EXPECT(isProbability(dropProbability),
                 "drop probability must be in [0, 1], got "
                     << dropProbability);
    QUAKE_EXPECT(isProbability(duplicateProbability),
                 "duplicate probability must be in [0, 1], got "
                     << duplicateProbability);
    QUAKE_EXPECT(isProbability(ackDropProbability),
                 "ack drop probability must be in [0, 1], got "
                     << ackDropProbability);
    QUAKE_EXPECT(isProbability(stragglerProbability),
                 "straggler probability must be in [0, 1], got "
                     << stragglerProbability);
    QUAKE_EXPECT(isProbability(degradedLinkProbability),
                 "degraded-link probability must be in [0, 1], got "
                     << degradedLinkProbability);
    QUAKE_EXPECT(jitterMeanSeconds >= 0,
                 "jitter mean must be nonnegative, got "
                     << jitterMeanSeconds);
    QUAKE_EXPECT(stragglerDelaySeconds >= 0,
                 "straggler delay must be nonnegative, got "
                     << stragglerDelaySeconds);
    QUAKE_EXPECT(degradedBandwidthFactor >= 1,
                 "degraded bandwidth factor must be >= 1, got "
                     << degradedBandwidthFactor);
}

FaultModel::FaultModel(const FaultSpec &spec, int num_pes) : spec_(spec)
{
    spec.validate();
    QUAKE_EXPECT(num_pes >= 0, "PE count must be nonnegative");
    enabled_ = spec.any();

    startDelay_.assign(static_cast<std::size_t>(num_pes), 0.0);
    bandwidthFactor_.assign(static_cast<std::size_t>(num_pes), 1.0);
    for (int pe = 0; pe < num_pes; ++pe) {
        common::SplitMix64 straggle(common::deriveStream(
            spec_.seed ^ kStragglerStream, static_cast<std::uint64_t>(pe)));
        if (straggle.nextDouble() < spec_.stragglerProbability)
            startDelay_[pe] = spec_.stragglerDelaySeconds;

        common::SplitMix64 degrade(common::deriveStream(
            spec_.seed ^ kDegradedStream, static_cast<std::uint64_t>(pe)));
        if (degrade.nextDouble() < spec_.degradedLinkProbability)
            bandwidthFactor_[pe] = spec_.degradedBandwidthFactor;
    }
}

double
FaultModel::draw(std::uint64_t tag, int src, int dst, int attempt,
                 int copy) const
{
    // Pack the message identity into one key.  PE counts and attempt
    // budgets in this library are far below 2^20, so the packing is
    // collision-free.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
         << 44) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
         << 24) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt))
         << 4) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(copy));
    common::SplitMix64 rng(common::deriveStream(spec_.seed ^ tag, key));
    return rng.nextDouble();
}

bool
FaultModel::dropData(int src, int dst, int attempt) const
{
    return enabled_ &&
           draw(kDropStream, src, dst, attempt, 0) < spec_.dropProbability;
}

bool
FaultModel::duplicateData(int src, int dst, int attempt) const
{
    return enabled_ && draw(kDuplicateStream, src, dst, attempt, 0) <
                           spec_.duplicateProbability;
}

bool
FaultModel::dropAck(int src, int dst, int attempt) const
{
    return enabled_ && draw(kAckDropStream, src, dst, attempt, 0) <
                           spec_.ackDropProbability;
}

double
FaultModel::deliveryJitter(int src, int dst, int attempt, int copy) const
{
    if (!enabled_ || spec_.jitterMeanSeconds <= 0)
        return 0.0;
    // Invert the exponential CDF on a hash-derived uniform so the draw
    // is order-independent like every other decision.
    common::SplitMix64 rng(common::deriveStream(
        spec_.seed ^ kJitterStream,
        common::deriveStream(
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)),
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(attempt))
                    << 32 |
                static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(copy)))));
    return rng.exponential(spec_.jitterMeanSeconds);
}

double
FaultModel::ackJitter(int src, int dst, int attempt) const
{
    if (!enabled_ || spec_.jitterMeanSeconds <= 0)
        return 0.0;
    common::SplitMix64 rng(common::deriveStream(
        spec_.seed ^ kAckJitterStream,
        common::deriveStream(
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)),
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(attempt)))));
    return rng.exponential(spec_.jitterMeanSeconds);
}

double
FaultModel::startDelay(int pe) const
{
    if (startDelay_.empty())
        return 0.0;
    QUAKE_EXPECT(pe >= 0 && pe < numPes(),
                 "PE " << pe << " out of range for fault model with "
                       << numPes() << " PEs");
    return startDelay_[static_cast<std::size_t>(pe)];
}

double
FaultModel::bandwidthFactor(int pe) const
{
    if (bandwidthFactor_.empty())
        return 1.0;
    QUAKE_EXPECT(pe >= 0 && pe < numPes(),
                 "PE " << pe << " out of range for fault model with "
                       << numPes() << " PEs");
    return bandwidthFactor_[static_cast<std::size_t>(pe)];
}

int
FaultModel::numStragglers() const
{
    return static_cast<int>(std::count_if(
        startDelay_.begin(), startDelay_.end(),
        [](double d) { return d > 0; }));
}

int
FaultModel::numDegradedLinks() const
{
    return static_cast<int>(std::count_if(
        bandwidthFactor_.begin(), bandwidthFactor_.end(),
        [](double f) { return f > 1; }));
}

} // namespace quake::parallel
