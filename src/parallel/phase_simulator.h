/**
 * @file
 * BSP phase simulator: replays the SMVP's compute/exchange schedule
 * under a MachineModel and reports phase times and efficiency.  Unlike
 * the closed-form model (which pessimistically charges B_max and C_max
 * to the same PE), the simulator takes the true per-PE maximum of
 * B_i*T_l + C_i*T_w — so comparing the two empirically validates the
 * paper's §3.4 claim that the model overestimates T_comm by at most the
 * factor beta.
 */

#ifndef QUAKE98_PARALLEL_PHASE_SIMULATOR_H_
#define QUAKE98_PARALLEL_PHASE_SIMULATOR_H_

#include "core/characterization.h"
#include "parallel/machine.h"

namespace quake::parallel
{

/** Timing of one simulated global SMVP. */
struct PhaseTimes
{
    double tComp = 0.0;      ///< max over PEs of F_i * T_f
    double tComm = 0.0;      ///< max over PEs of B_i*T_l + C_i*T_w
    double tSmvp = 0.0;      ///< total per the execution discipline
    double efficiency = 0.0; ///< tComp / tSmvp
};

/** Execution discipline for combining the phases. */
enum class OverlapMode
{
    kNone,    ///< paper's discipline: T = T_comp + T_comm
    kPerfect, ///< footnote-1 upper bound: T = max(T_comp, T_comm)
};

/**
 * Network-interface discipline (paper Figure 5 shows an NI with
 * separate input and output links).
 */
enum class NiMode
{
    kHalfDuplex, ///< paper's accounting: sends and receives serialize
    kFullDuplex, ///< in and out links run concurrently:
                 ///< T_i = max(send_i, recv_i), each half the load
};

/** Simulate one global SMVP of `ch` on `machine`. */
PhaseTimes simulateSmvp(const core::SmvpCharacterization &ch,
                        const MachineModel &machine,
                        OverlapMode overlap = OverlapMode::kNone,
                        NiMode ni = NiMode::kHalfDuplex);

/** Closed-form vs simulated communication time (paper §3.4). */
struct ModelAccuracy
{
    double modelTcomm = 0.0; ///< B_max*T_l + C_max*T_w
    double trueTcomm = 0.0;  ///< max over PEs of B_i*T_l + C_i*T_w
    double ratio = 1.0;      ///< model / true, in [1, beta]
    double beta = 1.0;       ///< the a-priori bound from the summary
};

/** Evaluate the closed-form model's overestimate on `machine`. */
ModelAccuracy evaluateModelAccuracy(const core::SmvpCharacterization &ch,
                                    const MachineModel &machine);

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_PHASE_SIMULATOR_H_
