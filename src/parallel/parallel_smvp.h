/**
 * @file
 * Executable parallel SMVP (paper §2.3): the two-phase BSP kernel that
 * the whole analysis models.  Each logical PE runs a local SMVP over its
 * subdomain, writes its partial y values for each pairwise exchange into
 * a message buffer, and after a barrier sums the mirrored buffers from
 * its peers — exactly the "exchange and sum" the paper describes.
 *
 * Logical PEs are multiplexed onto std::thread workers, so 128-subdomain
 * problems run on any host.  The result is bitwise deterministic: each
 * PE sums peer contributions in ascending peer order.
 */

#ifndef QUAKE98_PARALLEL_PARALLEL_SMVP_H_
#define QUAKE98_PARALLEL_PARALLEL_SMVP_H_

#include <cstdint>
#include <vector>

#include "parallel/distributor.h"

namespace quake::parallel
{

/** Executes global SMVPs y = Kx over a distributed problem. */
class ParallelSmvp
{
  public:
    /**
     * @param problem     Distributed problem; must have assembled
     *                    stiffness matrices.
     * @param num_threads Worker threads; 0 means hardware concurrency.
     */
    explicit ParallelSmvp(const DistributedProblem &problem,
                          int num_threads = 0);

    /**
     * Compute y = K x on global vectors of length 3 * numGlobalNodes.
     * x must be consistent (a single value per global node); y is the
     * exact global product, each entry written by its owning PE.
     */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Number of worker threads used. */
    int numThreads() const { return num_threads_; }

  private:
    const DistributedProblem &problem_;
    int num_threads_;

    /**
     * For subdomain p, exchange k: index of the mirrored exchange in the
     * peer's exchange list (so receivers can find the sender's buffer).
     */
    std::vector<std::vector<std::int64_t>> mirror_index_;

    /** Flat id of exchange k of subdomain p: exchange_base_[p] + k. */
    std::vector<std::int64_t> exchange_base_;

    /** Local ids (per subdomain) of each exchange's shared nodes. */
    std::vector<std::vector<std::int64_t>> exchange_local_nodes_;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_PARALLEL_SMVP_H_
