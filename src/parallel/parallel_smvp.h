/**
 * @file
 * Executable parallel SMVP engine (paper §2.3): the two-phase BSP kernel
 * that the whole analysis models.  Each logical PE runs a local SMVP
 * over its subdomain, writes its partial y values for each pairwise
 * exchange into a message buffer, and sums the mirrored buffers from its
 * peers — exactly the "exchange and sum" the paper describes.
 *
 * This is an *engine*, built for the thousands-of-timesteps inner loop:
 *
 *  - Logical PEs are multiplexed onto a persistent WorkerPool created
 *    once per engine lifetime; no threads are spawned per multiply.
 *  - Message buffers and local vectors are allocated once and reused.
 *  - In ExchangeMode::kOverlapped (the default), each PE computes its
 *    boundary rows first and publishes its message buffers early, then
 *    computes its interior rows while peers' contributions are in
 *    flight — the paper's footnote-1 overlap, realized in execution
 *    rather than only in the analytic model.
 *
 * The result is bitwise deterministic and independent of thread count
 * and overlap mode: every row is computed by the same unrolled kernel,
 * and each PE sums peer contributions in ascending peer order.
 */

#ifndef QUAKE98_PARALLEL_PARALLEL_SMVP_H_
#define QUAKE98_PARALLEL_PARALLEL_SMVP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/distributor.h"
#include "parallel/worker_pool.h"

namespace quake::parallel
{

/** How the engine schedules the exchange against the local compute. */
enum class ExchangeMode
{
    kBarrier,    ///< compute everything, barrier, then receive + sum
    kOverlapped, ///< publish boundary results early, overlap interior
};

/** Executes global SMVPs y = Kx over a distributed problem. */
class ParallelSmvp
{
  public:
    /**
     * @param problem     Distributed problem; must have assembled
     *                    stiffness matrices.  Must outlive the engine.
     * @param num_threads Worker threads; 0 means hardware concurrency.
     * @param mode        Exchange scheduling (result is identical).
     */
    explicit ParallelSmvp(const DistributedProblem &problem,
                          int num_threads = 0,
                          ExchangeMode mode = ExchangeMode::kOverlapped);

    /**
     * Compute y = K x on global vectors of length 3 * numGlobalNodes.
     * x must be consistent (a single value per global node); y is the
     * exact global product, each entry written by its owning PE.
     *
     * Reuses the engine's persistent pool and scratch buffers, so a
     * given engine must not run two multiplies concurrently.
     */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Number of worker threads used. */
    int numThreads() const { return num_threads_; }

    /** Exchange scheduling mode. */
    ExchangeMode mode() const { return mode_; }

  private:
    const DistributedProblem &problem_;
    int num_threads_;
    ExchangeMode mode_;

    /**
     * For subdomain p, exchange k: index of the mirrored exchange in the
     * peer's exchange list (so receivers can find the sender's buffer).
     */
    std::vector<std::vector<std::int64_t>> mirror_index_;

    /** Flat id of exchange k of subdomain p: exchange_base_[p] + k. */
    std::vector<std::int64_t> exchange_base_;

    /** Local ids (per subdomain) of each exchange's shared nodes. */
    std::vector<std::vector<std::int64_t>> exchange_local_nodes_;

    // Persistent engine state, reused across multiplies.  Mutable so
    // multiply() stays const for callers; the engine is documented as
    // non-reentrant.
    mutable WorkerPool pool_;
    mutable std::vector<std::vector<double>> x_local_;
    mutable std::vector<std::vector<double>> y_local_;
    mutable std::vector<std::vector<double>> buffers_;

    /** Per-exchange publish flag: holds the epoch whose data is ready. */
    mutable std::unique_ptr<std::atomic<std::uint64_t>[]> published_;
    mutable std::uint64_t epoch_ = 0;

    void runLocalPhase(const std::vector<double> &x, int tid,
                       bool publish_early) const;
    void runExchangePhase(std::vector<double> &y, int tid,
                          bool wait_for_publish) const;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_PARALLEL_SMVP_H_
