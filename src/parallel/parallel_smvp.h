/**
 * @file
 * Executable parallel SMVP engine (paper §2.3): the two-phase BSP kernel
 * that the whole analysis models.  Each logical PE runs a local SMVP
 * over its subdomain, writes its partial y values for each pairwise
 * exchange into a message buffer, and sums the mirrored buffers from its
 * peers — exactly the "exchange and sum" the paper describes.
 *
 * This is an *engine*, built for the thousands-of-timesteps inner loop:
 *
 *  - Logical PEs are multiplexed onto persistent WorkerPools created
 *    once per engine lifetime; no threads are spawned per multiply.
 *  - Message buffers and local vectors are allocated once and reused.
 *  - In ExchangeMode::kOverlapped (the default), each PE computes its
 *    boundary rows first and publishes its message buffers early, then
 *    computes its interior rows while peers' contributions are in
 *    flight — the paper's footnote-1 overlap, realized in execution
 *    rather than only in the analytic model.
 *
 * The engine is two-level (DESIGN.md §13): a Topology maps the PEs
 * onto contiguous shards — one per NUMA domain when detected — and
 * each shard owns a nested pinned WorkerPool whose threads first-touch
 * that shard's slabs, scratch, and exchange buffers so pages land in
 * the local memory domain.  The boundary exchange runs *between*
 * shards (each shard publishes its boundary buffers, then sums peers'
 * in ascending peer order) while the kernels thread-split *within* a
 * shard.  A single-shard Topology degenerates to the historical flat
 * engine, same code path, same dispatch shape.
 *
 * The result is bitwise deterministic and independent of shard count,
 * thread count, and overlap mode: every row is computed by the same
 * unrolled kernel, and each PE sums peer contributions in ascending
 * peer order (verify property `engine_hierarchy`).
 */

#ifndef QUAKE98_PARALLEL_PARALLEL_SMVP_H_
#define QUAKE98_PARALLEL_PARALLEL_SMVP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/distributor.h"
#include "parallel/topology.h"
#include "parallel/worker_pool.h"
#include "sparse/sliced_ell3.h"

namespace quake::parallel
{

/** How the engine schedules the exchange against the local compute. */
enum class ExchangeMode
{
    kBarrier,    ///< compute everything, barrier, then receive + sum
    kOverlapped, ///< publish boundary results early, overlap interior
};

/**
 * Which kernel computes the per-PE local SMVP rows (DESIGN.md §12).
 * The choice is an execution knob with a caveat: results are bitwise
 * deterministic across thread counts and exchange modes WITHIN a
 * backend, but the two backends agree only within ULP tolerance (the
 * sliced-ELL kernel may run the AVX2/FMA path), so trajectories are
 * comparable across backends only through the verify/ oracles.
 */
enum class SmvpKernelBackend
{
    kBcsr3,      ///< row-at-a-time blocked CSR (the PR 2 kernel)
    kSlicedEll3, ///< per-PE sliced-ELLPACK slabs, SIMD-dispatched
};

/** Executes global SMVPs y = Kx over a distributed problem. */
class ParallelSmvp
{
  public:
    /**
     * Flat-engine convenience ctor: a single shard of `num_threads`
     * workers (0 = hardwareThreads(), capped at the PE count) — the
     * historical interface, delegating to the Topology ctor.
     *
     * @param problem     Distributed problem; must have assembled
     *                    stiffness matrices.  Must outlive the engine.
     * @param num_threads Worker threads; 0 means hardware concurrency.
     * @param mode        Exchange scheduling (result is identical).
     * @param backend     Local-row kernel.  kSlicedEll3 converts each
     *                    PE's boundary and interior rows into
     *                    cache-line-padded sliced-ELL slabs at
     *                    construction; the steady-state step performs
     *                    no further allocation.
     */
    explicit ParallelSmvp(
        const DistributedProblem &problem, int num_threads = 0,
        ExchangeMode mode = ExchangeMode::kOverlapped,
        SmvpKernelBackend backend = SmvpKernelBackend::kBcsr3);

    /**
     * Two-level ctor (DESIGN.md §13).  The topology is normalized
     * against the problem: shards are clamped to the PE count, PEs map
     * to contiguous ascending shard blocks, and threads-per-shard is
     * capped at the largest shard's PE count (0 = divide the topology
     * thread budget evenly).  With topo.pin set, shard workers pin to
     * topo.shardCpus (or an even split of the affinity mask when no
     * placement is given); pins are advisory — see pinFailures().
     * With more than one shard, each shard's worker threads
     * first-touch-initialize that shard's kernel slabs, scratch
     * vectors, and exchange buffers during construction.
     */
    ParallelSmvp(const DistributedProblem &problem, const Topology &topo,
                 ExchangeMode mode = ExchangeMode::kOverlapped,
                 SmvpKernelBackend backend = SmvpKernelBackend::kBcsr3);

    /**
     * Compute y = K x on global vectors of length 3 * numGlobalNodes.
     * x must be consistent (a single value per global node); y is the
     * exact global product, each entry written by its owning PE.
     *
     * Reuses the engine's persistent pools and scratch buffers, so a
     * given engine must not run two multiplies concurrently.
     */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * Zero-copy y = K x into a caller-owned buffer of length
     * 3 * numGlobalNodes: no allocation, no result copy — the
     * steady-state path of the time-stepping loop.  Every entry is
     * written by its owning PE (ownership covers all global nodes), so
     * y needs no zeroing.  Bitwise identical to multiply().
     */
    void multiplyInto(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    void multiplyInto(const std::vector<double> &x,
                      std::vector<double> &y) const;

    /**
     * One fused central-difference time step (DESIGN.md §8): runs the
     * two-phase SMVP with su.u as x and applies `su` to each owned
     * row's DOFs the moment that row's K u value is finalized —
     * interior rows right after the local sweep, boundary rows right
     * after the ascending-peer exchange sum — instead of materializing
     * a global ku vector and updating it in a separate serial O(n)
     * pass.  Peak/energy reductions accumulate into per-PE partials
     * (fixed per-PE row order: interior ascending, then owned boundary
     * ascending) combined in ascending PE order, so the returned
     * values are bitwise deterministic across shard counts, thread
     * counts, and exchange modes.  The updated u_{n+1} written to
     * su.up is bitwise identical to multiply() + the unfused reference
     * triad.
     *
     * Performs no heap allocation: scratch is persistent and the pool
     * dispatches capture only `this` (+ a shard index).
     */
    sparse::StepPartials stepFused(const sparse::StepUpdate &su) const;

    /** Shards in the normalized topology (1 = flat engine). */
    int numShards() const { return num_shards_; }

    /** Worker threads inside each shard. */
    int threadsPerShard() const { return threads_per_shard_; }

    /** Total kernel worker threads: numShards * threadsPerShard. */
    int numThreads() const { return num_shards_ * threads_per_shard_; }

    /** Exchange scheduling mode. */
    ExchangeMode mode() const { return mode_; }

    /** Local-row kernel backend. */
    SmvpKernelBackend kernelBackend() const { return backend_; }

    /**
     * Advisory pin attempts that failed across every pool (0 when the
     * topology did not request pinning or every pin stuck).  Complete
     * once construction returns: the first-touch setup dispatch joins
     * all workers past their self-pin.
     */
    std::int64_t pinFailures() const;

    /**
     * Exchange traffic classified by the shard map: bytes whose sender
     * and receiver PEs live in different shards (crossing a memory
     * domain under pinning) vs the same shard, per multiply.
     */
    std::int64_t remoteExchangeBytes() const { return remote_bytes_; }
    std::int64_t localExchangeBytes() const { return local_bytes_; }

    /**
     * Shard load imbalance: (max shard rows / mean shard rows - 1),
     * where rows are local nodes summed over the shard's PEs.  0 for
     * a perfectly even split and for the flat engine.
     */
    double shardImbalance() const { return shard_imbalance_; }

    /**
     * The engine's shard-0 worker pool, for callers that want to run
     * their own fork/join work (e.g. initial-condition setup, the
     * stepper's chunked vector ops) on the same threads.  Must not be
     * used while a multiply is in flight.
     */
    WorkerPool &workerPool() const { return *shard_pools_[0]; }

    /**
     * Attach a telemetry collector (DESIGN.md §9).  Each worker then
     * times its local and exchange phases into per-thread histograms on
     * every multiply, counts actual publish waits (acquire-spin nanos)
     * and shard-local vs shard-remote exchange bytes, and records
     * per-PE boundary/exchange/spin spans on steps where
     * collector->sampledStep() holds.  Pin failures and the shard
     * imbalance are recorded once, on attach.  Slot layout: 0 = the
     * engine/outer pool, 1..S = shard control slots (written only by
     * the owning outer worker), then S*T contiguous worker slots — a
     * single writer per slot, so recording never contends (flat
     * engines keep the historical 0 / 1+tid layout).  Recording writes
     * only to the collector's preallocated per-thread slots, so the
     * 0-allocs/step and bitwise-determinism contracts of DESIGN.md §8
     * are preserved (tested in test_telemetry.cc).  Setup-time only;
     * pass nullptr to detach.  The collector must outlive the engine
     * or be detached.
     */
    void setCollector(telemetry::Collector *collector);

  private:
    telemetry::Collector *tele_ = nullptr;
    const DistributedProblem &problem_;
    int num_shards_ = 1;
    int threads_per_shard_ = 1;
    ExchangeMode mode_;
    SmvpKernelBackend backend_;

    /** PE blocks: shard s owns PEs [shard_begin_[s], shard_begin_[s+1]). */
    std::vector<int> shard_begin_;

    /** Shard owning each PE (contiguous ascending blocks). */
    std::vector<int> shard_of_;

    /**
     * Per-PE sliced-ELL slabs (kSlicedEll3 backend only): boundary rows
     * and interior rows converted separately so the two-phase schedule
     * (boundary → publish → interior) is preserved.  Lane order is the
     * subdomain's ascending row-list order, so the fused triad visits
     * interior rows in exactly the order of the BCSR3 path.  With more
     * than one shard the conversion runs on the owning shard's threads
     * (first touch).
     */
    std::vector<sparse::SlicedEll3Matrix> boundary_ell_;
    std::vector<sparse::SlicedEll3Matrix> interior_ell_;

    /**
     * kBcsr3 backend, hierarchical topology only: per-PE copies of the
     * subdomain stiffness, first-touched by the owning shard's threads
     * so the dominant kernel stream reads local-domain pages.  Values
     * are identical to the originals, so results are bitwise unchanged;
     * empty in the flat engine (kernels read the subdomain matrix).
     */
    std::vector<sparse::Bcsr3Matrix> local_stiffness_;

    /**
     * For subdomain p, exchange k: index of the mirrored exchange in the
     * peer's exchange list (so receivers can find the sender's buffer).
     */
    std::vector<std::vector<std::int64_t>> mirror_index_;

    /** Flat id of exchange k of subdomain p: exchange_base_[p] + k. */
    std::vector<std::int64_t> exchange_base_;

    /** Local ids (per subdomain) of each exchange's shared nodes. */
    std::vector<std::vector<std::int64_t>> exchange_local_nodes_;

    /** Per-PE exchange bytes received from other/same-shard peers. */
    std::vector<std::int64_t> pe_remote_bytes_;
    std::vector<std::int64_t> pe_local_bytes_;
    std::int64_t remote_bytes_ = 0;
    std::int64_t local_bytes_ = 0;
    double shard_imbalance_ = 0.0;

    // Persistent engine state, reused across multiplies.  Mutable so
    // multiply() stays const for callers; the engine is documented as
    // non-reentrant.
    mutable std::unique_ptr<WorkerPool> outer_pool_; ///< S > 1 only
    mutable std::vector<std::unique_ptr<WorkerPool>> shard_pools_;
    mutable std::vector<std::vector<double>> x_local_;
    mutable std::vector<std::vector<double>> y_local_;
    mutable std::vector<std::vector<double>> buffers_;

    /** Per-exchange publish flag: holds the epoch whose data is ready. */
    mutable std::unique_ptr<std::atomic<std::uint64_t>[]> published_;
    mutable std::uint64_t epoch_ = 0;

    /**
     * Arguments of the multiply/step in flight, stashed as members so
     * the pool dispatch lambdas capture only `this` (plus a shard
     * index; small enough for std::function's inline buffer — no
     * per-step heap allocation).
     */
    mutable const double *x_arg_ = nullptr;
    mutable double *y_arg_ = nullptr;
    mutable const sparse::StepUpdate *su_arg_ = nullptr;

    /** Per-PE step partials, padded to a cache line (stride 4). */
    mutable std::vector<sparse::StepPartials> step_partials_;

    /**
     * Telemetry slot of worker `tid` of shard `s`: the flat engine
     * keeps the historical 1 + tid; the hierarchical engine reserves
     * 1..S for shard control slots and packs workers after them.
     */
    int teleSlot(int s, int tid) const
    {
        return num_shards_ == 1
                   ? 1 + tid
                   : 1 + num_shards_ + s * threads_per_shard_ + tid;
    }

    /** The stiffness PE i's kernels read (first-touched copy if any). */
    const sparse::Bcsr3Matrix &localK(int i) const
    {
        return local_stiffness_.empty()
                   ? problem_.subdomains[static_cast<std::size_t>(i)]
                         .stiffness
                   : local_stiffness_[static_cast<std::size_t>(i)];
    }

    /**
     * Allocate and fill PE i's persistent slabs: local vectors,
     * exchange buffers, and the backend's kernel structures.  Called
     * once per PE at construction — inline for the flat engine, on the
     * owning shard's worker threads for hierarchical topologies (the
     * first-touch discipline of DESIGN.md §13).
     */
    void initPeSlabs(int i);

    /**
     * Record PE i's sliced-ELL slab counters (slice kernels executed,
     * padding blocks streamed) into telemetry slot `slot`.  No-op when
     * tele is null; preallocated-slot writes only.
     */
    void recordEllCounters(int pe, telemetry::Collector *tele,
                           int slot) const;

    void runLocalPhase(const double *x, int s, int tid,
                       bool publish_early) const;
    void runExchangePhase(double *y, int s, int tid,
                          bool wait_for_publish) const;
    void runLocalPhaseFused(int s, int tid, bool publish_early) const;
    void runExchangePhaseFused(int s, int tid,
                               bool wait_for_publish) const;

    /**
     * Spin until exchange `peer_flat` publishes the current epoch,
     * attributing the wait to telemetry slot `slot` (PE `pe`) when a
     * collector is attached.  The fast path — buffer already published
     * — costs one acquire load and no clock read.
     */
    void waitForPublish(std::int64_t peer_flat, int slot,
                        std::int32_t pe, telemetry::Collector *tele,
                        bool sampled) const;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_PARALLEL_SMVP_H_
