/**
 * @file
 * Executable parallel SMVP engine (paper §2.3): the two-phase BSP kernel
 * that the whole analysis models.  Each logical PE runs a local SMVP
 * over its subdomain, writes its partial y values for each pairwise
 * exchange into a message buffer, and sums the mirrored buffers from its
 * peers — exactly the "exchange and sum" the paper describes.
 *
 * This is an *engine*, built for the thousands-of-timesteps inner loop:
 *
 *  - Logical PEs are multiplexed onto a persistent WorkerPool created
 *    once per engine lifetime; no threads are spawned per multiply.
 *  - Message buffers and local vectors are allocated once and reused.
 *  - In ExchangeMode::kOverlapped (the default), each PE computes its
 *    boundary rows first and publishes its message buffers early, then
 *    computes its interior rows while peers' contributions are in
 *    flight — the paper's footnote-1 overlap, realized in execution
 *    rather than only in the analytic model.
 *
 * The result is bitwise deterministic and independent of thread count
 * and overlap mode: every row is computed by the same unrolled kernel,
 * and each PE sums peer contributions in ascending peer order.
 */

#ifndef QUAKE98_PARALLEL_PARALLEL_SMVP_H_
#define QUAKE98_PARALLEL_PARALLEL_SMVP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "parallel/distributor.h"
#include "parallel/worker_pool.h"
#include "sparse/sliced_ell3.h"

namespace quake::parallel
{

/** How the engine schedules the exchange against the local compute. */
enum class ExchangeMode
{
    kBarrier,    ///< compute everything, barrier, then receive + sum
    kOverlapped, ///< publish boundary results early, overlap interior
};

/**
 * Which kernel computes the per-PE local SMVP rows (DESIGN.md §12).
 * The choice is an execution knob with a caveat: results are bitwise
 * deterministic across thread counts and exchange modes WITHIN a
 * backend, but the two backends agree only within ULP tolerance (the
 * sliced-ELL kernel may run the AVX2/FMA path), so trajectories are
 * comparable across backends only through the verify/ oracles.
 */
enum class SmvpKernelBackend
{
    kBcsr3,      ///< row-at-a-time blocked CSR (the PR 2 kernel)
    kSlicedEll3, ///< per-PE sliced-ELLPACK slabs, SIMD-dispatched
};

/** Executes global SMVPs y = Kx over a distributed problem. */
class ParallelSmvp
{
  public:
    /**
     * @param problem     Distributed problem; must have assembled
     *                    stiffness matrices.  Must outlive the engine.
     * @param num_threads Worker threads; 0 means hardware concurrency.
     * @param mode        Exchange scheduling (result is identical).
     * @param backend     Local-row kernel.  kSlicedEll3 converts each
     *                    PE's boundary and interior rows into
     *                    cache-line-padded sliced-ELL slabs at
     *                    construction; the steady-state step performs
     *                    no further allocation.
     */
    explicit ParallelSmvp(
        const DistributedProblem &problem, int num_threads = 0,
        ExchangeMode mode = ExchangeMode::kOverlapped,
        SmvpKernelBackend backend = SmvpKernelBackend::kBcsr3);

    /**
     * Compute y = K x on global vectors of length 3 * numGlobalNodes.
     * x must be consistent (a single value per global node); y is the
     * exact global product, each entry written by its owning PE.
     *
     * Reuses the engine's persistent pool and scratch buffers, so a
     * given engine must not run two multiplies concurrently.
     */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * Zero-copy y = K x into a caller-owned buffer of length
     * 3 * numGlobalNodes: no allocation, no result copy — the
     * steady-state path of the time-stepping loop.  Every entry is
     * written by its owning PE (ownership covers all global nodes), so
     * y needs no zeroing.  Bitwise identical to multiply().
     */
    void multiplyInto(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    void multiplyInto(const std::vector<double> &x,
                      std::vector<double> &y) const;

    /**
     * One fused central-difference time step (DESIGN.md §8): runs the
     * two-phase SMVP with su.u as x and applies `su` to each owned
     * row's DOFs the moment that row's K u value is finalized —
     * interior rows right after the local sweep, boundary rows right
     * after the ascending-peer exchange sum — instead of materializing
     * a global ku vector and updating it in a separate serial O(n)
     * pass.  Peak/energy reductions accumulate into per-PE partials
     * (fixed per-PE row order: interior ascending, then owned boundary
     * ascending) combined in ascending PE order, so the returned
     * values are bitwise deterministic across thread counts and
     * exchange modes.  The updated u_{n+1} written to su.up is bitwise
     * identical to multiply() + the unfused reference triad.
     *
     * Performs no heap allocation: scratch is persistent and the pool
     * dispatch captures only `this`.
     */
    sparse::StepPartials stepFused(const sparse::StepUpdate &su) const;

    /** Number of worker threads used. */
    int numThreads() const { return num_threads_; }

    /** Exchange scheduling mode. */
    ExchangeMode mode() const { return mode_; }

    /** Local-row kernel backend. */
    SmvpKernelBackend kernelBackend() const { return backend_; }

    /**
     * The engine's persistent pool, for callers that want to run their
     * own fork/join work (e.g. initial-condition setup) on the same
     * threads.  Must not be used while a multiply is in flight.
     */
    WorkerPool &workerPool() const { return pool_; }

    /**
     * Attach a telemetry collector (DESIGN.md §9).  Each worker then
     * times its local and exchange phases into per-thread histograms on
     * every multiply, counts actual publish waits (acquire-spin nanos),
     * and records per-PE boundary/exchange/spin spans on steps where
     * collector->sampledStep() holds.  Recording writes only to the
     * collector's preallocated per-thread slots, so the 0-allocs/step
     * and bitwise-determinism contracts of DESIGN.md §8 are preserved
     * (tested in test_telemetry.cc).  Setup-time only; pass nullptr to
     * detach.  The collector must outlive the engine or be detached.
     */
    void setCollector(telemetry::Collector *collector);

  private:
    telemetry::Collector *tele_ = nullptr;
    const DistributedProblem &problem_;
    int num_threads_;
    ExchangeMode mode_;
    SmvpKernelBackend backend_;

    /**
     * Per-PE sliced-ELL slabs (kSlicedEll3 backend only): boundary rows
     * and interior rows converted separately so the two-phase schedule
     * (boundary → publish → interior) is preserved.  Lane order is the
     * subdomain's ascending row-list order, so the fused triad visits
     * interior rows in exactly the order of the BCSR3 path.
     */
    std::vector<sparse::SlicedEll3Matrix> boundary_ell_;
    std::vector<sparse::SlicedEll3Matrix> interior_ell_;

    /**
     * For subdomain p, exchange k: index of the mirrored exchange in the
     * peer's exchange list (so receivers can find the sender's buffer).
     */
    std::vector<std::vector<std::int64_t>> mirror_index_;

    /** Flat id of exchange k of subdomain p: exchange_base_[p] + k. */
    std::vector<std::int64_t> exchange_base_;

    /** Local ids (per subdomain) of each exchange's shared nodes. */
    std::vector<std::vector<std::int64_t>> exchange_local_nodes_;

    // Persistent engine state, reused across multiplies.  Mutable so
    // multiply() stays const for callers; the engine is documented as
    // non-reentrant.
    mutable WorkerPool pool_;
    mutable std::vector<std::vector<double>> x_local_;
    mutable std::vector<std::vector<double>> y_local_;
    mutable std::vector<std::vector<double>> buffers_;

    /** Per-exchange publish flag: holds the epoch whose data is ready. */
    mutable std::unique_ptr<std::atomic<std::uint64_t>[]> published_;
    mutable std::uint64_t epoch_ = 0;

    /**
     * Arguments of the multiply/step in flight, stashed as members so
     * the pool dispatch lambdas capture only `this` (small enough for
     * std::function's inline buffer — no per-step heap allocation).
     */
    mutable const double *x_arg_ = nullptr;
    mutable double *y_arg_ = nullptr;
    mutable const sparse::StepUpdate *su_arg_ = nullptr;

    /** Per-PE step partials, padded to a cache line (stride 4). */
    mutable std::vector<sparse::StepPartials> step_partials_;

    /**
     * Record PE i's sliced-ELL slab counters (slice kernels executed,
     * padding blocks streamed) into telemetry slot `slot`.  No-op when
     * tele is null; preallocated-slot writes only.
     */
    void recordEllCounters(int pe, telemetry::Collector *tele,
                           int slot) const;

    void runLocalPhase(const double *x, int tid,
                       bool publish_early) const;
    void runExchangePhase(double *y, int tid,
                          bool wait_for_publish) const;
    void runLocalPhaseFused(int tid, bool publish_early) const;
    void runExchangePhaseFused(int tid, bool wait_for_publish) const;

    /**
     * Spin until exchange `peer_flat` publishes the current epoch,
     * attributing the wait to telemetry slot `slot` (PE `pe`) when a
     * collector is attached.  The fast path — buffer already published
     * — costs one acquire load and no clock read.
     */
    void waitForPublish(std::int64_t peer_flat, int slot,
                        std::int32_t pe, telemetry::Collector *tele,
                        bool sampled) const;
};

} // namespace quake::parallel

#endif // QUAKE98_PARALLEL_PARALLEL_SMVP_H_
