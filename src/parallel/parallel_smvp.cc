#include "parallel/parallel_smvp.h"

#include <algorithm>
#include <thread>

#include "common/error.h"

namespace quake::parallel
{

ParallelSmvp::ParallelSmvp(const DistributedProblem &problem,
                           int num_threads, ExchangeMode mode)
    : problem_(problem),
      num_threads_([&] {
          QUAKE_EXPECT(!problem.subdomains.empty(),
                       "problem has no subdomains");
          int n = num_threads > 0 ? num_threads
                                  : WorkerPool::hardwareThreads();
          return std::min(n, problem.numPes());
      }()),
      mode_(mode), pool_(num_threads_)
{
    for (const Subdomain &sub : problem.subdomains)
        QUAKE_EXPECT(sub.stiffness.numBlockRows() > 0,
                     "subdomain " << sub.part
                                  << " has no assembled stiffness");

    // Precompute exchange bookkeeping.
    const int p = problem.numPes();
    exchange_base_.resize(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i)
        exchange_base_[i + 1] =
            exchange_base_[i] +
            static_cast<std::int64_t>(
                problem.schedule.pe(i).exchanges.size());

    mirror_index_.resize(static_cast<std::size_t>(p));
    exchange_local_nodes_.resize(
        static_cast<std::size_t>(exchange_base_[p]));
    for (int i = 0; i < p; ++i) {
        const PeSchedule &pe = problem.schedule.pe(i);
        mirror_index_[i].resize(pe.exchanges.size());
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];

            // Locate the mirrored exchange in the peer's sorted list.
            const auto &peer_list =
                problem.schedule.pe(ex.peer).exchanges;
            const auto it = std::lower_bound(
                peer_list.begin(), peer_list.end(), i,
                [](const Exchange &e, int part) { return e.peer < part; });
            QUAKE_REQUIRE(it != peer_list.end() && it->peer == i,
                          "unmirrored exchange");
            QUAKE_REQUIRE(it->nodes.size() == ex.nodes.size(),
                          "message size mismatch");
            mirror_index_[i][k] = it - peer_list.begin();

            // Local node ids of the shared nodes on this PE.
            std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            locals.reserve(ex.nodes.size());
            const Subdomain &sub = problem.subdomains[i];
            for (mesh::NodeId g : ex.nodes)
                locals.push_back(sub.localNodeOf(g));
        }
    }

    // Persistent scratch: local vectors, message buffers, publish flags.
    x_local_.resize(static_cast<std::size_t>(p));
    y_local_.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        const std::size_t n = static_cast<std::size_t>(
            3 * problem.subdomains[i].numLocalNodes());
        x_local_[i].assign(n, 0.0);
        y_local_[i].assign(n, 0.0);
    }
    buffers_.resize(static_cast<std::size_t>(exchange_base_[p]));
    for (std::size_t e = 0; e < buffers_.size(); ++e)
        buffers_[e].assign(3 * exchange_local_nodes_[e].size(), 0.0);
    published_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(exchange_base_[p]));
    for (std::int64_t e = 0; e < exchange_base_[p]; ++e)
        published_[e].store(0, std::memory_order_relaxed);
}

void
ParallelSmvp::runLocalPhase(const std::vector<double> &x, int tid,
                            bool publish_early) const
{
    const int p = problem_.numPes();

    // Boundary rows first, message buffers published, then interior.
    // When publish_early is set, peers may start consuming a buffer the
    // moment its release-store lands — while this thread is still in
    // the interior sweep below.
    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::int64_t nl = sub.numLocalNodes();

        std::vector<double> &xl = x_local_[i];
        for (std::int64_t v = 0; v < nl; ++v) {
            const std::int64_t g = sub.globalNodes[v];
            xl[3 * v + 0] = x[3 * g + 0];
            xl[3 * v + 1] = x[3 * g + 1];
            xl[3 * v + 2] = x[3 * g + 2];
        }

        std::vector<double> &yl = y_local_[i];
        sub.stiffness.multiplyRowList(
            xl.data(), yl.data(), sub.boundaryRows.data(),
            static_cast<std::int64_t>(sub.boundaryRows.size()));

        const PeSchedule &pe = problem_.schedule.pe(i);
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const std::int64_t flat =
                exchange_base_[i] + static_cast<std::int64_t>(k);
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[flat];
            std::vector<double> &buf = buffers_[flat];
            for (std::size_t s = 0; s < locals.size(); ++s) {
                buf[3 * s + 0] = yl[3 * locals[s] + 0];
                buf[3 * s + 1] = yl[3 * locals[s] + 1];
                buf[3 * s + 2] = yl[3 * locals[s] + 2];
            }
            if (publish_early)
                published_[flat].store(epoch_,
                                       std::memory_order_release);
        }
    }

    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        sub.stiffness.multiplyRowList(
            x_local_[i].data(), y_local_[i].data(),
            sub.interiorRows.data(),
            static_cast<std::int64_t>(sub.interiorRows.size()));
    }
}

void
ParallelSmvp::runExchangePhase(std::vector<double> &y, int tid,
                               bool wait_for_publish) const
{
    const int p = problem_.numPes();
    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        std::vector<double> &yl = y_local_[i];
        const PeSchedule &pe = problem_.schedule.pe(i);

        // Ascending peer order — the determinism guarantee.  Arrival
        // timing never changes the sum order, only how long we wait.
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];
            const std::int64_t peer_flat =
                exchange_base_[ex.peer] + mirror_index_[i][k];
            if (wait_for_publish) {
                while (published_[peer_flat].load(
                           std::memory_order_acquire) != epoch_)
                    std::this_thread::yield();
            }
            const std::vector<double> &buf = buffers_[peer_flat];
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            for (std::size_t s = 0; s < locals.size(); ++s) {
                yl[3 * locals[s] + 0] += buf[3 * s + 0];
                yl[3 * locals[s] + 1] += buf[3 * s + 1];
                yl[3 * locals[s] + 2] += buf[3 * s + 2];
            }
        }

        for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v) {
            if (!sub.ownsNode[v])
                continue;
            const std::int64_t g = sub.globalNodes[v];
            y[3 * g + 0] = yl[3 * v + 0];
            y[3 * g + 1] = yl[3 * v + 1];
            y[3 * g + 2] = yl[3 * v + 2];
        }
    }
}

std::vector<double>
ParallelSmvp::multiply(const std::vector<double> &x) const
{
    const std::int64_t dof = 3 * problem_.numGlobalNodes;
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof,
                 "x has " << x.size() << " entries, expected " << dof);

    std::vector<double> y(static_cast<std::size_t>(dof), 0.0);
    ++epoch_;

    if (mode_ == ExchangeMode::kOverlapped) {
        // One fork/join: each worker publishes its boundary buffers,
        // overlaps its interior rows with the peers' publishes, then
        // spin-waits (with yield) only for buffers not yet ready.
        pool_.run([&](int tid) {
            runLocalPhase(x, tid, /*publish_early=*/true);
            runExchangePhase(y, tid, /*wait_for_publish=*/true);
        });
    } else {
        // Two fork/joins: the pool's join is the BSP barrier.
        pool_.run(
            [&](int tid) { runLocalPhase(x, tid, false); });
        pool_.run(
            [&](int tid) { runExchangePhase(y, tid, false); });
    }
    return y;
}

} // namespace quake::parallel
