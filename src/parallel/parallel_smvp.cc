#include "parallel/parallel_smvp.h"

#include <algorithm>
#include <thread>

#include "common/error.h"

namespace quake::parallel
{

namespace
{

/** StepPartials per 64-byte cache line: padding stride for PE slots. */
constexpr std::size_t kPartialsStride = 4;

} // namespace

ParallelSmvp::ParallelSmvp(const DistributedProblem &problem,
                           int num_threads, ExchangeMode mode,
                           SmvpKernelBackend backend)
    : problem_(problem),
      num_threads_([&] {
          QUAKE_EXPECT(!problem.subdomains.empty(),
                       "problem has no subdomains");
          int n = num_threads > 0 ? num_threads
                                  : WorkerPool::hardwareThreads();
          return std::min(n, problem.numPes());
      }()),
      mode_(mode), backend_(backend), pool_(num_threads_)
{
    for (const Subdomain &sub : problem.subdomains)
        QUAKE_EXPECT(sub.stiffness.numBlockRows() > 0,
                     "subdomain " << sub.part
                                  << " has no assembled stiffness");

    // kSlicedEll3: convert each PE's boundary and interior row lists
    // into sliced-ELL slabs once, here — the steady-state step then
    // touches only these preallocated slabs.  The row lists are sorted
    // ascending, so slab lane order preserves the ascending-row
    // accumulation order the fused path's determinism relies on.
    if (backend_ == SmvpKernelBackend::kSlicedEll3) {
        boundary_ell_.reserve(problem.subdomains.size());
        interior_ell_.reserve(problem.subdomains.size());
        for (const Subdomain &sub : problem.subdomains) {
            boundary_ell_.push_back(
                sparse::SlicedEll3Matrix::fromBcsr3Rows(
                    sub.stiffness, sub.boundaryRows.data(),
                    static_cast<std::int64_t>(sub.boundaryRows.size())));
            interior_ell_.push_back(
                sparse::SlicedEll3Matrix::fromBcsr3Rows(
                    sub.stiffness, sub.interiorRows.data(),
                    static_cast<std::int64_t>(sub.interiorRows.size())));
        }
    }

    // Precompute exchange bookkeeping.
    const int p = problem.numPes();
    exchange_base_.resize(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i)
        exchange_base_[i + 1] =
            exchange_base_[i] +
            static_cast<std::int64_t>(
                problem.schedule.pe(i).exchanges.size());

    mirror_index_.resize(static_cast<std::size_t>(p));
    exchange_local_nodes_.resize(
        static_cast<std::size_t>(exchange_base_[p]));
    for (int i = 0; i < p; ++i) {
        const PeSchedule &pe = problem.schedule.pe(i);
        mirror_index_[i].resize(pe.exchanges.size());
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];

            // Locate the mirrored exchange in the peer's sorted list.
            const auto &peer_list =
                problem.schedule.pe(ex.peer).exchanges;
            const auto it = std::lower_bound(
                peer_list.begin(), peer_list.end(), i,
                [](const Exchange &e, int part) { return e.peer < part; });
            QUAKE_REQUIRE(it != peer_list.end() && it->peer == i,
                          "unmirrored exchange");
            QUAKE_REQUIRE(it->nodes.size() == ex.nodes.size(),
                          "message size mismatch");
            mirror_index_[i][k] = it - peer_list.begin();

            // Local node ids of the shared nodes on this PE.
            std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            locals.reserve(ex.nodes.size());
            const Subdomain &sub = problem.subdomains[i];
            for (mesh::NodeId g : ex.nodes)
                locals.push_back(sub.localNodeOf(g));
        }
    }

    // Persistent scratch: local vectors, message buffers, publish flags.
    x_local_.resize(static_cast<std::size_t>(p));
    y_local_.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        const std::size_t n = static_cast<std::size_t>(
            3 * problem.subdomains[i].numLocalNodes());
        x_local_[i].assign(n, 0.0);
        y_local_[i].assign(n, 0.0);
    }
    buffers_.resize(static_cast<std::size_t>(exchange_base_[p]));
    for (std::size_t e = 0; e < buffers_.size(); ++e)
        buffers_[e].assign(3 * exchange_local_nodes_[e].size(), 0.0);
    published_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(exchange_base_[p]));
    for (std::int64_t e = 0; e < exchange_base_[p]; ++e)
        published_[e].store(0, std::memory_order_relaxed);

    // One cache line (stride 4 x 16 bytes) per PE so fused-step
    // partial accumulation never false-shares between workers.
    step_partials_.assign(static_cast<std::size_t>(p) * kPartialsStride,
                          sparse::StepPartials{});
}

void
ParallelSmvp::setCollector(telemetry::Collector *collector)
{
    if (collector != nullptr)
        collector->ensureSlots(num_threads_ + 1);
    tele_ = collector;
    pool_.setCollector(collector);
}

void
ParallelSmvp::waitForPublish(std::int64_t peer_flat, int slot,
                             std::int32_t pe,
                             telemetry::Collector *tele,
                             bool sampled) const
{
    if (published_[peer_flat].load(std::memory_order_acquire) == epoch_)
        return;
    const std::uint64_t s0 = tele != nullptr ? tele->now() : 0;
    while (published_[peer_flat].load(std::memory_order_acquire) !=
           epoch_)
        std::this_thread::yield();
    if (tele != nullptr) {
        const std::uint64_t s1 = tele->now();
        tele->add(slot, telemetry::Counter::kAcquireSpinNanos, s1 - s0);
        tele->add(slot, telemetry::Counter::kAcquireSpins, 1);
        tele->observe(slot, telemetry::Hist::kAcquireSpinNanos, s1 - s0);
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kAcquireSpin, pe,
                             s0, s1);
    }
}

void
ParallelSmvp::recordEllCounters(int pe, telemetry::Collector *tele,
                                int slot) const
{
    if (tele == nullptr)
        return;
    const sparse::SlicedEll3Matrix &b =
        boundary_ell_[static_cast<std::size_t>(pe)];
    const sparse::SlicedEll3Matrix &in =
        interior_ell_[static_cast<std::size_t>(pe)];
    tele->add(slot, telemetry::Counter::kEllSliceMultiplies,
              static_cast<std::uint64_t>(b.numSlices() + in.numSlices()));
    tele->add(slot, telemetry::Counter::kEllPaddedBlocks,
              static_cast<std::uint64_t>(
                  (b.storedBlocks() - b.structuralBlocks()) +
                  (in.storedBlocks() - in.structuralBlocks())));
}

void
ParallelSmvp::runLocalPhase(const double *x, int tid,
                            bool publish_early) const
{
    const int p = problem_.numPes();
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = 1 + tid;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    // Boundary rows first, message buffers published, then interior.
    // When publish_early is set, peers may start consuming a buffer the
    // moment its release-store lands — while this thread is still in
    // the interior sweep below.
    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::int64_t nl = sub.numLocalNodes();
        const std::uint64_t b0 = sampled ? tele->now() : 0;

        std::vector<double> &xl = x_local_[i];
        for (std::int64_t v = 0; v < nl; ++v) {
            const std::int64_t g = sub.globalNodes[v];
            xl[3 * v + 0] = x[3 * g + 0];
            xl[3 * v + 1] = x[3 * g + 1];
            xl[3 * v + 2] = x[3 * g + 2];
        }

        std::vector<double> &yl = y_local_[i];
        if (backend_ == SmvpKernelBackend::kSlicedEll3)
            boundary_ell_[i].multiply(xl.data(), yl.data());
        else
            sub.stiffness.multiplyRowList(
                xl.data(), yl.data(), sub.boundaryRows.data(),
                static_cast<std::int64_t>(sub.boundaryRows.size()));

        const PeSchedule &pe = problem_.schedule.pe(i);
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const std::int64_t flat =
                exchange_base_[i] + static_cast<std::int64_t>(k);
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[flat];
            std::vector<double> &buf = buffers_[flat];
            for (std::size_t s = 0; s < locals.size(); ++s) {
                buf[3 * s + 0] = yl[3 * locals[s] + 0];
                buf[3 * s + 1] = yl[3 * locals[s] + 1];
                buf[3 * s + 2] = yl[3 * locals[s] + 2];
            }
            if (publish_early)
                published_[flat].store(epoch_,
                                       std::memory_order_release);
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kBoundaryPhase, i,
                             b0, tele->now());
    }

    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        if (backend_ == SmvpKernelBackend::kSlicedEll3) {
            interior_ell_[i].multiply(x_local_[i].data(),
                                      y_local_[i].data());
            recordEllCounters(i, tele, slot);
        } else {
            sub.stiffness.multiplyRowList(
                x_local_[i].data(), y_local_[i].data(),
                sub.interiorRows.data(),
                static_cast<std::int64_t>(sub.interiorRows.size()));
        }
    }

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->observe(slot, telemetry::Hist::kLocalPhaseNanos, t1 - t0);
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kLocalPhase, -1,
                             t0, t1);
    }
}

void
ParallelSmvp::runExchangePhase(double *y, int tid,
                               bool wait_for_publish) const
{
    const int p = problem_.numPes();
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = 1 + tid;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        std::vector<double> &yl = y_local_[i];
        const PeSchedule &pe = problem_.schedule.pe(i);
        const std::uint64_t e0 = sampled ? tele->now() : 0;

        // Ascending peer order — the determinism guarantee.  Arrival
        // timing never changes the sum order, only how long we wait.
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];
            const std::int64_t peer_flat =
                exchange_base_[ex.peer] + mirror_index_[i][k];
            if (wait_for_publish)
                waitForPublish(peer_flat, slot, i, tele, sampled);
            const std::vector<double> &buf = buffers_[peer_flat];
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            for (std::size_t s = 0; s < locals.size(); ++s) {
                yl[3 * locals[s] + 0] += buf[3 * s + 0];
                yl[3 * locals[s] + 1] += buf[3 * s + 1];
                yl[3 * locals[s] + 2] += buf[3 * s + 2];
            }
        }

        for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v) {
            if (!sub.ownsNode[v])
                continue;
            const std::int64_t g = sub.globalNodes[v];
            y[3 * g + 0] = yl[3 * v + 0];
            y[3 * g + 1] = yl[3 * v + 1];
            y[3 * g + 2] = yl[3 * v + 2];
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kExchange, i, e0,
                             tele->now());
    }

    if (tele != nullptr)
        tele->observe(slot, telemetry::Hist::kExchangeNanos,
                      tele->now() - t0);
}

void
ParallelSmvp::runLocalPhaseFused(int tid, bool publish_early) const
{
    const sparse::StepUpdate &su = *su_arg_;
    const int p = problem_.numPes();
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = 1 + tid;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    // Identical to runLocalPhase (same gather, same kernels, same
    // publish protocol) up to the interior sweep...
    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::int64_t nl = sub.numLocalNodes();
        const std::uint64_t b0 = sampled ? tele->now() : 0;

        std::vector<double> &xl = x_local_[i];
        for (std::int64_t v = 0; v < nl; ++v) {
            const std::int64_t g = sub.globalNodes[v];
            xl[3 * v + 0] = su.u[3 * g + 0];
            xl[3 * v + 1] = su.u[3 * g + 1];
            xl[3 * v + 2] = su.u[3 * g + 2];
        }

        std::vector<double> &yl = y_local_[i];
        if (backend_ == SmvpKernelBackend::kSlicedEll3)
            boundary_ell_[i].multiply(xl.data(), yl.data());
        else
            sub.stiffness.multiplyRowList(
                xl.data(), yl.data(), sub.boundaryRows.data(),
                static_cast<std::int64_t>(sub.boundaryRows.size()));

        const PeSchedule &pe = problem_.schedule.pe(i);
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const std::int64_t flat =
                exchange_base_[i] + static_cast<std::int64_t>(k);
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[flat];
            std::vector<double> &buf = buffers_[flat];
            for (std::size_t s = 0; s < locals.size(); ++s) {
                buf[3 * s + 0] = yl[3 * locals[s] + 0];
                buf[3 * s + 1] = yl[3 * locals[s] + 1];
                buf[3 * s + 2] = yl[3 * locals[s] + 2];
            }
            if (publish_early)
                published_[flat].store(epoch_,
                                       std::memory_order_release);
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kBoundaryPhase, i,
                             b0, tele->now());
    }

    if (backend_ == SmvpKernelBackend::kSlicedEll3) {
        // Sliced-ELL fused interior: each slice's K u values are
        // computed by the dispatched slice kernel, then the update
        // triad consumes the slice's lanes while they are hot.  Lane
        // order is the ascending interiorRows order (fromBcsr3Rows
        // preserves list order and pad lanes trail the last slice), so
        // the per-PE partials accumulate in exactly the row order of
        // the BCSR3 formulation — bitwise deterministic across thread
        // counts and exchange modes within this backend.  No heap
        // allocation: the slabs and scratch are persistent.
        for (int i = tid; i < p; i += num_threads_) {
            const Subdomain &sub = problem_.subdomains[i];
            const std::vector<double> &xl = x_local_[i];
            std::vector<double> &yl = y_local_[i];
            sparse::StepPartials &partials = step_partials_
                [static_cast<std::size_t>(i) * kPartialsStride];
            const sparse::SlicedEll3Matrix &ell =
                interior_ell_[static_cast<std::size_t>(i)];
            const std::int64_t S = ell.sliceHeight();
            for (std::int64_t sl = 0; sl < ell.numSlices(); ++sl) {
                ell.multiplySlices(xl.data(), yl.data(), sl, sl + 1);
                for (std::int64_t l = 0; l < S; ++l) {
                    const std::int64_t v = ell.laneRow(sl * S + l);
                    if (v < 0)
                        break;
                    const std::int64_t g = sub.globalNodes[v];
                    for (int c = 0; c < 3; ++c) {
                        const std::int64_t gi = 3 * g + c;
                        const double ui = xl[3 * v + c];
                        partials.accumulate(
                            su, gi, ui,
                            su.apply(gi, ui, yl[3 * v + c]));
                    }
                }
            }
            recordEllCounters(i, tele, slot);
        }
        if (tele != nullptr) {
            const std::uint64_t t1 = tele->now();
            tele->observe(slot, telemetry::Hist::kLocalPhaseNanos,
                          t1 - t0);
            if (sampled)
                tele->recordSpan(slot, telemetry::Span::kLocalPhase, -1,
                                 t0, t1);
        }
        return;
    }

    // ...then interior rows are updated in small chunks: one kernel
    // call computes a chunk's K u values, and the update triad consumes
    // them immediately, while the chunk is still in cache.  (Chunking
    // only amortizes the kernel-call overhead; each row's arithmetic
    // and the ascending accumulation order are exactly those of the
    // row-at-a-time formulation, so the result is bitwise unchanged.)
    // Interior nodes live on exactly one PE (so their local value is
    // the global one) and that PE owns them, so the write to su.up is
    // race-free and disjoint across PEs.
    constexpr std::int64_t kFuseChunk = 64;
    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::vector<double> &xl = x_local_[i];
        std::vector<double> &yl = y_local_[i];
        sparse::StepPartials &partials =
            step_partials_[static_cast<std::size_t>(i) * kPartialsStride];
        const std::int64_t nr =
            static_cast<std::int64_t>(sub.interiorRows.size());
        for (std::int64_t r0 = 0; r0 < nr; r0 += kFuseChunk) {
            const std::int64_t count = std::min(kFuseChunk, nr - r0);
            sub.stiffness.multiplyRowList(
                xl.data(), yl.data(), sub.interiorRows.data() + r0,
                count);
            // Apply the update over maximal runs of rows whose local
            // AND global ids are both consecutive (globalNodes is
            // sorted, so such runs are common on coherently numbered
            // meshes): each run is a contiguous triad sweep over
            // xl/yl and the global arrays.  xl[3v+c] is the gathered
            // copy of su.u[gi]; the DOF order and arithmetic are
            // exactly those of the row-at-a-time formulation.
            for (std::int64_t r = r0; r < r0 + count;) {
                const std::int64_t v0 = sub.interiorRows[r];
                const std::int64_t g0 = sub.globalNodes[v0];
                std::int64_t len = 1;
                while (r + len < r0 + count &&
                       sub.interiorRows[r + len] == v0 + len &&
                       sub.globalNodes[v0 + len] == g0 + len)
                    ++len;
                const double *xrun = xl.data() + 3 * v0;
                const double *yrun = yl.data() + 3 * v0;
                const std::int64_t base = 3 * g0;
                for (std::int64_t k = 0; k < 3 * len; ++k) {
                    const double ui = xrun[k];
                    partials.accumulate(
                        su, base + k, ui,
                        su.apply(base + k, ui, yrun[k]));
                }
                r += len;
            }
        }
    }

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->observe(slot, telemetry::Hist::kLocalPhaseNanos, t1 - t0);
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kLocalPhase, -1,
                             t0, t1);
    }
}

void
ParallelSmvp::runExchangePhaseFused(int tid, bool wait_for_publish) const
{
    const sparse::StepUpdate &su = *su_arg_;
    const int p = problem_.numPes();
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = 1 + tid;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    for (int i = tid; i < p; i += num_threads_) {
        const Subdomain &sub = problem_.subdomains[i];
        std::vector<double> &yl = y_local_[i];
        const PeSchedule &pe = problem_.schedule.pe(i);
        const std::uint64_t e0 = sampled ? tele->now() : 0;

        // Ascending peer order — the determinism guarantee (identical
        // to runExchangePhase).
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];
            const std::int64_t peer_flat =
                exchange_base_[ex.peer] + mirror_index_[i][k];
            if (wait_for_publish)
                waitForPublish(peer_flat, slot, i, tele, sampled);
            const std::vector<double> &buf = buffers_[peer_flat];
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            for (std::size_t s = 0; s < locals.size(); ++s) {
                yl[3 * locals[s] + 0] += buf[3 * s + 0];
                yl[3 * locals[s] + 1] += buf[3 * s + 1];
                yl[3 * locals[s] + 2] += buf[3 * s + 2];
            }
        }

        // Where the unfused path copies owned rows into the global y,
        // the fused path consumes them immediately: each owned boundary
        // row's peer sum is final here, so apply the update while the
        // row is hot instead of materializing ku.  (Interior rows were
        // updated in the local phase.)
        sparse::StepPartials &partials =
            step_partials_[static_cast<std::size_t>(i) * kPartialsStride];
        const std::vector<double> &xl = x_local_[i];
        for (std::int64_t r = 0;
             r < static_cast<std::int64_t>(sub.boundaryRows.size());
             ++r) {
            const std::int64_t v = sub.boundaryRows[r];
            if (!sub.ownsNode[v])
                continue;
            const std::int64_t g = sub.globalNodes[v];
            for (int c = 0; c < 3; ++c) {
                const std::int64_t gi = 3 * g + c;
                const double ui = xl[3 * v + c];
                partials.accumulate(
                    su, gi, ui, su.apply(gi, ui, yl[3 * v + c]));
            }
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kExchange, i, e0,
                             tele->now());
    }

    if (tele != nullptr)
        tele->observe(slot, telemetry::Hist::kExchangeNanos,
                      tele->now() - t0);
}

void
ParallelSmvp::multiplyInto(const double *x, double *y) const
{
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    x_arg_ = x;
    y_arg_ = y;
    ++epoch_;

    if (mode_ == ExchangeMode::kOverlapped) {
        // One fork/join: each worker publishes its boundary buffers,
        // overlaps its interior rows with the peers' publishes, then
        // spin-waits (with yield) only for buffers not yet ready.
        pool_.run([this](int tid) {
            runLocalPhase(x_arg_, tid, /*publish_early=*/true);
            runExchangePhase(y_arg_, tid, /*wait_for_publish=*/true);
        });
    } else {
        // Two fork/joins: the pool's join is the BSP barrier.
        pool_.run(
            [this](int tid) { runLocalPhase(x_arg_, tid, false); });
        pool_.run(
            [this](int tid) { runExchangePhase(y_arg_, tid, false); });
    }
    x_arg_ = nullptr;
    y_arg_ = nullptr;

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->add(0, telemetry::Counter::kSmvpCalls, 1);
        tele->observe(0, telemetry::Hist::kSmvpNanos, t1 - t0);
        tele->recordSpan(0, telemetry::Span::kSmvp, -1, t0, t1);
    }
}

void
ParallelSmvp::multiplyInto(const std::vector<double> &x,
                           std::vector<double> &y) const
{
    const std::int64_t dof = 3 * problem_.numGlobalNodes;
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof,
                 "x has " << x.size() << " entries, expected " << dof);
    QUAKE_EXPECT(static_cast<std::int64_t>(y.size()) == dof,
                 "y has " << y.size() << " entries, expected " << dof);
    multiplyInto(x.data(), y.data());
}

std::vector<double>
ParallelSmvp::multiply(const std::vector<double> &x) const
{
    const std::int64_t dof = 3 * problem_.numGlobalNodes;
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof,
                 "x has " << x.size() << " entries, expected " << dof);
    std::vector<double> y(static_cast<std::size_t>(dof));
    multiplyInto(x.data(), y.data());
    return y;
}

sparse::StepPartials
ParallelSmvp::stepFused(const sparse::StepUpdate &su) const
{
    QUAKE_EXPECT(su.u != nullptr && su.up != nullptr &&
                     su.f != nullptr && su.invMass != nullptr,
                 "fused step update has unbound field pointers");

    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    const int p = problem_.numPes();
    for (int i = 0; i < p; ++i)
        step_partials_[static_cast<std::size_t>(i) * kPartialsStride] =
            sparse::StepPartials{};

    su_arg_ = &su;
    ++epoch_;
    if (mode_ == ExchangeMode::kOverlapped) {
        pool_.run([this](int tid) {
            runLocalPhaseFused(tid, /*publish_early=*/true);
            runExchangePhaseFused(tid, /*wait_for_publish=*/true);
        });
    } else {
        pool_.run([this](int tid) { runLocalPhaseFused(tid, false); });
        pool_.run([this](int tid) { runExchangePhaseFused(tid, false); });
    }
    su_arg_ = nullptr;

    // Ascending-PE combine: the per-PE accumulation order is fixed by
    // the partition, so the reduced values are independent of thread
    // count and exchange mode.
    sparse::StepPartials out;
    for (int i = 0; i < p; ++i)
        out.combine(
            step_partials_[static_cast<std::size_t>(i) * kPartialsStride]);

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->add(0, telemetry::Counter::kSmvpCalls, 1);
        tele->observe(0, telemetry::Hist::kSmvpNanos, t1 - t0);
        tele->recordSpan(0, telemetry::Span::kSmvp, -1, t0, t1);
    }
    return out;
}

} // namespace quake::parallel
