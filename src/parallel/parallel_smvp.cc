#include "parallel/parallel_smvp.h"

#include <algorithm>
#include <barrier>
#include <thread>

#include "common/error.h"

namespace quake::parallel
{

ParallelSmvp::ParallelSmvp(const DistributedProblem &problem,
                           int num_threads)
    : problem_(problem)
{
    QUAKE_EXPECT(!problem.subdomains.empty(), "problem has no subdomains");
    for (const Subdomain &sub : problem.subdomains)
        QUAKE_EXPECT(sub.stiffness.numBlockRows() > 0,
                     "subdomain " << sub.part
                                  << " has no assembled stiffness");

    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    num_threads_ = num_threads > 0 ? num_threads : std::max(1, hw);
    num_threads_ = std::min(num_threads_, problem.numPes());

    // Precompute exchange bookkeeping.
    const int p = problem.numPes();
    exchange_base_.resize(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i)
        exchange_base_[i + 1] =
            exchange_base_[i] +
            static_cast<std::int64_t>(
                problem.schedule.pe(i).exchanges.size());

    mirror_index_.resize(static_cast<std::size_t>(p));
    exchange_local_nodes_.resize(
        static_cast<std::size_t>(exchange_base_[p]));
    for (int i = 0; i < p; ++i) {
        const PeSchedule &pe = problem.schedule.pe(i);
        mirror_index_[i].resize(pe.exchanges.size());
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];

            // Locate the mirrored exchange in the peer's sorted list.
            const auto &peer_list =
                problem.schedule.pe(ex.peer).exchanges;
            const auto it = std::lower_bound(
                peer_list.begin(), peer_list.end(), i,
                [](const Exchange &e, int part) { return e.peer < part; });
            QUAKE_REQUIRE(it != peer_list.end() && it->peer == i,
                          "unmirrored exchange");
            mirror_index_[i][k] = it - peer_list.begin();

            // Local node ids of the shared nodes on this PE.
            std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            locals.reserve(ex.nodes.size());
            const Subdomain &sub = problem.subdomains[i];
            for (mesh::NodeId g : ex.nodes)
                locals.push_back(sub.localNodeOf(g));
        }
    }
}

std::vector<double>
ParallelSmvp::multiply(const std::vector<double> &x) const
{
    const std::int64_t dof = 3 * problem_.numGlobalNodes;
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof,
                 "x has " << x.size() << " entries, expected " << dof);

    const int p = problem_.numPes();
    std::vector<double> y(static_cast<std::size_t>(dof), 0.0);

    // Per-PE local result vectors and per-exchange message buffers.
    std::vector<std::vector<double>> y_local(static_cast<std::size_t>(p));
    std::vector<std::vector<double>> buffers(
        static_cast<std::size_t>(exchange_base_[p]));

    std::barrier sync(num_threads_);

    auto worker = [&](int tid) {
        // --- Phase 1: local SMVP + send-buffer fill. ---
        for (int i = tid; i < p; i += num_threads_) {
            const Subdomain &sub = problem_.subdomains[i];
            const std::int64_t nl = sub.numLocalNodes();

            std::vector<double> x_local(
                static_cast<std::size_t>(3 * nl));
            for (std::int64_t v = 0; v < nl; ++v) {
                const std::int64_t g = sub.globalNodes[v];
                x_local[3 * v + 0] = x[3 * g + 0];
                x_local[3 * v + 1] = x[3 * g + 1];
                x_local[3 * v + 2] = x[3 * g + 2];
            }

            std::vector<double> &yl = y_local[i];
            yl.assign(static_cast<std::size_t>(3 * nl), 0.0);
            sub.stiffness.multiply(x_local.data(), yl.data());

            const PeSchedule &pe = problem_.schedule.pe(i);
            for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
                const std::vector<std::int64_t> &locals =
                    exchange_local_nodes_[exchange_base_[i] +
                                          static_cast<std::int64_t>(k)];
                std::vector<double> &buf =
                    buffers[exchange_base_[i] +
                            static_cast<std::int64_t>(k)];
                buf.resize(3 * locals.size());
                for (std::size_t s = 0; s < locals.size(); ++s) {
                    buf[3 * s + 0] = yl[3 * locals[s] + 0];
                    buf[3 * s + 1] = yl[3 * locals[s] + 1];
                    buf[3 * s + 2] = yl[3 * locals[s] + 2];
                }
            }
        }

        sync.arrive_and_wait();

        // --- Phase 2: receive + sum, then owner write-back. ---
        for (int i = tid; i < p; i += num_threads_) {
            const Subdomain &sub = problem_.subdomains[i];
            std::vector<double> &yl = y_local[i];
            const PeSchedule &pe = problem_.schedule.pe(i);
            for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
                const Exchange &ex = pe.exchanges[k];
                const std::vector<double> &buf =
                    buffers[exchange_base_[ex.peer] + mirror_index_[i][k]];
                const std::vector<std::int64_t> &locals =
                    exchange_local_nodes_[exchange_base_[i] +
                                          static_cast<std::int64_t>(k)];
                QUAKE_REQUIRE(buf.size() == 3 * locals.size(),
                              "message size mismatch");
                for (std::size_t s = 0; s < locals.size(); ++s) {
                    yl[3 * locals[s] + 0] += buf[3 * s + 0];
                    yl[3 * locals[s] + 1] += buf[3 * s + 1];
                    yl[3 * locals[s] + 2] += buf[3 * s + 2];
                }
            }

            for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v) {
                if (!sub.ownsNode[v])
                    continue;
                const std::int64_t g = sub.globalNodes[v];
                y[3 * g + 0] = yl[3 * v + 0];
                y[3 * g + 1] = yl[3 * v + 1];
                y[3 * g + 2] = yl[3 * v + 2];
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_threads_));
    for (int t = 0; t < num_threads_; ++t)
        threads.emplace_back(worker, t);
    for (std::thread &t : threads)
        t.join();
    return y;
}

} // namespace quake::parallel
