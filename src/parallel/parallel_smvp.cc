#include "parallel/parallel_smvp.h"

#include <algorithm>
#include <thread>

#include "common/error.h"

namespace quake::parallel
{

namespace
{

/** StepPartials per 64-byte cache line: padding stride for PE slots. */
constexpr std::size_t kPartialsStride = 4;

/** Split `cpus` into `parts` contiguous chunks (some may be empty). */
std::vector<std::vector<int>>
splitCpus(const std::vector<int> &cpus, int parts)
{
    std::vector<std::vector<int>> out(static_cast<std::size_t>(parts));
    const int n = static_cast<int>(cpus.size());
    for (int s = 0; s < parts; ++s) {
        const int lo = s * n / parts;
        const int hi = (s + 1) * n / parts;
        out[static_cast<std::size_t>(s)].assign(cpus.begin() + lo,
                                                cpus.begin() + hi);
    }
    return out;
}

} // namespace

ParallelSmvp::ParallelSmvp(const DistributedProblem &problem,
                           int num_threads, ExchangeMode mode,
                           SmvpKernelBackend backend)
    : ParallelSmvp(problem, Topology::flat(num_threads), mode, backend)
{
}

ParallelSmvp::ParallelSmvp(const DistributedProblem &problem,
                           const Topology &topo, ExchangeMode mode,
                           SmvpKernelBackend backend)
    : problem_(problem), mode_(mode), backend_(backend)
{
    QUAKE_EXPECT(!problem.subdomains.empty(),
                 "problem has no subdomains");
    topo.validate();
    for (const Subdomain &sub : problem.subdomains)
        QUAKE_EXPECT(sub.stiffness.numBlockRows() > 0,
                     "subdomain " << sub.part
                                  << " has no assembled stiffness");

    // Normalize the topology against the problem: shards clamp to the
    // PE count (the paper's unit of decomposition), PEs map to
    // contiguous ascending shard blocks, and the per-shard thread
    // count caps at the largest block (extra threads would idle).
    const int p = problem.numPes();
    num_shards_ = std::clamp(topo.numShards, 1, p);
    const int max_block = (p + num_shards_ - 1) / num_shards_;
    if (topo.threadsPerShard > 0) {
        threads_per_shard_ = std::min(topo.threadsPerShard, max_block);
    } else {
        const int budget = topo.threadBudget > 0
                               ? topo.threadBudget
                               : WorkerPool::hardwareThreads();
        threads_per_shard_ =
            std::min(std::max(1, budget / num_shards_), max_block);
    }

    shard_begin_.resize(static_cast<std::size_t>(num_shards_) + 1);
    for (int s = 0; s <= num_shards_; ++s)
        shard_begin_[static_cast<std::size_t>(s)] = s * p / num_shards_;
    shard_of_.resize(static_cast<std::size_t>(p));
    for (int s = 0; s < num_shards_; ++s)
        for (int i = shard_begin_[s]; i < shard_begin_[s + 1]; ++i)
            shard_of_[static_cast<std::size_t>(i)] = s;

    // CPU placement for pinning: the topology's explicit per-shard
    // lists when given, else an even contiguous split of the affinity
    // mask.  Advisory throughout — empty sets and failed pins fall
    // back to unpinned workers.
    std::vector<std::vector<int>> shard_cpus = topo.shardCpus;
    if (static_cast<int>(shard_cpus.size()) > num_shards_)
        shard_cpus.resize(static_cast<std::size_t>(num_shards_));
    if (topo.pin && shard_cpus.empty())
        shard_cpus = splitCpus(affinityCpus(), num_shards_);
    const bool pin = topo.pin && !shard_cpus.empty();

    if (num_shards_ > 1) {
        // Outer pool: one worker per shard, pinned to its shard's CPU
        // set so inline work (threads_per_shard_ == 1) and first-touch
        // allocation land in the shard's domain.
        WorkerPoolOptions outer_opts;
        if (pin)
            outer_opts.workerCpus = shard_cpus;
        outer_pool_ = std::make_unique<WorkerPool>(num_shards_,
                                                   std::move(outer_opts));
    }
    shard_pools_.resize(static_cast<std::size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s) {
        WorkerPoolOptions opts;
        if (pin)
            opts.workerCpus = {shard_cpus[static_cast<std::size_t>(
                s % static_cast<int>(shard_cpus.size()))]};
        shard_pools_[static_cast<std::size_t>(s)] =
            std::make_unique<WorkerPool>(threads_per_shard_,
                                         std::move(opts));
    }

    // Precompute exchange bookkeeping.
    exchange_base_.resize(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i)
        exchange_base_[i + 1] =
            exchange_base_[i] +
            static_cast<std::int64_t>(
                problem.schedule.pe(i).exchanges.size());

    mirror_index_.resize(static_cast<std::size_t>(p));
    exchange_local_nodes_.resize(
        static_cast<std::size_t>(exchange_base_[p]));
    pe_remote_bytes_.assign(static_cast<std::size_t>(p), 0);
    pe_local_bytes_.assign(static_cast<std::size_t>(p), 0);
    for (int i = 0; i < p; ++i) {
        const PeSchedule &pe = problem.schedule.pe(i);
        mirror_index_[i].resize(pe.exchanges.size());
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];

            // Locate the mirrored exchange in the peer's sorted list.
            const auto &peer_list =
                problem.schedule.pe(ex.peer).exchanges;
            const auto it = std::lower_bound(
                peer_list.begin(), peer_list.end(), i,
                [](const Exchange &e, int part) { return e.peer < part; });
            QUAKE_REQUIRE(it != peer_list.end() && it->peer == i,
                          "unmirrored exchange");
            QUAKE_REQUIRE(it->nodes.size() == ex.nodes.size(),
                          "message size mismatch");
            mirror_index_[i][k] = it - peer_list.begin();

            // Local node ids of the shared nodes on this PE.
            std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            locals.reserve(ex.nodes.size());
            const Subdomain &sub = problem.subdomains[i];
            for (mesh::NodeId g : ex.nodes)
                locals.push_back(sub.localNodeOf(g));

            // Classify this PE's received exchange traffic by the
            // shard map: crossing a shard boundary means crossing a
            // memory domain when shards are pinned to NUMA nodes.
            const std::int64_t bytes = static_cast<std::int64_t>(
                3 * ex.nodes.size() * sizeof(double));
            if (shard_of_[static_cast<std::size_t>(ex.peer)] ==
                shard_of_[static_cast<std::size_t>(i)])
                pe_local_bytes_[static_cast<std::size_t>(i)] += bytes;
            else
                pe_remote_bytes_[static_cast<std::size_t>(i)] += bytes;
        }
        remote_bytes_ += pe_remote_bytes_[static_cast<std::size_t>(i)];
        local_bytes_ += pe_local_bytes_[static_cast<std::size_t>(i)];
    }

    // Shard load imbalance over local rows (the kernel work measure).
    {
        std::vector<std::int64_t> rows(
            static_cast<std::size_t>(num_shards_), 0);
        std::int64_t total = 0;
        for (int i = 0; i < p; ++i) {
            const std::int64_t r =
                problem.subdomains[static_cast<std::size_t>(i)]
                    .numLocalNodes();
            rows[static_cast<std::size_t>(shard_of_[i])] += r;
            total += r;
        }
        const double mean =
            static_cast<double>(total) / num_shards_;
        const std::int64_t maxr =
            *std::max_element(rows.begin(), rows.end());
        shard_imbalance_ =
            mean > 0 ? static_cast<double>(maxr) / mean - 1.0 : 0.0;
    }

    // Persistent slabs: outer containers sized here, inner storage
    // filled by initPeSlabs — inline when flat, on each owning shard's
    // worker threads when hierarchical, so pages are first-touched in
    // the domain that will stream them every step.
    x_local_.resize(static_cast<std::size_t>(p));
    y_local_.resize(static_cast<std::size_t>(p));
    buffers_.resize(static_cast<std::size_t>(exchange_base_[p]));
    if (backend_ == SmvpKernelBackend::kSlicedEll3) {
        boundary_ell_.resize(static_cast<std::size_t>(p));
        interior_ell_.resize(static_cast<std::size_t>(p));
    } else if (num_shards_ > 1) {
        local_stiffness_.resize(static_cast<std::size_t>(p));
    }
    if (num_shards_ == 1) {
        for (int i = 0; i < p; ++i)
            initPeSlabs(i);
    } else {
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int t) {
                    for (int i = shard_begin_[s] + t;
                         i < shard_begin_[s + 1];
                         i += threads_per_shard_)
                        initPeSlabs(i);
                });
        });
    }

    published_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(exchange_base_[p]));
    for (std::int64_t e = 0; e < exchange_base_[p]; ++e)
        published_[e].store(0, std::memory_order_relaxed);

    // One cache line (stride 4 x 16 bytes) per PE so fused-step
    // partial accumulation never false-shares between workers.
    step_partials_.assign(static_cast<std::size_t>(p) * kPartialsStride,
                          sparse::StepPartials{});
}

void
ParallelSmvp::initPeSlabs(int i)
{
    const Subdomain &sub =
        problem_.subdomains[static_cast<std::size_t>(i)];
    const std::size_t n =
        static_cast<std::size_t>(3 * sub.numLocalNodes());
    x_local_[static_cast<std::size_t>(i)].assign(n, 0.0);
    y_local_[static_cast<std::size_t>(i)].assign(n, 0.0);
    for (std::int64_t e = exchange_base_[i]; e < exchange_base_[i + 1];
         ++e)
        buffers_[static_cast<std::size_t>(e)].assign(
            3 * exchange_local_nodes_[static_cast<std::size_t>(e)]
                    .size(),
            0.0);

    // kSlicedEll3: convert the PE's boundary and interior row lists
    // into sliced-ELL slabs once, here — the steady-state step then
    // touches only these preallocated slabs.  The row lists are sorted
    // ascending, so slab lane order preserves the ascending-row
    // accumulation order the fused path's determinism relies on.
    if (backend_ == SmvpKernelBackend::kSlicedEll3) {
        boundary_ell_[static_cast<std::size_t>(i)] =
            sparse::SlicedEll3Matrix::fromBcsr3Rows(
                sub.stiffness, sub.boundaryRows.data(),
                static_cast<std::int64_t>(sub.boundaryRows.size()));
        interior_ell_[static_cast<std::size_t>(i)] =
            sparse::SlicedEll3Matrix::fromBcsr3Rows(
                sub.stiffness, sub.interiorRows.data(),
                static_cast<std::int64_t>(sub.interiorRows.size()));
    } else if (!local_stiffness_.empty()) {
        // Hierarchical BCSR3: copy the subdomain stiffness so the
        // dominant kernel stream reads pages this shard first-touched.
        // Identical values — results are bitwise unchanged.
        local_stiffness_[static_cast<std::size_t>(i)] = sub.stiffness;
    }
}

std::int64_t
ParallelSmvp::pinFailures() const
{
    std::int64_t failures =
        outer_pool_ != nullptr ? outer_pool_->pinFailures() : 0;
    for (const std::unique_ptr<WorkerPool> &pool : shard_pools_)
        failures += pool->pinFailures();
    return failures;
}

void
ParallelSmvp::setCollector(telemetry::Collector *collector)
{
    const int S = num_shards_;
    const int T = threads_per_shard_;
    if (collector != nullptr)
        collector->ensureSlots(S == 1 ? 1 + T : 1 + S + S * T);
    tele_ = collector;
    if (outer_pool_ != nullptr)
        outer_pool_->setCollector(collector, 0, 1);
    for (int s = 0; s < S; ++s)
        shard_pools_[static_cast<std::size_t>(s)]->setCollector(
            collector, S == 1 ? 0 : 1 + s,
            S == 1 ? 1 : 1 + S + s * T);
    if (collector != nullptr && collector->enabled()) {
        // Construction-time facts, recorded once on attach.
        collector->add(0, telemetry::Counter::kPinFailures,
                       static_cast<std::uint64_t>(pinFailures()));
        collector->add(
            0, telemetry::Counter::kShardImbalanceMilli,
            static_cast<std::uint64_t>(
                shard_imbalance_ > 0 ? shard_imbalance_ * 1000.0 + 0.5
                                     : 0.0));
    }
}

void
ParallelSmvp::waitForPublish(std::int64_t peer_flat, int slot,
                             std::int32_t pe,
                             telemetry::Collector *tele,
                             bool sampled) const
{
    if (published_[peer_flat].load(std::memory_order_acquire) == epoch_)
        return;
    const std::uint64_t s0 = tele != nullptr ? tele->now() : 0;
    while (published_[peer_flat].load(std::memory_order_acquire) !=
           epoch_)
        std::this_thread::yield();
    if (tele != nullptr) {
        const std::uint64_t s1 = tele->now();
        tele->add(slot, telemetry::Counter::kAcquireSpinNanos, s1 - s0);
        tele->add(slot, telemetry::Counter::kAcquireSpins, 1);
        tele->observe(slot, telemetry::Hist::kAcquireSpinNanos, s1 - s0);
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kAcquireSpin, pe,
                             s0, s1);
    }
}

void
ParallelSmvp::recordEllCounters(int pe, telemetry::Collector *tele,
                                int slot) const
{
    if (tele == nullptr)
        return;
    const sparse::SlicedEll3Matrix &b =
        boundary_ell_[static_cast<std::size_t>(pe)];
    const sparse::SlicedEll3Matrix &in =
        interior_ell_[static_cast<std::size_t>(pe)];
    tele->add(slot, telemetry::Counter::kEllSliceMultiplies,
              static_cast<std::uint64_t>(b.numSlices() + in.numSlices()));
    tele->add(slot, telemetry::Counter::kEllPaddedBlocks,
              static_cast<std::uint64_t>(
                  (b.storedBlocks() - b.structuralBlocks()) +
                  (in.storedBlocks() - in.structuralBlocks())));
}

void
ParallelSmvp::runLocalPhase(const double *x, int s, int tid,
                            bool publish_early) const
{
    const int end = shard_begin_[s + 1];
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = teleSlot(s, tid);
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    // Boundary rows first, message buffers published, then interior.
    // When publish_early is set, peers may start consuming a buffer the
    // moment its release-store lands — while this thread is still in
    // the interior sweep below.
    for (int i = shard_begin_[s] + tid; i < end;
         i += threads_per_shard_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::int64_t nl = sub.numLocalNodes();
        const std::uint64_t b0 = sampled ? tele->now() : 0;

        std::vector<double> &xl = x_local_[i];
        for (std::int64_t v = 0; v < nl; ++v) {
            const std::int64_t g = sub.globalNodes[v];
            xl[3 * v + 0] = x[3 * g + 0];
            xl[3 * v + 1] = x[3 * g + 1];
            xl[3 * v + 2] = x[3 * g + 2];
        }

        std::vector<double> &yl = y_local_[i];
        if (backend_ == SmvpKernelBackend::kSlicedEll3)
            boundary_ell_[i].multiply(xl.data(), yl.data());
        else
            localK(i).multiplyRowList(
                xl.data(), yl.data(), sub.boundaryRows.data(),
                static_cast<std::int64_t>(sub.boundaryRows.size()));

        const PeSchedule &pe = problem_.schedule.pe(i);
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const std::int64_t flat =
                exchange_base_[i] + static_cast<std::int64_t>(k);
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[flat];
            std::vector<double> &buf = buffers_[flat];
            for (std::size_t v = 0; v < locals.size(); ++v) {
                buf[3 * v + 0] = yl[3 * locals[v] + 0];
                buf[3 * v + 1] = yl[3 * locals[v] + 1];
                buf[3 * v + 2] = yl[3 * locals[v] + 2];
            }
            if (publish_early)
                published_[flat].store(epoch_,
                                       std::memory_order_release);
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kBoundaryPhase, i,
                             b0, tele->now());
    }

    for (int i = shard_begin_[s] + tid; i < end;
         i += threads_per_shard_) {
        const Subdomain &sub = problem_.subdomains[i];
        if (backend_ == SmvpKernelBackend::kSlicedEll3) {
            interior_ell_[i].multiply(x_local_[i].data(),
                                      y_local_[i].data());
            recordEllCounters(i, tele, slot);
        } else {
            localK(i).multiplyRowList(
                x_local_[i].data(), y_local_[i].data(),
                sub.interiorRows.data(),
                static_cast<std::int64_t>(sub.interiorRows.size()));
        }
    }

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->observe(slot, telemetry::Hist::kLocalPhaseNanos, t1 - t0);
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kLocalPhase, -1,
                             t0, t1);
    }
}

void
ParallelSmvp::runExchangePhase(double *y, int s, int tid,
                               bool wait_for_publish) const
{
    const int end = shard_begin_[s + 1];
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = teleSlot(s, tid);
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    for (int i = shard_begin_[s] + tid; i < end;
         i += threads_per_shard_) {
        const Subdomain &sub = problem_.subdomains[i];
        std::vector<double> &yl = y_local_[i];
        const PeSchedule &pe = problem_.schedule.pe(i);
        const std::uint64_t e0 = sampled ? tele->now() : 0;

        // Ascending peer order — the determinism guarantee.  Arrival
        // timing never changes the sum order, only how long we wait.
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];
            const std::int64_t peer_flat =
                exchange_base_[ex.peer] + mirror_index_[i][k];
            if (wait_for_publish)
                waitForPublish(peer_flat, slot, i, tele, sampled);
            const std::vector<double> &buf = buffers_[peer_flat];
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            for (std::size_t v = 0; v < locals.size(); ++v) {
                yl[3 * locals[v] + 0] += buf[3 * v + 0];
                yl[3 * locals[v] + 1] += buf[3 * v + 1];
                yl[3 * locals[v] + 2] += buf[3 * v + 2];
            }
        }

        for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v) {
            if (!sub.ownsNode[v])
                continue;
            const std::int64_t g = sub.globalNodes[v];
            y[3 * g + 0] = yl[3 * v + 0];
            y[3 * g + 1] = yl[3 * v + 1];
            y[3 * g + 2] = yl[3 * v + 2];
        }
        if (tele != nullptr) {
            tele->add(slot, telemetry::Counter::kShardRemoteBytes,
                      static_cast<std::uint64_t>(pe_remote_bytes_[i]));
            tele->add(slot, telemetry::Counter::kShardLocalBytes,
                      static_cast<std::uint64_t>(pe_local_bytes_[i]));
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kExchange, i, e0,
                             tele->now());
    }

    if (tele != nullptr)
        tele->observe(slot, telemetry::Hist::kExchangeNanos,
                      tele->now() - t0);
}

void
ParallelSmvp::runLocalPhaseFused(int s, int tid, bool publish_early) const
{
    const sparse::StepUpdate &su = *su_arg_;
    const int end = shard_begin_[s + 1];
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = teleSlot(s, tid);
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    // Identical to runLocalPhase (same gather, same kernels, same
    // publish protocol) up to the interior sweep...
    for (int i = shard_begin_[s] + tid; i < end;
         i += threads_per_shard_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::int64_t nl = sub.numLocalNodes();
        const std::uint64_t b0 = sampled ? tele->now() : 0;

        std::vector<double> &xl = x_local_[i];
        for (std::int64_t v = 0; v < nl; ++v) {
            const std::int64_t g = sub.globalNodes[v];
            xl[3 * v + 0] = su.u[3 * g + 0];
            xl[3 * v + 1] = su.u[3 * g + 1];
            xl[3 * v + 2] = su.u[3 * g + 2];
        }

        std::vector<double> &yl = y_local_[i];
        if (backend_ == SmvpKernelBackend::kSlicedEll3)
            boundary_ell_[i].multiply(xl.data(), yl.data());
        else
            localK(i).multiplyRowList(
                xl.data(), yl.data(), sub.boundaryRows.data(),
                static_cast<std::int64_t>(sub.boundaryRows.size()));

        const PeSchedule &pe = problem_.schedule.pe(i);
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const std::int64_t flat =
                exchange_base_[i] + static_cast<std::int64_t>(k);
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[flat];
            std::vector<double> &buf = buffers_[flat];
            for (std::size_t v = 0; v < locals.size(); ++v) {
                buf[3 * v + 0] = yl[3 * locals[v] + 0];
                buf[3 * v + 1] = yl[3 * locals[v] + 1];
                buf[3 * v + 2] = yl[3 * locals[v] + 2];
            }
            if (publish_early)
                published_[flat].store(epoch_,
                                       std::memory_order_release);
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kBoundaryPhase, i,
                             b0, tele->now());
    }

    if (backend_ == SmvpKernelBackend::kSlicedEll3) {
        // Sliced-ELL fused interior: each slice's K u values are
        // computed by the dispatched slice kernel, then the update
        // triad consumes the slice's lanes while they are hot.  Lane
        // order is the ascending interiorRows order (fromBcsr3Rows
        // preserves list order and pad lanes trail the last slice), so
        // the per-PE partials accumulate in exactly the row order of
        // the BCSR3 formulation — bitwise deterministic across shard
        // counts, thread counts, and exchange modes within this
        // backend.  No heap allocation: the slabs and scratch are
        // persistent.
        for (int i = shard_begin_[s] + tid; i < end;
             i += threads_per_shard_) {
            const Subdomain &sub = problem_.subdomains[i];
            const std::vector<double> &xl = x_local_[i];
            std::vector<double> &yl = y_local_[i];
            sparse::StepPartials &partials = step_partials_
                [static_cast<std::size_t>(i) * kPartialsStride];
            const sparse::SlicedEll3Matrix &ell =
                interior_ell_[static_cast<std::size_t>(i)];
            const std::int64_t S = ell.sliceHeight();
            for (std::int64_t sl = 0; sl < ell.numSlices(); ++sl) {
                ell.multiplySlices(xl.data(), yl.data(), sl, sl + 1);
                for (std::int64_t l = 0; l < S; ++l) {
                    const std::int64_t v = ell.laneRow(sl * S + l);
                    if (v < 0)
                        break;
                    const std::int64_t g = sub.globalNodes[v];
                    for (int c = 0; c < 3; ++c) {
                        const std::int64_t gi = 3 * g + c;
                        const double ui = xl[3 * v + c];
                        partials.accumulate(
                            su, gi, ui,
                            su.apply(gi, ui, yl[3 * v + c]));
                    }
                }
            }
            recordEllCounters(i, tele, slot);
        }
        if (tele != nullptr) {
            const std::uint64_t t1 = tele->now();
            tele->observe(slot, telemetry::Hist::kLocalPhaseNanos,
                          t1 - t0);
            if (sampled)
                tele->recordSpan(slot, telemetry::Span::kLocalPhase, -1,
                                 t0, t1);
        }
        return;
    }

    // ...then interior rows are updated in small chunks: one kernel
    // call computes a chunk's K u values, and the update triad consumes
    // them immediately, while the chunk is still in cache.  (Chunking
    // only amortizes the kernel-call overhead; each row's arithmetic
    // and the ascending accumulation order are exactly those of the
    // row-at-a-time formulation, so the result is bitwise unchanged.)
    // Interior nodes live on exactly one PE (so their local value is
    // the global one) and that PE owns them, so the write to su.up is
    // race-free and disjoint across PEs.
    constexpr std::int64_t kFuseChunk = 64;
    for (int i = shard_begin_[s] + tid; i < end;
         i += threads_per_shard_) {
        const Subdomain &sub = problem_.subdomains[i];
        const std::vector<double> &xl = x_local_[i];
        std::vector<double> &yl = y_local_[i];
        sparse::StepPartials &partials =
            step_partials_[static_cast<std::size_t>(i) * kPartialsStride];
        const std::int64_t nr =
            static_cast<std::int64_t>(sub.interiorRows.size());
        for (std::int64_t r0 = 0; r0 < nr; r0 += kFuseChunk) {
            const std::int64_t count = std::min(kFuseChunk, nr - r0);
            localK(i).multiplyRowList(
                xl.data(), yl.data(), sub.interiorRows.data() + r0,
                count);
            // Apply the update over maximal runs of rows whose local
            // AND global ids are both consecutive (globalNodes is
            // sorted, so such runs are common on coherently numbered
            // meshes): each run is a contiguous triad sweep over
            // xl/yl and the global arrays.  xl[3v+c] is the gathered
            // copy of su.u[gi]; the DOF order and arithmetic are
            // exactly those of the row-at-a-time formulation.
            for (std::int64_t r = r0; r < r0 + count;) {
                const std::int64_t v0 = sub.interiorRows[r];
                const std::int64_t g0 = sub.globalNodes[v0];
                std::int64_t len = 1;
                while (r + len < r0 + count &&
                       sub.interiorRows[r + len] == v0 + len &&
                       sub.globalNodes[v0 + len] == g0 + len)
                    ++len;
                const double *xrun = xl.data() + 3 * v0;
                const double *yrun = yl.data() + 3 * v0;
                const std::int64_t base = 3 * g0;
                for (std::int64_t k = 0; k < 3 * len; ++k) {
                    const double ui = xrun[k];
                    partials.accumulate(
                        su, base + k, ui,
                        su.apply(base + k, ui, yrun[k]));
                }
                r += len;
            }
        }
    }

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->observe(slot, telemetry::Hist::kLocalPhaseNanos, t1 - t0);
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kLocalPhase, -1,
                             t0, t1);
    }
}

void
ParallelSmvp::runExchangePhaseFused(int s, int tid,
                                    bool wait_for_publish) const
{
    const sparse::StepUpdate &su = *su_arg_;
    const int end = shard_begin_[s + 1];
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const bool sampled = tele != nullptr && tele->sampledStep();
    const int slot = teleSlot(s, tid);
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    for (int i = shard_begin_[s] + tid; i < end;
         i += threads_per_shard_) {
        const Subdomain &sub = problem_.subdomains[i];
        std::vector<double> &yl = y_local_[i];
        const PeSchedule &pe = problem_.schedule.pe(i);
        const std::uint64_t e0 = sampled ? tele->now() : 0;

        // Ascending peer order — the determinism guarantee (identical
        // to runExchangePhase).
        for (std::size_t k = 0; k < pe.exchanges.size(); ++k) {
            const Exchange &ex = pe.exchanges[k];
            const std::int64_t peer_flat =
                exchange_base_[ex.peer] + mirror_index_[i][k];
            if (wait_for_publish)
                waitForPublish(peer_flat, slot, i, tele, sampled);
            const std::vector<double> &buf = buffers_[peer_flat];
            const std::vector<std::int64_t> &locals =
                exchange_local_nodes_[exchange_base_[i] +
                                      static_cast<std::int64_t>(k)];
            for (std::size_t v = 0; v < locals.size(); ++v) {
                yl[3 * locals[v] + 0] += buf[3 * v + 0];
                yl[3 * locals[v] + 1] += buf[3 * v + 1];
                yl[3 * locals[v] + 2] += buf[3 * v + 2];
            }
        }

        // Where the unfused path copies owned rows into the global y,
        // the fused path consumes them immediately: each owned boundary
        // row's peer sum is final here, so apply the update while the
        // row is hot instead of materializing ku.  (Interior rows were
        // updated in the local phase.)
        sparse::StepPartials &partials =
            step_partials_[static_cast<std::size_t>(i) * kPartialsStride];
        const std::vector<double> &xl = x_local_[i];
        for (std::int64_t r = 0;
             r < static_cast<std::int64_t>(sub.boundaryRows.size());
             ++r) {
            const std::int64_t v = sub.boundaryRows[r];
            if (!sub.ownsNode[v])
                continue;
            const std::int64_t g = sub.globalNodes[v];
            for (int c = 0; c < 3; ++c) {
                const std::int64_t gi = 3 * g + c;
                const double ui = xl[3 * v + c];
                partials.accumulate(
                    su, gi, ui, su.apply(gi, ui, yl[3 * v + c]));
            }
        }
        if (tele != nullptr) {
            tele->add(slot, telemetry::Counter::kShardRemoteBytes,
                      static_cast<std::uint64_t>(pe_remote_bytes_[i]));
            tele->add(slot, telemetry::Counter::kShardLocalBytes,
                      static_cast<std::uint64_t>(pe_local_bytes_[i]));
        }
        if (sampled)
            tele->recordSpan(slot, telemetry::Span::kExchange, i, e0,
                             tele->now());
    }

    if (tele != nullptr)
        tele->observe(slot, telemetry::Hist::kExchangeNanos,
                      tele->now() - t0);
}

void
ParallelSmvp::multiplyInto(const double *x, double *y) const
{
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    x_arg_ = x;
    y_arg_ = y;
    ++epoch_;

    if (num_shards_ == 1) {
        WorkerPool &pool = *shard_pools_[0];
        if (mode_ == ExchangeMode::kOverlapped) {
            // One fork/join: each worker publishes its boundary
            // buffers, overlaps its interior rows with the peers'
            // publishes, then spin-waits (with yield) only for buffers
            // not yet ready.
            pool.run([this](int tid) {
                runLocalPhase(x_arg_, 0, tid, /*publish_early=*/true);
                runExchangePhase(y_arg_, 0, tid,
                                 /*wait_for_publish=*/true);
            });
        } else {
            // Two fork/joins: the pool's join is the BSP barrier.
            pool.run([this](int tid) {
                runLocalPhase(x_arg_, 0, tid, false);
            });
            pool.run([this](int tid) {
                runExchangePhase(y_arg_, 0, tid, false);
            });
        }
    } else if (mode_ == ExchangeMode::kOverlapped) {
        // One outer fork/join: every shard's inner pool runs both
        // phases; publishes cross shard boundaries through the same
        // release-store/acquire-spin protocol as the flat engine (all
        // shards are concurrently live inside the single dispatch).
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int tid) {
                    runLocalPhase(x_arg_, s, tid,
                                  /*publish_early=*/true);
                    runExchangePhase(y_arg_, s, tid,
                                     /*wait_for_publish=*/true);
                });
        });
    } else {
        // Two outer fork/joins: the OUTER join is the global BSP
        // barrier — a shard-local join would let a shard read peer
        // buffers other shards have not written yet.
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int tid) {
                    runLocalPhase(x_arg_, s, tid, false);
                });
        });
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int tid) {
                    runExchangePhase(y_arg_, s, tid, false);
                });
        });
    }
    x_arg_ = nullptr;
    y_arg_ = nullptr;

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->add(0, telemetry::Counter::kSmvpCalls, 1);
        tele->observe(0, telemetry::Hist::kSmvpNanos, t1 - t0);
        tele->recordSpan(0, telemetry::Span::kSmvp, -1, t0, t1);
    }
}

void
ParallelSmvp::multiplyInto(const std::vector<double> &x,
                           std::vector<double> &y) const
{
    const std::int64_t dof = 3 * problem_.numGlobalNodes;
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof,
                 "x has " << x.size() << " entries, expected " << dof);
    QUAKE_EXPECT(static_cast<std::int64_t>(y.size()) == dof,
                 "y has " << y.size() << " entries, expected " << dof);
    multiplyInto(x.data(), y.data());
}

std::vector<double>
ParallelSmvp::multiply(const std::vector<double> &x) const
{
    const std::int64_t dof = 3 * problem_.numGlobalNodes;
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == dof,
                 "x has " << x.size() << " entries, expected " << dof);
    std::vector<double> y(static_cast<std::size_t>(dof));
    multiplyInto(x.data(), y.data());
    return y;
}

sparse::StepPartials
ParallelSmvp::stepFused(const sparse::StepUpdate &su) const
{
    QUAKE_EXPECT(su.u != nullptr && su.up != nullptr &&
                     su.f != nullptr && su.invMass != nullptr,
                 "fused step update has unbound field pointers");

    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    const std::uint64_t t0 = tele != nullptr ? tele->now() : 0;

    const int p = problem_.numPes();
    for (int i = 0; i < p; ++i)
        step_partials_[static_cast<std::size_t>(i) * kPartialsStride] =
            sparse::StepPartials{};

    su_arg_ = &su;
    ++epoch_;
    if (num_shards_ == 1) {
        WorkerPool &pool = *shard_pools_[0];
        if (mode_ == ExchangeMode::kOverlapped) {
            pool.run([this](int tid) {
                runLocalPhaseFused(0, tid, /*publish_early=*/true);
                runExchangePhaseFused(0, tid,
                                      /*wait_for_publish=*/true);
            });
        } else {
            pool.run([this](int tid) {
                runLocalPhaseFused(0, tid, false);
            });
            pool.run([this](int tid) {
                runExchangePhaseFused(0, tid, false);
            });
        }
    } else if (mode_ == ExchangeMode::kOverlapped) {
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int tid) {
                    runLocalPhaseFused(s, tid, /*publish_early=*/true);
                    runExchangePhaseFused(s, tid,
                                          /*wait_for_publish=*/true);
                });
        });
    } else {
        // Outer joins are the global barriers (see multiplyInto).
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int tid) {
                    runLocalPhaseFused(s, tid, false);
                });
        });
        outer_pool_->run([this](int s) {
            shard_pools_[static_cast<std::size_t>(s)]->run(
                [this, s](int tid) {
                    runExchangePhaseFused(s, tid, false);
                });
        });
    }
    su_arg_ = nullptr;

    // Ascending-PE combine: the per-PE accumulation order is fixed by
    // the partition, so the reduced values are independent of shard
    // count, thread count, and exchange mode.
    sparse::StepPartials out;
    for (int i = 0; i < p; ++i)
        out.combine(
            step_partials_[static_cast<std::size_t>(i) * kPartialsStride]);

    if (tele != nullptr) {
        const std::uint64_t t1 = tele->now();
        tele->add(0, telemetry::Counter::kSmvpCalls, 1);
        tele->observe(0, telemetry::Hist::kSmvpNanos, t1 - t0);
        tele->recordSpan(0, telemetry::Span::kSmvp, -1, t0, t1);
    }
    return out;
}

} // namespace quake::parallel
