#include "sparse/elasticity.h"

#include "common/error.h"

namespace quake::sparse
{

using mesh::Vec3;

Material
Material::fromShearWave(double vs, double rho, double nu)
{
    QUAKE_EXPECT(vs > 0 && rho > 0, "vs and rho must be positive");
    QUAKE_EXPECT(nu > -1.0 && nu < 0.5, "Poisson ratio must be in (-1, .5)");
    Material m;
    m.mu = rho * vs * vs;
    m.lambda = 2.0 * m.mu * nu / (1.0 - 2.0 * nu);
    m.rho = rho;
    return m;
}

std::array<Vec3, 4>
shapeGradients(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    // Columns of J are the edge vectors from vertex a.
    const Vec3 e1 = b - a;
    const Vec3 e2 = c - a;
    const Vec3 e3 = d - a;
    const double det = e1.dot(e2.cross(e3)); // 6 * signed volume
    QUAKE_EXPECT(det != 0.0, "degenerate tetrahedron");

    // Rows of inverse(J) are the gradients of the barycentric coordinates
    // attached to vertices b, c, d; use the adjugate / cross-product form.
    const Vec3 g1 = e2.cross(e3) / det;
    const Vec3 g2 = e3.cross(e1) / det;
    const Vec3 g3 = e1.cross(e2) / det;
    const Vec3 g0 = Vec3{} - (g1 + g2 + g3);
    return {g0, g1, g2, g3};
}

ElementStiffness
elementStiffness(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d,
                 const Material &mat)
{
    const double vol = mesh::tetVolume(a, b, c, d);
    const auto g = shapeGradients(a, b, c, d);

    ElementStiffness ke;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const double dot = g[i].dot(g[j]);
            const double gi[3] = {g[i].x, g[i].y, g[i].z};
            const double gj[3] = {g[j].x, g[j].y, g[j].z};
            Block3 &blk = ke.blocks[i][j];
            for (int r = 0; r < 3; ++r) {
                for (int s = 0; s < 3; ++s) {
                    double v = mat.lambda * gi[r] * gj[s] +
                               mat.mu * gi[s] * gj[r];
                    if (r == s)
                        v += mat.mu * dot;
                    blk[3 * r + s] = vol * v;
                }
            }
        }
    }
    return ke;
}

double
elementLumpedMass(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d,
                  double rho)
{
    return rho * mesh::tetVolume(a, b, c, d) / 4.0;
}

} // namespace quake::sparse
