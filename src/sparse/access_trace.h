/**
 * @file
 * Per-format SMVP address-stream emitters (DESIGN.md §15).
 *
 * The paper's architectural argument (§3.1/§4) is that the local SMVP
 * rate is set by the memory system, not the FPU — so the address
 * stream a storage format emits IS its performance model.  Each
 * emitter here walks the exact reference sequence of one format's
 * kernel — the same loads and stores, in the same order, as the code
 * in bcsr3.cc / bcsr3_sym.cc / sliced_ell3.cc — into a format-neutral
 * `AccessTrace` that arch/ replays through modeled cache hierarchies
 * (flat two-level in smvp_trace.h, multi-level MESI in
 * mesi_hierarchy.h).
 *
 * Three streams, three stories:
 *  - BCSR3: the irregular x gather against streamed values/indices —
 *    the paper's baseline kernel.
 *  - SymBcsr3: the transposed-scatter WRITE stream (y[col] += B^T
 *    x[row] for col > row) — read-modify-writes landing far from the
 *    current row, the interesting case for multi-PE coherence.
 *  - SlicedEll3: lane-contiguous element-plane streaming — the
 *    regularized layout that trades padding bytes for sequential
 *    access.
 *
 * Addresses are synthetic: a `TraceLayout` places each array at an
 * explicit base, so callers can replicate matrix arrays per PE or
 * share x/y between PEs (arch/cosim.h does both).
 */

#ifndef QUAKE98_SPARSE_ACCESS_TRACE_H_
#define QUAKE98_SPARSE_ACCESS_TRACE_H_

#include <cstdint>
#include <vector>

#include "sparse/bcsr3.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"

namespace quake::sparse
{

/** One memory reference of a kernel's address stream. */
struct MemRef
{
    std::uint64_t address = 0;
    std::uint16_t bytes = 8;
    bool write = false;
};

/** The address stream of one kernel invocation (one PE's program order). */
struct AccessTrace
{
    std::vector<MemRef> refs;

    /** Useful flops of the traced work (padding arithmetic excluded). */
    std::int64_t flops = 0;

    void
    read(std::uint64_t address, std::uint16_t bytes)
    {
        refs.push_back(MemRef{address, bytes, false});
    }

    void
    write(std::uint64_t address, std::uint16_t bytes)
    {
        refs.push_back(MemRef{address, bytes, true});
    }
};

/**
 * Base addresses of the arrays a traced kernel touches.  Matrix-side
 * arrays (xadj/cols/values, plus sliceBase/laneRows for sliced-ELL)
 * are placed by the layout helpers; x and y are caller-chosen so
 * several PEs can share one vector address space.  `end` is one past
 * the matrix region, for packing per-PE replicas back to back.
 */
struct TraceLayout
{
    std::uint64_t xadj = 0;
    std::uint64_t cols = 0;
    std::uint64_t values = 0;
    std::uint64_t sliceBase = 0; ///< sliced-ELL only
    std::uint64_t laneRows = 0;  ///< sliced-ELL only
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint64_t end = 0; ///< end of the matrix-array region
};

/** Lay out a BCSR3 matrix's arrays at `matrix_base` (64B-aligned each). */
TraceLayout layoutBcsr3(const Bcsr3Matrix &m, std::uint64_t matrix_base,
                        std::uint64_t x_base, std::uint64_t y_base);

/** Lay out a symmetric matrix's (half) arrays. */
TraceLayout layoutSymBcsr3(const SymBcsr3Matrix &m,
                           std::uint64_t matrix_base, std::uint64_t x_base,
                           std::uint64_t y_base);

/** Lay out a sliced-ELL matrix's slice/lane/col/value arrays. */
TraceLayout layoutSlicedEll3(const SlicedEll3Matrix &m,
                             std::uint64_t matrix_base,
                             std::uint64_t x_base, std::uint64_t y_base);

/**
 * Append the reference stream of Bcsr3Matrix::multiplyRows(x, y,
 * row_begin, row_end): row bounds, streamed cols/values, gathered x,
 * overwritten y.  Flop accounting: 18 per stored block.
 */
void traceBcsr3Rows(const Bcsr3Matrix &m, const TraceLayout &layout,
                    std::int64_t row_begin, std::int64_t row_end,
                    AccessTrace &out);

/**
 * Append the reference stream of SymBcsr3Matrix::multiplyRowsScatter:
 * each off-diagonal block additionally read-modify-writes y[col] —
 * the transposed-scatter stream whose targets lie in OTHER rows'
 * (and, partitioned, other PEs') output.  Flops: 18 per stored block
 * plus 18 per off-diagonal block (each does double duty).
 */
void traceSymBcsr3Rows(const SymBcsr3Matrix &m, const TraceLayout &layout,
                       std::int64_t row_begin, std::int64_t row_end,
                       AccessTrace &out);

/**
 * Append the reference stream of SlicedEll3Matrix::multiply(): per
 * slice, the slot bases and lane map, then per slice column the S
 * contiguous cols, the per-lane x gathers, and the nine S-wide value
 * planes — padding slots included, exactly as the vertical kernel
 * streams them.  Flops: 18 per STRUCTURAL block only (the padding
 * arithmetic is modeled as bandwidth, not useful work).
 */
void traceSlicedEll3(const SlicedEll3Matrix &m, const TraceLayout &layout,
                     AccessTrace &out);

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_ACCESS_TRACE_H_
