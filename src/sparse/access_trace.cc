#include "sparse/access_trace.h"

#include "common/error.h"

namespace quake::sparse
{

namespace
{

constexpr std::uint64_t kAlign = 64;

std::uint64_t
alignUp(std::uint64_t v)
{
    return (v + kAlign - 1) & ~(kAlign - 1);
}

} // namespace

TraceLayout
layoutBcsr3(const Bcsr3Matrix &m, std::uint64_t matrix_base,
            std::uint64_t x_base, std::uint64_t y_base)
{
    TraceLayout l;
    l.xadj = alignUp(matrix_base);
    l.cols = alignUp(l.xadj + 8 * static_cast<std::uint64_t>(
                                    m.xadj().size()));
    l.values = alignUp(l.cols + 4 * static_cast<std::uint64_t>(
                                       m.blockCols().size()));
    l.end = alignUp(l.values +
                    72 * static_cast<std::uint64_t>(m.numBlocks()));
    l.x = x_base;
    l.y = y_base;
    return l;
}

TraceLayout
layoutSymBcsr3(const SymBcsr3Matrix &m, std::uint64_t matrix_base,
               std::uint64_t x_base, std::uint64_t y_base)
{
    TraceLayout l;
    l.xadj = alignUp(matrix_base);
    l.cols = alignUp(l.xadj + 8 * static_cast<std::uint64_t>(
                                    m.xadj().size()));
    l.values = alignUp(l.cols + 4 * static_cast<std::uint64_t>(
                                       m.blockCols().size()));
    l.end = alignUp(l.values +
                    72 * static_cast<std::uint64_t>(m.storedBlocks()));
    l.x = x_base;
    l.y = y_base;
    return l;
}

TraceLayout
layoutSlicedEll3(const SlicedEll3Matrix &m, std::uint64_t matrix_base,
                 std::uint64_t x_base, std::uint64_t y_base)
{
    TraceLayout l;
    l.sliceBase = alignUp(matrix_base);
    l.laneRows =
        alignUp(l.sliceBase +
                8 * static_cast<std::uint64_t>(m.numSlices() + 1));
    l.cols = alignUp(l.laneRows +
                     8 * static_cast<std::uint64_t>(m.numSlices() *
                                                    m.sliceHeight()));
    l.values = alignUp(l.cols + 4 * static_cast<std::uint64_t>(
                                       m.storedBlocks()));
    l.end = alignUp(l.values +
                    72 * static_cast<std::uint64_t>(m.storedBlocks()));
    l.x = x_base;
    l.y = y_base;
    return l;
}

void
traceBcsr3Rows(const Bcsr3Matrix &m, const TraceLayout &layout,
               std::int64_t row_begin, std::int64_t row_end,
               AccessTrace &out)
{
    QUAKE_EXPECT(row_begin >= 0 && row_end <= m.numBlockRows() &&
                     row_begin <= row_end,
                 "trace row range out of bounds");
    const auto &xadj = m.xadj();
    const auto &cols = m.blockCols();

    for (std::int64_t br = row_begin; br < row_end; ++br) {
        // Row bounds: two 8-byte loads (the second is reused next row
        // in real code; modeling both is the conservative choice).
        out.read(layout.xadj + 8 * static_cast<std::uint64_t>(br), 8);
        out.read(layout.xadj + 8 * static_cast<std::uint64_t>(br + 1), 8);

        for (std::int64_t k = xadj[br]; k < xadj[br + 1]; ++k) {
            out.read(layout.cols + 4 * static_cast<std::uint64_t>(k), 4);
            const std::uint64_t blk =
                layout.values + 72 * static_cast<std::uint64_t>(k);
            for (int v = 0; v < 9; ++v)
                out.read(blk + 8 * static_cast<std::uint64_t>(v), 8);
            const std::uint64_t xaddr =
                layout.x + 24 * static_cast<std::uint64_t>(cols[k]);
            for (int v = 0; v < 3; ++v)
                out.read(xaddr + 8 * static_cast<std::uint64_t>(v), 8);
            out.flops += 18;
        }

        const std::uint64_t yaddr =
            layout.y + 24 * static_cast<std::uint64_t>(br);
        for (int v = 0; v < 3; ++v)
            out.write(yaddr + 8 * static_cast<std::uint64_t>(v), 8);
    }
}

void
traceSymBcsr3Rows(const SymBcsr3Matrix &m, const TraceLayout &layout,
                  std::int64_t row_begin, std::int64_t row_end,
                  AccessTrace &out)
{
    QUAKE_EXPECT(row_begin >= 0 && row_end <= m.numBlockRows() &&
                     row_begin <= row_end,
                 "trace row range out of bounds");
    const auto &xadj = m.xadj();
    const auto &cols = m.blockCols();

    for (std::int64_t br = row_begin; br < row_end; ++br) {
        out.read(layout.xadj + 8 * static_cast<std::uint64_t>(br), 8);
        out.read(layout.xadj + 8 * static_cast<std::uint64_t>(br + 1), 8);

        // x[row] is loaded once into registers for the whole row.
        const std::uint64_t xrow =
            layout.x + 24 * static_cast<std::uint64_t>(br);
        for (int v = 0; v < 3; ++v)
            out.read(xrow + 8 * static_cast<std::uint64_t>(v), 8);

        for (std::int64_t k = xadj[br]; k < xadj[br + 1]; ++k) {
            const std::int32_t bc = cols[k];
            out.read(layout.cols + 4 * static_cast<std::uint64_t>(k), 4);
            const std::uint64_t blk =
                layout.values + 72 * static_cast<std::uint64_t>(k);
            for (int v = 0; v < 9; ++v)
                out.read(blk + 8 * static_cast<std::uint64_t>(v), 8);
            const std::uint64_t xcol =
                layout.x + 24 * static_cast<std::uint64_t>(bc);
            for (int v = 0; v < 3; ++v)
                out.read(xcol + 8 * static_cast<std::uint64_t>(v), 8);
            out.flops += 18;

            if (bc != static_cast<std::int32_t>(br)) {
                // Transposed scatter: y[col] += B^T x[row] — a
                // read-modify-write landing in a LATER row's output.
                const std::uint64_t ycol =
                    layout.y + 24 * static_cast<std::uint64_t>(bc);
                for (int v = 0; v < 3; ++v) {
                    out.read(ycol + 8 * static_cast<std::uint64_t>(v), 8);
                    out.write(ycol + 8 * static_cast<std::uint64_t>(v),
                              8);
                }
                out.flops += 18;
            }
        }

        // y[row] += the row accumulators (y already carries scatters
        // from rows < br, so this is a read-modify-write too).
        const std::uint64_t yrow =
            layout.y + 24 * static_cast<std::uint64_t>(br);
        for (int v = 0; v < 3; ++v) {
            out.read(yrow + 8 * static_cast<std::uint64_t>(v), 8);
            out.write(yrow + 8 * static_cast<std::uint64_t>(v), 8);
        }
    }
}

void
traceSlicedEll3(const SlicedEll3Matrix &m, const TraceLayout &layout,
                AccessTrace &out)
{
    const std::int64_t S = m.sliceHeight();
    const auto &bases = m.sliceBases();

    for (std::int64_t s = 0; s < m.numSlices(); ++s) {
        out.read(layout.sliceBase + 8 * static_cast<std::uint64_t>(s), 8);
        out.read(layout.sliceBase + 8 * static_cast<std::uint64_t>(s + 1),
                 8);
        for (std::int64_t lane = 0; lane < S; ++lane)
            out.read(layout.laneRows +
                         8 * static_cast<std::uint64_t>(s * S + lane),
                     8);

        const std::int64_t base = bases[s];
        const std::int64_t width = m.sliceWidth(s);
        for (std::int64_t j = 0; j < width; ++j) {
            const std::int64_t group = base + j * S;
            // S contiguous column indices, then the per-lane x
            // gathers, then the nine S-wide value planes — the order
            // the vertical kernel streams.  Padding lanes stream too:
            // their bandwidth is the price of the regular layout.
            for (std::int64_t lane = 0; lane < S; ++lane)
                out.read(layout.cols +
                             4 * static_cast<std::uint64_t>(group + lane),
                         4);
            for (std::int64_t lane = 0; lane < S; ++lane) {
                const std::uint64_t xaddr =
                    layout.x +
                    24 * static_cast<std::uint64_t>(m.colAt(s, j, lane));
                for (int v = 0; v < 3; ++v)
                    out.read(xaddr + 8 * static_cast<std::uint64_t>(v),
                             8);
            }
            const std::uint64_t plane0 =
                layout.values + 72 * static_cast<std::uint64_t>(group);
            for (int e = 0; e < 9; ++e)
                for (std::int64_t lane = 0; lane < S; ++lane)
                    out.read(plane0 +
                                 8 * static_cast<std::uint64_t>(
                                         e * S + lane),
                             8);
        }

        for (std::int64_t lane = 0; lane < S; ++lane) {
            const std::int64_t r = m.laneRow(s * S + lane);
            if (r < 0)
                break; // pad lanes are trailing
            const std::uint64_t yaddr =
                layout.y + 24 * static_cast<std::uint64_t>(r);
            for (int v = 0; v < 3; ++v)
                out.write(yaddr + 8 * static_cast<std::uint64_t>(v), 8);
        }
    }
    out.flops += 18 * m.structuralBlocks();
}

} // namespace quake::sparse
