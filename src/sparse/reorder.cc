#include "sparse/reorder.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace quake::sparse
{

Permutation
Permutation::identity(std::int64_t n)
{
    Permutation p;
    p.perm.resize(static_cast<std::size_t>(n));
    p.inverse.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        p.perm[i] = static_cast<mesh::NodeId>(i);
        p.inverse[i] = static_cast<mesh::NodeId>(i);
    }
    return p;
}

void
Permutation::validate() const
{
    QUAKE_REQUIRE(perm.size() == inverse.size(),
                  "perm/inverse size mismatch");
    const std::int64_t n = static_cast<std::int64_t>(perm.size());
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (std::int64_t i = 0; i < n; ++i) {
        const mesh::NodeId target = perm[i];
        QUAKE_REQUIRE(target >= 0 && target < n,
                      "permutation value out of range");
        QUAKE_REQUIRE(!seen[target], "permutation value repeated");
        seen[target] = 1;
        QUAKE_REQUIRE(inverse[target] == static_cast<mesh::NodeId>(i),
                      "inverse does not invert perm");
    }
}

namespace
{

/**
 * Pseudo-peripheral start vertex for a component: begin at the
 * component's lowest-degree vertex, run one BFS, and restart from the
 * lowest-degree vertex of the last level (the classic GPS refinement,
 * one round).
 */
mesh::NodeId
pseudoPeripheral(const mesh::NodeAdjacency &adj, mesh::NodeId seed,
                 const std::vector<char> &visited)
{
    mesh::NodeId start = seed;
    for (int round = 0; round < 2; ++round) {
        // BFS recording the last level.
        std::vector<mesh::NodeId> level = {start};
        std::vector<char> seen(visited.begin(), visited.end());
        seen[start] = 1;
        std::vector<mesh::NodeId> last_level = level;
        while (!level.empty()) {
            last_level = level;
            std::vector<mesh::NodeId> next;
            for (mesh::NodeId v : level) {
                for (std::int64_t k = adj.xadj[v]; k < adj.xadj[v + 1];
                     ++k) {
                    const mesh::NodeId w = adj.adjncy[k];
                    if (!seen[w]) {
                        seen[w] = 1;
                        next.push_back(w);
                    }
                }
            }
            level = std::move(next);
        }
        // Lowest-degree vertex of the last level becomes the start.
        mesh::NodeId best = last_level.front();
        for (mesh::NodeId v : last_level)
            if (adj.degree(v) < adj.degree(best) ||
                (adj.degree(v) == adj.degree(best) && v < best))
                best = v;
        if (best == start)
            break;
        start = best;
    }
    return start;
}

} // namespace

Permutation
reverseCuthillMcKee(const mesh::NodeAdjacency &adjacency)
{
    const std::int64_t n =
        static_cast<std::int64_t>(adjacency.xadj.size()) - 1;
    std::vector<mesh::NodeId> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<char> visited(static_cast<std::size_t>(n), 0);

    for (std::int64_t seed = 0; seed < n; ++seed) {
        if (visited[seed])
            continue;
        const mesh::NodeId start = pseudoPeripheral(
            adjacency, static_cast<mesh::NodeId>(seed), visited);

        // Cuthill-McKee BFS: neighbours in increasing-degree order.
        std::queue<mesh::NodeId> queue;
        queue.push(start);
        visited[start] = 1;
        while (!queue.empty()) {
            const mesh::NodeId v = queue.front();
            queue.pop();
            order.push_back(v);

            std::vector<mesh::NodeId> neighbours;
            for (std::int64_t k = adjacency.xadj[v];
                 k < adjacency.xadj[v + 1]; ++k) {
                const mesh::NodeId w = adjacency.adjncy[k];
                if (!visited[w]) {
                    visited[w] = 1;
                    neighbours.push_back(w);
                }
            }
            std::sort(neighbours.begin(), neighbours.end(),
                      [&](mesh::NodeId a, mesh::NodeId b) {
                          const int da = adjacency.degree(a);
                          const int db = adjacency.degree(b);
                          return da < db || (da == db && a < b);
                      });
            for (mesh::NodeId w : neighbours)
                queue.push(w);
        }
    }
    QUAKE_REQUIRE(static_cast<std::int64_t>(order.size()) == n,
                  "RCM did not visit every node");

    // Reverse, then build the permutation.
    std::reverse(order.begin(), order.end());
    Permutation p;
    p.perm.resize(static_cast<std::size_t>(n));
    p.inverse.resize(static_cast<std::size_t>(n));
    for (std::int64_t new_id = 0; new_id < n; ++new_id) {
        p.inverse[new_id] = order[new_id];
        p.perm[order[new_id]] = static_cast<mesh::NodeId>(new_id);
    }
    return p;
}

mesh::TetMesh
permuteMesh(const mesh::TetMesh &mesh, const Permutation &permutation)
{
    permutation.validate();
    QUAKE_EXPECT(static_cast<std::int64_t>(permutation.perm.size()) ==
                     mesh.numNodes(),
                 "permutation size does not match mesh");

    mesh::TetMesh out;
    out.reserve(mesh.numNodes(), mesh.numElements());
    for (mesh::NodeId new_id = 0; new_id < mesh.numNodes(); ++new_id)
        out.addNode(mesh.node(permutation.inverse[new_id]));
    for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
        const mesh::Tet &e = mesh.tet(t);
        out.addTet(permutation.perm[e.v[0]], permutation.perm[e.v[1]],
                   permutation.perm[e.v[2]], permutation.perm[e.v[3]]);
    }
    return out;
}

std::int64_t
graphBandwidth(const mesh::NodeAdjacency &adjacency)
{
    const std::int64_t n =
        static_cast<std::int64_t>(adjacency.xadj.size()) - 1;
    std::int64_t bandwidth = 0;
    for (std::int64_t v = 0; v < n; ++v) {
        for (std::int64_t k = adjacency.xadj[v];
             k < adjacency.xadj[v + 1]; ++k) {
            bandwidth = std::max(
                bandwidth,
                std::abs(static_cast<std::int64_t>(adjacency.adjncy[k]) -
                         v));
        }
    }
    return bandwidth;
}

} // namespace quake::sparse
