/**
 * @file
 * Linear-tetrahedron element matrices for isotropic linear elasticity —
 * the physics behind the Quake stiffness matrix K.  Each element
 * contributes a symmetric 12x12 stiffness (a 3x3 block per vertex pair)
 * and a lumped mass; materials come from the soil model via
 * mu = rho * Vs^2 and a Poisson ratio.
 */

#ifndef QUAKE98_SPARSE_ELASTICITY_H_
#define QUAKE98_SPARSE_ELASTICITY_H_

#include <array>

#include "mesh/geometry.h"
#include "sparse/bcsr3.h"

namespace quake::sparse
{

/** Isotropic material: Lamé parameters plus density. */
struct Material
{
    double lambda = 0.0; ///< Lamé first parameter
    double mu = 0.0;     ///< shear modulus
    double rho = 0.0;    ///< mass density

    /**
     * Build from seismic observables: shear-wave speed vs, density rho,
     * and Poisson ratio nu (default 0.25, typical for rock, for which
     * lambda == mu).
     */
    static Material fromShearWave(double vs, double rho, double nu = 0.25);
};

/** The 12x12 element stiffness as a 4x4 grid of 3x3 blocks. */
struct ElementStiffness
{
    /** block(i, j) couples vertex i's DOFs to vertex j's. */
    std::array<std::array<Block3, 4>, 4> blocks{};
};

/**
 * Shape-function gradients of the linear tetrahedron (a, b, c, d): four
 * constant vectors g_i with sum zero.  Precondition: positive volume.
 */
std::array<mesh::Vec3, 4> shapeGradients(const mesh::Vec3 &a,
                                         const mesh::Vec3 &b,
                                         const mesh::Vec3 &c,
                                         const mesh::Vec3 &d);

/**
 * Element stiffness of the linear tetrahedron under isotropic elasticity:
 *   K_ij = V * (lambda * g_i g_j^T + mu * g_j g_i^T + mu (g_i . g_j) I).
 * The result is symmetric (K_ij = K_ji^T) and positive semidefinite with
 * exactly the six rigid-body modes in its null space.
 */
ElementStiffness elementStiffness(const mesh::Vec3 &a, const mesh::Vec3 &b,
                                  const mesh::Vec3 &c, const mesh::Vec3 &d,
                                  const Material &mat);

/**
 * Lumped element mass: rho * V / 4 assigned to each vertex (per scalar
 * DOF).  Row-sum lumping of the consistent mass matrix for linear tets.
 */
double elementLumpedMass(const mesh::Vec3 &a, const mesh::Vec3 &b,
                         const mesh::Vec3 &c, const mesh::Vec3 &d,
                         double rho);

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_ELASTICITY_H_
