#include "sparse/sliced_ell3.h"

#include <algorithm>

#include "common/error.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3_kernels.h"

namespace quake::sparse
{

namespace detail
{

bool
avx2KernelsAvailable()
{
#if defined(QUAKE98_HAVE_AVX2) && defined(__GNUC__)
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok;
#else
    return false;
#endif
}

void
ellMultiplySlicesScalar(const EllSliceView &v, const double *x, double *y,
                        std::int64_t s0, std::int64_t s1)
{
    const std::int64_t S = v.slice_height;
    double acc0[SlicedEll3Matrix::kMaxSliceHeight];
    double acc1[SlicedEll3Matrix::kMaxSliceHeight];
    double acc2[SlicedEll3Matrix::kMaxSliceHeight];

    for (std::int64_t s = s0; s < s1; ++s) {
        const std::int64_t base = v.slice_base[s];
        const std::int64_t width = (v.slice_base[s + 1] - base) / S;
        for (std::int64_t l = 0; l < S; ++l)
            acc0[l] = acc1[l] = acc2[l] = 0.0;

        // Dense strip: every lane runs the full slice width; padding
        // slots hold zero blocks and column 0, contributing exact +0.0
        // in the same slot order for every caller — the padded-lane
        // determinism argument of DESIGN.md §12.
        for (std::int64_t j = 0; j < width; ++j) {
            const std::int32_t *__restrict__ c = v.cols + base + j * S;
            const double *__restrict__ p = v.values + 9 * (base + j * S);
#pragma omp simd
            for (std::int64_t l = 0; l < S; ++l) {
                const double *__restrict__ xv = &x[3 * c[l]];
                acc0[l] += p[0 * S + l] * xv[0] + p[1 * S + l] * xv[1] +
                           p[2 * S + l] * xv[2];
                acc1[l] += p[3 * S + l] * xv[0] + p[4 * S + l] * xv[1] +
                           p[5 * S + l] * xv[2];
                acc2[l] += p[6 * S + l] * xv[0] + p[7 * S + l] * xv[1] +
                           p[8 * S + l] * xv[2];
            }
        }

        const std::int64_t *rows = v.lane_rows + s * S;
        for (std::int64_t l = 0; l < S; ++l) {
            const std::int64_t r = rows[l];
            if (r < 0)
                continue;
            y[3 * r + 0] = acc0[l];
            y[3 * r + 1] = acc1[l];
            y[3 * r + 2] = acc2[l];
        }
    }
}

} // namespace detail

namespace
{

using SliceKernel = void (*)(const detail::EllSliceView &, const double *,
                             double *, std::int64_t, std::int64_t);

/** Resolve the slice kernel once; fixed for the process lifetime. */
SliceKernel
sliceKernel()
{
#if defined(QUAKE98_HAVE_AVX2)
    static const SliceKernel kernel = detail::avx2KernelsAvailable()
                                          ? detail::ellMultiplySlicesAvx2
                                          : detail::ellMultiplySlicesScalar;
#else
    static const SliceKernel kernel = detail::ellMultiplySlicesScalar;
#endif
    return kernel;
}

/** Doubles per 64-byte cache line, for padding the value slab. */
constexpr std::int64_t kDoublesPerCacheLine = 8;

std::int64_t
padToCacheLine(std::int64_t n)
{
    return (n + kDoublesPerCacheLine - 1) / kDoublesPerCacheLine *
           kDoublesPerCacheLine;
}

} // namespace

const char *
SlicedEll3Matrix::activeKernelName()
{
    return detail::avx2KernelsAvailable() ? "avx2" : "scalar";
}

SlicedEll3Matrix
SlicedEll3Matrix::fromBcsr3Rows(const Bcsr3Matrix &a,
                                const std::int64_t *rows,
                                std::int64_t num_rows,
                                std::int64_t slice_height)
{
    QUAKE_EXPECT(slice_height >= 1 && slice_height <= kMaxSliceHeight,
                 "slice height must be in [1, " << kMaxSliceHeight
                                                << "], got "
                                                << slice_height);
    QUAKE_EXPECT(num_rows >= 0, "negative row count");

    SlicedEll3Matrix m;
    m.x_block_rows_ = a.numBlockRows();
    m.covered_rows_ = num_rows;
    m.slice_height_ = slice_height;
    m.num_slices_ = (num_rows + slice_height - 1) / slice_height;

    const std::int64_t S = slice_height;
    m.lane_rows_.assign(static_cast<std::size_t>(m.num_slices_ * S), -1);
    m.identity_rows_ = num_rows == a.numBlockRows();
    for (std::int64_t i = 0; i < num_rows; ++i) {
        QUAKE_EXPECT(rows[i] >= 0 && rows[i] < a.numBlockRows(),
                     "row " << rows[i] << " out of range");
        m.lane_rows_[static_cast<std::size_t>(i)] = rows[i];
        if (rows[i] != i)
            m.identity_rows_ = false;
    }

    // Per-slice width = the longest row in the slice; slot bases follow.
    const std::int64_t *xadj = a.xadj().data();
    m.slice_base_.assign(static_cast<std::size_t>(m.num_slices_) + 1, 0);
    for (std::int64_t s = 0; s < m.num_slices_; ++s) {
        std::int64_t width = 0;
        for (std::int64_t l = 0; l < S; ++l) {
            const std::int64_t r = m.lane_rows_[s * S + l];
            if (r >= 0)
                width = std::max(width, xadj[r + 1] - xadj[r]);
        }
        m.slice_base_[s + 1] = m.slice_base_[s] + S * width;
    }

    const std::int64_t total = m.slice_base_[m.num_slices_];
    m.cols_.assign(static_cast<std::size_t>(total), 0);
    m.values_.assign(static_cast<std::size_t>(padToCacheLine(9 * total)),
                     0.0);

    const std::int32_t *bcols = a.blockCols().data();
    for (std::int64_t s = 0; s < m.num_slices_; ++s) {
        const std::int64_t base = m.slice_base_[s];
        for (std::int64_t l = 0; l < S; ++l) {
            const std::int64_t r = m.lane_rows_[s * S + l];
            if (r < 0)
                continue;
            const std::int64_t len = xadj[r + 1] - xadj[r];
            m.structural_blocks_ += len;
            for (std::int64_t j = 0; j < len; ++j) {
                const std::int64_t k = xadj[r] + j;
                const std::int64_t group = base + j * S;
                m.cols_[static_cast<std::size_t>(group + l)] = bcols[k];
                const double *b = a.blockAt(k);
                double *planes =
                    m.values_.data() + 9 * group;
                for (int e = 0; e < 9; ++e)
                    planes[e * S + l] = b[e];
            }
        }
    }
    m.validate();
    return m;
}

SlicedEll3Matrix
SlicedEll3Matrix::fromBcsr3(const Bcsr3Matrix &a, std::int64_t slice_height)
{
    std::vector<std::int64_t> rows(
        static_cast<std::size_t>(a.numBlockRows()));
    for (std::int64_t i = 0; i < a.numBlockRows(); ++i)
        rows[static_cast<std::size_t>(i)] = i;
    return fromBcsr3Rows(a, rows.data(), a.numBlockRows(), slice_height);
}

SlicedEll3Matrix
SlicedEll3Matrix::fromSymBcsr3(const SymBcsr3Matrix &sym,
                               std::int64_t slice_height)
{
    // Mirror the stored upper triangle into a full block pattern (lanes
    // need whole rows), then convert.  Conversion-time only.
    const std::int64_t n = sym.numBlockRows();
    std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
    for (std::int64_t br = 0; br < n; ++br) {
        for (std::int64_t k = sym.xadj()[br]; k < sym.xadj()[br + 1];
             ++k) {
            const std::int32_t bc = sym.blockCols()[k];
            ++counts[static_cast<std::size_t>(br)];
            if (bc != br)
                ++counts[static_cast<std::size_t>(bc)];
        }
    }
    std::vector<std::int64_t> xadj(static_cast<std::size_t>(n) + 1, 0);
    for (std::int64_t i = 0; i < n; ++i)
        xadj[i + 1] = xadj[i] + counts[static_cast<std::size_t>(i)];
    std::vector<std::int64_t> cursor(xadj.begin(), xadj.end() - 1);
    std::vector<std::int32_t> cols(
        static_cast<std::size_t>(xadj[static_cast<std::size_t>(n)]));
    for (std::int64_t br = 0; br < n; ++br) {
        for (std::int64_t k = sym.xadj()[br]; k < sym.xadj()[br + 1];
             ++k) {
            const std::int32_t bc = sym.blockCols()[k];
            cols[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(br)]++)] = bc;
            if (bc != br)
                cols[static_cast<std::size_t>(
                    cursor[static_cast<std::size_t>(bc)]++)] =
                    static_cast<std::int32_t>(br);
        }
    }
    // Upper-triangle columns append in ascending order; the mirrored
    // lower-triangle column br arrives at row bc in ascending br order
    // too, but interleaved with the uppers — sort each row to restore
    // the strictly-increasing invariant Bcsr3Matrix requires.
    for (std::int64_t br = 0; br < n; ++br)
        std::sort(cols.begin() + xadj[static_cast<std::size_t>(br)],
                  cols.begin() + xadj[static_cast<std::size_t>(br) + 1]);

    Bcsr3Matrix full(n, std::move(xadj), std::move(cols));
    for (std::int64_t br = 0; br < n; ++br) {
        for (std::int64_t k = sym.xadj()[br]; k < sym.xadj()[br + 1];
             ++k) {
            const std::int32_t bc = sym.blockCols()[k];
            const double *b = sym.blockAt(k);
            Block3 blk, blk_t;
            for (int e = 0; e < 9; ++e)
                blk[static_cast<std::size_t>(e)] = b[e];
            full.addToBlock(br, bc, blk);
            if (bc != br) {
                for (int i = 0; i < 3; ++i)
                    for (int j = 0; j < 3; ++j)
                        blk_t[static_cast<std::size_t>(3 * i + j)] =
                            b[3 * j + i];
                full.addToBlock(bc, static_cast<std::int32_t>(br), blk_t);
            }
        }
    }
    return fromBcsr3(full, slice_height);
}

double
SlicedEll3Matrix::paddingRatio() const
{
    if (structural_blocks_ == 0)
        return 1.0;
    return static_cast<double>(storedBlocks()) /
           static_cast<double>(structural_blocks_);
}

std::int32_t
SlicedEll3Matrix::colAt(std::int64_t s, std::int64_t j,
                        std::int64_t lane) const
{
    return cols_[static_cast<std::size_t>(slice_base_[s] +
                                          j * slice_height_ + lane)];
}

double
SlicedEll3Matrix::valueAt(std::int64_t s, std::int64_t j,
                          std::int64_t lane, int e) const
{
    const std::int64_t group = slice_base_[s] + j * slice_height_;
    return values_[static_cast<std::size_t>(9 * group + e * slice_height_ +
                                            lane)];
}

void
SlicedEll3Matrix::multiplySlices(const double *x, double *y,
                                 std::int64_t slice_begin,
                                 std::int64_t slice_end) const
{
    const detail::EllSliceView v{slice_base_.data(), cols_.data(),
                                 values_.data(), lane_rows_.data(),
                                 slice_height_};
    sliceKernel()(v, x, y, slice_begin, slice_end);
}

void
SlicedEll3Matrix::multiply(const double *x, double *y) const
{
    multiplySlices(x, y, 0, num_slices_);
}

std::vector<double>
SlicedEll3Matrix::multiply(const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == numRows(),
                 "x has " << x.size() << " entries, expected "
                          << numRows());
    std::vector<double> y(static_cast<std::size_t>(numRows()), 0.0);
    multiply(x.data(), y.data());
    return y;
}

StepPartials
SlicedEll3Matrix::multiplyFusedStep(const StepUpdate &su, double *y) const
{
    QUAKE_EXPECT(identity_rows_,
                 "fused ELL step requires the identity row map");
    StepPartials out;
    for (std::int64_t s = 0; s < num_slices_; ++s) {
        multiplySlices(su.u, y, s, s + 1);
        // Identity map: lane l of slice s is block row s*S + l, so the
        // ascending lane order below is ascending DOF order — the same
        // order as the unfused applyStepUpdateRange reference.
        for (std::int64_t l = 0; l < slice_height_; ++l) {
            const std::int64_t r = lane_rows_[s * slice_height_ + l];
            if (r < 0)
                break;
            const std::int64_t i = 3 * r;
            out.accumulate(su, i + 0, su.apply(i + 0, y[i + 0]));
            out.accumulate(su, i + 1, su.apply(i + 1, y[i + 1]));
            out.accumulate(su, i + 2, su.apply(i + 2, y[i + 2]));
        }
    }
    return out;
}

void
SlicedEll3Matrix::validate() const
{
    QUAKE_REQUIRE(slice_height_ >= 1 && slice_height_ <= kMaxSliceHeight,
                  "slice height out of range");
    QUAKE_REQUIRE(static_cast<std::int64_t>(slice_base_.size()) ==
                      num_slices_ + 1,
                  "slice base size mismatch");
    QUAKE_REQUIRE(num_slices_ == 0 || slice_base_.front() == 0,
                  "slice bases must start at 0");
    QUAKE_REQUIRE(static_cast<std::int64_t>(lane_rows_.size()) ==
                      num_slices_ * slice_height_,
                  "lane row map size mismatch");
    std::int64_t covered = 0;
    for (std::int64_t s = 0; s < num_slices_; ++s) {
        const std::int64_t span = slice_base_[s + 1] - slice_base_[s];
        QUAKE_REQUIRE(span >= 0 && span % slice_height_ == 0,
                      "slice span not a lane multiple");
    }
    for (const std::int64_t r : lane_rows_) {
        QUAKE_REQUIRE(r >= -1 && r < x_block_rows_,
                      "lane row out of range");
        if (r >= 0)
            ++covered;
    }
    QUAKE_REQUIRE(covered == covered_rows_, "covered row count mismatch");
    QUAKE_REQUIRE(static_cast<std::int64_t>(cols_.size()) ==
                      storedBlocks(),
                  "cols size mismatch");
    QUAKE_REQUIRE(static_cast<std::int64_t>(values_.size()) >=
                      9 * storedBlocks(),
                  "values size mismatch");
    for (const std::int32_t c : cols_)
        QUAKE_REQUIRE(c >= 0 && c < x_block_rows_,
                      "block column out of range");
}

} // namespace quake::sparse
