#include "sparse/smvp.h"

#include <cstring>

#include "common/error.h"

namespace quake::sparse
{

SymCsrMatrix
SymCsrMatrix::fromCsr(const CsrMatrix &full, double tolerance)
{
    QUAKE_EXPECT(full.numRows() == full.numCols(),
                 "symmetric storage requires a square matrix");
    QUAKE_EXPECT(full.isSymmetric(tolerance),
                 "matrix is not symmetric within tolerance");

    SymCsrMatrix sym;
    sym.rows_ = full.numRows();
    sym.xadj_.assign(static_cast<std::size_t>(sym.rows_) + 1, 0);
    for (std::int64_t r = 0; r < sym.rows_; ++r) {
        for (std::int64_t k = full.xadj()[r]; k < full.xadj()[r + 1]; ++k) {
            if (full.cols()[k] >= r) {
                sym.cols_.push_back(full.cols()[k]);
                sym.values_.push_back(full.values()[k]);
            }
        }
        sym.xadj_[r + 1] = static_cast<std::int64_t>(sym.cols_.size());
    }
    return sym;
}

void
SymCsrMatrix::multiply(const double *x, double *y) const
{
    std::memset(y, 0, static_cast<std::size_t>(rows_) * sizeof(double));
    for (std::int64_t r = 0; r < rows_; ++r) {
        const double xr = x[r];
        double acc = 0.0;
        for (std::int64_t k = xadj_[r]; k < xadj_[r + 1]; ++k) {
            const std::int32_t c = cols_[k];
            const double v = values_[k];
            acc += v * x[c];
            if (c != r)
                y[c] += v * xr;
        }
        y[r] += acc;
    }
}

std::vector<double>
SymCsrMatrix::multiply(const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == rows_,
                 "x has " << x.size() << " entries, expected " << rows_);
    std::vector<double> y(static_cast<std::size_t>(rows_));
    multiply(x.data(), y.data());
    return y;
}

std::int64_t
SymCsrMatrix::flopsPerMultiply() const
{
    // Each stored diagonal entry: 1 mul + 1 add.  Each stored
    // off-diagonal entry acts twice: 2 muls + 2 adds.
    std::int64_t diag = 0;
    for (std::int64_t r = 0; r < rows_; ++r) {
        if (xadj_[r] < xadj_[r + 1] && cols_[xadj_[r]] == r)
            ++diag;
    }
    const std::int64_t off = storedEntries() - diag;
    return 2 * diag + 4 * off;
}

void
smvpCsr(const CsrMatrix &a, const double *x, double *y)
{
    a.multiply(x, y);
}

void
smvpBcsr3(const Bcsr3Matrix &a, const double *x, double *y)
{
    a.multiply(x, y);
}

void
smvpSym(const SymCsrMatrix &a, const double *x, double *y)
{
    a.multiply(x, y);
}

} // namespace quake::sparse
