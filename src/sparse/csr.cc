#include "sparse/csr.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace quake::sparse
{

CsrMatrix::CsrMatrix(std::int64_t num_rows, std::int64_t num_cols,
                     std::vector<std::int64_t> xadj,
                     std::vector<std::int32_t> cols,
                     std::vector<double> values)
    : rows_(num_rows), cols_count_(num_cols), xadj_(std::move(xadj)),
      cols_(std::move(cols)), values_(std::move(values))
{
    validate();
}

void
CsrMatrix::validate() const
{
    QUAKE_REQUIRE(rows_ >= 0 && cols_count_ >= 0, "negative dimensions");
    QUAKE_REQUIRE(static_cast<std::int64_t>(xadj_.size()) == rows_ + 1,
                  "xadj size mismatch");
    QUAKE_REQUIRE(xadj_.empty() || xadj_.front() == 0,
                  "xadj must start at 0");
    QUAKE_REQUIRE(cols_.size() == values_.size(),
                  "cols/values size mismatch");
    QUAKE_REQUIRE(xadj_.empty() ||
                      xadj_.back() ==
                          static_cast<std::int64_t>(cols_.size()),
                  "xadj must end at nnz");
    for (std::int64_t r = 0; r < rows_; ++r) {
        QUAKE_REQUIRE(xadj_[r] <= xadj_[r + 1], "xadj not nondecreasing");
        for (std::int64_t k = xadj_[r]; k < xadj_[r + 1]; ++k) {
            QUAKE_REQUIRE(cols_[k] >= 0 && cols_[k] < cols_count_,
                          "column index out of range");
            if (k > xadj_[r])
                QUAKE_REQUIRE(cols_[k - 1] < cols_[k],
                              "columns not strictly increasing in row");
        }
    }
}

void
CsrMatrix::multiply(const double *x, double *y) const
{
    for (std::int64_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::int64_t k = xadj_[r]; k < xadj_[r + 1]; ++k)
            acc += values_[k] * x[cols_[k]];
        y[r] = acc;
    }
}

std::vector<double>
CsrMatrix::multiply(const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == cols_count_,
                 "x has " << x.size() << " entries, expected "
                          << cols_count_);
    std::vector<double> y(static_cast<std::size_t>(rows_));
    multiply(x.data(), y.data());
    return y;
}

double
CsrMatrix::at(std::int64_t r, std::int32_t c) const
{
    QUAKE_EXPECT(r >= 0 && r < rows_ && c >= 0 && c < cols_count_,
                 "index out of range");
    const auto first = cols_.begin() + xadj_[r];
    const auto last = cols_.begin() + xadj_[r + 1];
    const auto it = std::lower_bound(first, last, c);
    if (it == last || *it != c)
        return 0.0;
    return values_[static_cast<std::size_t>(it - cols_.begin())];
}

bool
CsrMatrix::isSymmetric(double tolerance) const
{
    if (rows_ != cols_count_)
        return false;
    for (std::int64_t r = 0; r < rows_; ++r) {
        for (std::int64_t k = xadj_[r]; k < xadj_[r + 1]; ++k) {
            const double mirrored = at(cols_[k], static_cast<std::int32_t>(r));
            if (std::fabs(values_[k] - mirrored) > tolerance)
                return false;
        }
    }
    return true;
}

} // namespace quake::sparse
