/**
 * @file
 * Node reordering for memory locality: reverse Cuthill-McKee (RCM).
 *
 * The paper measures T_f on matrices whose node numbering came from
 * the mesh generator; §4 attributes the low sustained rates partly to
 * "irregular memory reference patterns".  RCM renumbers nodes to
 * cluster each row's neighbours, narrowing the bandwidth of K and
 * making the x gather cache-friendlier — the standard cheap locality
 * optimization for exactly this kernel.  bench_tf_cache_model's
 * companion ablation quantifies the effect through the cache model.
 */

#ifndef QUAKE98_SPARSE_REORDER_H_
#define QUAKE98_SPARSE_REORDER_H_

#include <cstdint>
#include <vector>

#include "mesh/tet_mesh.h"

namespace quake::sparse
{

/** A node permutation: newId = perm[oldId]; inverse: old = inv[new]. */
struct Permutation
{
    std::vector<mesh::NodeId> perm;    ///< old -> new
    std::vector<mesh::NodeId> inverse; ///< new -> old

    /** Identity permutation over n nodes. */
    static Permutation identity(std::int64_t n);

    /** Check that this is a bijection on [0, n); panics otherwise. */
    void validate() const;
};

/**
 * Reverse Cuthill-McKee ordering of the mesh's node graph.  Each
 * connected component is traversed breadth-first from a pseudo-
 * peripheral vertex (lowest-degree start, refined by one BFS pass),
 * neighbours visited in increasing-degree order; the final order is
 * reversed.
 */
Permutation reverseCuthillMcKee(const mesh::NodeAdjacency &adjacency);

/** Apply a node permutation to a mesh (positions and element lists). */
mesh::TetMesh permuteMesh(const mesh::TetMesh &mesh,
                          const Permutation &permutation);

/**
 * Matrix bandwidth under an ordering: max |i - j| over adjacent node
 * pairs (the quantity RCM minimizes, and a proxy for gather locality).
 */
std::int64_t graphBandwidth(const mesh::NodeAdjacency &adjacency);

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_REORDER_H_
