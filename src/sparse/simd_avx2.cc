/**
 * @file
 * AVX2+FMA kernels for the sliced-ELL slice multiply and the symmetric
 * BCSR3 transposed scatter.  This translation unit is the ONLY one
 * compiled with -mavx2 -mfma (see src/sparse/CMakeLists.txt); it is
 * added to the build only when the QUAKE98_SIMD probe passes, and its
 * entry points are only ever called after a runtime
 * __builtin_cpu_supports("avx2")/("fma") check (sliced_ell3.cc), so no
 * illegal instruction can reach an older host.
 *
 * Both kernels use FMA contraction and (for the scatter) vector partial
 * sums folded by a horizontal add, so their results agree with the
 * portable kernels only within ULP tolerance — never claimed bitwise.
 * Within one process the dispatch is fixed, so each kernel is bitwise
 * deterministic against itself across thread counts and slicings.
 */

#include <immintrin.h>

#include "sparse/sliced_ell3.h"
#include "sparse/sliced_ell3_kernels.h"

// GCC's _mm256_i32gather_pd expands through _mm256_undefined_pd, which
// trips -Wmaybe-uninitialized inside avxintrin.h itself; the gather
// overwrites every lane, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace quake::sparse::detail
{

namespace
{

/** Sum of the four lanes of v, in fixed (0+1) + (2+3) order. */
inline double
hsum4(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi); // {l0+l2, l1+l3}
    const __m128d swap = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
}

} // namespace

void
ellMultiplySlicesAvx2(const EllSliceView &v, const double *x, double *y,
                      std::int64_t s0, std::int64_t s1)
{
    const std::int64_t S = v.slice_height;
    const std::int64_t Sv = S - (S % 4); // lanes handled 4 at a time
    const __m128i three = _mm_set1_epi32(3);

    alignas(32) double out0[SlicedEll3Matrix::kMaxSliceHeight];
    alignas(32) double out1[SlicedEll3Matrix::kMaxSliceHeight];
    alignas(32) double out2[SlicedEll3Matrix::kMaxSliceHeight];

    for (std::int64_t s = s0; s < s1; ++s) {
        const std::int64_t base = v.slice_base[s];
        const std::int64_t width = (v.slice_base[s + 1] - base) / S;

        for (std::int64_t l0 = 0; l0 < Sv; l0 += 4) {
            __m256d a0 = _mm256_setzero_pd();
            __m256d a1 = _mm256_setzero_pd();
            __m256d a2 = _mm256_setzero_pd();
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t group = base + j * S;
                const __m128i colv = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(v.cols + group +
                                                      l0));
                const __m128i idx = _mm_mullo_epi32(colv, three);
                const __m256d x0 = _mm256_i32gather_pd(x + 0, idx, 8);
                const __m256d x1 = _mm256_i32gather_pd(x + 1, idx, 8);
                const __m256d x2 = _mm256_i32gather_pd(x + 2, idx, 8);
                const double *p = v.values + 9 * group + l0;
                a0 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 0 * S), x0, a0);
                a0 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 1 * S), x1, a0);
                a0 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 2 * S), x2, a0);
                a1 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 3 * S), x0, a1);
                a1 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 4 * S), x1, a1);
                a1 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 5 * S), x2, a1);
                a2 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 6 * S), x0, a2);
                a2 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 7 * S), x1, a2);
                a2 = _mm256_fmadd_pd(_mm256_loadu_pd(p + 8 * S), x2, a2);
            }
            _mm256_store_pd(out0 + l0, a0);
            _mm256_store_pd(out1 + l0, a1);
            _mm256_store_pd(out2 + l0, a2);
        }

        // Remainder lanes (S not a multiple of 4): one lane at a time,
        // same ascending-j order.
        for (std::int64_t l = Sv; l < S; ++l) {
            double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t group = base + j * S;
                const double *xv = &x[3 * v.cols[group + l]];
                const double *p = v.values + 9 * group;
                acc0 += p[0 * S + l] * xv[0] + p[1 * S + l] * xv[1] +
                        p[2 * S + l] * xv[2];
                acc1 += p[3 * S + l] * xv[0] + p[4 * S + l] * xv[1] +
                        p[5 * S + l] * xv[2];
                acc2 += p[6 * S + l] * xv[0] + p[7 * S + l] * xv[1] +
                        p[8 * S + l] * xv[2];
            }
            out0[l] = acc0;
            out1[l] = acc1;
            out2[l] = acc2;
        }

        const std::int64_t *rows = v.lane_rows + s * S;
        for (std::int64_t l = 0; l < S; ++l) {
            const std::int64_t r = rows[l];
            if (r < 0)
                continue;
            y[3 * r + 0] = out0[l];
            y[3 * r + 1] = out1[l];
            y[3 * r + 2] = out2[l];
        }
    }
}

void
symScatterRowsAvx2(const SymScatterView &v, const double *x, double *y,
                   std::int64_t row_begin, std::int64_t row_end)
{
    // Lane-3-off mask: 3-double loads/stores without touching the
    // neighbouring row's scalar (and without reading past the arrays).
    const __m256i mask3 =
        _mm256_set_epi64x(0, -1ll, -1ll, -1ll);

    for (std::int64_t br = row_begin; br < row_end; ++br) {
        const double xr0s = x[3 * br + 0];
        const double xr1s = x[3 * br + 1];
        const double xr2s = x[3 * br + 2];
        const __m256d xr0 = _mm256_set1_pd(xr0s);
        const __m256d xr1 = _mm256_set1_pd(xr1s);
        const __m256d xr2 = _mm256_set1_pd(xr2s);
        __m256d vacc0 = _mm256_setzero_pd();
        __m256d vacc1 = _mm256_setzero_pd();
        __m256d vacc2 = _mm256_setzero_pd();

        for (std::int64_t k = v.xadj[br]; k < v.xadj[br + 1]; ++k) {
            const std::int64_t bc = v.cols[k];
            const double *b = v.values + 9 * k;
            // row_i = [b(3i), b(3i+1), b(3i+2), junk]; the junk lane
            // multiplies xc's +0.0 lane, contributing exact +0.0.
            const __m256d row0 = _mm256_loadu_pd(b);
            const __m256d row1 = _mm256_loadu_pd(b + 3);
            const __m256d row2 = _mm256_maskload_pd(b + 6, mask3);
            const __m256d xc = _mm256_maskload_pd(x + 3 * bc, mask3);
            vacc0 = _mm256_fmadd_pd(row0, xc, vacc0);
            vacc1 = _mm256_fmadd_pd(row1, xc, vacc1);
            vacc2 = _mm256_fmadd_pd(row2, xc, vacc2);

            if (bc != br) {
                // Transposed scatter y[col] += B^T x[row]: lane c holds
                // b[c] xr0 + b[3+c] xr1 + b[6+c] xr2.
                __m256d tv = _mm256_mul_pd(row0, xr0);
                tv = _mm256_fmadd_pd(row1, xr1, tv);
                tv = _mm256_fmadd_pd(row2, xr2, tv);
                const __m256d yv = _mm256_add_pd(
                    _mm256_maskload_pd(y + 3 * bc, mask3), tv);
                _mm256_maskstore_pd(y + 3 * bc, mask3, yv);
            }
        }

        y[3 * br + 0] += hsum4(vacc0);
        y[3 * br + 1] += hsum4(vacc1);
        y[3 * br + 2] += hsum4(vacc2);
    }
}

} // namespace quake::sparse::detail
