/**
 * @file
 * Internal raw-pointer views and kernel entry points shared between the
 * portable sliced-ELL / symmetric-scatter kernels (sliced_ell3.cc,
 * bcsr3_sym.cc — compiled with the library's default flags) and the
 * AVX2 translation unit (simd_avx2.cc — compiled with -mavx2 -mfma only
 * when the CMake probe passes).  Runtime dispatch picks the AVX2 entry
 * points once, at first use, iff the build had them AND the host CPU
 * reports AVX2+FMA — so the library never executes an illegal
 * instruction on an older host.
 */

#ifndef QUAKE98_SPARSE_SLICED_ELL3_KERNELS_H_
#define QUAKE98_SPARSE_SLICED_ELL3_KERNELS_H_

#include <cstdint>

namespace quake::sparse::detail
{

/** Raw view of a SlicedEll3Matrix for the slice kernels. */
struct EllSliceView
{
    const std::int64_t *slice_base = nullptr; ///< numSlices + 1
    const std::int32_t *cols = nullptr;       ///< per slot
    const double *values = nullptr;           ///< element-plane layout
    const std::int64_t *lane_rows = nullptr;  ///< per lane, -1 = pad
    std::int64_t slice_height = 0;
};

/**
 * Portable slice kernel: y rows of slices [s0, s1) overwritten.  Lane
 * accumulation order: ascending slice column j, elements fused per
 * block — identical for every slice partitioning.
 */
void ellMultiplySlicesScalar(const EllSliceView &v, const double *x,
                             double *y, std::int64_t s0, std::int64_t s1);

/** Raw view of a SymBcsr3Matrix for the scatter kernels. */
struct SymScatterView
{
    const std::int64_t *xadj = nullptr;
    const std::int32_t *cols = nullptr;
    const double *values = nullptr; ///< 9 per block, row-major
};

#if defined(QUAKE98_HAVE_AVX2)
/** AVX2 slice kernel: 4 lanes per step, FMA accumulation. */
void ellMultiplySlicesAvx2(const EllSliceView &v, const double *x,
                           double *y, std::int64_t s0, std::int64_t s1);

/**
 * AVX2 symmetric scatter over block rows [row_begin, row_end):
 * accumulates into y without zeroing (same contract as
 * SymBcsr3Matrix::multiplyRowsScatter), with vector FMAs for both the
 * row accumulators and the transposed y[col] scatter.  Summation order
 * differs from the scalar scatter (vector partials + horizontal sum),
 * so results match the scalar kernel only within ULP tolerance.
 */
void symScatterRowsAvx2(const SymScatterView &v, const double *x,
                        double *y, std::int64_t row_begin,
                        std::int64_t row_end);
#endif

/** True iff the build carries AVX2 kernels and the CPU supports them. */
bool avx2KernelsAvailable();

} // namespace quake::sparse::detail

#endif // QUAKE98_SPARSE_SLICED_ELL3_KERNELS_H_
