/**
 * @file
 * Sliced-ELLPACK storage over 3x3 blocks (SELL-S, DESIGN.md §12): block
 * rows are grouped into slices of S lanes, each slice padded to the
 * width of its longest row, with blocks laid out column-major within
 * the slice so S consecutive lanes read S consecutive blocks at every
 * column position.  This is the regularized layout the GPU-FEM SMVP
 * literature (Wong/Kuhl/Darve, arXiv:1501.00324) gets its wins from:
 * the irregular per-row loop of BCSR becomes a dense strip of
 * lane-parallel multiply-accumulates that vectorizes cleanly, at the
 * cost of streaming the zero padding.
 *
 * Within each lane the accumulation order is the ascending block-column
 * order of the source BCSR3 row followed by the slice's zero padding,
 * independent of the slice height and of which kernel slices run in —
 * so a given matrix + x always produces the same bits for a row no
 * matter how slices are partitioned across threads (the determinism
 * argument of DESIGN.md §12).  No bitwise equivalence is claimed
 * *across* storage formats or across the scalar/AVX2 dispatch: those
 * are guarded by the mixed ULP/norm oracle in verify/.
 */

#ifndef QUAKE98_SPARSE_SLICED_ELL3_H_
#define QUAKE98_SPARSE_SLICED_ELL3_H_

#include <cstdint>
#include <vector>

#include "sparse/bcsr3.h"

namespace quake::sparse
{

class SymBcsr3Matrix;

/** Sparse matrix of 3x3 blocks in sliced-ELLPACK form. */
class SlicedEll3Matrix
{
  public:
    /** Default slice height: two AVX2 lanes of 4 doubles. */
    static constexpr std::int64_t kDefaultSliceHeight = 8;

    /** Hard cap on S (kernel stack buffers are sized by it). */
    static constexpr std::int64_t kMaxSliceHeight = 64;

    SlicedEll3Matrix() = default;

    /**
     * Convert a full BCSR3 matrix: lane i computes block row i (the
     * identity row map), every block row covered.
     */
    static SlicedEll3Matrix fromBcsr3(
        const Bcsr3Matrix &a,
        std::int64_t slice_height = kDefaultSliceHeight);

    /**
     * Convert an explicit list of block rows of `a` — the per-PE slab
     * form used by the distributed engine, which converts boundary and
     * interior rows into separate slabs.  Lane i computes block row
     * rows[i] and writes y[3 rows[i] ..]; the lane order is the list
     * order, so a sorted list keeps ascending-row semantics.
     */
    static SlicedEll3Matrix fromBcsr3Rows(
        const Bcsr3Matrix &a, const std::int64_t *rows,
        std::int64_t num_rows,
        std::int64_t slice_height = kDefaultSliceHeight);

    /**
     * Convert symmetric half storage by first mirroring it to a full
     * block pattern (ELL lanes need whole rows).  Conversion-time only.
     */
    static SlicedEll3Matrix fromSymBcsr3(
        const SymBcsr3Matrix &sym,
        std::int64_t slice_height = kDefaultSliceHeight);

    /** Block rows covered by lanes (the row-list length). */
    std::int64_t numCoveredRows() const { return covered_rows_; }

    /** Scalar dimension of x and y (3 per block row of the source). */
    std::int64_t numRows() const { return 3 * x_block_rows_; }

    std::int64_t sliceHeight() const { return slice_height_; }
    std::int64_t numSlices() const { return num_slices_; }

    /** Blocks actually present in the source rows. */
    std::int64_t structuralBlocks() const { return structural_blocks_; }

    /** Blocks streamed by a multiply: structural + padding slots. */
    std::int64_t
    storedBlocks() const
    {
        return num_slices_ > 0 ? slice_base_[num_slices_] : 0;
    }

    /** Padding overhead: stored / structural blocks (1.0 when empty). */
    double paddingRatio() const;

    /** True when lane i computes block row i for every covered row. */
    bool identityRowMap() const { return identity_rows_; }

    /** Block row computed by `lane`, or -1 for an inactive pad lane. */
    std::int64_t
    laneRow(std::int64_t lane) const
    {
        return lane_rows_[static_cast<std::size_t>(lane)];
    }

    /**
     * Slot base of each slice (size numSlices() + 1, in block slots):
     * slice s holds slots [slice_base_[s], slice_base_[s+1]), width
     * (slice_base_[s+1] - slice_base_[s]) / sliceHeight().  Exposed for
     * slot-balanced slice partitioning in the threaded kernel.
     */
    const std::vector<std::int64_t> &sliceBases() const
    {
        return slice_base_;
    }

    /** Width (padded row length) of slice s. */
    std::int64_t
    sliceWidth(std::int64_t s) const
    {
        return (slice_base_[s + 1] - slice_base_[s]) / slice_height_;
    }

    /** Block column of the slot at (slice, column j, lane). */
    std::int32_t colAt(std::int64_t s, std::int64_t j,
                       std::int64_t lane) const;

    /** Element e (row-major 0..8) of the block at (slice, j, lane). */
    double valueAt(std::int64_t s, std::int64_t j, std::int64_t lane,
                   int e) const;

    /**
     * y = A x over the covered rows: y[3 r .. 3 r + 2] is overwritten
     * for every covered block row r; all other entries of y are left
     * untouched.  x and y have numRows() scalars.
     */
    void multiply(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * y = A x restricted to slices [slice_begin, slice_end) — the
     * building block of the threaded kernel and the fused step.  Slices
     * own disjoint lanes, so concurrent calls on disjoint slice ranges
     * write disjoint rows.
     */
    void multiplySlices(const double *x, double *y,
                        std::int64_t slice_begin,
                        std::int64_t slice_end) const;

    /**
     * Fused time step (requires the identity row map): for each slice,
     * compute its K u values into the caller's scratch y through the
     * same dispatched kernel as multiply() — bit for bit — then apply
     * `su` to the slice's DOFs in ascending lane order while they are
     * hot.  The triad order over all DOFs is ascending, matching the
     * unfused applyStepUpdateRange reference, so fused and unfused runs
     * on this backend produce bitwise-identical u.  `y` has numRows()
     * scalars; no allocation is performed.
     */
    StepPartials multiplyFusedStep(const StepUpdate &su, double *y) const;

    /** Name of the dispatched slice kernel: "avx2" or "scalar". */
    static const char *activeKernelName();

    /** Check structural invariants; panics on violation. */
    void validate() const;

  private:
    std::int64_t x_block_rows_ = 0;   ///< block columns of the source
    std::int64_t covered_rows_ = 0;   ///< lanes bound to real rows
    std::int64_t slice_height_ = kDefaultSliceHeight;
    std::int64_t num_slices_ = 0;
    std::int64_t structural_blocks_ = 0;
    bool identity_rows_ = true;

    std::vector<std::int64_t> slice_base_; ///< numSlices + 1 slot bases
    std::vector<std::int64_t> lane_rows_;  ///< numSlices * S, -1 = pad

    /**
     * Block columns, one per slot; slot = slice_base_[s] + j * S + lane.
     * Padding slots carry column 0 (always in range) and a zero block,
     * so every lane runs the full slice width with exact +0.0
     * contributions from the padding.
     */
    std::vector<std::int32_t> cols_;

    /**
     * Block values in element-plane order: the S blocks of one slice
     * column j occupy values_[9 (slice_base_[s] + j S) ..) as nine
     * planes of S doubles — value(e, lane) at plane offset e * S +
     * lane.  Lane-adjacent elements are contiguous, which is what the
     * vertical (lane-parallel) SIMD kernel streams.  Padded to a whole
     * number of cache lines.
     */
    std::vector<double> values_;
};

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_SLICED_ELL3_H_
