/**
 * @file
 * Block CSR matrix with 3x3 blocks — the natural shape of the Quake
 * stiffness matrix K (paper §2.2): one 3x3 submatrix per pair of mesh
 * nodes joined by an edge (self-edges included), three degrees of freedom
 * (x/y/z displacement) per node.
 */

#ifndef QUAKE98_SPARSE_BCSR3_H_
#define QUAKE98_SPARSE_BCSR3_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace quake::sparse
{

/** A dense 3x3 block stored row-major. */
using Block3 = std::array<double, 9>;

/**
 * Coefficients and field pointers of one fused central-difference step
 * (the Quake update, paper §2.2):
 *
 *   u_{n+1} = (2 u_n - (1 - a0 dt/2) u_{n-1}
 *              + dt^2 M^{-1} (f_n - K u_n)) / (1 + a0 dt/2).
 *
 * The SMVP kernels apply this update to a row's scalar DOFs the moment
 * that row's (K u)_i value is finalized — while it is still in cache —
 * instead of a separate serial O(n) pass over all vectors.  All paths
 * (the fused kernels and the unfused reference triad) funnel through
 * apply(), so fused and unfused runs produce bitwise-identical u.
 */
struct StepUpdate
{
    const double *u = nullptr;       ///< u_n (the SMVP input x)
    double *up = nullptr;            ///< u_{n-1} in, u_{n+1} out
    const double *f = nullptr;       ///< force at t_n
    const double *invMass = nullptr; ///< reciprocal lumped-mass diagonal
    double dt = 0.0;                 ///< time step (for the energy velocity)
    double dt2 = 0.0;                ///< dt^2
    double prevCoeff = 1.0;          ///< 1 - a0 dt / 2
    double denom = 1.0;              ///< 1 + a0 dt / 2

    /** Update scalar DOF i given its freshly finalized (K u)_i value. */
    double
    apply(std::int64_t i, double ku_i) const
    {
        return apply(i, u[i], ku_i);
    }

    /**
     * Same update with u_i supplied by the caller — a bitwise copy of
     * u[i] already at hand (the distributed engine's gathered local x
     * vector).  Identical arithmetic, one fewer indexed load.
     */
    double
    apply(std::int64_t i, double u_i, double ku_i) const
    {
        const double next = (2.0 * u_i - prevCoeff * up[i] +
                             dt2 * invMass[i] * (f[i] - ku_i)) /
                            denom;
        up[i] = next;
        return next;
    }
};

/**
 * Running reductions folded into a fused step sweep: the step's peak
 * |u_{n+1}| and its kinetic energy (1/2) v^T M v with v = (u_{n+1} -
 * u_n) / dt.  Each worker/range accumulates a private StepPartials in
 * ascending DOF order; partials are combined in a fixed (ascending
 * range) order, so the reduced values are deterministic and
 * independent of thread count.
 */
struct StepPartials
{
    double peak = 0.0;   ///< max |u_{n+1}| over the range
    double energy = 0.0; ///< kinetic-energy partial sum over the range

    /** Fold in DOF i after apply() returned `next`. */
    void
    accumulate(const StepUpdate &su, std::int64_t i, double next)
    {
        accumulate(su, i, su.u[i], next);
    }

    /** Same fold with u_i supplied by the caller (see apply). */
    void
    accumulate(const StepUpdate &su, std::int64_t i, double u_i,
               double next)
    {
        peak = std::max(peak, std::fabs(next));
        const double v = (next - u_i) / su.dt;
        energy += 0.5 * v * v / su.invMass[i];
    }

    /** Fixed-order combine (callers combine in ascending range order). */
    void
    combine(const StepPartials &other)
    {
        peak = std::max(peak, other.peak);
        energy += other.energy;
    }
};

/**
 * The unfused reference triad: apply the update to scalar DOFs
 * [begin, end) from a fully materialized ku vector, accumulating the
 * same partials as the fused kernels.  Lives in the sparse library so
 * it is compiled with the same flags (QUAKE98_NATIVE included) as the
 * fused kernels — the bitwise fused-vs-unfused guarantee must not
 * depend on per-target compile options.
 */
void applyStepUpdateRange(const StepUpdate &su, const double *ku,
                          std::int64_t begin, std::int64_t end,
                          StepPartials &out);

/** Sparse matrix of 3x3 blocks in block-CSR form. */
class Bcsr3Matrix
{
  public:
    Bcsr3Matrix() = default;

    /**
     * Construct an all-zero matrix with the given block sparsity.
     *
     * @param num_block_rows Block rows (mesh nodes); the scalar dimension
     *                       is 3x this.
     * @param xadj           Block-row offsets, size num_block_rows + 1.
     * @param block_cols     Block column indices, strictly increasing per
     *                       row.
     */
    Bcsr3Matrix(std::int64_t num_block_rows, std::vector<std::int64_t> xadj,
                std::vector<std::int32_t> block_cols);

    std::int64_t numBlockRows() const { return block_rows_; }

    /** Scalar dimension (3 per block row). */
    std::int64_t numRows() const { return 3 * block_rows_; }

    /** Number of stored 3x3 blocks. */
    std::int64_t
    numBlocks() const
    {
        return static_cast<std::int64_t>(block_cols_.size());
    }

    /** Scalar nonzero count: 9 per block. */
    std::int64_t nnz() const { return 9 * numBlocks(); }

    /** Exact flop count of multiply(): 2 per stored scalar. */
    std::int64_t flopsPerMultiply() const { return 2 * nnz(); }

    const std::vector<std::int64_t> &xadj() const { return xadj_; }
    const std::vector<std::int32_t> &blockCols() const { return block_cols_; }

    /**
     * Pointer to the 3x3 block at storage slot k (row-major 9 doubles);
     * use findBlock() to map (block row, block col) to a slot.
     */
    double *blockAt(std::int64_t k) { return &values_[9 * k]; }
    const double *blockAt(std::int64_t k) const { return &values_[9 * k]; }

    /**
     * Storage slot of block (br, bc), or -1 when the block is not stored.
     * O(log row length).
     */
    std::int64_t findBlock(std::int64_t br, std::int32_t bc) const;

    /** Accumulate a 3x3 contribution into block (br, bc); must exist. */
    void addToBlock(std::int64_t br, std::int32_t bc, const Block3 &b);

    /** y = A x on scalar vectors of length numRows(); y is overwritten. */
    void multiply(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * y = A x restricted to block rows [row_begin, row_end) — the building
     * block of the per-PE local SMVP.  Writes y[3*row_begin ..
     * 3*row_end).
     */
    void multiplyRows(const double *x, double *y, std::int64_t row_begin,
                      std::int64_t row_end) const;

    /**
     * y = A x restricted to an explicit list of block rows (each row's
     * product is identical to what multiply() writes there, bit for
     * bit).  Lets the SMVP engine compute boundary rows before interior
     * rows without permuting the matrix.
     */
    void multiplyRowList(const double *x, double *y,
                         const std::int64_t *rows,
                         std::int64_t num_rows) const;

    /**
     * Fused time step over block rows [row_begin, row_end): for each
     * block row, compute its three (K u) values into registers (the
     * same arithmetic as multiply(), bit for bit), immediately apply
     * `su` to those DOFs while they are hot, and fold the row into
     * `out`.  No ku vector is ever materialized — the O(n) update pass
     * and its memory traffic disappear into the SMVP sweep.  su.u must
     * be the x vector (length numRows()).
     */
    void multiplyRowsFusedStep(const StepUpdate &su,
                               std::int64_t row_begin,
                               std::int64_t row_end,
                               StepPartials &out) const;

    /** Fused time step over the whole matrix; returns the reductions. */
    StepPartials multiplyFusedStep(const StepUpdate &su) const;

    /** Expand to scalar CSR (for cross-checking kernels). */
    CsrMatrix toCsr() const;

    /** Check structural invariants; panics on violation. */
    void validate() const;

  private:
    std::int64_t block_rows_ = 0;
    std::vector<std::int64_t> xadj_;
    std::vector<std::int32_t> block_cols_;
    std::vector<double> values_; ///< 9 doubles per block, row-major
};

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_BCSR3_H_
