/**
 * @file
 * Block CSR matrix with 3x3 blocks — the natural shape of the Quake
 * stiffness matrix K (paper §2.2): one 3x3 submatrix per pair of mesh
 * nodes joined by an edge (self-edges included), three degrees of freedom
 * (x/y/z displacement) per node.
 */

#ifndef QUAKE98_SPARSE_BCSR3_H_
#define QUAKE98_SPARSE_BCSR3_H_

#include <array>
#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace quake::sparse
{

/** A dense 3x3 block stored row-major. */
using Block3 = std::array<double, 9>;

/** Sparse matrix of 3x3 blocks in block-CSR form. */
class Bcsr3Matrix
{
  public:
    Bcsr3Matrix() = default;

    /**
     * Construct an all-zero matrix with the given block sparsity.
     *
     * @param num_block_rows Block rows (mesh nodes); the scalar dimension
     *                       is 3x this.
     * @param xadj           Block-row offsets, size num_block_rows + 1.
     * @param block_cols     Block column indices, strictly increasing per
     *                       row.
     */
    Bcsr3Matrix(std::int64_t num_block_rows, std::vector<std::int64_t> xadj,
                std::vector<std::int32_t> block_cols);

    std::int64_t numBlockRows() const { return block_rows_; }

    /** Scalar dimension (3 per block row). */
    std::int64_t numRows() const { return 3 * block_rows_; }

    /** Number of stored 3x3 blocks. */
    std::int64_t
    numBlocks() const
    {
        return static_cast<std::int64_t>(block_cols_.size());
    }

    /** Scalar nonzero count: 9 per block. */
    std::int64_t nnz() const { return 9 * numBlocks(); }

    /** Exact flop count of multiply(): 2 per stored scalar. */
    std::int64_t flopsPerMultiply() const { return 2 * nnz(); }

    const std::vector<std::int64_t> &xadj() const { return xadj_; }
    const std::vector<std::int32_t> &blockCols() const { return block_cols_; }

    /**
     * Pointer to the 3x3 block at storage slot k (row-major 9 doubles);
     * use findBlock() to map (block row, block col) to a slot.
     */
    double *blockAt(std::int64_t k) { return &values_[9 * k]; }
    const double *blockAt(std::int64_t k) const { return &values_[9 * k]; }

    /**
     * Storage slot of block (br, bc), or -1 when the block is not stored.
     * O(log row length).
     */
    std::int64_t findBlock(std::int64_t br, std::int32_t bc) const;

    /** Accumulate a 3x3 contribution into block (br, bc); must exist. */
    void addToBlock(std::int64_t br, std::int32_t bc, const Block3 &b);

    /** y = A x on scalar vectors of length numRows(); y is overwritten. */
    void multiply(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * y = A x restricted to block rows [row_begin, row_end) — the building
     * block of the per-PE local SMVP.  Writes y[3*row_begin ..
     * 3*row_end).
     */
    void multiplyRows(const double *x, double *y, std::int64_t row_begin,
                      std::int64_t row_end) const;

    /**
     * y = A x restricted to an explicit list of block rows (each row's
     * product is identical to what multiply() writes there, bit for
     * bit).  Lets the SMVP engine compute boundary rows before interior
     * rows without permuting the matrix.
     */
    void multiplyRowList(const double *x, double *y,
                         const std::int64_t *rows,
                         std::int64_t num_rows) const;

    /** Expand to scalar CSR (for cross-checking kernels). */
    CsrMatrix toCsr() const;

    /** Check structural invariants; panics on violation. */
    void validate() const;

  private:
    std::int64_t block_rows_ = 0;
    std::vector<std::int64_t> xadj_;
    std::vector<std::int32_t> block_cols_;
    std::vector<double> values_; ///< 9 doubles per block, row-major
};

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_BCSR3_H_
