/**
 * @file
 * Global finite element assembly: mesh + soil model -> block stiffness
 * matrix K and lumped mass vector M (paper §2.2).  K has one 3x3 block
 * per node pair connected by a mesh edge, self-edges included, so the
 * block sparsity is exactly the node adjacency with the diagonal added.
 */

#ifndef QUAKE98_SPARSE_ASSEMBLY_H_
#define QUAKE98_SPARSE_ASSEMBLY_H_

#include <vector>

#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"
#include "sparse/bcsr3.h"

namespace quake::sparse
{

/**
 * Build the all-zero block sparsity pattern of K for `mesh`: block (i, j)
 * exists iff i == j or nodes i and j share a mesh edge.
 */
Bcsr3Matrix buildStiffnessPattern(const mesh::TetMesh &mesh);

/**
 * Assemble the global stiffness matrix.  Material at each element is
 * sampled from `model` at the element centroid with the given Poisson
 * ratio.  The result is symmetric positive semidefinite.
 */
Bcsr3Matrix assembleStiffness(const mesh::TetMesh &mesh,
                              const mesh::SoilModel &model,
                              double poisson = 0.25);

/**
 * Assemble the lumped (diagonal) mass vector: one entry per scalar DOF
 * (3 per node), each node receiving rho * V / 4 from every incident
 * element.  All entries are strictly positive for a valid mesh.
 */
std::vector<double> assembleLumpedMass(const mesh::TetMesh &mesh,
                                       const mesh::SoilModel &model);

/**
 * Bytes of runtime storage per mesh node for the core simulation state
 * (the paper §2.1 claims ~1.2 KByte/node): the stiffness blocks and index
 * structure plus `num_vectors` length-3n solution/work vectors.
 */
double bytesPerNode(const Bcsr3Matrix &stiffness, int num_vectors);

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_ASSEMBLY_H_
