/**
 * @file
 * Compressed sparse row matrix.  The scalar workhorse format for the SMVP
 * kernels; the paper's stiffness matrices live naturally in the 3x3-block
 * variant (bcsr3.h) and can be expanded to this format for comparison.
 */

#ifndef QUAKE98_SPARSE_CSR_H_
#define QUAKE98_SPARSE_CSR_H_

#include <cstdint>
#include <vector>

namespace quake::sparse
{

/** A general sparse matrix in CSR form with double values. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /**
     * Construct from raw CSR arrays.
     *
     * @param num_rows Row count.
     * @param num_cols Column count.
     * @param xadj     Row offsets, size num_rows + 1, nondecreasing.
     * @param cols     Column indices per row, strictly increasing per row.
     * @param values   One value per stored entry.
     */
    CsrMatrix(std::int64_t num_rows, std::int64_t num_cols,
              std::vector<std::int64_t> xadj, std::vector<std::int32_t> cols,
              std::vector<double> values);

    std::int64_t numRows() const { return rows_; }
    std::int64_t numCols() const { return cols_count_; }

    /** Number of stored entries. */
    std::int64_t
    nnz() const
    {
        return static_cast<std::int64_t>(values_.size());
    }

    const std::vector<std::int64_t> &xadj() const { return xadj_; }
    const std::vector<std::int32_t> &cols() const { return cols_; }
    const std::vector<double> &values() const { return values_; }
    std::vector<double> &values() { return values_; }

    /**
     * y = A x.  x must have numCols() entries and y numRows(); y is
     * overwritten.
     */
    void multiply(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * Exact flop count of multiply(): one multiply and one add per stored
     * entry (paper §3.1: F = 2m).
     */
    std::int64_t flopsPerMultiply() const { return 2 * nnz(); }

    /** Entry (r, c), or 0 when not stored.  O(log row length). */
    double at(std::int64_t r, std::int32_t c) const;

    /** True when the matrix equals its transpose (values included). */
    bool isSymmetric(double tolerance = 0.0) const;

    /** Check structural invariants; panics on violation. */
    void validate() const;

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_count_ = 0;
    std::vector<std::int64_t> xadj_;
    std::vector<std::int32_t> cols_;
    std::vector<double> values_;
};

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_CSR_H_
