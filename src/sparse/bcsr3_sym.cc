#include "sparse/bcsr3_sym.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "sparse/sliced_ell3_kernels.h"

namespace quake::sparse
{

SymBcsr3Matrix
SymBcsr3Matrix::fromBcsr3(const Bcsr3Matrix &full, double tolerance)
{
    SymBcsr3Matrix sym;
    sym.block_rows_ = full.numBlockRows();
    sym.xadj_.assign(static_cast<std::size_t>(sym.block_rows_) + 1, 0);

    for (std::int64_t br = 0; br < full.numBlockRows(); ++br) {
        for (std::int64_t k = full.xadj()[br]; k < full.xadj()[br + 1];
             ++k) {
            const std::int32_t bc = full.blockCols()[k];
            if (bc < br)
                continue;
            const double *b = full.blockAt(k);

            // Symmetry check: the mirrored block must exist and equal
            // this block's transpose (the diagonal block checks itself).
            const std::int64_t mk =
                full.findBlock(bc, static_cast<std::int32_t>(br));
            QUAKE_EXPECT(mk >= 0, "block (" << bc << ", " << br
                                            << ") missing: matrix is not "
                                               "structurally symmetric");
            const double *m = full.blockAt(mk);
            for (int i = 0; i < 3; ++i)
                for (int j = 0; j < 3; ++j)
                    QUAKE_EXPECT(std::fabs(b[3 * i + j] - m[3 * j + i]) <=
                                     tolerance,
                                 "matrix is not symmetric within "
                                 "tolerance at block ("
                                     << br << ", " << bc << ")");

            sym.block_cols_.push_back(bc);
            sym.values_.insert(sym.values_.end(), b, b + 9);
        }
        sym.xadj_[br + 1] =
            static_cast<std::int64_t>(sym.block_cols_.size());
    }
    return sym;
}

namespace
{

/**
 * One block row of the symmetric sweep: accumulate the row's own
 * products into y[row] and scatter the transposed contributions into
 * y[col].  Shared by multiplyRowsScatter and the fused step so both
 * produce bitwise-identical y values.
 */
inline void
scatterOneBlockRow(const std::int64_t *__restrict__ xadj,
                   const std::int32_t *__restrict__ cols,
                   const double *__restrict__ vals,
                   const double *__restrict__ xv, double *__restrict__ yv,
                   std::int64_t br)
{
    const double xr0 = xv[3 * br + 0];
    const double xr1 = xv[3 * br + 1];
    const double xr2 = xv[3 * br + 2];
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0;
    for (std::int64_t k = xadj[br]; k < xadj[br + 1]; ++k) {
        const std::int64_t bc = cols[k];
        const double *__restrict__ b = &vals[9 * k];
        const double xc0 = xv[3 * bc + 0];
        const double xc1 = xv[3 * bc + 1];
        const double xc2 = xv[3 * bc + 2];

        acc0 += b[0] * xc0 + b[1] * xc1 + b[2] * xc2;
        acc1 += b[3] * xc0 + b[4] * xc1 + b[5] * xc2;
        acc2 += b[6] * xc0 + b[7] * xc1 + b[8] * xc2;

        if (bc != br) {
            // Transposed scatter: y[col] += B^T x[row].
            yv[3 * bc + 0] += b[0] * xr0 + b[3] * xr1 + b[6] * xr2;
            yv[3 * bc + 1] += b[1] * xr0 + b[4] * xr1 + b[7] * xr2;
            yv[3 * bc + 2] += b[2] * xr0 + b[5] * xr1 + b[8] * xr2;
        }
    }
    yv[3 * br + 0] += acc0;
    yv[3 * br + 1] += acc1;
    yv[3 * br + 2] += acc2;
}

} // namespace

void
SymBcsr3Matrix::multiplyRowsScatter(const double *x, double *y,
                                    std::int64_t row_begin,
                                    std::int64_t row_end) const
{
    for (std::int64_t br = row_begin; br < row_end; ++br)
        scatterOneBlockRow(xadj_.data(), block_cols_.data(),
                           values_.data(), x, y, br);
}

StepPartials
SymBcsr3Matrix::multiplyFusedStep(const StepUpdate &su, double *y) const
{
    std::memset(y, 0,
                static_cast<std::size_t>(numRows()) * sizeof(double));
    StepPartials out;
    for (std::int64_t br = 0; br < block_rows_; ++br) {
        scatterOneBlockRow(xadj_.data(), block_cols_.data(),
                           values_.data(), su.u, y, br);
        // Ascending order makes y[3 br .. 3 br + 2] final here: every
        // remaining scatter targets a block column > br.
        const std::int64_t i = 3 * br;
        out.accumulate(su, i + 0, su.apply(i + 0, y[i + 0]));
        out.accumulate(su, i + 1, su.apply(i + 1, y[i + 1]));
        out.accumulate(su, i + 2, su.apply(i + 2, y[i + 2]));
    }
    return out;
}

void
SymBcsr3Matrix::multiply(const double *x, double *y) const
{
    std::memset(y, 0,
                static_cast<std::size_t>(numRows()) * sizeof(double));
    multiplyRowsScatter(x, y, 0, block_rows_);
}

void
SymBcsr3Matrix::multiplySimd(const double *x, double *y) const
{
    std::memset(y, 0,
                static_cast<std::size_t>(numRows()) * sizeof(double));
#if defined(QUAKE98_HAVE_AVX2)
    if (detail::avx2KernelsAvailable()) {
        detail::symScatterRowsAvx2(
            detail::SymScatterView{xadj_.data(), block_cols_.data(),
                                   values_.data()},
            x, y, 0, block_rows_);
        return;
    }
#endif
    multiplyRowsScatter(x, y, 0, block_rows_);
}

std::vector<double>
SymBcsr3Matrix::multiply(const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == numRows(),
                 "x has " << x.size() << " entries, expected "
                          << numRows());
    std::vector<double> y(static_cast<std::size_t>(numRows()));
    multiply(x.data(), y.data());
    return y;
}

} // namespace quake::sparse
