#include "sparse/bcsr3.h"

#include <algorithm>

#include "common/error.h"

namespace quake::sparse
{

Bcsr3Matrix::Bcsr3Matrix(std::int64_t num_block_rows,
                         std::vector<std::int64_t> xadj,
                         std::vector<std::int32_t> block_cols)
    : block_rows_(num_block_rows), xadj_(std::move(xadj)),
      block_cols_(std::move(block_cols))
{
    values_.assign(block_cols_.size() * 9, 0.0);
    validate();
}

void
Bcsr3Matrix::validate() const
{
    QUAKE_REQUIRE(block_rows_ >= 0, "negative block row count");
    QUAKE_REQUIRE(static_cast<std::int64_t>(xadj_.size()) ==
                      block_rows_ + 1,
                  "xadj size mismatch");
    QUAKE_REQUIRE(xadj_.empty() || xadj_.front() == 0,
                  "xadj must start at 0");
    QUAKE_REQUIRE(xadj_.empty() ||
                      xadj_.back() ==
                          static_cast<std::int64_t>(block_cols_.size()),
                  "xadj must end at block count");
    QUAKE_REQUIRE(values_.size() == block_cols_.size() * 9,
                  "values size mismatch");
    for (std::int64_t r = 0; r < block_rows_; ++r) {
        QUAKE_REQUIRE(xadj_[r] <= xadj_[r + 1], "xadj not nondecreasing");
        for (std::int64_t k = xadj_[r]; k < xadj_[r + 1]; ++k) {
            QUAKE_REQUIRE(block_cols_[k] >= 0 &&
                              block_cols_[k] < block_rows_,
                          "block column out of range");
            if (k > xadj_[r])
                QUAKE_REQUIRE(block_cols_[k - 1] < block_cols_[k],
                              "block columns not strictly increasing");
        }
    }
}

std::int64_t
Bcsr3Matrix::findBlock(std::int64_t br, std::int32_t bc) const
{
    QUAKE_EXPECT(br >= 0 && br < block_rows_, "block row out of range");
    const auto first = block_cols_.begin() + xadj_[br];
    const auto last = block_cols_.begin() + xadj_[br + 1];
    const auto it = std::lower_bound(first, last, bc);
    if (it == last || *it != bc)
        return -1;
    return it - block_cols_.begin();
}

void
Bcsr3Matrix::addToBlock(std::int64_t br, std::int32_t bc, const Block3 &b)
{
    const std::int64_t k = findBlock(br, bc);
    QUAKE_REQUIRE(k >= 0, "block (" << br << ", " << bc
                                    << ") is not in the sparsity pattern");
    double *dst = blockAt(k);
    for (int i = 0; i < 9; ++i)
        dst[i] += b[i];
}

namespace
{

/** The three accumulators of one block row of A x. */
struct RowAccum
{
    double a0, a1, a2;
};

/**
 * Accumulators of block row br of A x — the one block-row routine every
 * entry point (full multiply, row subsets, fused step) shares, so all
 * of them produce bitwise-identical values for a given row.
 */
inline RowAccum
blockRowProduct(const std::int64_t *__restrict__ xadj,
                const std::int32_t *__restrict__ cols,
                const double *__restrict__ vals,
                const double *__restrict__ x, std::int64_t br)
{
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0;
    for (std::int64_t k = xadj[br]; k < xadj[br + 1]; ++k) {
        const double *__restrict__ b = &vals[9 * k];
        const double *__restrict__ xv = &x[3 * cols[k]];
        acc0 += b[0] * xv[0] + b[1] * xv[1] + b[2] * xv[2];
        acc1 += b[3] * xv[0] + b[4] * xv[1] + b[5] * xv[2];
        acc2 += b[6] * xv[0] + b[7] * xv[1] + b[8] * xv[2];
    }
    return RowAccum{acc0, acc1, acc2};
}

/** One block row of y = A x; shared by every row-subset entry point. */
inline void
multiplyOneBlockRow(const std::int64_t *__restrict__ xadj,
                    const std::int32_t *__restrict__ cols,
                    const double *__restrict__ vals,
                    const double *__restrict__ x, double *__restrict__ y,
                    std::int64_t br)
{
    const RowAccum acc = blockRowProduct(xadj, cols, vals, x, br);
    y[3 * br + 0] = acc.a0;
    y[3 * br + 1] = acc.a1;
    y[3 * br + 2] = acc.a2;
}

} // namespace

void
applyStepUpdateRange(const StepUpdate &su, const double *ku,
                     std::int64_t begin, std::int64_t end,
                     StepPartials &out)
{
    for (std::int64_t i = begin; i < end; ++i)
        out.accumulate(su, i, su.apply(i, ku[i]));
}

void
Bcsr3Matrix::multiplyRows(const double *x, double *y, std::int64_t row_begin,
                          std::int64_t row_end) const
{
    for (std::int64_t br = row_begin; br < row_end; ++br)
        multiplyOneBlockRow(xadj_.data(), block_cols_.data(),
                            values_.data(), x, y, br);
}

void
Bcsr3Matrix::multiplyRowList(const double *x, double *y,
                             const std::int64_t *rows,
                             std::int64_t num_rows) const
{
    for (std::int64_t i = 0; i < num_rows; ++i)
        multiplyOneBlockRow(xadj_.data(), block_cols_.data(),
                            values_.data(), x, y, rows[i]);
}

void
Bcsr3Matrix::multiplyRowsFusedStep(const StepUpdate &su,
                                   std::int64_t row_begin,
                                   std::int64_t row_end,
                                   StepPartials &out) const
{
    for (std::int64_t br = row_begin; br < row_end; ++br) {
        const RowAccum acc = blockRowProduct(
            xadj_.data(), block_cols_.data(), values_.data(), su.u, br);
        const std::int64_t i = 3 * br;
        out.accumulate(su, i + 0, su.apply(i + 0, acc.a0));
        out.accumulate(su, i + 1, su.apply(i + 1, acc.a1));
        out.accumulate(su, i + 2, su.apply(i + 2, acc.a2));
    }
}

StepPartials
Bcsr3Matrix::multiplyFusedStep(const StepUpdate &su) const
{
    StepPartials out;
    multiplyRowsFusedStep(su, 0, block_rows_, out);
    return out;
}

void
Bcsr3Matrix::multiply(const double *x, double *y) const
{
    multiplyRows(x, y, 0, block_rows_);
}

std::vector<double>
Bcsr3Matrix::multiply(const std::vector<double> &x) const
{
    QUAKE_EXPECT(static_cast<std::int64_t>(x.size()) == numRows(),
                 "x has " << x.size() << " entries, expected " << numRows());
    std::vector<double> y(static_cast<std::size_t>(numRows()));
    multiply(x.data(), y.data());
    return y;
}

CsrMatrix
Bcsr3Matrix::toCsr() const
{
    std::vector<std::int64_t> xadj(static_cast<std::size_t>(numRows()) + 1,
                                   0);
    std::vector<std::int32_t> cols;
    std::vector<double> values;
    cols.reserve(static_cast<std::size_t>(nnz()));
    values.reserve(static_cast<std::size_t>(nnz()));

    for (std::int64_t br = 0; br < block_rows_; ++br) {
        for (int sub = 0; sub < 3; ++sub) {
            const std::int64_t row = 3 * br + sub;
            for (std::int64_t k = xadj_[br]; k < xadj_[br + 1]; ++k) {
                const double *b = &values_[9 * k];
                for (int c = 0; c < 3; ++c) {
                    cols.push_back(
                        static_cast<std::int32_t>(3 * block_cols_[k] + c));
                    values.push_back(b[3 * sub + c]);
                }
            }
            xadj[row + 1] = static_cast<std::int64_t>(cols.size());
        }
    }
    return CsrMatrix(numRows(), numRows(), std::move(xadj), std::move(cols),
                     std::move(values));
}

} // namespace quake::sparse
