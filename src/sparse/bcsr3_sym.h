/**
 * @file
 * Symmetric 3x3-block CSR storage — the register-blocked analogue of
 * SymCsrMatrix.  The stiffness matrix K is symmetric (paper §2.2), so
 * only the upper block triangle (diagonal blocks included) is stored;
 * the SMVP visits each stored off-diagonal block once and applies both
 * the block (to y[row]) and its transpose (to y[col]).  Relative to
 * scalar symmetric CSR this replaces nine column indices with one and
 * turns the inner loop into unrolled 3x3 dense arithmetic — the layout
 * the paper's T_f measurements reward.
 */

#ifndef QUAKE98_SPARSE_BCSR3_SYM_H_
#define QUAKE98_SPARSE_BCSR3_SYM_H_

#include <cstdint>
#include <vector>

#include "sparse/bcsr3.h"

namespace quake::sparse
{

/** Symmetric sparse matrix of 3x3 blocks, upper block triangle stored. */
class SymBcsr3Matrix
{
  public:
    SymBcsr3Matrix() = default;

    /**
     * Build from a full BCSR3 matrix; block symmetry (block(j,i) ==
     * block(i,j)^T entrywise within `tolerance`) is checked.
     */
    static SymBcsr3Matrix fromBcsr3(const Bcsr3Matrix &full,
                                    double tolerance = 0.0);

    std::int64_t numBlockRows() const { return block_rows_; }

    /** Scalar dimension (3 per block row). */
    std::int64_t numRows() const { return 3 * block_rows_; }

    /** Stored 3x3 blocks (upper triangle including the diagonal). */
    std::int64_t
    storedBlocks() const
    {
        return static_cast<std::int64_t>(block_cols_.size());
    }

    /** Scalar entries of the stored half: 9 per block. */
    std::int64_t storedEntries() const { return 9 * storedBlocks(); }

    const std::vector<std::int64_t> &xadj() const { return xadj_; }
    const std::vector<std::int32_t> &blockCols() const { return block_cols_; }

    /** The 3x3 block at storage slot k (row-major 9 doubles). */
    const double *blockAt(std::int64_t k) const { return &values_[9 * k]; }

    /** y = A x on scalar vectors of length numRows(); y is overwritten. */
    void multiply(const double *x, double *y) const;

    /**
     * y = A x through the explicitly vectorized scatter kernel (AVX2
     * FMAs for the transposed y[col] updates, vector row accumulators
     * folded by a horizontal sum) when the build and host support it;
     * falls back to the portable scalar scatter otherwise — so this is
     * always safe to call.  The vector path reorders the summation, so
     * its result matches multiply() within ULP tolerance, not bitwise;
     * against itself it is deterministic (the dispatch is fixed per
     * process).  Registered as spark::Kernel::kSymBcsr3Simd.
     */
    void multiplySimd(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /**
     * Scatter the contributions of block rows [row_begin, row_end) into
     * y WITHOUT zeroing it first: y[row] accumulates the row sweep and
     * y[col] the transposed scatter.  This is the building block of the
     * threaded symmetric kernel, where each thread owns a private
     * (cache-line padded) accumulator that is reduced afterwards.
     */
    void multiplyRowsScatter(const double *x, double *y,
                             std::int64_t row_begin,
                             std::int64_t row_end) const;

    /**
     * Fused time step: one ascending sweep over all block rows that
     * computes y = A x (bitwise identical to multiply()) and applies
     * `su` to each block row's DOFs the moment the row is final.  With
     * upper-triangle storage a row's y value is complete right after
     * its own sweep — every transposed scatter into y[r] comes from a
     * row < r — so the update runs while the row is still in cache.
     * `y` is the caller's ku scratch (length numRows()); the scatter
     * needs it, but no second O(n) update pass ever reads it back.
     */
    StepPartials multiplyFusedStep(const StepUpdate &su, double *y) const;

  private:
    std::int64_t block_rows_ = 0;
    std::vector<std::int64_t> xadj_;
    std::vector<std::int32_t> block_cols_;
    std::vector<double> values_; ///< 9 doubles per block, row-major
};

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_BCSR3_SYM_H_
