#include "sparse/assembly.h"

#include <algorithm>

#include "common/error.h"
#include "sparse/elasticity.h"

namespace quake::sparse
{

Bcsr3Matrix
buildStiffnessPattern(const mesh::TetMesh &mesh)
{
    const mesh::NodeAdjacency adj = mesh.buildNodeAdjacency();
    const std::int64_t n = mesh.numNodes();

    // Insert the diagonal block into each row of the adjacency pattern.
    std::vector<std::int64_t> xadj(static_cast<std::size_t>(n) + 1, 0);
    std::vector<std::int32_t> cols;
    cols.reserve(adj.adjncy.size() + static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t begin = adj.xadj[i];
        const std::int64_t end = adj.xadj[i + 1];
        bool inserted = false;
        for (std::int64_t k = begin; k < end; ++k) {
            if (!inserted && adj.adjncy[k] > i) {
                cols.push_back(static_cast<std::int32_t>(i));
                inserted = true;
            }
            cols.push_back(adj.adjncy[k]);
        }
        if (!inserted)
            cols.push_back(static_cast<std::int32_t>(i));
        xadj[i + 1] = static_cast<std::int64_t>(cols.size());
    }
    return Bcsr3Matrix(n, std::move(xadj), std::move(cols));
}

Bcsr3Matrix
assembleStiffness(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
                  double poisson)
{
    Bcsr3Matrix k = buildStiffnessPattern(mesh);

    for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
        const mesh::Tet &e = mesh.tet(t);
        const mesh::Vec3 &a = mesh.node(e.v[0]);
        const mesh::Vec3 &b = mesh.node(e.v[1]);
        const mesh::Vec3 &c = mesh.node(e.v[2]);
        const mesh::Vec3 &d = mesh.node(e.v[3]);

        const mesh::Vec3 centroid = mesh::tetCentroid(a, b, c, d);
        const Material mat = Material::fromShearWave(
            model.shearWaveSpeed(centroid), model.density(centroid),
            poisson);

        const ElementStiffness ke = elementStiffness(a, b, c, d, mat);
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                k.addToBlock(e.v[i], e.v[j], ke.blocks[i][j]);
    }
    return k;
}

std::vector<double>
assembleLumpedMass(const mesh::TetMesh &mesh, const mesh::SoilModel &model)
{
    std::vector<double> mass(static_cast<std::size_t>(3 * mesh.numNodes()),
                             0.0);
    for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
        const mesh::Tet &e = mesh.tet(t);
        const mesh::Vec3 centroid = mesh.tetCentroidOf(t);
        const double node_mass = elementLumpedMass(
            mesh.node(e.v[0]), mesh.node(e.v[1]), mesh.node(e.v[2]),
            mesh.node(e.v[3]), model.density(centroid));
        for (mesh::NodeId v : e.v)
            for (int dof = 0; dof < 3; ++dof)
                mass[3 * static_cast<std::size_t>(v) + dof] += node_mass;
    }
    return mass;
}

double
bytesPerNode(const Bcsr3Matrix &stiffness, int num_vectors)
{
    QUAKE_EXPECT(stiffness.numBlockRows() > 0, "empty matrix");
    const double n = static_cast<double>(stiffness.numBlockRows());
    const double value_bytes = 9.0 * 8.0 * stiffness.numBlocks();
    const double index_bytes = 4.0 * stiffness.numBlocks() + 8.0 * (n + 1);
    const double vector_bytes = 8.0 * 3.0 * n * num_vectors;
    return (value_bytes + index_bytes + vector_bytes) / n;
}

} // namespace quake::sparse
