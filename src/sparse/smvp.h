/**
 * @file
 * Sparse matrix-vector product kernel variants, in the spirit of the
 * Spark98 suite the paper's postscript points to.  All kernels compute
 * y = A x for the same matrix; they differ in storage (scalar CSR, 3x3
 * block CSR, symmetric half storage) and therefore in memory traffic —
 * which is what makes the sustained rate T_f^-1 (paper §3.1) a measured
 * property rather than a datasheet number.
 */

#ifndef QUAKE98_SPARSE_SMVP_H_
#define QUAKE98_SPARSE_SMVP_H_

#include <cstdint>
#include <vector>

#include "sparse/bcsr3.h"
#include "sparse/csr.h"

namespace quake::sparse
{

/**
 * Symmetric sparse matrix stored as the upper triangle (diagonal
 * included) in CSR form.  The SMVP visits each stored off-diagonal entry
 * once and scatters to both y[row] and y[col], halving the value traffic
 * relative to full CSR — the classic Spark98 "smv" layout.
 */
class SymCsrMatrix
{
  public:
    SymCsrMatrix() = default;

    /** Build from a full symmetric CSR matrix (symmetry is checked). */
    static SymCsrMatrix fromCsr(const CsrMatrix &full,
                                double tolerance = 0.0);

    std::int64_t numRows() const { return rows_; }

    /** Stored entries (upper triangle including the diagonal). */
    std::int64_t
    storedEntries() const
    {
        return static_cast<std::int64_t>(values_.size());
    }

    /**
     * y = A x; y is overwritten.  Flops: 2 per logical nonzero, i.e. the
     * same arithmetic as full CSR but with roughly half the value loads.
     */
    void multiply(const double *x, double *y) const;

    /** Convenience overload on vectors; sizes are checked. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Exact flop count of multiply(). */
    std::int64_t flopsPerMultiply() const;

  private:
    std::int64_t rows_ = 0;
    std::vector<std::int64_t> xadj_;
    std::vector<std::int32_t> cols_;
    std::vector<double> values_;
};

/** y = A x with A in scalar CSR form (arrays must be sized correctly). */
void smvpCsr(const CsrMatrix &a, const double *x, double *y);

/** y = A x with A in 3x3 block CSR form. */
void smvpBcsr3(const Bcsr3Matrix &a, const double *x, double *y);

/** y = A x with A in symmetric half storage. */
void smvpSym(const SymCsrMatrix &a, const double *x, double *y);

} // namespace quake::sparse

#endif // QUAKE98_SPARSE_SMVP_H_
