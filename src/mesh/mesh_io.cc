#include "mesh/mesh_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/error.h"

namespace quake::mesh
{

void
writeNodeFile(const TetMesh &mesh, std::ostream &os)
{
    os << mesh.numNodes() << " 3 0 0\n";
    os << std::setprecision(17);
    for (NodeId i = 0; i < mesh.numNodes(); ++i) {
        const Vec3 &p = mesh.node(i);
        os << i << ' ' << p.x << ' ' << p.y << ' ' << p.z << '\n';
    }
}

void
writeEleFile(const TetMesh &mesh, std::ostream &os)
{
    os << mesh.numElements() << " 4 0\n";
    for (TetId t = 0; t < mesh.numElements(); ++t) {
        const Tet &e = mesh.tet(t);
        os << t << ' ' << e.v[0] << ' ' << e.v[1] << ' ' << e.v[2] << ' '
           << e.v[3] << '\n';
    }
}

void
writeMesh(const TetMesh &mesh, const std::string &path_prefix)
{
    // errno is captured immediately after each failed open so the
    // diagnostic names the OS-level cause (permissions, missing
    // directory, read-only filesystem), not just the path.
    std::ofstream node_os(path_prefix + ".node");
    std::string why = common::errnoMessage();
    QUAKE_EXPECT(node_os.good(), "cannot open " << path_prefix
                                                << ".node for writing: "
                                                << why);
    writeNodeFile(mesh, node_os);

    std::ofstream ele_os(path_prefix + ".ele");
    why = common::errnoMessage();
    QUAKE_EXPECT(ele_os.good(), "cannot open " << path_prefix
                                               << ".ele for writing: "
                                               << why);
    writeEleFile(mesh, ele_os);
}

namespace
{

/**
 * Largest node/element count a header may declare.  A corrupt header
 * (garbage bytes parsed as a huge integer) must fail here with a clear
 * diagnostic instead of driving a multi-terabyte allocation.
 */
constexpr std::int64_t kMaxDeclaredCount = 1'000'000'000;

/** Read one non-empty, non-comment line into an istringstream. */
bool
nextRecord(std::istream &is, std::istringstream &record)
{
    std::string line;
    while (std::getline(is, line)) {
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        record.clear();
        record.str(line);
        return true;
    }
    return false;
}

} // namespace

TetMesh
readMesh(std::istream &node_is, std::istream &ele_is)
{
    TetMesh mesh;
    std::istringstream record;

    // --- .node header: <#points> <dim> [#attrs [#markers]] ---
    QUAKE_EXPECT(nextRecord(node_is, record), ".node file is empty");
    std::int64_t n_points = 0;
    int dim = 0;
    QUAKE_EXPECT(static_cast<bool>(record >> n_points >> dim),
                 "malformed .node header (non-numeric point count or "
                 "dimension): '"
                     << record.str() << "'");
    QUAKE_EXPECT(dim == 3, ".node dimension must be 3, got " << dim);
    QUAKE_EXPECT(n_points >= 0,
                 "negative .node point count " << n_points);
    QUAKE_EXPECT(n_points <= kMaxDeclaredCount,
                 ".node point count " << n_points
                                      << " exceeds the supported maximum "
                                      << kMaxDeclaredCount
                                      << " (corrupt header?)");

    long long first_index = 0;
    for (std::int64_t i = 0; i < n_points; ++i) {
        QUAKE_EXPECT(nextRecord(node_is, record),
                     ".node file truncated at point " << i << " of "
                                                      << n_points);
        long long idx = 0;
        Vec3 p;
        QUAKE_EXPECT(static_cast<bool>(record >> idx >> p.x >> p.y >> p.z),
                     "malformed .node record " << i
                                               << " (non-numeric token): '"
                                               << record.str() << "'");
        QUAKE_EXPECT(std::isfinite(p.x) && std::isfinite(p.y) &&
                         std::isfinite(p.z),
                     ".node record " << i
                                     << " has a non-finite coordinate");
        if (i == 0) {
            QUAKE_EXPECT(idx == 0 || idx == 1,
                         "first point index must be 0 or 1, got " << idx);
            first_index = idx;
        }
        QUAKE_EXPECT(idx == first_index + i,
                     ".node indices must be consecutive");
        mesh.addNode(p);
    }

    // --- .ele header: <#tets> <nodes-per-tet> [#attrs] ---
    QUAKE_EXPECT(nextRecord(ele_is, record), ".ele file is empty");
    std::int64_t n_tets = 0;
    int per_tet = 0;
    QUAKE_EXPECT(static_cast<bool>(record >> n_tets >> per_tet),
                 "malformed .ele header (non-numeric element count or "
                 "node count): '"
                     << record.str() << "'");
    QUAKE_EXPECT(per_tet == 4,
                 ".ele must have 4 nodes per tet, got " << per_tet);
    QUAKE_EXPECT(n_tets >= 0, "negative .ele element count " << n_tets);
    QUAKE_EXPECT(n_tets <= kMaxDeclaredCount,
                 ".ele element count " << n_tets
                                       << " exceeds the supported maximum "
                                       << kMaxDeclaredCount
                                       << " (corrupt header?)");

    for (std::int64_t t = 0; t < n_tets; ++t) {
        QUAKE_EXPECT(nextRecord(ele_is, record),
                     ".ele file truncated at element " << t << " of "
                                                       << n_tets);
        long long idx = 0;
        long long v[4];
        QUAKE_EXPECT(static_cast<bool>(record >> idx >> v[0] >> v[1] >>
                                       v[2] >> v[3]),
                     "malformed .ele record " << t
                                              << " (non-numeric token): '"
                                              << record.str() << "'");
        for (long long &vi : v) {
            vi -= first_index;
            QUAKE_EXPECT(vi >= 0 && vi < n_points,
                         ".ele record " << t << " vertex index "
                                        << vi + first_index
                                        << " out of range [" << first_index
                                        << ", " << first_index + n_points
                                        << ")");
        }
        mesh.addTet(static_cast<NodeId>(v[0]), static_cast<NodeId>(v[1]),
                    static_cast<NodeId>(v[2]), static_cast<NodeId>(v[3]));
    }
    return mesh;
}

TetMesh
readMesh(const std::string &path_prefix)
{
    std::ifstream node_is(path_prefix + ".node");
    std::string why = common::errnoMessage();
    QUAKE_EXPECT(node_is.good(),
                 "cannot open " << path_prefix << ".node: " << why);
    std::ifstream ele_is(path_prefix + ".ele");
    why = common::errnoMessage();
    QUAKE_EXPECT(ele_is.good(),
                 "cannot open " << path_prefix << ".ele: " << why);
    return readMesh(node_is, ele_is);
}

} // namespace quake::mesh
