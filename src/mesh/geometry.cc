#include "mesh/geometry.h"

namespace quake::mesh
{

std::array<double, 6>
tetEdgeLengths(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    const std::array<const Vec3 *, 4> v = {&a, &b, &c, &d};
    std::array<double, 6> lengths{};
    for (std::size_t e = 0; e < kTetEdges.size(); ++e) {
        const Vec3 diff = *v[kTetEdges[e][1]] - *v[kTetEdges[e][0]];
        lengths[e] = diff.norm();
    }
    return lengths;
}

int
tetLongestEdge(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    const std::array<const Vec3 *, 4> v = {&a, &b, &c, &d};
    int best = 0;
    double best_len2 = -1.0;
    for (std::size_t e = 0; e < kTetEdges.size(); ++e) {
        const Vec3 diff = *v[kTetEdges[e][1]] - *v[kTetEdges[e][0]];
        const double len2 = diff.norm2();
        if (len2 > best_len2) {
            best_len2 = len2;
            best = static_cast<int>(e);
        }
    }
    return best;
}

double
tetQuality(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    const double vol = tetVolume(a, b, c, d);
    const auto lengths = tetEdgeLengths(a, b, c, d);
    double sum_len2 = 0.0;
    for (double len : lengths)
        sum_len2 += len * len;
    if (sum_len2 <= 0.0)
        return 0.0;
    // Normalized so the regular tetrahedron scores exactly 1.
    return 12.0 * std::pow(3.0 * vol, 2.0 / 3.0) / sum_len2;
}

double
tetSurfaceArea(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    const std::array<const Vec3 *, 4> v = {&a, &b, &c, &d};
    double area = 0.0;
    for (const auto &face : kTetFaces) {
        const Vec3 &p = *v[face[0]];
        const Vec3 &q = *v[face[1]];
        const Vec3 &r = *v[face[2]];
        area += 0.5 * (q - p).cross(r - p).norm();
    }
    return area;
}

} // namespace quake::mesh
