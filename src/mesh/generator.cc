#include "mesh/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace quake::mesh
{

std::string
sfClassName(SfClass cls)
{
    switch (cls) {
      case SfClass::kSf20: return "sf20";
      case SfClass::kSf10: return "sf10";
      case SfClass::kSf5: return "sf5";
      case SfClass::kSf2: return "sf2";
      case SfClass::kSf1: return "sf1";
    }
    QUAKE_PANIC("unknown SfClass");
}

SfClass
sfClassFromName(const std::string &name)
{
    if (name == "sf20")
        return SfClass::kSf20;
    if (name == "sf10")
        return SfClass::kSf10;
    if (name == "sf5")
        return SfClass::kSf5;
    if (name == "sf2")
        return SfClass::kSf2;
    if (name == "sf1")
        return SfClass::kSf1;
    quake::common::fatal("unknown mesh class '" + name +
                         "' (expected sf20|sf10|sf5|sf2|sf1)");
}

double
sfClassPeriod(SfClass cls)
{
    switch (cls) {
      case SfClass::kSf20: return 20.0;
      case SfClass::kSf10: return 10.0;
      case SfClass::kSf5: return 5.0;
      case SfClass::kSf2: return 2.0;
      case SfClass::kSf1: return 1.0;
    }
    QUAKE_PANIC("unknown SfClass");
}

std::int64_t
sfClassPaperNodes(SfClass cls)
{
    switch (cls) {
      case SfClass::kSf20: return 2'000; // extrapolated; not in the paper
      case SfClass::kSf10: return 7'294;
      case SfClass::kSf5: return 30'169;
      case SfClass::kSf2: return 378'747;
      case SfClass::kSf1: return 2'461'694;
    }
    QUAKE_PANIC("unknown SfClass");
}

MeshSpec
MeshSpec::forClass(SfClass cls, double h_scale)
{
    MeshSpec spec;
    spec.periodSeconds = sfClassPeriod(cls);
    spec.hScale = h_scale;
    return spec;
}

void
MeshSpec::validate() const
{
    QUAKE_EXPECT(periodSeconds > 0 && std::isfinite(periodSeconds),
                 "wave period must be positive and finite");
    QUAKE_EXPECT(pointsPerWavelength > 0 &&
                     std::isfinite(pointsPerWavelength),
                 "points per wavelength must be positive and finite");
    QUAKE_EXPECT(hScale > 0 && std::isfinite(hScale),
                 "hScale must be positive and finite");
    QUAKE_EXPECT(hMin > 0 && std::isfinite(hMin),
                 "hMin must be positive and finite");
    QUAKE_EXPECT(coarseNx > 0 && coarseNy > 0 && coarseNz > 0,
                 "coarse lattice resolution must be positive");
    QUAKE_EXPECT(coarseNx <= 1024 && coarseNy <= 1024 && coarseNz <= 1024,
                 "coarse lattice dimension exceeds 1024");
    QUAKE_EXPECT(jitterFraction >= 0 && jitterFraction < 1,
                 "jitter fraction must be in [0, 1)");
    QUAKE_EXPECT(refine.maxElements > 0,
                 "refinement element cap must be positive");
    QUAKE_EXPECT(refine.maxPasses >= 0,
                 "refinement pass cap must be non-negative");
}

TetMesh
buildKuhnLattice(const Aabb &box, int nx, int ny, int nz)
{
    QUAKE_EXPECT(nx > 0 && ny > 0 && nz > 0,
                 "lattice resolution must be positive");
    QUAKE_EXPECT(static_cast<std::int64_t>(nx + 1) * (ny + 1) * (nz + 1) <=
                     std::numeric_limits<NodeId>::max(),
                 "lattice resolution overflows node ids");
    TetMesh mesh;
    const Vec3 ext = box.extent();
    const double dx = ext.x / nx;
    const double dy = ext.y / ny;
    const double dz = ext.z / nz;

    auto nodeId = [&](int i, int j, int k) {
        return static_cast<NodeId>((static_cast<std::int64_t>(k) * (ny + 1) +
                                    j) * (nx + 1) + i);
    };

    mesh.reserve(static_cast<std::int64_t>(nx + 1) * (ny + 1) * (nz + 1),
                 static_cast<std::int64_t>(nx) * ny * nz * 6);
    for (int k = 0; k <= nz; ++k)
        for (int j = 0; j <= ny; ++j)
            for (int i = 0; i <= nx; ++i)
                mesh.addNode(Vec3{box.lo.x + i * dx, box.lo.y + j * dy,
                                  box.lo.z + k * dz});

    // The six permutations of the axes: each defines one Kuhn simplex as a
    // monotone lattice path from corner (0,0,0) to corner (1,1,1).
    static constexpr int kPerms[6][3] = {
        {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
    };

    for (int k = 0; k < nz; ++k) {
        for (int j = 0; j < ny; ++j) {
            for (int i = 0; i < nx; ++i) {
                for (const auto &perm : kPerms) {
                    int corner[3] = {i, j, k};
                    NodeId verts[4];
                    verts[0] = nodeId(corner[0], corner[1], corner[2]);
                    for (int step = 0; step < 3; ++step) {
                        ++corner[perm[step]];
                        verts[step + 1] =
                            nodeId(corner[0], corner[1], corner[2]);
                    }
                    // Normalize orientation so the signed volume is
                    // positive (half of the permutations are mirrored).
                    const double vol = tetSignedVolume(
                        mesh.node(verts[0]), mesh.node(verts[1]),
                        mesh.node(verts[2]), mesh.node(verts[3]));
                    if (vol < 0)
                        std::swap(verts[2], verts[3]);
                    mesh.addTet(verts[0], verts[1], verts[2], verts[3]);
                }
            }
        }
    }
    return mesh;
}

namespace
{

/**
 * Random bounded perturbation of interior vertices.  Boundary vertices
 * keep their clamped coordinates (face nodes move within the face, edge
 * nodes along the edge, corners stay fixed) so the domain box is exact.
 * A move is accepted only if every incident element keeps at least a
 * quarter of its signed volume, which both prevents inversion and bounds
 * quality loss.
 */
void
jitterMesh(TetMesh &mesh, const Aabb &box, double fraction,
           std::uint64_t seed, std::int64_t &accepted,
           std::int64_t &reverted)
{
    accepted = 0;
    reverted = 0;
    if (fraction <= 0)
        return;

    const std::int64_t n = mesh.numNodes();
    const std::int64_t m = mesh.numElements();

    // Node -> incident elements (CSR).
    std::vector<std::int32_t> tet_count(static_cast<std::size_t>(n) + 1, 0);
    for (TetId t = 0; t < m; ++t)
        for (NodeId v : mesh.tet(t).v)
            ++tet_count[v + 1];
    std::vector<std::int64_t> tet_xadj(static_cast<std::size_t>(n) + 1, 0);
    for (std::int64_t i = 0; i < n; ++i)
        tet_xadj[i + 1] = tet_xadj[i] + tet_count[i + 1];
    std::vector<TetId> tet_adj(static_cast<std::size_t>(tet_xadj[n]));
    {
        std::vector<std::int64_t> cursor(tet_xadj.begin(),
                                         tet_xadj.end() - 1);
        for (TetId t = 0; t < m; ++t)
            for (NodeId v : mesh.tet(t).v)
                tet_adj[cursor[v]++] = t;
    }

    const double eps = 1e-9 * box.extent().norm();
    quake::common::SplitMix64 rng(seed);

    for (NodeId v = 0; v < n; ++v) {
        const Vec3 old_pos = mesh.node(v);

        // Shortest incident edge bounds the jitter radius.
        double min_edge2 = std::numeric_limits<double>::infinity();
        for (std::int64_t ti = tet_xadj[v]; ti < tet_xadj[v + 1]; ++ti) {
            const Tet &t = mesh.tet(tet_adj[ti]);
            for (NodeId w : t.v) {
                if (w == v)
                    continue;
                min_edge2 = std::min(
                    min_edge2, (mesh.node(w) - old_pos).norm2());
            }
        }
        if (!std::isfinite(min_edge2))
            continue; // isolated node: nothing to do

        const double radius = fraction * std::sqrt(min_edge2);
        Vec3 delta{rng.uniform(-radius, radius),
                   rng.uniform(-radius, radius),
                   rng.uniform(-radius, radius)};

        // Freeze coordinates clamped to the domain boundary.
        if (std::fabs(old_pos.x - box.lo.x) < eps ||
            std::fabs(old_pos.x - box.hi.x) < eps)
            delta.x = 0;
        if (std::fabs(old_pos.y - box.lo.y) < eps ||
            std::fabs(old_pos.y - box.hi.y) < eps)
            delta.y = 0;
        if (std::fabs(old_pos.z - box.lo.z) < eps ||
            std::fabs(old_pos.z - box.hi.z) < eps)
            delta.z = 0;
        if (delta.norm2() == 0)
            continue;

        // Record current signed volumes, then trial-move.
        bool ok = true;
        mesh.node(v) = old_pos + delta;
        for (std::int64_t ti = tet_xadj[v]; ti < tet_xadj[v + 1]; ++ti) {
            const Tet &t = mesh.tet(tet_adj[ti]);
            const double new_vol = tetSignedVolume(
                mesh.node(t.v[0]), mesh.node(t.v[1]), mesh.node(t.v[2]),
                mesh.node(t.v[3]));
            mesh.node(v) = old_pos;
            const double old_vol = tetSignedVolume(
                mesh.node(t.v[0]), mesh.node(t.v[1]), mesh.node(t.v[2]),
                mesh.node(t.v[3]));
            mesh.node(v) = old_pos + delta;
            if (!(new_vol > 0.25 * old_vol)) {
                ok = false;
                break;
            }
        }
        if (ok) {
            ++accepted;
        } else {
            mesh.node(v) = old_pos;
            ++reverted;
        }
    }
}

} // namespace

GeneratedMesh
generateMesh(const SoilModel &model, const MeshSpec &spec)
{
    spec.validate();

    const Aabb box = model.domain();
    const Vec3 ext = box.extent();
    QUAKE_EXPECT(ext.x > 0 && ext.y > 0 && ext.z > 0,
                 "soil model domain has zero extent "
                 "(would generate zero elements)");
    GeneratedMesh out;
    out.mesh = buildKuhnLattice(box, spec.coarseNx, spec.coarseNy,
                                spec.coarseNz);

    // Target edge length: wavelength / points-per-wavelength, clamped.
    const double scale =
        spec.hScale * spec.periodSeconds / spec.pointsPerWavelength;
    SizeField h = [&model, scale, hmin = spec.hMin](const Vec3 &p) {
        return std::max(hmin, model.shearWaveSpeed(p) * scale);
    };

    out.refineReport = refineToSizeField(out.mesh, h, spec.refine);
    jitterMesh(out.mesh, box, spec.jitterFraction, spec.seed,
               out.jitterAccepted, out.jitterReverted);
    out.mesh.validate();
    return out;
}

GeneratedMesh
generateSfMesh(SfClass cls, double h_scale)
{
    const LayeredBasinModel model;
    return generateMesh(model, MeshSpec::forClass(cls, h_scale));
}

} // namespace quake::mesh
