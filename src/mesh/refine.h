/**
 * @file
 * Graded conforming mesh refinement by longest-edge bisection.
 *
 * This plays the role of the guaranteed-quality Delaunay mesh generation in
 * the Archimedes tool chain (Shewchuk's thesis, paper ref [18]): it turns a
 * coarse conforming tetrahedral mesh into a graded unstructured mesh whose
 * local element size tracks a user-supplied size field h(p).
 *
 * Algorithm.  Repeated passes of Rivara-style longest-edge bisection:
 *  1. Mark the longest edge of every element whose longest edge exceeds
 *     the size field at the element centroid.
 *  2. Propagate: any element incident to a marked edge that is not its own
 *     longest edge marks its own longest edge too (iterate to fixpoint;
 *     terminates because each newly marked edge is strictly longer).
 *  3. Split marked edges longest-first.  A split inserts the edge midpoint
 *     and bisects *every* incident element, which keeps the mesh conforming
 *     with no hanging nodes.  An edge whose incidence list has been
 *     invalidated by an earlier split in the same pass is deferred to the
 *     next pass.
 */

#ifndef QUAKE98_MESH_REFINE_H_
#define QUAKE98_MESH_REFINE_H_

#include <cstdint>
#include <functional>

#include "mesh/tet_mesh.h"

namespace quake::mesh
{

/** Target edge length (km) as a function of position. */
using SizeField = std::function<double(const Vec3 &)>;

/** Controls for the refinement loop. */
struct RefineOptions
{
    /** Hard cap on refinement sweeps; generation stops cleanly at it. */
    int maxPasses = 60;

    /** Hard cap on element count; generation stops cleanly at it. */
    std::int64_t maxElements = 40'000'000;
};

/** What the refiner did (reported by the generator and checked in tests). */
struct RefineReport
{
    int passes = 0;               ///< sweeps executed
    std::int64_t splits = 0;      ///< edge bisections performed
    bool reachedElementCap = false;
    bool reachedPassCap = false;
};

/**
 * Refine `mesh` in place until every element's longest edge is at most
 * h(centroid), subject to the caps in `options`.  The input mesh must be
 * conforming; the output mesh is conforming.
 *
 * @param mesh    Mesh to refine (modified in place).
 * @param h       Target edge-length field; must be strictly positive.
 * @param options Pass/element caps.
 * @return        Statistics about the refinement run.
 */
RefineReport refineToSizeField(TetMesh &mesh, const SizeField &h,
                               const RefineOptions &options = {});

} // namespace quake::mesh

#endif // QUAKE98_MESH_REFINE_H_
