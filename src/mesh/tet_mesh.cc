#include "mesh/tet_mesh.h"

#include <algorithm>

#include "common/error.h"

namespace quake::mesh
{

Vec3
TetMesh::tetCentroidOf(TetId t) const
{
    const Tet &e = tets_[t];
    return tetCentroid(nodes_[e.v[0]], nodes_[e.v[1]], nodes_[e.v[2]],
                       nodes_[e.v[3]]);
}

double
TetMesh::tetVolumeOf(TetId t) const
{
    const Tet &e = tets_[t];
    return tetVolume(nodes_[e.v[0]], nodes_[e.v[1]], nodes_[e.v[2]],
                     nodes_[e.v[3]]);
}

double
TetMesh::tetQualityOf(TetId t) const
{
    const Tet &e = tets_[t];
    return tetQuality(nodes_[e.v[0]], nodes_[e.v[1]], nodes_[e.v[2]],
                      nodes_[e.v[3]]);
}

Aabb
TetMesh::bounds() const
{
    if (nodes_.empty())
        return Aabb{};
    Aabb box{nodes_.front(), nodes_.front()};
    for (const Vec3 &p : nodes_)
        box.expand(p);
    return box;
}

NodeAdjacency
TetMesh::buildNodeAdjacency() const
{
    const std::int64_t n = numNodes();
    NodeAdjacency adj;
    adj.xadj.assign(static_cast<std::size_t>(n) + 1, 0);

    // Pass 1: count directed edge instances per node (with duplicates).
    for (const Tet &t : tets_) {
        for (const auto &e : kTetEdges) {
            ++adj.xadj[t.v[e[0]] + 1];
            ++adj.xadj[t.v[e[1]] + 1];
        }
    }
    for (std::int64_t i = 0; i < n; ++i)
        adj.xadj[i + 1] += adj.xadj[i];

    // Pass 2: scatter neighbour instances.
    std::vector<NodeId> raw(static_cast<std::size_t>(adj.xadj[n]));
    std::vector<std::int64_t> cursor(adj.xadj.begin(), adj.xadj.end() - 1);
    for (const Tet &t : tets_) {
        for (const auto &e : kTetEdges) {
            const NodeId a = t.v[e[0]];
            const NodeId b = t.v[e[1]];
            raw[cursor[a]++] = b;
            raw[cursor[b]++] = a;
        }
    }

    // Pass 3: sort + dedupe each neighbour list in place, then compact.
    adj.adjncy.reserve(raw.size() / 4);
    std::int64_t write_row_start = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        auto first = raw.begin() + adj.xadj[i];
        auto last = raw.begin() + adj.xadj[i + 1];
        std::sort(first, last);
        auto unique_end = std::unique(first, last);
        adj.adjncy.insert(adj.adjncy.end(), first, unique_end);
        adj.xadj[i] = write_row_start;
        write_row_start = static_cast<std::int64_t>(adj.adjncy.size());
    }
    adj.xadj[n] = write_row_start;
    return adj;
}

MeshStats
TetMesh::computeStats() const
{
    MeshStats stats;
    stats.numNodes = numNodes();
    stats.numElements = numElements();

    const NodeAdjacency adj = buildNodeAdjacency();
    stats.numEdges = adj.numEdges();
    stats.avgDegree = stats.numNodes > 0
                          ? 2.0 * static_cast<double>(stats.numEdges) /
                                static_cast<double>(stats.numNodes)
                          : 0.0;

    double min_q = 1.0;
    double sum_q = 0.0;
    double volume = 0.0;
    for (TetId t = 0; t < stats.numElements; ++t) {
        const double q = tetQualityOf(t);
        min_q = std::min(min_q, q);
        sum_q += q;
        volume += tetVolumeOf(t);
    }
    stats.minQuality = stats.numElements > 0 ? min_q : 0.0;
    stats.meanQuality =
        stats.numElements > 0
            ? sum_q / static_cast<double>(stats.numElements)
            : 0.0;
    stats.totalVolume = volume;
    return stats;
}

void
TetMesh::validate() const
{
    const std::int64_t n = numNodes();
    for (const Tet &t : tets_) {
        for (int k = 0; k < 4; ++k) {
            QUAKE_REQUIRE(t.v[k] >= 0 && t.v[k] < n,
                          "tet vertex index out of range");
            for (int j = k + 1; j < 4; ++j)
                QUAKE_REQUIRE(t.v[k] != t.v[j],
                              "tet has a repeated vertex");
        }
        const double vol = tetVolume(nodes_[t.v[0]], nodes_[t.v[1]],
                                     nodes_[t.v[2]], nodes_[t.v[3]]);
        QUAKE_REQUIRE(vol > 0.0, "tet has non-positive volume");
    }
}

} // namespace quake::mesh
