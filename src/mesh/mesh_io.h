/**
 * @file
 * Text serialization of tetrahedral meshes in the TetGen/Archimedes style:
 * a `.node` file of vertex coordinates and a `.ele` file of tetrahedra.
 * The Quake mesh suite the paper points to (www.cs.cmu.edu/~quake/) ships
 * meshes in this family of formats, so providing it keeps the library
 * interoperable with surviving artifacts.
 */

#ifndef QUAKE98_MESH_MESH_IO_H_
#define QUAKE98_MESH_MESH_IO_H_

#include <iosfwd>
#include <string>

#include "mesh/tet_mesh.h"

namespace quake::mesh
{

/**
 * Write mesh vertices in .node format:
 *   <#points> 3 0 0
 *   <index> <x> <y> <z>
 * Indices are zero-based.
 */
void writeNodeFile(const TetMesh &mesh, std::ostream &os);

/**
 * Write mesh elements in .ele format:
 *   <#tetrahedra> 4 0
 *   <index> <v0> <v1> <v2> <v3>
 * Indices are zero-based.
 */
void writeEleFile(const TetMesh &mesh, std::ostream &os);

/** Write both files under `path_prefix` + ".node" / ".ele". */
void writeMesh(const TetMesh &mesh, const std::string &path_prefix);

/**
 * Read a mesh from .node/.ele streams.  Accepts zero- or one-based vertex
 * indexing (detected from the first point's index, per TetGen convention).
 * Throws FatalError on malformed input.
 */
TetMesh readMesh(std::istream &node_is, std::istream &ele_is);

/** Read both files from `path_prefix` + ".node" / ".ele". */
TetMesh readMesh(const std::string &path_prefix);

} // namespace quake::mesh

#endif // QUAKE98_MESH_MESH_IO_H_
