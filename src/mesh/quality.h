/**
 * @file
 * Mesh quality metrics beyond the mean-ratio measure: dihedral angles
 * (the quantity Shewchuk's Delaunay refinement — the generator behind
 * the real Quake meshes, ref [18] — provides guarantees on) and a
 * quality histogram for reporting.
 */

#ifndef QUAKE98_MESH_QUALITY_H_
#define QUAKE98_MESH_QUALITY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/tet_mesh.h"

namespace quake::mesh
{

/** The six dihedral angles (radians) of tetrahedron (a, b, c, d). */
std::array<double, 6> tetDihedralAngles(const Vec3 &a, const Vec3 &b,
                                        const Vec3 &c, const Vec3 &d);

/** Extremes of dihedral angles and shape quality over a mesh. */
struct QualityReport
{
    double minDihedralRad = 0.0; ///< worst small angle (slivers -> 0)
    double maxDihedralRad = 0.0; ///< worst large angle (caps -> pi)
    double minQuality = 0.0;     ///< mean-ratio minimum
    double meanQuality = 0.0;

    /**
     * Histogram of element mean-ratio quality over [0, 1] in
     * `buckets.size()` equal bins.
     */
    std::vector<std::int64_t> buckets;
};

/**
 * Scan the mesh and report quality extremes plus a quality histogram
 * with `num_buckets` bins.
 */
QualityReport computeQualityReport(const TetMesh &mesh,
                                   int num_buckets = 10);

} // namespace quake::mesh

#endif // QUAKE98_MESH_QUALITY_H_
