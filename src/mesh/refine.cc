#include "mesh/refine.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace quake::mesh
{

namespace
{

/** Canonical 64-bit key for an undirected edge (a, b). */
std::uint64_t
edgeKey(NodeId a, NodeId b)
{
    const std::uint32_t lo = static_cast<std::uint32_t>(std::min(a, b));
    const std::uint32_t hi = static_cast<std::uint32_t>(std::max(a, b));
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/** Longest edge of a tet given current node positions. */
struct LongestEdge
{
    std::uint64_t key;
    NodeId a;
    NodeId b;
    double len2;
};

LongestEdge
longestEdgeOf(const Tet &t, const std::vector<Vec3> &nodes)
{
    LongestEdge best{0, 0, 0, -1.0};
    for (const auto &e : kTetEdges) {
        const NodeId a = t.v[e[0]];
        const NodeId b = t.v[e[1]];
        const double len2 = (nodes[b] - nodes[a]).norm2();
        if (len2 > best.len2)
            best = LongestEdge{edgeKey(a, b), a, b, len2};
    }
    return best;
}

} // namespace

RefineReport
refineToSizeField(TetMesh &mesh, const SizeField &h,
                  const RefineOptions &options)
{
    RefineReport report;

    // Working copy of the element list with liveness flags; nodes are
    // appended directly to the mesh as midpoints are created.
    std::vector<Tet> tets(mesh.tets().begin(), mesh.tets().end());
    std::vector<char> alive(tets.size(), 1);
    std::int64_t alive_count = static_cast<std::int64_t>(tets.size());

    auto sizeAt = [&](const Vec3 &p) {
        const double hv = h(p);
        QUAKE_EXPECT(hv > 0.0, "size field must be strictly positive");
        return hv;
    };

    for (int pass = 0; pass < options.maxPasses; ++pass) {
        const std::vector<Vec3> &nodes = mesh.nodes();

        // --- Step 1: mark the longest edge of every oversized element. ---
        std::unordered_map<std::uint64_t, double> marked;
        marked.reserve(tets.size() / 4 + 16);
        for (std::size_t ti = 0; ti < tets.size(); ++ti) {
            if (!alive[ti])
                continue;
            const Tet &t = tets[ti];
            const LongestEdge le = longestEdgeOf(t, nodes);
            const Vec3 c = tetCentroid(nodes[t.v[0]], nodes[t.v[1]],
                                       nodes[t.v[2]], nodes[t.v[3]]);
            const double target = sizeAt(c);
            if (le.len2 > target * target)
                marked.emplace(le.key, le.len2);
        }
        if (marked.empty())
            break;

        // --- Step 2: Rivara propagation to a fixpoint.  Any element that
        // touches a marked edge must also mark its own longest edge, so
        // that elements are (almost) always bisected by their longest
        // edge, which bounds shape degradation. ---
        bool grew = true;
        while (grew) {
            grew = false;
            for (std::size_t ti = 0; ti < tets.size(); ++ti) {
                if (!alive[ti])
                    continue;
                const Tet &t = tets[ti];
                bool touches_marked = false;
                for (const auto &e : kTetEdges) {
                    if (marked.count(edgeKey(t.v[e[0]], t.v[e[1]]))) {
                        touches_marked = true;
                        break;
                    }
                }
                if (!touches_marked)
                    continue;
                const LongestEdge le = longestEdgeOf(t, nodes);
                if (marked.emplace(le.key, le.len2).second)
                    grew = true;
            }
        }

        // --- Step 3: build incidence lists for the marked edges. ---
        std::unordered_map<std::uint64_t, std::vector<std::int32_t>>
            incidence;
        incidence.reserve(marked.size());
        for (std::size_t ti = 0; ti < tets.size(); ++ti) {
            if (!alive[ti])
                continue;
            const Tet &t = tets[ti];
            for (const auto &e : kTetEdges) {
                const std::uint64_t key = edgeKey(t.v[e[0]], t.v[e[1]]);
                if (marked.count(key))
                    incidence[key].push_back(static_cast<std::int32_t>(ti));
            }
        }

        // --- Step 4: split longest-first.  A split is atomic across all
        // elements incident to the edge, which preserves conformity; if
        // any incident element already died this pass, the edge is
        // deferred to the next pass. ---
        std::vector<std::pair<double, std::uint64_t>> order;
        order.reserve(marked.size());
        for (const auto &[key, len2] : marked)
            order.emplace_back(len2, key);
        std::sort(order.begin(), order.end(),
                  [](const auto &x, const auto &y) {
                      return x.first > y.first ||
                             (x.first == y.first && x.second < y.second);
                  });

        for (const auto &[len2, key] : order) {
            (void)len2;
            const auto inc_it = incidence.find(key);
            QUAKE_REQUIRE(inc_it != incidence.end() &&
                              !inc_it->second.empty(),
                          "marked edge has no incident elements");
            const std::vector<std::int32_t> &incident = inc_it->second;
            bool all_alive = true;
            for (std::int32_t ti : incident) {
                if (!alive[ti]) {
                    all_alive = false;
                    break;
                }
            }
            if (!all_alive)
                continue; // deferred to the next pass

            const NodeId na = static_cast<NodeId>(key >> 32);
            const NodeId nb = static_cast<NodeId>(key & 0xffffffffULL);
            const NodeId mid =
                mesh.addNode((mesh.node(na) + mesh.node(nb)) * 0.5);

            for (std::int32_t ti : incident) {
                Tet child_a = tets[ti]; // will hold endpoint a + midpoint
                Tet child_b = tets[ti]; // will hold endpoint b + midpoint
                for (int k = 0; k < 4; ++k) {
                    if (child_a.v[k] == nb)
                        child_a.v[k] = mid;
                    if (child_b.v[k] == na)
                        child_b.v[k] = mid;
                }
                alive[ti] = 0;
                tets.push_back(child_a);
                alive.push_back(1);
                tets.push_back(child_b);
                alive.push_back(1);
                ++alive_count;
                ++report.splits;
            }
            if (alive_count >= options.maxElements) {
                report.reachedElementCap = true;
                break;
            }
        }

        ++report.passes;
        if (report.reachedElementCap)
            break;
        if (pass + 1 == options.maxPasses)
            report.reachedPassCap = true;
    }

    // Compact the live elements back into the mesh.
    std::vector<Tet> live;
    live.reserve(static_cast<std::size_t>(alive_count));
    for (std::size_t ti = 0; ti < tets.size(); ++ti)
        if (alive[ti])
            live.push_back(tets[ti]);
    mesh.assignTets(std::move(live));
    return report;
}

} // namespace quake::mesh
