/**
 * @file
 * The unstructured tetrahedral mesh at the heart of the Quake applications
 * (paper §2.1): nodes (vertices), elements (tetrahedra), and the derived
 * node-adjacency structure whose edges define the sparsity pattern of the
 * stiffness matrix K.
 */

#ifndef QUAKE98_MESH_TET_MESH_H_
#define QUAKE98_MESH_TET_MESH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/geometry.h"

namespace quake::mesh
{

/** Index of a mesh node (vertex).  Meshes up to ~2 billion nodes. */
using NodeId = std::int32_t;

/** Index of a mesh element (tetrahedron). */
using TetId = std::int32_t;

/** A tetrahedral element: four node indices. */
struct Tet
{
    std::array<NodeId, 4> v{};
};

/**
 * Node-to-node adjacency in compressed sparse row form.  Neighbour lists
 * are sorted and deduplicated and exclude the node itself; this is exactly
 * the off-diagonal block sparsity pattern of the stiffness matrix.
 */
struct NodeAdjacency
{
    /** Row offsets; size numNodes + 1. */
    std::vector<std::int64_t> xadj;
    /** Concatenated sorted neighbour lists. */
    std::vector<NodeId> adjncy;

    /** Number of undirected mesh edges. */
    std::int64_t
    numEdges() const
    {
        return static_cast<std::int64_t>(adjncy.size()) / 2;
    }

    /** Number of neighbours of node n (excluding n itself). */
    int
    degree(NodeId n) const
    {
        return static_cast<int>(xadj[n + 1] - xadj[n]);
    }
};

/** Aggregate statistics of a mesh (reported by bench_fig2_mesh_sizes). */
struct MeshStats
{
    std::int64_t numNodes = 0;
    std::int64_t numElements = 0;
    std::int64_t numEdges = 0;
    double avgDegree = 0.0;   ///< mean neighbours per node (paper: ~13)
    double minQuality = 0.0;  ///< worst mean-ratio element quality
    double meanQuality = 0.0; ///< average mean-ratio element quality
    double totalVolume = 0.0; ///< sum of element volumes (km^3)
};

/**
 * An unstructured tetrahedral mesh.
 *
 * The mesh is a plain container: construction (graded refinement, jitter)
 * lives in the generator, partitioning in quake::partition, and matrix
 * assembly in quake::sparse.  All of those consume this interface.
 */
class TetMesh
{
  public:
    TetMesh() = default;

    /** Append a node; returns its id. */
    NodeId
    addNode(const Vec3 &p)
    {
        nodes_.push_back(p);
        return static_cast<NodeId>(nodes_.size() - 1);
    }

    /** Append an element; returns its id.  Indices are not checked here. */
    TetId
    addTet(NodeId a, NodeId b, NodeId c, NodeId d)
    {
        tets_.push_back(Tet{{a, b, c, d}});
        return static_cast<TetId>(tets_.size() - 1);
    }

    /** Number of nodes. */
    std::int64_t
    numNodes() const
    {
        return static_cast<std::int64_t>(nodes_.size());
    }

    /** Number of elements. */
    std::int64_t
    numElements() const
    {
        return static_cast<std::int64_t>(tets_.size());
    }

    /** Position of node n. */
    const Vec3 &node(NodeId n) const { return nodes_[n]; }

    /** Mutable position of node n (used by the jitter pass). */
    Vec3 &node(NodeId n) { return nodes_[n]; }

    /** Element t. */
    const Tet &tet(TetId t) const { return tets_[t]; }

    /** All node positions. */
    const std::vector<Vec3> &nodes() const { return nodes_; }

    /** All elements. */
    const std::vector<Tet> &tets() const { return tets_; }

    /** Centroid of element t. */
    Vec3 tetCentroidOf(TetId t) const;

    /** Unsigned volume of element t. */
    double tetVolumeOf(TetId t) const;

    /** Mean-ratio quality of element t. */
    double tetQualityOf(TetId t) const;

    /** Axis-aligned bounding box of all nodes; empty mesh gives zero box. */
    Aabb bounds() const;

    /**
     * Build the node adjacency structure.  Cost is O(E log d) where d is
     * the max degree; memory peaks at one int32 per directed tet edge.
     */
    NodeAdjacency buildNodeAdjacency() const;

    /** Compute aggregate statistics (includes an adjacency build). */
    MeshStats computeStats() const;

    /**
     * Check structural invariants: node indices in range, no repeated
     * vertex within an element, and strictly positive element volumes.
     * Panics (library bug) on violation.
     */
    void validate() const;

    /** Replace the full element list (used by the refiner's compaction). */
    void assignTets(std::vector<Tet> tets) { tets_ = std::move(tets); }

    /** Reserve storage ahead of bulk construction. */
    void
    reserve(std::int64_t n_nodes, std::int64_t n_tets)
    {
        nodes_.reserve(static_cast<std::size_t>(n_nodes));
        tets_.reserve(static_cast<std::size_t>(n_tets));
    }

  private:
    std::vector<Vec3> nodes_;
    std::vector<Tet> tets_;
};

} // namespace quake::mesh

#endif // QUAKE98_MESH_TET_MESH_H_
