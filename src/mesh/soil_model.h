/**
 * @file
 * Ground models for the synthetic San Fernando Valley domain.
 *
 * The paper (§2.1) explains why the Quake meshes must be unstructured: the
 * element size in any region has to match the local seismic wavelength,
 * which is short in the valley's soft sedimentary soils and long in the
 * surrounding hard rock.  A SoilModel supplies the shear-wave speed field
 * that drives that grading; the mesh generator converts wave period plus
 * speed into a target edge-length field.
 */

#ifndef QUAKE98_MESH_SOIL_MODEL_H_
#define QUAKE98_MESH_SOIL_MODEL_H_

#include <vector>

#include "mesh/geometry.h"

namespace quake::mesh
{

/**
 * Abstract ground model: a domain box plus a shear-wave speed field.
 * Coordinates are kilometres; z measures depth below the free surface
 * (z = 0 at the surface, increasing downward).  Speeds are km/s.
 */
class SoilModel
{
  public:
    virtual ~SoilModel() = default;

    /** The modeled volume of earth. */
    virtual Aabb domain() const = 0;

    /** Shear-wave speed at p, in km/s. */
    virtual double shearWaveSpeed(const Vec3 &p) const = 0;

    /** Mass density at p, in 10^12 kg/km^3 (i.e. g/cm^3). */
    virtual double density(const Vec3 &p) const = 0;
};

/**
 * A layered alluvial-basin model patterned on the San Fernando Valley:
 * a bowl of soft sediments (a smooth super-Gaussian depression) embedded
 * in stiff rock, with speeds increasing with depth in both materials.
 *
 * Defaults model a 50 km x 50 km x 10 km volume (paper Figure 1) with a
 * basin roughly 20 x 14 km wide and 2 km deep at its centre, a surface
 * sediment speed of 0.22 km/s, and rock speeds of 3.0-4.0 km/s.  The
 * roughly 14x contrast between sediment and rock speeds is what produces
 * the "wildly varying density of the soils" that forces unstructured
 * meshes.
 */
class LayeredBasinModel : public SoilModel
{
  public:
    /** Tunable physical parameters; defaults give the San Fernando look. */
    struct Params
    {
        Vec3 extentKm{50.0, 50.0, 10.0}; ///< domain size (x, y, depth)
        Vec3 basinCenter{25.0, 25.0, 0.0}; ///< basin centre at the surface
        double basinRadiusX = 11.0; ///< basin half-width along x (km)
        double basinRadiusY = 8.0;  ///< basin half-width along y (km)
        double basinMaxDepth = 2.0; ///< sediment depth at basin centre (km)
        double vsSediment = 0.22;   ///< sediment speed at the surface (km/s)
        double vsBasinFloor = 0.60; ///< sediment speed at the basin floor
        double vsRockTop = 3.0;     ///< rock speed at the surface (km/s)
        double vsRockBottom = 4.0;  ///< rock speed at full depth (km/s)
        double rhoSediment = 1.8;   ///< sediment density (g/cm^3)
        double rhoRock = 2.6;       ///< rock density (g/cm^3)
    };

    LayeredBasinModel() : LayeredBasinModel(Params{}) {}
    explicit LayeredBasinModel(const Params &params);

    Aabb domain() const override;
    double shearWaveSpeed(const Vec3 &p) const override;
    double density(const Vec3 &p) const override;

    /**
     * Depth of the sediment/rock interface below surface point (x, y);
     * zero outside the basin footprint.
     */
    double basinDepth(double x, double y) const;

    /** True when p lies inside the sediment bowl. */
    bool inBasin(const Vec3 &p) const;

    const Params &params() const { return p_; }

  private:
    Params p_;
};

/**
 * A composite model with several independent sediment basins — the
 * generalization test for everything calibrated on the single San
 * Fernando bowl.  Each basin is a LayeredBasinModel-style super-
 * Gaussian depression; speed at a point is the minimum over basins
 * (sediment wins over rock), so overlapping basins merge smoothly.
 */
class MultiBasinModel : public SoilModel
{
  public:
    /** One basin's footprint and depth. */
    struct Basin
    {
        Vec3 center;          ///< surface centre (z ignored)
        double radiusX = 8.0; ///< half-width along x (km)
        double radiusY = 8.0; ///< half-width along y (km)
        double maxDepth = 1.5; ///< sediment depth at centre (km)
    };

    /**
     * @param extent_km Domain size.
     * @param basins    At least one basin, all inside the domain.
     */
    MultiBasinModel(const Vec3 &extent_km, std::vector<Basin> basins);

    /** A deterministic three-basin instance used by tests/benches. */
    static MultiBasinModel threeBasins();

    Aabb domain() const override;
    double shearWaveSpeed(const Vec3 &p) const override;
    double density(const Vec3 &p) const override;

    /** Sediment depth below (x, y): the max over basins. */
    double basinDepth(double x, double y) const;

    const std::vector<Basin> &basins() const { return basins_; }

  private:
    Vec3 extent_;
    std::vector<Basin> basins_;
    LayeredBasinModel::Params material_; ///< speeds/densities reused
};

/**
 * Uniform half-space: constant speed everywhere.  Produces uniform meshes;
 * used by tests and by the partitioner ablation to contrast graded and
 * regular problems.
 */
class UniformModel : public SoilModel
{
  public:
    UniformModel(const Aabb &box, double vs, double rho = 2.6)
        : box_(box), vs_(vs), rho_(rho)
    {}

    Aabb domain() const override { return box_; }
    double shearWaveSpeed(const Vec3 &) const override { return vs_; }
    double density(const Vec3 &) const override { return rho_; }

  private:
    Aabb box_;
    double vs_;
    double rho_;
};

} // namespace quake::mesh

#endif // QUAKE98_MESH_SOIL_MODEL_H_
