#include "mesh/quality.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace quake::mesh
{

std::array<double, 6>
tetDihedralAngles(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                  const Vec3 &d)
{
    // The dihedral angle along each edge is the angle between the two
    // faces meeting there, computed from the faces' inward normals.
    const std::array<const Vec3 *, 4> v = {&a, &b, &c, &d};

    // Face normal opposite vertex f (faces listed in kTetFaces order).
    std::array<Vec3, 4> normal;
    for (int f = 0; f < 4; ++f) {
        const Vec3 &p = *v[kTetFaces[f][0]];
        const Vec3 &q = *v[kTetFaces[f][1]];
        const Vec3 &r = *v[kTetFaces[f][2]];
        normal[f] = (q - p).cross(r - p);
        const double norm = normal[f].norm();
        QUAKE_EXPECT(norm > 0, "degenerate face in dihedral computation");
        normal[f] = normal[f] / norm;
    }

    // Edge e of kTetEdges joins vertices (i, j); the two faces meeting
    // at that edge are the ones opposite the *other* two vertices.
    std::array<double, 6> angles{};
    for (std::size_t e = 0; e < kTetEdges.size(); ++e) {
        int others[2];
        int count = 0;
        for (int k = 0; k < 4; ++k)
            if (k != kTetEdges[e][0] && k != kTetEdges[e][1])
                others[count++] = k;
        // Interior dihedral = pi - angle between outward normals.
        const double cosine = std::clamp(
            normal[others[0]].dot(normal[others[1]]), -1.0, 1.0);
        angles[e] = M_PI - std::acos(cosine);
    }
    return angles;
}

QualityReport
computeQualityReport(const TetMesh &mesh, int num_buckets)
{
    QUAKE_EXPECT(num_buckets >= 1, "need at least one bucket");
    QUAKE_EXPECT(mesh.numElements() > 0, "mesh has no elements");

    QualityReport report;
    report.minDihedralRad = M_PI;
    report.maxDihedralRad = 0.0;
    report.minQuality = 1.0;
    report.buckets.assign(static_cast<std::size_t>(num_buckets), 0);

    double quality_sum = 0.0;
    for (TetId t = 0; t < mesh.numElements(); ++t) {
        const Tet &e = mesh.tet(t);
        const auto angles = tetDihedralAngles(
            mesh.node(e.v[0]), mesh.node(e.v[1]), mesh.node(e.v[2]),
            mesh.node(e.v[3]));
        for (double angle : angles) {
            report.minDihedralRad =
                std::min(report.minDihedralRad, angle);
            report.maxDihedralRad =
                std::max(report.maxDihedralRad, angle);
        }

        const double q = mesh.tetQualityOf(t);
        report.minQuality = std::min(report.minQuality, q);
        quality_sum += q;
        const int bucket = std::min(
            num_buckets - 1,
            static_cast<int>(q * num_buckets));
        ++report.buckets[bucket];
    }
    report.meanQuality =
        quality_sum / static_cast<double>(mesh.numElements());
    return report;
}

} // namespace quake::mesh
