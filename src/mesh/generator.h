/**
 * @file
 * Synthetic San Fernando Valley mesh generation.
 *
 * The paper's meshes (sf10, sf5, sf2, sf1) were produced by the Archimedes
 * tool chain from proprietary geological profiles of the San Fernando
 * Valley; those inputs are not available, so this module substitutes a
 * generator that reproduces the *structural* properties the architectural
 * analysis consumes (DESIGN.md §2): element size matched to the local
 * seismic wavelength, ~13 neighbours per node on average, an O(n^{2/3})
 * partition surface law, and node counts that grow by ~8x when the wave
 * period halves.
 *
 * Pipeline: coarse Kuhn lattice over the domain -> graded conforming
 * longest-edge refinement driven by h(p) = Vs(p) * period / points-per-
 * wavelength -> bounded random vertex jitter (keeping all element volumes
 * positive) to break the lattice symmetry.
 */

#ifndef QUAKE98_MESH_GENERATOR_H_
#define QUAKE98_MESH_GENERATOR_H_

#include <cstdint>
#include <string>

#include "mesh/refine.h"
#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"

namespace quake::mesh
{

/** The four Quake problem classes, plus a tiny class for unit tests. */
enum class SfClass
{
    kSf20, ///< 20-second waves; test-sized (not in the paper)
    kSf10, ///< 10-second waves (paper: 7,294 nodes)
    kSf5,  ///< 5-second waves (paper: 30,169 nodes)
    kSf2,  ///< 2-second waves (paper: 378,747 nodes)
    kSf1,  ///< 1-second waves (paper: 2,461,694 nodes)
};

/** Short name ("sf10", ...) for a problem class. */
std::string sfClassName(SfClass cls);

/** Parse "sf10"/"sf5"/"sf2"/"sf1"/"sf20"; throws FatalError otherwise. */
SfClass sfClassFromName(const std::string &name);

/** The wave period in seconds that a class resolves. */
double sfClassPeriod(SfClass cls);

/** Paper-reported node count for the class (sf20 extrapolated). */
std::int64_t sfClassPaperNodes(SfClass cls);

/** All generation knobs. */
struct MeshSpec
{
    /** Period (seconds) of the highest-frequency wave to resolve. */
    double periodSeconds = 5.0;

    /**
     * Mesh vertices per wavelength; the single calibration constant that
     * sets absolute mesh density.  The default is tuned so the synthetic
     * sf5 lands near the paper's 30,169 nodes.
     */
    double pointsPerWavelength = 3.0;

    /**
     * Multiplier on the target edge length; > 1 coarsens.  Used to run
     * "sf1-shaped" experiments at reduced scale on small hosts.
     */
    double hScale = 1.0;

    /** Lower clamp on target edge length (km); guards runaway refinement. */
    double hMin = 0.02;

    /** Coarse lattice resolution (cubes per axis). */
    int coarseNx = 10;
    int coarseNy = 10;
    int coarseNz = 2;

    /** Interior vertex jitter as a fraction of the local min edge length. */
    double jitterFraction = 0.22;

    /** RNG seed for the jitter pass. */
    std::uint64_t seed = 0x5eed5f98ULL;

    /** Refinement caps. */
    RefineOptions refine;

    /** Spec for a named problem class at optional reduced scale. */
    static MeshSpec forClass(SfClass cls, double h_scale = 1.0);

    /**
     * Reject parameter combinations that would generate zero elements,
     * hang refinement, or overflow NodeId (FatalError, never UB):
     * positive finite period/ppw/hScale/hMin, jitterFraction in [0, 1),
     * coarse dims in [1, 1024] with the lattice node count fitting a
     * NodeId, positive refinement caps.  generateMesh calls this on
     * entry.
     */
    void validate() const;
};

/** Everything the generator produced, for reporting and tests. */
struct GeneratedMesh
{
    TetMesh mesh;
    RefineReport refineReport;
    std::int64_t jitterAccepted = 0; ///< vertices successfully perturbed
    std::int64_t jitterReverted = 0; ///< perturbations undone (inversion)
};

/**
 * Generate a graded unstructured tetrahedral mesh of `model`'s domain.
 *
 * The result is validated (conforming construction plus a positive-volume
 * check) before being returned.
 */
GeneratedMesh generateMesh(const SoilModel &model, const MeshSpec &spec);

/** Convenience: generate the synthetic mesh for a named problem class. */
GeneratedMesh generateSfMesh(SfClass cls, double h_scale = 1.0);

/**
 * Build only the coarse Kuhn-lattice mesh (nx x ny x nz cubes, six
 * tetrahedra each) over `box`.  Exposed for tests and for callers that
 * want uniform meshes.
 */
TetMesh buildKuhnLattice(const Aabb &box, int nx, int ny, int nz);

} // namespace quake::mesh

#endif // QUAKE98_MESH_GENERATOR_H_
