/**
 * @file
 * Geometric primitives for the unstructured tetrahedral mesh substrate:
 * 3-vectors, axis-aligned boxes, and tetrahedron measures (volume, edge
 * lengths, quality).  Everything here is header-only and constexpr-friendly
 * so the mesh generator and the finite element assembly can share it.
 */

#ifndef QUAKE98_MESH_GEOMETRY_H_
#define QUAKE98_MESH_GEOMETRY_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>

namespace quake::mesh
{

/** A point or displacement in 3-space (kilometres in the Quake domain). */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    constexpr bool
    operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    /** Dot product. */
    constexpr double
    dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Cross product. */
    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    /** Euclidean norm. */
    double norm() const { return std::sqrt(dot(*this)); }

    /** Squared Euclidean norm (avoids the sqrt when comparing lengths). */
    constexpr double norm2() const { return dot(*this); }
};

/** Scalar-first multiplication, so `2.0 * v` reads naturally. */
constexpr Vec3
operator*(double s, const Vec3 &v)
{
    return v * s;
}

/** Axis-aligned bounding box. */
struct Aabb
{
    Vec3 lo;
    Vec3 hi;

    /** Box extents along each axis. */
    constexpr Vec3 extent() const { return hi - lo; }

    /** Geometric centre. */
    constexpr Vec3 center() const { return (lo + hi) * 0.5; }

    /** True when p lies inside or on the boundary. */
    constexpr bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** Grow to include p. */
    void
    expand(const Vec3 &p)
    {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }
};

/**
 * Signed volume of the tetrahedron (a, b, c, d).  Positive when d lies on
 * the side of plane (a, b, c) that the right-hand normal of (b-a)x(c-a)
 * points toward.
 */
inline double
tetSignedVolume(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    return (b - a).cross(c - a).dot(d - a) / 6.0;
}

/** Unsigned tetrahedron volume. */
inline double
tetVolume(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    return std::fabs(tetSignedVolume(a, b, c, d));
}

/** Centroid of a tetrahedron. */
inline Vec3
tetCentroid(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d)
{
    return (a + b + c + d) * 0.25;
}

/** The six vertex-index pairs that form the edges of a tetrahedron. */
inline constexpr std::array<std::array<int, 2>, 6> kTetEdges = {{
    {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
}};

/** The four vertex-index triples that form the faces of a tetrahedron. */
inline constexpr std::array<std::array<int, 3>, 4> kTetFaces = {{
    {1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1},
}};

/** Lengths of all six edges of tetrahedron (a, b, c, d). */
std::array<double, 6> tetEdgeLengths(const Vec3 &a, const Vec3 &b,
                                     const Vec3 &c, const Vec3 &d);

/** Index (into kTetEdges) of the longest edge; ties break to lowest index. */
int tetLongestEdge(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                   const Vec3 &d);

/**
 * Mean-ratio quality measure in (0, 1]: 1 for the regular tetrahedron,
 * approaching 0 for degenerate slivers.  Defined as
 * 12 * (3 * V)^(2/3) / sum(edge_length^2), a standard shape metric.
 */
double tetQuality(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d);

/** Total surface area of the tetrahedron. */
double tetSurfaceArea(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                      const Vec3 &d);

} // namespace quake::mesh

#endif // QUAKE98_MESH_GEOMETRY_H_
