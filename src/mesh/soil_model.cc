#include "mesh/soil_model.h"

#include <cmath>

#include "common/error.h"

namespace quake::mesh
{

LayeredBasinModel::LayeredBasinModel(const Params &params) : p_(params)
{
    QUAKE_EXPECT(p_.extentKm.x > 0 && p_.extentKm.y > 0 && p_.extentKm.z > 0,
                 "domain extents must be positive");
    QUAKE_EXPECT(p_.vsSediment > 0 && p_.vsSediment <= p_.vsBasinFloor,
                 "sediment speeds must be positive and increase with depth");
    QUAKE_EXPECT(p_.vsRockTop > 0 && p_.vsRockTop <= p_.vsRockBottom,
                 "rock speeds must be positive and increase with depth");
    QUAKE_EXPECT(p_.basinMaxDepth < p_.extentKm.z,
                 "basin must be shallower than the domain");
}

Aabb
LayeredBasinModel::domain() const
{
    return Aabb{Vec3{0.0, 0.0, 0.0}, p_.extentKm};
}

double
LayeredBasinModel::basinDepth(double x, double y) const
{
    const double dx = (x - p_.basinCenter.x) / p_.basinRadiusX;
    const double dy = (y - p_.basinCenter.y) / p_.basinRadiusY;
    const double r2 = dx * dx + dy * dy;
    // Super-Gaussian bowl: nearly flat floor, steep sides, smooth rim.
    const double depth = p_.basinMaxDepth * std::exp(-r2 * r2);
    return depth < 1e-3 ? 0.0 : depth;
}

bool
LayeredBasinModel::inBasin(const Vec3 &p) const
{
    return p.z < basinDepth(p.x, p.y);
}

double
LayeredBasinModel::shearWaveSpeed(const Vec3 &p) const
{
    const double interface_depth = basinDepth(p.x, p.y);
    if (p.z < interface_depth) {
        // Sediment: speed ramps from the surface value to the floor value.
        const double frac = interface_depth > 0 ? p.z / interface_depth : 0;
        return p_.vsSediment + (p_.vsBasinFloor - p_.vsSediment) * frac;
    }
    // Rock: linear increase from the surface (or basin floor) downward.
    const double frac = p_.extentKm.z > 0 ? p.z / p_.extentKm.z : 0;
    return p_.vsRockTop + (p_.vsRockBottom - p_.vsRockTop) * frac;
}

double
LayeredBasinModel::density(const Vec3 &p) const
{
    return inBasin(p) ? p_.rhoSediment : p_.rhoRock;
}

MultiBasinModel::MultiBasinModel(const Vec3 &extent_km,
                                 std::vector<Basin> basins)
    : extent_(extent_km), basins_(std::move(basins))
{
    QUAKE_EXPECT(extent_.x > 0 && extent_.y > 0 && extent_.z > 0,
                 "domain extents must be positive");
    QUAKE_EXPECT(!basins_.empty(), "need at least one basin");
    for (const Basin &b : basins_) {
        QUAKE_EXPECT(b.radiusX > 0 && b.radiusY > 0,
                     "basin radii must be positive");
        QUAKE_EXPECT(b.maxDepth > 0 && b.maxDepth < extent_.z,
                     "basin depth must be positive and inside the "
                     "domain");
        QUAKE_EXPECT(b.center.x >= 0 && b.center.x <= extent_.x &&
                         b.center.y >= 0 && b.center.y <= extent_.y,
                     "basin centre must lie inside the domain");
    }
}

MultiBasinModel
MultiBasinModel::threeBasins()
{
    const Vec3 extent{50.0, 50.0, 10.0};
    std::vector<Basin> basins = {
        {{14.0, 14.0, 0.0}, 8.0, 6.0, 2.0},
        {{34.0, 20.0, 0.0}, 6.0, 9.0, 1.2},
        {{24.0, 38.0, 0.0}, 10.0, 5.0, 1.6},
    };
    return MultiBasinModel(extent, std::move(basins));
}

Aabb
MultiBasinModel::domain() const
{
    return Aabb{Vec3{0.0, 0.0, 0.0}, extent_};
}

double
MultiBasinModel::basinDepth(double x, double y) const
{
    double depth = 0.0;
    for (const Basin &b : basins_) {
        const double dx = (x - b.center.x) / b.radiusX;
        const double dy = (y - b.center.y) / b.radiusY;
        const double r2 = dx * dx + dy * dy;
        depth = std::max(depth, b.maxDepth * std::exp(-r2 * r2));
    }
    return depth < 1e-3 ? 0.0 : depth;
}

double
MultiBasinModel::shearWaveSpeed(const Vec3 &p) const
{
    const double interface_depth = basinDepth(p.x, p.y);
    if (p.z < interface_depth) {
        const double frac =
            interface_depth > 0 ? p.z / interface_depth : 0;
        return material_.vsSediment +
               (material_.vsBasinFloor - material_.vsSediment) * frac;
    }
    const double frac = extent_.z > 0 ? p.z / extent_.z : 0;
    return material_.vsRockTop +
           (material_.vsRockBottom - material_.vsRockTop) * frac;
}

double
MultiBasinModel::density(const Vec3 &p) const
{
    return p.z < basinDepth(p.x, p.y) ? material_.rhoSediment
                                      : material_.rhoRock;
}

} // namespace quake::mesh
