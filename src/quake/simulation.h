/**
 * @file
 * The end-to-end Quake application (paper §2): generate (or accept) a
 * San Fernando-class mesh, assemble the elastic system, and propagate
 * seismic waves with the explicit stepper — sequentially or over a
 * partitioned set of logical PEs whose only communicating operation is
 * the SMVP, exactly as the paper describes.
 */

#ifndef QUAKE98_QUAKE_SIMULATION_H_
#define QUAKE98_QUAKE_SIMULATION_H_

#include <memory>
#include <vector>

#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "parallel/distributor.h"
#include "quake/seismogram.h"
#include "quake/time_stepper.h"

namespace quake::sim
{

/** Configuration of one simulation run. */
struct SimulationConfig
{
    /** Simulated duration in seconds (the paper runs 60 s). */
    double durationSeconds = 10.0;

    /** CFL safety factor for the time step. */
    double cflSafety = 0.5;

    /** Poisson ratio of the ground material. */
    double poisson = 0.25;

    /** Mass-proportional Rayleigh damping a0 (1/s); 0 = undamped. */
    double dampingA0 = 0.0;

    /**
     * Subdomains to distribute over; 1 means run the sequential SMVP.
     * The distributed run uses the threaded parallel SMVP with logical
     * PEs multiplexed onto hardware threads.
     */
    int numPes = 1;

    /**
     * Worker threads for the distributed SMVP engine; 0 = hardware
     * concurrency (capped at numPes).  Ignored when numPes == 1.
     */
    int smvpThreads = 0;

    /**
     * Overlap the interior-row compute with the boundary exchange
     * (ExchangeMode::kOverlapped).  The result is bitwise identical
     * either way; this only changes scheduling.
     */
    bool overlapSmvp = true;

    /**
     * Run the fused zero-allocation step pipeline (DESIGN.md §8):
     * SMVP, central-difference update, and peak/energy statistics in
     * one pass, with no ku vector and no per-step heap allocation.
     * Displacements are bitwise identical with the flag off; this only
     * changes scheduling and memory traffic.
     */
    bool fusedStep = true;

    /** Source description. */
    mesh::Vec3 hypocenter{25.0, 25.0, 8.0}; ///< under the basin
    mesh::Vec3 sourceDirection{0.0, 0.0, 1.0};
    RickerWavelet wavelet;

    /** Record energy/peak samples every this many steps. */
    int sampleInterval = 25;

    /**
     * Optional seismogram recorder (caller-owned); when set, station
     * displacements are recorded every sampleInterval steps.
     */
    Seismogram *recorder = nullptr;

    /** Hard cap on steps (guards tiny dt in tests); 0 = no cap. */
    std::int64_t maxSteps = 0;

    /**
     * Optional telemetry collector (caller-owned, DESIGN.md §9).  When
     * set and enabled, the stepper, SMVP engine, and worker pool record
     * phase spans, counters, and latency histograms into it — exported
     * after the run as a Chrome trace and/or metrics JSON by the
     * caller.  Telemetry is observation-only: the report and all
     * displacements are bitwise identical with it off.
     */
    telemetry::Collector *collector = nullptr;

    /**
     * Reject invalid field combinations (FatalError naming the field):
     * positive finite duration/cflSafety, poisson in [0, 0.5),
     * dampingA0 >= 0, numPes >= 1, smvpThreads >= 0, sampleInterval >=
     * 0, maxSteps >= 0.  runSimulation calls this on entry; CLI front
     * ends call it right after argument parsing so a bad flag fails
     * before any mesh is generated.
     */
    void validate() const;
};

/** One recorded sample of the wavefield. */
struct FieldSample
{
    double time = 0.0;
    double peakDisplacement = 0.0;
    double kineticEnergy = 0.0;
};

/** Results of a simulation run. */
struct SimulationReport
{
    std::int64_t steps = 0;
    double dt = 0.0;
    double simulatedSeconds = 0.0;
    double smvpSeconds = 0.0;   ///< wall time inside the SMVP
    double totalSeconds = 0.0;  ///< wall time inside step()
    double smvpFraction = 0.0;  ///< smvpSeconds / totalSeconds
    double peakDisplacement = 0.0; ///< max over the whole run
    std::vector<FieldSample> samples;
};

/**
 * Run the earthquake simulation on `mesh`/`model` per `config`.
 * Sequential when config.numPes == 1, otherwise distributed over
 * config.numPes logical PEs (geometric-bisection partition).
 *
 * The config is validated on entry (positive finite duration,
 * numPes >= 1, smvpThreads >= 0, sampleInterval >= 0, maxSteps >= 0);
 * violations throw common::FatalError with a message naming the field.
 */
SimulationReport runSimulation(const mesh::TetMesh &mesh,
                               const mesh::SoilModel &model,
                               const SimulationConfig &config);

/** Convenience: generate the sf-class mesh, then run. */
SimulationReport runSfSimulation(mesh::SfClass cls,
                                 const SimulationConfig &config,
                                 double h_scale = 1.0);

} // namespace quake::sim

#endif // QUAKE98_QUAKE_SIMULATION_H_
