/**
 * @file
 * The end-to-end Quake application (paper §2): generate (or accept) a
 * San Fernando-class mesh, assemble the elastic system, and propagate
 * seismic waves with the explicit stepper — sequentially or over a
 * partitioned set of logical PEs whose only communicating operation is
 * the SMVP, exactly as the paper describes.
 */

#ifndef QUAKE98_QUAKE_SIMULATION_H_
#define QUAKE98_QUAKE_SIMULATION_H_

#include <memory>
#include <string>
#include <vector>

#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "parallel/distributor.h"
#include "quake/seismogram.h"
#include "quake/time_stepper.h"

namespace quake::parallel
{
class ParallelSmvp;
}

namespace quake::sparse
{
class SlicedEll3Matrix;
}

namespace quake::sim
{

/** Configuration of one simulation run. */
struct SimulationConfig
{
    /** Simulated duration in seconds (the paper runs 60 s). */
    double durationSeconds = 10.0;

    /** CFL safety factor for the time step. */
    double cflSafety = 0.5;

    /** Poisson ratio of the ground material. */
    double poisson = 0.25;

    /** Mass-proportional Rayleigh damping a0 (1/s); 0 = undamped. */
    double dampingA0 = 0.0;

    /**
     * Subdomains to distribute over; 1 means run the sequential SMVP.
     * The distributed run uses the threaded parallel SMVP with logical
     * PEs multiplexed onto hardware threads.
     */
    int numPes = 1;

    /**
     * Worker threads for the distributed SMVP engine; 0 = hardware
     * concurrency (capped at numPes).  Ignored when numPes == 1.
     * With the default single-shard topology this is the flat thread
     * count; with shards it becomes the total thread budget divided
     * across shards (unless smvpThreadsPerShard overrides it).
     */
    int smvpThreads = 0;

    /**
     * Hierarchical topology knobs (DESIGN.md §13), distributed runs
     * only.  smvpShards splits the PEs into contiguous shards — one
     * nested pinned worker pool each, first-touching its own slabs —
     * while the boundary exchange runs between shards.
     * smvpThreadsPerShard sizes each nested pool (0 = divide the
     * smvpThreads budget evenly); pinSmvpThreads pins shard workers to
     * their shard's CPUs (advisory; failures are counted, never
     * fatal).  topologySpec, when non-empty, overrides all three:
     * "flat", "auto"/"detect" (NUMA detection), or "SxT" (e.g. "2x4").
     *
     * Like smvpThreads/overlapSmvp/fusedStep these are execution knobs
     * only — the trajectory is bitwise invariant across every topology
     * (verify property `engine_hierarchy`) — so none of them enter the
     * checkpoint fingerprint.
     */
    int smvpShards = 1;
    int smvpThreadsPerShard = 0;
    bool pinSmvpThreads = false;
    std::string topologySpec;

    /**
     * Overlap the interior-row compute with the boundary exchange
     * (ExchangeMode::kOverlapped).  The result is bitwise identical
     * either way; this only changes scheduling.
     */
    bool overlapSmvp = true;

    /**
     * Run the fused zero-allocation step pipeline (DESIGN.md §8):
     * SMVP, central-difference update, and peak/energy statistics in
     * one pass, with no ku vector and no per-step heap allocation.
     * Displacements are bitwise identical with the flag off; this only
     * changes scheduling and memory traffic.
     */
    bool fusedStep = true;

    /**
     * SMVP kernel backend (DESIGN.md §12).  kSlicedEll3 converts the
     * stiffness into sliced-ELLPACK-3x3 slabs at engine construction
     * (global matrix when sequential, per-PE boundary/interior slabs
     * when distributed) and runs the SIMD-dispatched slice kernel.
     *
     * Unlike smvpThreads/overlapSmvp/fusedStep, this knob CHANGES the
     * trajectory bits: within one backend results stay bitwise
     * invariant across threads, modes, and fusion, but the two
     * backends agree only within ULP tolerance (FMA contraction on the
     * AVX2 path) — so the backend is folded into the checkpoint
     * fingerprint and a checkpoint cannot resume under the other one.
     */
    enum class KernelBackend
    {
        kBcsr3,      ///< blocked-CSR row kernel (the default)
        kSlicedEll3, ///< sliced-ELLPACK-3x3, SIMD dispatched
    };
    KernelBackend kernelBackend = KernelBackend::kBcsr3;

    /** Source description. */
    mesh::Vec3 hypocenter{25.0, 25.0, 8.0}; ///< under the basin
    mesh::Vec3 sourceDirection{0.0, 0.0, 1.0};
    RickerWavelet wavelet;

    /** Record energy/peak samples every this many steps. */
    int sampleInterval = 25;

    /**
     * Optional seismogram recorder (caller-owned); when set, station
     * displacements are recorded every sampleInterval steps.
     */
    Seismogram *recorder = nullptr;

    /** Hard cap on steps (guards tiny dt in tests); 0 = no cap. */
    std::int64_t maxSteps = 0;

    /**
     * Optional telemetry collector (caller-owned, DESIGN.md §9).  When
     * set and enabled, the stepper, SMVP engine, and worker pool record
     * phase spans, counters, and latency histograms into it — exported
     * after the run as a Chrome trace and/or metrics JSON by the
     * caller.  Telemetry is observation-only: the report and all
     * displacements are bitwise identical with it off.
     */
    telemetry::Collector *collector = nullptr;

    /**
     * Reject invalid field combinations (FatalError naming the field):
     * positive finite duration/cflSafety, poisson in [0, 0.5),
     * dampingA0 >= 0, numPes >= 1, smvpThreads >= 0, smvpShards >= 1,
     * smvpThreadsPerShard >= 0, a parseable topologySpec,
     * sampleInterval >= 0, maxSteps >= 0.  runSimulation calls this on
     * entry; CLI front
     * ends call it right after argument parsing so a bad flag fails
     * before any mesh is generated.
     */
    void validate() const;
};

/** One recorded sample of the wavefield. */
struct FieldSample
{
    double time = 0.0;
    double peakDisplacement = 0.0;
    double kineticEnergy = 0.0;
};

/** Results of a simulation run. */
struct SimulationReport
{
    std::int64_t steps = 0;
    double dt = 0.0;
    double simulatedSeconds = 0.0;
    double smvpSeconds = 0.0;   ///< wall time inside the SMVP
    double totalSeconds = 0.0;  ///< wall time inside step()
    double smvpFraction = 0.0;  ///< smvpSeconds / totalSeconds
    double peakDisplacement = 0.0; ///< max over the whole run
    std::vector<FieldSample> samples;
};

/**
 * The bound simulation engine: the stepper plus every backing object
 * (global matrix or distributed problem + SMVP engine) it multiplies
 * through, kept alive together (DESIGN.md §11).  Exposing this lets
 * the resilience subsystem restore a checkpoint into a freshly built
 * engine and drive the stepping loop itself; runSimulation is the thin
 * uninterrupted loop over the same pieces.
 */
struct SimulationEngine
{
    double dt = 0.0;

    /** Steps the configured duration requires (after the maxSteps cap). */
    std::int64_t plannedSteps = 0;

    /**
     * FNV-1a fingerprint of everything that determines the bit pattern
     * of the trajectory: mesh geometry/topology, partition (via numPes
     * over the deterministic bisection), stiffness values, lumped
     * mass, dt, damping, and the bound source.  Thread counts,
     * exchange mode, and fused/unfused are deliberately EXCLUDED —
     * the engine is proven bitwise invariant across them, so a
     * checkpoint may legally resume under any of those configurations.
     * The kernel backend IS included: backends agree only within ULP
     * tolerance, so their trajectories are distinct bit patterns.
     */
    std::uint64_t fingerprint = 0;

    std::unique_ptr<ExplicitTimeStepper> stepper;

    /**
     * Backing objects (exactly one family is populated).  The matrix
     * and distributed problem are const-shared: the engine only reads
     * them during stepping (multiply/multiplyFusedStep are const and
     * scratch-free), so one assembled prefix may back many concurrent
     * engines — the contract the scenario service's content-addressed
     * cache relies on (DESIGN.md §14).
     */
    std::shared_ptr<const sparse::Bcsr3Matrix> globalK;
    std::shared_ptr<const parallel::DistributedProblem> problem;
    std::shared_ptr<parallel::ParallelSmvp> psmvp;

    /** Sequential sliced-ELL backend: the converted global matrix. */
    std::shared_ptr<const sparse::SlicedEll3Matrix> globalEll;
};

/**
 * A precomputed engine prefix (DESIGN.md §14): the expensive objects
 * every run of the same (mesh, model, numPes, poisson) recomputes —
 * the assembled global stiffness when sequential, the partitioned +
 * distributed problem otherwise.  makeSimulationEngineWith() binds an
 * engine around a supplied prefix instead of assembling its own; the
 * scenario service fills one from its content-addressed cache.  Both
 * pointers optional — whichever is null is built from scratch.
 *
 * Correctness: a prefix is pure input data (const, scratch-free), and
 * the fingerprint is computed from the bound objects, so an engine
 * built over a cached prefix is bit-for-bit the engine a cold build
 * produces — provided the prefix actually matches (mesh, model,
 * numPes, poisson); the service's cache keys guarantee that.
 */
struct EnginePrefix
{
    /** Assembled global stiffness (used when config.numPes == 1). */
    std::shared_ptr<const sparse::Bcsr3Matrix> globalK;

    /** Partitioned + distributed problem (used when numPes > 1). */
    std::shared_ptr<const parallel::DistributedProblem> problem;
};

/**
 * Assemble and bind the engine for `mesh`/`model` per `config`
 * (validated on entry): stable dt, lumped mass, stiffness (global or
 * distributed over config.numPes geometric-bisection parts), fused
 * backend, telemetry, damping, and the point source.
 */
SimulationEngine makeSimulationEngine(const mesh::TetMesh &mesh,
                                      const mesh::SoilModel &model,
                                      const SimulationConfig &config);

/**
 * Like makeSimulationEngine, but reuse the supplied prefix objects
 * (cached stiffness / distributed problem) instead of assembling them.
 * Null prefix members are built from scratch, so {} degenerates to
 * makeSimulationEngine exactly.
 */
SimulationEngine makeSimulationEngineWith(const mesh::TetMesh &mesh,
                                          const mesh::SoilModel &model,
                                          const SimulationConfig &config,
                                          const EnginePrefix &prefix);

/**
 * Observation hook run after every completed step of
 * advanceSimulation, with the just-finished step index (1-based, ==
 * stepper.stepCount()).  The resilience supervisor uses it as the
 * watchdog heartbeat; it may throw to abort the attempt.
 */
using StepObserver = std::function<void(std::int64_t step)>;

/**
 * Advance `engine` from its current step count to engine.plannedSteps,
 * folding the running peak and periodic samples into `report` — which
 * may already hold the prefix restored from a checkpoint.  Fills the
 * report's final fields (steps, times, smvp split) on completion.
 */
void advanceSimulation(SimulationEngine &engine,
                       const SimulationConfig &config,
                       SimulationReport &report,
                       const StepObserver &observer = {});

/**
 * Run the earthquake simulation on `mesh`/`model` per `config`.
 * Sequential when config.numPes == 1, otherwise distributed over
 * config.numPes logical PEs (geometric-bisection partition).
 *
 * The config is validated on entry (positive finite duration,
 * numPes >= 1, smvpThreads >= 0, sampleInterval >= 0, maxSteps >= 0);
 * violations throw common::FatalError with a message naming the field.
 */
SimulationReport runSimulation(const mesh::TetMesh &mesh,
                               const mesh::SoilModel &model,
                               const SimulationConfig &config);

/** Convenience: generate the sf-class mesh, then run. */
SimulationReport runSfSimulation(mesh::SfClass cls,
                                 const SimulationConfig &config,
                                 double h_scale = 1.0);

} // namespace quake::sim

#endif // QUAKE98_QUAKE_SIMULATION_H_
