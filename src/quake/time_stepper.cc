#include "quake/time_stepper.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace quake::sim
{

namespace
{

/** Shortest altitude of a tetrahedron: 3 V / (largest face area). */
double
shortestAltitude(const mesh::Vec3 &a, const mesh::Vec3 &b,
                 const mesh::Vec3 &c, const mesh::Vec3 &d)
{
    const double vol = mesh::tetVolume(a, b, c, d);
    const std::array<const mesh::Vec3 *, 4> v = {&a, &b, &c, &d};
    double max_area = 0.0;
    for (const auto &face : mesh::kTetFaces) {
        const mesh::Vec3 &p = *v[face[0]];
        const mesh::Vec3 &q = *v[face[1]];
        const mesh::Vec3 &r = *v[face[2]];
        max_area = std::max(max_area,
                            0.5 * (q - p).cross(r - p).norm());
    }
    return max_area > 0 ? 3.0 * vol / max_area : 0.0;
}

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

double
stableTimeStep(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
               double poisson, double safety)
{
    QUAKE_EXPECT(mesh.numElements() > 0, "mesh has no elements");
    QUAKE_EXPECT(safety > 0 && safety <= 1, "safety must be in (0, 1]");

    // V_p / V_s ratio for the given Poisson ratio.
    const double ratio =
        std::sqrt((2.0 - 2.0 * poisson) / (1.0 - 2.0 * poisson));

    double dt = std::numeric_limits<double>::infinity();
    for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
        const mesh::Tet &e = mesh.tet(t);
        const double h = shortestAltitude(
            mesh.node(e.v[0]), mesh.node(e.v[1]), mesh.node(e.v[2]),
            mesh.node(e.v[3]));
        const double vp =
            model.shearWaveSpeed(mesh.tetCentroidOf(t)) * ratio;
        if (vp > 0 && h > 0)
            dt = std::min(dt, h / vp);
    }
    QUAKE_EXPECT(std::isfinite(dt), "could not bound the time step");
    return safety * dt;
}

ExplicitTimeStepper::ExplicitTimeStepper(SmvpFn smvp,
                                         std::vector<double> lumped_mass,
                                         double dt)
    : smvp_(std::move(smvp)), dt_(dt)
{
    QUAKE_EXPECT(dt > 0, "time step must be positive");
    QUAKE_EXPECT(!lumped_mass.empty(), "mass vector is empty");
    inv_mass_.reserve(lumped_mass.size());
    for (double m : lumped_mass) {
        QUAKE_EXPECT(m > 0, "lumped mass entries must be positive");
        inv_mass_.push_back(1.0 / m);
    }
    const std::size_t dof = inv_mass_.size();
    u_.assign(dof, 0.0);
    up_.assign(dof, 0.0);
    ku_.assign(dof, 0.0);
    f_.assign(dof, 0.0);
}

void
ExplicitTimeStepper::setDamping(double a0)
{
    QUAKE_EXPECT(a0 >= 0, "damping coefficient must be nonnegative");
    QUAKE_EXPECT(a0 * dt_ < 2.0,
                 "damping too strong for this time step (a0 dt >= 2)");
    damping_ = a0;
}

void
ExplicitTimeStepper::addSource(const PointSource &source)
{
    QUAKE_EXPECT(3 * static_cast<std::size_t>(source.node) + 2 <
                     inv_mass_.size(),
                 "source node outside the DOF range");
    sources_.push_back(source);
}

void
ExplicitTimeStepper::setInitialConditions(const std::vector<double> &u0,
                                          const std::vector<double> &v0)
{
    QUAKE_EXPECT(steps_ == 0,
                 "initial conditions must precede the first step");
    QUAKE_EXPECT(u0.size() == u_.size() && v0.size() == u_.size(),
                 "initial condition size mismatch");

    u_ = u0;

    // f(0) from the sources, K u0 from the operator.
    std::fill(f_.begin(), f_.end(), 0.0);
    for (const PointSource &s : sources_)
        s.apply(0.0, f_);
    smvp_(u_, ku_);

    for (std::size_t i = 0; i < u_.size(); ++i) {
        up_[i] = u0[i] - dt_ * v0[i] +
                 0.5 * dt_ * dt_ * inv_mass_[i] * (f_[i] - ku_[i]);
    }
}

void
ExplicitTimeStepper::step()
{
    const double t_start = now_seconds();

    // f_n: sources evaluated at the current simulated time.
    std::fill(f_.begin(), f_.end(), 0.0);
    const double t = time();
    for (const PointSource &s : sources_)
        s.apply(t, f_);

    // K u_n — the SMVP this whole library is about.
    const double t_smvp = now_seconds();
    smvp_(u_, ku_);
    smvp_seconds_ += now_seconds() - t_smvp;

    // (1 + a0 dt/2) u_{n+1} = 2 u_n - (1 - a0 dt/2) u_{n-1}
    //                        + dt^2 M^{-1} (f_n - K u_n),
    // written into up_ which then becomes the new u_ by swap.  With
    // a0 = 0 this is the classic undamped central-difference update.
    const double dt2 = dt_ * dt_;
    const double half_damp = 0.5 * damping_ * dt_;
    const double denom = 1.0 + half_damp;
    const double prev_coeff = 1.0 - half_damp;
    for (std::size_t i = 0; i < u_.size(); ++i) {
        up_[i] = (2.0 * u_[i] - prev_coeff * up_[i] +
                  dt2 * inv_mass_[i] * (f_[i] - ku_[i])) /
                 denom;
    }
    std::swap(u_, up_);
    ++steps_;

    total_seconds_ += now_seconds() - t_start;
}

double
ExplicitTimeStepper::peakDisplacement() const
{
    double peak = 0.0;
    for (double v : u_)
        peak = std::max(peak, std::fabs(v));
    return peak;
}

double
ExplicitTimeStepper::kineticEnergy() const
{
    double energy = 0.0;
    for (std::size_t i = 0; i < u_.size(); ++i) {
        const double v = (u_[i] - up_[i]) / dt_;
        energy += 0.5 * v * v / inv_mass_[i];
    }
    return energy;
}

} // namespace quake::sim
