#include "quake/time_stepper.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace quake::sim
{

namespace
{

/** Shortest altitude of a tetrahedron: 3 V / (largest face area). */
double
shortestAltitude(const mesh::Vec3 &a, const mesh::Vec3 &b,
                 const mesh::Vec3 &c, const mesh::Vec3 &d)
{
    const double vol = mesh::tetVolume(a, b, c, d);
    const std::array<const mesh::Vec3 *, 4> v = {&a, &b, &c, &d};
    double max_area = 0.0;
    for (const auto &face : mesh::kTetFaces) {
        const mesh::Vec3 &p = *v[face[0]];
        const mesh::Vec3 &q = *v[face[1]];
        const mesh::Vec3 &r = *v[face[2]];
        max_area = std::max(max_area,
                            0.5 * (q - p).cross(r - p).norm());
    }
    return max_area > 0 ? 3.0 * vol / max_area : 0.0;
}

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

double
stableTimeStep(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
               double poisson, double safety)
{
    QUAKE_EXPECT(mesh.numElements() > 0, "mesh has no elements");
    QUAKE_EXPECT(safety > 0 && safety <= 1, "safety must be in (0, 1]");

    // V_p / V_s ratio for the given Poisson ratio.
    const double ratio =
        std::sqrt((2.0 - 2.0 * poisson) / (1.0 - 2.0 * poisson));

    double dt = std::numeric_limits<double>::infinity();
    for (mesh::TetId t = 0; t < mesh.numElements(); ++t) {
        const mesh::Tet &e = mesh.tet(t);
        const double h = shortestAltitude(
            mesh.node(e.v[0]), mesh.node(e.v[1]), mesh.node(e.v[2]),
            mesh.node(e.v[3]));
        const double vp =
            model.shearWaveSpeed(mesh.tetCentroidOf(t)) * ratio;
        if (vp > 0 && h > 0)
            dt = std::min(dt, h / vp);
    }
    QUAKE_EXPECT(std::isfinite(dt), "could not bound the time step");
    return safety * dt;
}

ExplicitTimeStepper::ExplicitTimeStepper(SmvpFn smvp,
                                         std::vector<double> lumped_mass,
                                         double dt)
    : smvp_(std::move(smvp)), dt_(dt)
{
    QUAKE_EXPECT(dt > 0, "time step must be positive");
    QUAKE_EXPECT(!lumped_mass.empty(), "mass vector is empty");
    inv_mass_.reserve(lumped_mass.size());
    for (double m : lumped_mass) {
        QUAKE_EXPECT(m > 0, "lumped mass entries must be positive");
        inv_mass_.push_back(1.0 / m);
    }
    const std::size_t dof = inv_mass_.size();
    u_.assign(dof, 0.0);
    up_.assign(dof, 0.0);
    ku_.assign(dof, 0.0);
    f_.assign(dof, 0.0);
}

void
ExplicitTimeStepper::setDamping(double a0)
{
    QUAKE_EXPECT(a0 >= 0, "damping coefficient must be nonnegative");
    QUAKE_EXPECT(a0 * dt_ < 2.0,
                 "damping too strong for this time step (a0 dt >= 2)");
    damping_ = a0;
}

void
ExplicitTimeStepper::addSource(const PointSource &source)
{
    QUAKE_EXPECT(3 * static_cast<std::size_t>(source.node) + 2 <
                     inv_mass_.size(),
                 "source node outside the DOF range");
    sources_.push_back(source);
}

void
ExplicitTimeStepper::setFusedStep(FusedStepFn fused)
{
    fused_ = std::move(fused);
}

void
ExplicitTimeStepper::applySources(double t)
{
    for (const PointSource &s : sources_)
        s.apply(t, f_);
}

void
ExplicitTimeStepper::clearSources()
{
    // Point sources touch exactly three entries each, so restoring the
    // all-zero invariant of f_ is O(sources), not the O(n) fill the
    // seed paid every step.
    for (const PointSource &s : sources_) {
        const std::size_t base = 3 * static_cast<std::size_t>(s.node);
        f_[base + 0] = 0.0;
        f_[base + 1] = 0.0;
        f_[base + 2] = 0.0;
    }
}

void
ExplicitTimeStepper::setInitialConditions(const std::vector<double> &u0,
                                          const std::vector<double> &v0)
{
    QUAKE_EXPECT(steps_ == 0,
                 "initial conditions must precede the first step");
    QUAKE_EXPECT(u0.size() == u_.size() && v0.size() == u_.size(),
                 "initial condition size mismatch");

    u_ = u0;

    // f(0) from the sources, K u0 from the operator.
    applySources(0.0);
    smvp_(u_, ku_);

    // The starter triad is pointwise — no cross-DOF reduction — so any
    // partitioning over the pool is bitwise identical to this loop.
    const std::int64_t n = static_cast<std::int64_t>(u_.size());
    auto starter = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            up_[i] = u0[i] - dt_ * v0[i] +
                     0.5 * dt_ * dt_ * inv_mass_[i] * (f_[i] - ku_[i]);
        }
    };
    if (pool_ != nullptr && pool_->size() > 1) {
        const std::int64_t per =
            (n + pool_->size() - 1) / pool_->size();
        pool_->run([&](int tid) {
            const std::int64_t lo = std::min<std::int64_t>(tid * per, n);
            starter(lo, std::min<std::int64_t>(lo + per, n));
        });
    } else {
        starter(0, n);
    }
    clearSources();
}

void
ExplicitTimeStepper::step()
{
    const double t_start = now_seconds();

    // Publish the step number first so every phase recorded below sees
    // a consistent sampling decision for this step.
    telemetry::Collector *tele =
        tele_ != nullptr && tele_->enabled() ? tele_ : nullptr;
    if (tele != nullptr)
        tele->setStep(steps_);
    const std::uint64_t tele0 = tele != nullptr ? tele->now() : 0;

    // f_n: sources evaluated at the current simulated time.  f_ is
    // all-zero here (invariant), so only the source entries are touched.
    applySources(time());

    // (1 + a0 dt/2) u_{n+1} = 2 u_n - (1 - a0 dt/2) u_{n-1}
    //                        + dt^2 M^{-1} (f_n - K u_n),
    // written into up_ which then becomes the new u_ by swap.  With
    // a0 = 0 this is the classic undamped central-difference update.
    const double half_damp = 0.5 * damping_ * dt_;
    sparse::StepUpdate su;
    su.u = u_.data();
    su.up = up_.data();
    su.f = f_.data();
    su.invMass = inv_mass_.data();
    su.dt = dt_;
    su.dt2 = dt_ * dt_;
    su.prevCoeff = 1.0 - half_damp;
    su.denom = 1.0 + half_damp;

    if (fused_) {
        // One pass: SMVP, update, and statistics, fused per row.  The
        // timer necessarily covers the whole pass — the update rides
        // inside the SMVP's row sweep.
        const double t_smvp = now_seconds();
        last_partials_ = fused_(su);
        smvp_seconds_ += now_seconds() - t_smvp;
    } else {
        // K u_n — the SMVP this whole library is about.
        const double t_smvp = now_seconds();
        smvp_(u_, ku_);
        smvp_seconds_ += now_seconds() - t_smvp;

        // Reference triad, out of line in the sparse library so it is
        // compiled with the same kernel flags as the fused backends
        // (DESIGN.md §8) — the anchor of the bitwise-equality contract.
        last_partials_ = sparse::StepPartials{};
        sparse::applyStepUpdateRange(su, ku_.data(), 0,
                                     static_cast<std::int64_t>(u_.size()),
                                     last_partials_);
    }
    stats_valid_ = true;

    clearSources();
    std::swap(u_, up_);
    ++steps_;

    if (tele != nullptr) {
        const std::uint64_t tele1 = tele->now();
        tele->observe(0, telemetry::Hist::kStepNanos, tele1 - tele0);
        tele->recordSpan(0, telemetry::Span::kStep,
                         static_cast<std::int32_t>(steps_ - 1), tele0,
                         tele1);
    }

    total_seconds_ += now_seconds() - t_start;

    // Checkpoint hook last, so the snapshot sees the fully advanced
    // state (u_n = the step's result, stats cached).  Disabled (the
    // default) this is one compare — no time, no allocation.
    if (ckpt_every_ > 0 && steps_ % ckpt_every_ == 0)
        ckpt_hook_(*this);
}

void
ExplicitTimeStepper::saveState(StepperState &out) const
{
    out.steps = steps_;
    out.u = u_;
    out.up = up_;
    out.partials = last_partials_;
    out.statsValid = stats_valid_;
}

void
ExplicitTimeStepper::restoreState(const StepperState &state)
{
    QUAKE_EXPECT(state.u.size() == u_.size() &&
                     state.up.size() == up_.size(),
                 "checkpoint state has " << state.u.size()
                                         << " DOFs, stepper has "
                                         << u_.size());
    QUAKE_EXPECT(state.steps >= 0,
                 "checkpoint step index must be >= 0, got "
                     << state.steps);
    steps_ = state.steps;
    u_ = state.u;
    up_ = state.up;
    last_partials_ = state.partials;
    stats_valid_ = state.statsValid;
}

double
ExplicitTimeStepper::peakDisplacement() const
{
    if (stats_valid_)
        return last_partials_.peak;
    double peak = 0.0;
    for (double v : u_)
        peak = std::max(peak, std::fabs(v));
    return peak;
}

double
ExplicitTimeStepper::kineticEnergy() const
{
    if (stats_valid_)
        return last_partials_.energy;
    double energy = 0.0;
    for (std::size_t i = 0; i < u_.size(); ++i) {
        const double v = (u_[i] - up_[i]) / dt_;
        energy += 0.5 * v * v / inv_mass_[i];
    }
    return energy;
}

} // namespace quake::sim
