/**
 * @file
 * Seismogram recording — the Quake applications' real output.  The CMU
 * runs produced ground-motion time histories at surface receiver
 * stations across the San Fernando Valley; this module records the
 * displacement of chosen mesh nodes every sampling interval and writes
 * the traces in a simple text format (one station per column).
 */

#ifndef QUAKE98_QUAKE_SEISMOGRAM_H_
#define QUAKE98_QUAKE_SEISMOGRAM_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/tet_mesh.h"

namespace quake::sim
{

/** One receiver station: a mesh node with a label. */
struct Station
{
    std::string name;
    mesh::NodeId node = 0;
    mesh::Vec3 position; ///< node position at placement time
};

/** Displacement samples for all stations over time. */
class Seismogram
{
  public:
    /** Create a recorder for the given stations. */
    explicit Seismogram(std::vector<Station> stations);

    /**
     * Place a line of `count` evenly spaced surface stations across
     * the domain of `mesh` at y = y_km, z = 0 (the free surface),
     * snapping to the nearest mesh node.
     */
    static Seismogram surfaceLine(const mesh::TetMesh &mesh, int count,
                                  double y_km);

    /** Record one sample at simulated time t from displacement u. */
    void record(double t, const std::vector<double> &u);

    const std::vector<Station> &stations() const { return stations_; }

    /** Number of samples recorded. */
    std::size_t sampleCount() const { return times_.size(); }

    /** Sampled times. */
    const std::vector<double> &times() const { return times_; }

    /**
     * |u| of station s at sample i (Euclidean norm of the three
     * displacement components).
     */
    double amplitude(std::size_t station, std::size_t sample) const;

    /** Peak |u| over the whole record for one station. */
    double peakAmplitude(std::size_t station) const;

    /**
     * Write all traces as text: a header line, then one row per
     * sample: time followed by |u| per station.
     */
    void write(std::ostream &os) const;

    /** Write to a file; throws FatalError when it cannot be opened. */
    void write(const std::string &path) const;

  private:
    std::vector<Station> stations_;
    std::vector<double> times_;
    /** samples_[i * stations + s] = |u| of station s at sample i. */
    std::vector<double> samples_;
};

} // namespace quake::sim

#endif // QUAKE98_QUAKE_SEISMOGRAM_H_
