/**
 * @file
 * Seismic source terms for the earthquake simulation.  The Quake codes
 * model fault slip in the underlying rock; we drive the synthetic basin
 * with the standard point-source idealization: a Ricker wavelet force
 * applied at the mesh node nearest a hypocenter.
 */

#ifndef QUAKE98_QUAKE_SOURCE_H_
#define QUAKE98_QUAKE_SOURCE_H_

#include <vector>

#include "mesh/tet_mesh.h"

namespace quake::sim
{

/**
 * Ricker wavelet (the second derivative of a Gaussian), the canonical
 * band-limited seismic source pulse:
 *   r(t) = A * (1 - 2 a^2) * exp(-a^2),  a = pi * f_p * (t - t_0).
 * Peak frequency f_p ties the source to the mesh's resolved period.
 */
struct RickerWavelet
{
    double peakFrequencyHz = 0.5; ///< f_p; resolvable when 1/f_p >= period
    double delaySeconds = 2.0;    ///< t_0, so the pulse starts near zero
    double amplitude = 1.0;       ///< A, force scale

    /** Wavelet value at time t. */
    double value(double t) const;
};

/** A point force at one mesh node. */
struct PointSource
{
    mesh::NodeId node = 0;        ///< node the force is applied at
    mesh::Vec3 direction{0, 0, 1}; ///< unit force direction
    RickerWavelet wavelet;

    /**
     * Accumulate this source's contribution at time t into the global
     * force vector f (length 3 * numNodes).
     */
    void apply(double t, std::vector<double> &f) const;
};

/**
 * Build a point source at the mesh node nearest `hypocenter`, normalized
 * to a unit direction.
 */
PointSource makePointSource(const mesh::TetMesh &mesh,
                            const mesh::Vec3 &hypocenter,
                            const mesh::Vec3 &direction,
                            const RickerWavelet &wavelet);

/** Index of the mesh node nearest p (linear scan; ties to lowest id). */
mesh::NodeId nearestNode(const mesh::TetMesh &mesh, const mesh::Vec3 &p);

} // namespace quake::sim

#endif // QUAKE98_QUAKE_SOURCE_H_
