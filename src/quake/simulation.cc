#include "quake/simulation.h"

#include <cmath>

#include "common/error.h"
#include "parallel/parallel_smvp.h"
#include "partition/geometric_bisection.h"
#include "sparse/assembly.h"

namespace quake::sim
{

void
SimulationConfig::validate() const
{
    QUAKE_EXPECT(durationSeconds > 0 && std::isfinite(durationSeconds),
                 "durationSeconds must be positive and finite, got "
                     << durationSeconds);
    QUAKE_EXPECT(cflSafety > 0 && std::isfinite(cflSafety),
                 "cflSafety must be positive and finite, got "
                     << cflSafety);
    QUAKE_EXPECT(poisson >= 0 && poisson < 0.5,
                 "poisson must be in [0, 0.5), got " << poisson);
    QUAKE_EXPECT(dampingA0 >= 0 && std::isfinite(dampingA0),
                 "dampingA0 must be >= 0 and finite, got " << dampingA0);
    QUAKE_EXPECT(numPes >= 1, "numPes must be >= 1, got " << numPes);
    QUAKE_EXPECT(smvpThreads >= 0,
                 "smvpThreads must be >= 1, or 0 for hardware "
                 "concurrency; got "
                     << smvpThreads);
    QUAKE_EXPECT(sampleInterval >= 0,
                 "sampleInterval must be >= 0, got " << sampleInterval);
    QUAKE_EXPECT(maxSteps >= 0, "maxSteps must be >= 0, got " << maxSteps);
}

SimulationReport
runSimulation(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
              const SimulationConfig &config)
{
    config.validate();

    const double dt =
        stableTimeStep(mesh, model, config.poisson, config.cflSafety);
    std::vector<double> mass = sparse::assembleLumpedMass(mesh, model);

    // Bind the SMVP: a single global matrix when sequential, the
    // distributed two-phase kernel otherwise.  Keep the backing objects
    // alive for the whole run.
    std::shared_ptr<sparse::Bcsr3Matrix> global_k;
    std::shared_ptr<parallel::DistributedProblem> problem;
    std::shared_ptr<parallel::ParallelSmvp> psmvp;
    SmvpFn smvp;
    FusedStepFn fused;
    if (config.numPes == 1) {
        global_k = std::make_shared<sparse::Bcsr3Matrix>(
            sparse::assembleStiffness(mesh, model, config.poisson));
        smvp = [global_k](const std::vector<double> &x,
                          std::vector<double> &y) {
            global_k->multiply(x.data(), y.data());
        };
        if (config.fusedStep)
            fused = [global_k](const sparse::StepUpdate &su) {
                return global_k->multiplyFusedStep(su);
            };
    } else {
        const partition::GeometricBisection partitioner;
        problem = std::make_shared<parallel::DistributedProblem>(
            parallel::distribute(mesh, model,
                                 partitioner.partition(mesh,
                                                       config.numPes),
                                 config.poisson));
        psmvp = std::make_shared<parallel::ParallelSmvp>(
            *problem, config.smvpThreads,
            config.overlapSmvp ? parallel::ExchangeMode::kOverlapped
                               : parallel::ExchangeMode::kBarrier);
        // Zero-copy: the engine writes straight into the stepper's ku
        // scratch — the seed's `y = psmvp->multiply(x)` allocated and
        // copied a full DOF vector every step.
        smvp = [psmvp](const std::vector<double> &x,
                       std::vector<double> &y) {
            psmvp->multiplyInto(x, y);
        };
        if (config.fusedStep)
            fused = [psmvp](const sparse::StepUpdate &su) {
                return psmvp->stepFused(su);
            };
    }

    ExplicitTimeStepper stepper(smvp, std::move(mass), dt);
    if (fused)
        stepper.setFusedStep(std::move(fused));
    if (psmvp)
        stepper.setWorkerPool(&psmvp->workerPool());
    if (config.collector != nullptr) {
        stepper.setCollector(config.collector);
        if (psmvp)
            psmvp->setCollector(config.collector);
    }
    if (config.dampingA0 > 0)
        stepper.setDamping(config.dampingA0);
    stepper.addSource(makePointSource(mesh, config.hypocenter,
                                      config.sourceDirection,
                                      config.wavelet));

    std::int64_t num_steps = static_cast<std::int64_t>(
        std::ceil(config.durationSeconds / dt));
    if (config.maxSteps > 0)
        num_steps = std::min(num_steps, config.maxSteps);

    SimulationReport report;
    report.dt = dt;
    for (std::int64_t s = 0; s < num_steps; ++s) {
        stepper.step();
        // O(1): the step pass folds the max into its per-row update,
        // replacing the seed's per-step O(n) displacement sweep.
        report.peakDisplacement =
            std::max(report.peakDisplacement, stepper.peakDisplacement());
        if (config.sampleInterval > 0 &&
            stepper.stepCount() % config.sampleInterval == 0) {
            report.samples.push_back(
                FieldSample{stepper.time(), stepper.peakDisplacement(),
                            stepper.kineticEnergy()});
            if (config.recorder != nullptr)
                config.recorder->record(stepper.time(),
                                        stepper.displacement());
        }
    }

    report.steps = stepper.stepCount();
    report.simulatedSeconds = stepper.time();
    report.smvpSeconds = stepper.smvpSeconds();
    report.totalSeconds = stepper.totalSeconds();
    report.smvpFraction = report.totalSeconds > 0
                              ? report.smvpSeconds / report.totalSeconds
                              : 0.0;
    return report;
}

SimulationReport
runSfSimulation(mesh::SfClass cls, const SimulationConfig &config,
                double h_scale)
{
    const mesh::LayeredBasinModel model;
    const mesh::GeneratedMesh generated =
        mesh::generateMesh(model, mesh::MeshSpec::forClass(cls, h_scale));
    return runSimulation(generated.mesh, model, config);
}

} // namespace quake::sim
