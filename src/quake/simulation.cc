#include "quake/simulation.h"

#include <cmath>

#include "common/error.h"
#include "common/fnv.h"
#include "parallel/parallel_smvp.h"
#include "parallel/topology.h"
#include "partition/geometric_bisection.h"
#include "sparse/assembly.h"
#include "sparse/sliced_ell3.h"

namespace quake::sim
{

void
SimulationConfig::validate() const
{
    QUAKE_EXPECT(durationSeconds > 0 && std::isfinite(durationSeconds),
                 "durationSeconds must be positive and finite, got "
                     << durationSeconds);
    QUAKE_EXPECT(cflSafety > 0 && std::isfinite(cflSafety),
                 "cflSafety must be positive and finite, got "
                     << cflSafety);
    QUAKE_EXPECT(poisson >= 0 && poisson < 0.5,
                 "poisson must be in [0, 0.5), got " << poisson);
    QUAKE_EXPECT(dampingA0 >= 0 && std::isfinite(dampingA0),
                 "dampingA0 must be >= 0 and finite, got " << dampingA0);
    QUAKE_EXPECT(numPes >= 1, "numPes must be >= 1, got " << numPes);
    QUAKE_EXPECT(smvpThreads >= 0,
                 "smvpThreads must be >= 1, or 0 for hardware "
                 "concurrency; got "
                     << smvpThreads);
    QUAKE_EXPECT(smvpShards >= 1,
                 "smvpShards must be >= 1, got " << smvpShards);
    QUAKE_EXPECT(smvpThreadsPerShard >= 0,
                 "smvpThreadsPerShard must be >= 1, or 0 for an even "
                 "split of the thread budget; got "
                     << smvpThreadsPerShard);
    if (!topologySpec.empty())
        parallel::Topology::parse(topologySpec); // throws when malformed
    QUAKE_EXPECT(sampleInterval >= 0,
                 "sampleInterval must be >= 0, got " << sampleInterval);
    QUAKE_EXPECT(maxSteps >= 0, "maxSteps must be >= 0, got " << maxSteps);
}

namespace
{

/** Fold a Bcsr3 matrix (structure + values) into a fingerprint. */
std::uint64_t
hashMatrix(const sparse::Bcsr3Matrix &k, std::uint64_t h)
{
    h = common::fnv1aVector(k.xadj(), h);
    h = common::fnv1aVector(k.blockCols(), h);
    if (k.numBlocks() > 0)
        h = common::fnv1a(k.blockAt(0),
                          static_cast<std::size_t>(9 * k.numBlocks()) *
                              sizeof(double),
                          h);
    return h;
}

/**
 * The config fingerprint (DESIGN.md §11): everything that determines
 * the trajectory's bit pattern, so a checkpoint can never silently
 * resume against the wrong mesh, partition, or matrix.
 */
std::uint64_t
computeFingerprint(const mesh::TetMesh &mesh,
                   const SimulationConfig &config, double dt,
                   const std::vector<double> &mass,
                   const PointSource &source,
                   const sparse::Bcsr3Matrix *global_k,
                   const parallel::DistributedProblem *problem)
{
    std::uint64_t h = common::kFnvOffsetBasis;
    h = common::fnv1aVector(mesh.nodes(), h);
    h = common::fnv1aVector(mesh.tets(), h);
    h = common::fnv1aValue(config.numPes, h);
    // The backend changes trajectory bits (ULP-level kernel
    // differences), so it is part of the trajectory identity —
    // checkpoints must not resume under a different backend.
    h = common::fnv1aValue(static_cast<int>(config.kernelBackend), h);
    h = common::fnv1aValue(config.poisson, h);
    h = common::fnv1aValue(config.dampingA0, h);
    h = common::fnv1aValue(dt, h);
    h = common::fnv1aVector(mass, h);
    h = common::fnv1aValue(source.node, h);
    h = common::fnv1aValue(source.direction, h);
    h = common::fnv1aValue(source.wavelet, h);
    if (global_k != nullptr)
        h = hashMatrix(*global_k, h);
    if (problem != nullptr) {
        h = common::fnv1aVector(problem->partition.elementPart, h);
        for (const parallel::Subdomain &sub : problem->subdomains)
            h = hashMatrix(sub.stiffness, h);
    }
    return h;
}

} // namespace

SimulationEngine
makeSimulationEngine(const mesh::TetMesh &mesh,
                     const mesh::SoilModel &model,
                     const SimulationConfig &config)
{
    return makeSimulationEngineWith(mesh, model, config, EnginePrefix{});
}

SimulationEngine
makeSimulationEngineWith(const mesh::TetMesh &mesh,
                         const mesh::SoilModel &model,
                         const SimulationConfig &config,
                         const EnginePrefix &prefix)
{
    config.validate();

    SimulationEngine engine;
    engine.dt =
        stableTimeStep(mesh, model, config.poisson, config.cflSafety);
    std::vector<double> mass = sparse::assembleLumpedMass(mesh, model);

    // Bind the SMVP: a single global matrix when sequential, the
    // distributed two-phase kernel otherwise.  The backing objects live
    // in the engine for the whole run.
    SmvpFn smvp;
    FusedStepFn fused;
    const bool use_ell =
        config.kernelBackend == SimulationConfig::KernelBackend::kSlicedEll3;
    if (config.numPes == 1) {
        engine.globalK =
            prefix.globalK != nullptr
                ? prefix.globalK
                : std::make_shared<const sparse::Bcsr3Matrix>(
                      sparse::assembleStiffness(mesh, model,
                                                config.poisson));
        if (use_ell) {
            engine.globalEll = std::make_shared<sparse::SlicedEll3Matrix>(
                sparse::SlicedEll3Matrix::fromBcsr3(*engine.globalK));
            const auto ell = engine.globalEll;
            smvp = [ell](const std::vector<double> &x,
                         std::vector<double> &y) {
                ell->multiply(x.data(), y.data());
            };
            if (config.fusedStep) {
                // Persistent K u scratch so the fused lambda performs
                // no per-step allocation (the BCSR3 fused path keeps
                // its scratch inside the matrix; the ELL path is
                // caller-provided by design).
                auto scratch = std::make_shared<std::vector<double>>(
                    static_cast<std::size_t>(engine.globalEll->numRows()),
                    0.0);
                fused = [ell, scratch](const sparse::StepUpdate &su) {
                    return ell->multiplyFusedStep(su, scratch->data());
                };
            }
        } else {
            const auto global_k = engine.globalK;
            smvp = [global_k](const std::vector<double> &x,
                              std::vector<double> &y) {
                global_k->multiply(x.data(), y.data());
            };
            if (config.fusedStep)
                fused = [global_k](const sparse::StepUpdate &su) {
                    return global_k->multiplyFusedStep(su);
                };
        }
    } else {
        if (prefix.problem != nullptr) {
            engine.problem = prefix.problem;
        } else {
            const partition::GeometricBisection partitioner;
            engine.problem =
                std::make_shared<const parallel::DistributedProblem>(
                    parallel::distribute(
                        mesh, model,
                        partitioner.partition(mesh, config.numPes),
                        config.poisson));
        }
        // Execution topology (DESIGN.md §13): an explicit spec wins;
        // otherwise the shard/thread knobs are folded into a Topology
        // whose single-shard default reproduces the historical flat
        // engine (smvpThreads as the thread budget) exactly.  None of
        // this enters the fingerprint: the trajectory is bitwise
        // invariant across topologies.
        parallel::Topology topo;
        if (!config.topologySpec.empty()) {
            topo = parallel::Topology::parse(config.topologySpec,
                                             config.pinSmvpThreads);
        } else {
            topo.numShards = config.smvpShards;
            topo.threadsPerShard = config.smvpThreadsPerShard;
            topo.threadBudget = config.smvpThreads;
            topo.pin = config.pinSmvpThreads;
        }
        engine.psmvp = std::make_shared<parallel::ParallelSmvp>(
            *engine.problem, topo,
            config.overlapSmvp ? parallel::ExchangeMode::kOverlapped
                               : parallel::ExchangeMode::kBarrier,
            use_ell ? parallel::SmvpKernelBackend::kSlicedEll3
                    : parallel::SmvpKernelBackend::kBcsr3);
        // Zero-copy: the engine writes straight into the stepper's ku
        // scratch — the seed's `y = psmvp->multiply(x)` allocated and
        // copied a full DOF vector every step.
        const auto psmvp = engine.psmvp;
        smvp = [psmvp](const std::vector<double> &x,
                       std::vector<double> &y) {
            psmvp->multiplyInto(x, y);
        };
        if (config.fusedStep)
            fused = [psmvp](const sparse::StepUpdate &su) {
                return psmvp->stepFused(su);
            };
    }

    const PointSource source = makePointSource(
        mesh, config.hypocenter, config.sourceDirection, config.wavelet);
    engine.fingerprint = computeFingerprint(
        mesh, config, engine.dt, mass, source, engine.globalK.get(),
        engine.problem.get());

    engine.stepper = std::make_unique<ExplicitTimeStepper>(
        smvp, std::move(mass), engine.dt);
    if (fused)
        engine.stepper->setFusedStep(std::move(fused));
    if (engine.psmvp)
        engine.stepper->setWorkerPool(&engine.psmvp->workerPool());
    if (config.collector != nullptr) {
        engine.stepper->setCollector(config.collector);
        if (engine.psmvp)
            engine.psmvp->setCollector(config.collector);
    }
    if (config.dampingA0 > 0)
        engine.stepper->setDamping(config.dampingA0);
    engine.stepper->addSource(source);

    engine.plannedSteps = static_cast<std::int64_t>(
        std::ceil(config.durationSeconds / engine.dt));
    if (config.maxSteps > 0)
        engine.plannedSteps =
            std::min(engine.plannedSteps, config.maxSteps);
    return engine;
}

void
advanceSimulation(SimulationEngine &engine, const SimulationConfig &config,
                  SimulationReport &report, const StepObserver &observer)
{
    ExplicitTimeStepper &stepper = *engine.stepper;
    for (std::int64_t s = stepper.stepCount(); s < engine.plannedSteps;
         ++s) {
        stepper.step();
        // O(1): the step pass folds the max into its per-row update,
        // replacing the seed's per-step O(n) displacement sweep.
        report.peakDisplacement =
            std::max(report.peakDisplacement, stepper.peakDisplacement());
        if (config.sampleInterval > 0 &&
            stepper.stepCount() % config.sampleInterval == 0) {
            report.samples.push_back(
                FieldSample{stepper.time(), stepper.peakDisplacement(),
                            stepper.kineticEnergy()});
            if (config.recorder != nullptr)
                config.recorder->record(stepper.time(),
                                        stepper.displacement());
        }
        if (observer)
            observer(stepper.stepCount());
    }

    report.steps = stepper.stepCount();
    report.simulatedSeconds = stepper.time();
    report.smvpSeconds = stepper.smvpSeconds();
    report.totalSeconds = stepper.totalSeconds();
    report.smvpFraction = report.totalSeconds > 0
                              ? report.smvpSeconds / report.totalSeconds
                              : 0.0;
}

SimulationReport
runSimulation(const mesh::TetMesh &mesh, const mesh::SoilModel &model,
              const SimulationConfig &config)
{
    SimulationEngine engine = makeSimulationEngine(mesh, model, config);
    SimulationReport report;
    report.dt = engine.dt;
    advanceSimulation(engine, config, report);
    return report;
}

SimulationReport
runSfSimulation(mesh::SfClass cls, const SimulationConfig &config,
                double h_scale)
{
    const mesh::LayeredBasinModel model;
    const mesh::GeneratedMesh generated =
        mesh::generateMesh(model, mesh::MeshSpec::forClass(cls, h_scale));
    return runSimulation(generated.mesh, model, config);
}

} // namespace quake::sim
