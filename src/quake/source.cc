#include "quake/source.h"

#include <cmath>

#include "common/error.h"

namespace quake::sim
{

double
RickerWavelet::value(double t) const
{
    const double a = M_PI * peakFrequencyHz * (t - delaySeconds);
    const double a2 = a * a;
    return amplitude * (1.0 - 2.0 * a2) * std::exp(-a2);
}

void
PointSource::apply(double t, std::vector<double> &f) const
{
    const double v = wavelet.value(t);
    const std::size_t base = 3 * static_cast<std::size_t>(node);
    QUAKE_EXPECT(base + 2 < f.size(), "force vector too small for source");
    f[base + 0] += v * direction.x;
    f[base + 1] += v * direction.y;
    f[base + 2] += v * direction.z;
}

mesh::NodeId
nearestNode(const mesh::TetMesh &mesh, const mesh::Vec3 &p)
{
    QUAKE_EXPECT(mesh.numNodes() > 0, "mesh has no nodes");
    mesh::NodeId best = 0;
    double best_dist2 = (mesh.node(0) - p).norm2();
    for (mesh::NodeId i = 1; i < mesh.numNodes(); ++i) {
        const double d2 = (mesh.node(i) - p).norm2();
        if (d2 < best_dist2) {
            best_dist2 = d2;
            best = i;
        }
    }
    return best;
}

PointSource
makePointSource(const mesh::TetMesh &mesh, const mesh::Vec3 &hypocenter,
                const mesh::Vec3 &direction, const RickerWavelet &wavelet)
{
    PointSource source;
    source.node = nearestNode(mesh, hypocenter);
    const double norm = direction.norm();
    QUAKE_EXPECT(norm > 0, "source direction must be nonzero");
    source.direction = direction / norm;
    source.wavelet = wavelet;
    return source;
}

} // namespace quake::sim
