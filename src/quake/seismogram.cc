#include "quake/seismogram.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "quake/source.h"

namespace quake::sim
{

Seismogram::Seismogram(std::vector<Station> stations)
    : stations_(std::move(stations))
{
    QUAKE_EXPECT(!stations_.empty(), "need at least one station");
}

Seismogram
Seismogram::surfaceLine(const mesh::TetMesh &mesh, int count, double y_km)
{
    QUAKE_EXPECT(count >= 1, "need at least one station");
    const mesh::Aabb box = mesh.bounds();
    std::vector<Station> stations;
    stations.reserve(static_cast<std::size_t>(count));
    for (int s = 0; s < count; ++s) {
        const double x =
            box.lo.x + (box.hi.x - box.lo.x) *
                           (count == 1 ? 0.5
                                       : static_cast<double>(s) /
                                             (count - 1));
        const mesh::Vec3 target{x, y_km, box.lo.z}; // free surface
        Station station;
        station.node = nearestNode(mesh, target);
        station.position = mesh.node(station.node);
        station.name = "st" + std::to_string(s);
        stations.push_back(std::move(station));
    }
    return Seismogram(std::move(stations));
}

void
Seismogram::record(double t, const std::vector<double> &u)
{
    times_.push_back(t);
    for (const Station &station : stations_) {
        const std::size_t base =
            3 * static_cast<std::size_t>(station.node);
        QUAKE_EXPECT(base + 2 < u.size(),
                     "displacement vector too small for station '"
                         << station.name << "'");
        const double amp = std::sqrt(u[base] * u[base] +
                                     u[base + 1] * u[base + 1] +
                                     u[base + 2] * u[base + 2]);
        samples_.push_back(amp);
    }
}

double
Seismogram::amplitude(std::size_t station, std::size_t sample) const
{
    QUAKE_EXPECT(station < stations_.size(), "station out of range");
    QUAKE_EXPECT(sample < times_.size(), "sample out of range");
    return samples_[sample * stations_.size() + station];
}

double
Seismogram::peakAmplitude(std::size_t station) const
{
    QUAKE_EXPECT(station < stations_.size(), "station out of range");
    double peak = 0.0;
    for (std::size_t i = 0; i < times_.size(); ++i)
        peak = std::max(peak, amplitude(station, i));
    return peak;
}

void
Seismogram::write(std::ostream &os) const
{
    os << "# time";
    for (const Station &s : stations_)
        os << ' ' << s.name << "(" << s.position.x << ","
           << s.position.y << ")";
    os << '\n';
    for (std::size_t i = 0; i < times_.size(); ++i) {
        os << times_[i];
        for (std::size_t s = 0; s < stations_.size(); ++s)
            os << ' ' << amplitude(s, i);
        os << '\n';
    }
}

void
Seismogram::write(const std::string &path) const
{
    std::ofstream os(path);
    QUAKE_EXPECT(os.good(), "cannot open " << path << " for writing");
    write(os);
}

} // namespace quake::sim
