/**
 * @file
 * Explicit central-difference time integration (paper §2.2): the Quake
 * applications advance  M u'' + K u = f  with the classic second-order
 * scheme
 *
 *   u_{n+1} = 2 u_n - u_{n-1} + dt^2 M^{-1} (f_n - K u_n),
 *
 * whose only non-pointwise operation is the SMVP K u_n — which is why
 * the whole paper reduces to the SMVP's behaviour.  M is the lumped
 * (diagonal) mass, so M^{-1} is a pointwise scale.
 */

#ifndef QUAKE98_QUAKE_TIME_STEPPER_H_
#define QUAKE98_QUAKE_TIME_STEPPER_H_

#include <functional>
#include <vector>

#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"
#include "parallel/worker_pool.h"
#include "quake/source.h"
#include "sparse/bcsr3.h"
#include "telemetry/collector.h"

namespace quake::sim
{

/**
 * A pluggable SMVP: y = K x on global vectors.  The sequential stepper
 * binds a Bcsr3Matrix; the distributed driver binds ParallelSmvp.
 */
using SmvpFn =
    std::function<void(const std::vector<double> &x, std::vector<double> &y)>;

/**
 * A pluggable fused step backend: run the SMVP with su.u as x, apply
 * `su` to every DOF the moment its K u value is final (writing u_{n+1}
 * into su.up), and return the peak/energy partials over all DOFs.
 * Bound to Bcsr3Matrix::multiplyFusedStep, ParallelSmvp::stepFused, or
 * spark::FusedStepKernel::step; must produce u_{n+1} bitwise identical
 * to the unfused SMVP + reference update triad (DESIGN.md §8).
 */
using FusedStepFn =
    std::function<sparse::StepPartials(const sparse::StepUpdate &su)>;

/**
 * Stable time step for the mesh/material pair: the CFL bound
 *   dt <= safety * min over elements (h_min / V_p),
 * with h_min the element's shortest altitude and V_p its P-wave speed.
 */
double stableTimeStep(const mesh::TetMesh &mesh,
                      const mesh::SoilModel &model, double poisson = 0.25,
                      double safety = 0.5);

/**
 * A complete snapshot of the integrator's step state (DESIGN.md §11).
 * Restoring it into a stepper built over the same operator reproduces
 * the continuation bitwise: step() depends only on (u_n, u_{n-1}, step
 * index) plus the construction-time operator/mass/dt/damping/sources,
 * and the force scratch is all-zero between steps by invariant.
 */
struct StepperState
{
    std::int64_t steps = 0;         ///< completed steps (defines time())
    std::vector<double> u;          ///< u_n
    std::vector<double> up;         ///< u_{n-1}
    sparse::StepPartials partials;  ///< cached peak/energy reductions
    bool statsValid = false;        ///< whether `partials` is populated
};

/** Central-difference integrator over a lumped-mass elastic system. */
class ExplicitTimeStepper
{
  public:
    /**
     * @param smvp        The SMVP operation y = K x.
     * @param lumped_mass Diagonal mass, one entry per scalar DOF (> 0).
     * @param dt          Time step (must satisfy the CFL bound).
     */
    ExplicitTimeStepper(SmvpFn smvp, std::vector<double> lumped_mass,
                        double dt);

    /** Add a point source (may be called multiple times). */
    void addSource(const PointSource &source);

    /**
     * Bind a fused step backend.  When set, step() runs the whole
     * SMVP + update + statistics pass through it — no ku vector, no
     * second O(n) sweep, no per-step allocation.  Displacements stay
     * bitwise identical to the unfused path; pass nullptr to unbind.
     */
    void setFusedStep(FusedStepFn fused);

    /** Whether a fused backend is bound. */
    bool fusedStep() const { return static_cast<bool>(fused_); }

    /**
     * Optional worker pool for the pointwise setup passes
     * (setInitialConditions' starter triad).  The pool is borrowed —
     * it must outlive the stepper or be unbound with nullptr — and the
     * result is bitwise identical to the serial pass (the starter is
     * pointwise, with no cross-DOF reduction).
     */
    void setWorkerPool(parallel::WorkerPool *pool) { pool_ = pool; }

    /**
     * Enable mass-proportional Rayleigh damping with coefficient a0
     * (1/seconds): M u'' + a0 M u' + K u = f.  Real Quake simulations
     * include attenuation; a0 = 0 (the default) recovers the undamped
     * scheme.  The damped update remains explicit:
     *   (1 + a0 dt/2) u_{n+1} =
     *       2 u_n - (1 - a0 dt/2) u_{n-1} + dt^2 M^{-1} (f - K u_n).
     */
    void setDamping(double a0);

    /** Current damping coefficient. */
    double damping() const { return damping_; }

    /**
     * Impose initial conditions u(0) = u0, u'(0) = v0 (both length =
     * DOF count).  Uses the standard second-order starter
     *   u_{-1} = u0 - dt v0 + (dt^2 / 2) M^{-1} (f(0) - K u0),
     * preserving the scheme's convergence order.  Must be called
     * before the first step; sources should be added first so f(0) is
     * complete.
     */
    void setInitialConditions(const std::vector<double> &u0,
                              const std::vector<double> &v0);

    /** Advance one step.  Displacement histories update internally. */
    void step();

    /** Simulated time of the current displacement field. */
    double time() const { return static_cast<double>(steps_) * dt_; }

    /** Steps taken so far. */
    std::int64_t stepCount() const { return steps_; }

    /** Current displacement field (length = DOF count). */
    const std::vector<double> &displacement() const { return u_; }

    /** Previous displacement field (for velocity estimates). */
    const std::vector<double> &previousDisplacement() const { return up_; }

    /**
     * max |u_i| over all scalar DOFs.  O(1) after any step — every
     * step (fused or not) folds the running max into its update pass —
     * and an O(n) sweep before the first step.
     */
    double peakDisplacement() const;

    /**
     * Kinetic energy (1/2) v^T M v with v = (u - u_prev) / dt.  O(1)
     * after any step (accumulated by the update pass in a fixed,
     * backend-defined order); O(n) sweep before the first step.
     */
    double kineticEnergy() const;

    /**
     * Seconds spent inside the SMVP so far (wall clock), vs. total step
     * time; supports the paper's ">80% of running time is SMVP" claim.
     */
    double smvpSeconds() const { return smvp_seconds_; }
    double totalSeconds() const { return total_seconds_; }

    /**
     * Called after every checkpointInterval()-th completed step with
     * the stepper itself; the resilience subsystem binds a hook that
     * snapshots the state and writes it to disk atomically.
     */
    using CheckpointHook = std::function<void(const ExplicitTimeStepper &)>;

    /**
     * Arrange for `hook` to run after every `every`-th completed step
     * (DESIGN.md §11).  `every` == 0 disables checkpointing — the
     * disabled path costs exactly one integer compare per step and
     * zero allocations (guarded by the resilience perf smoke).  Pass a
     * null hook with every == 0 to unbind.
     */
    void
    checkpointEvery(std::int64_t every, CheckpointHook hook)
    {
        ckpt_every_ = every > 0 ? every : 0;
        ckpt_hook_ = std::move(hook);
    }

    /** Steps between checkpoint-hook firings; 0 = disabled. */
    std::int64_t checkpointInterval() const { return ckpt_every_; }

    /**
     * Copy the full integrator state into `out` (reusing its buffers
     * when already sized).  O(n); checkpoint/verify path only.
     */
    void saveState(StepperState &out) const;

    /**
     * Restore a previously saved state.  The stepper must have been
     * constructed over the same DOF count (FatalError otherwise);
     * matching the operator/mass/dt/damping/sources is the caller's
     * contract — the resilience loader enforces it with the config
     * fingerprint.  Subsequent steps are bitwise identical to a run
     * that never stopped.
     */
    void restoreState(const StepperState &state);

    /**
     * Attach a telemetry collector (DESIGN.md §9).  Each step() then
     * publishes the step number (driving the collector's every-N
     * fine-grained sampling), records a whole-step span on the control
     * slot, and feeds the step latency histogram.  Recording is
     * observation-only, so displacements remain bitwise identical to a
     * telemetry-off run.  Setup-time only; pass nullptr to detach.  The
     * collector must outlive the stepper or be detached.
     */
    void
    setCollector(telemetry::Collector *collector)
    {
        if (collector != nullptr)
            collector->ensureSlots(1);
        tele_ = collector;
    }

  private:
    /** Accumulate the sources into f_ at time t (sparse touch). */
    void applySources(double t);

    /** Restore the all-zero invariant of f_ (sparse touch). */
    void clearSources();

    SmvpFn smvp_;
    FusedStepFn fused_;
    CheckpointHook ckpt_hook_;
    std::int64_t ckpt_every_ = 0;
    parallel::WorkerPool *pool_ = nullptr;
    telemetry::Collector *tele_ = nullptr;
    std::vector<double> inv_mass_;
    double dt_;
    double damping_ = 0.0;
    std::vector<PointSource> sources_;

    std::vector<double> u_;  ///< u_n
    std::vector<double> up_; ///< u_{n-1}
    std::vector<double> ku_; ///< K u_n scratch (unfused path only)
    std::vector<double> f_;  ///< force scratch, all-zero between steps
    std::int64_t steps_ = 0;

    /** Peak/energy of the state after the latest step. */
    sparse::StepPartials last_partials_;
    bool stats_valid_ = false;

    double smvp_seconds_ = 0.0;
    double total_seconds_ = 0.0;
};

} // namespace quake::sim

#endif // QUAKE98_QUAKE_TIME_STEPPER_H_
