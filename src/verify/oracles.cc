#include "verify/oracles.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "verify/ulp.h"

namespace quake::verify
{

namespace
{

const std::atomic<std::int64_t> *g_alloc_counter = nullptr;

} // namespace

UlpReport
compareUlp(const std::vector<double> &expected,
           const std::vector<double> &actual)
{
    UlpReport r;
    if (expected.size() != actual.size())
    {
        r.sizeMismatch = true;
        r.maxUlp = std::numeric_limits<std::int64_t>::max();
        return r;
    }
    for (std::size_t i = 0; i < expected.size(); ++i)
    {
        const std::int64_t d = ulpDistance(expected[i], actual[i]);
        if (d > r.maxUlp)
        {
            r.maxUlp = d;
            r.worstIndex = static_cast<std::int64_t>(i);
            r.expected = expected[i];
            r.actual = actual[i];
        }
    }
    return r;
}

bool
bitwiseEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    if (a.empty())
        return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool
withinMixedTolerance(const std::vector<double> &expected,
                     const std::vector<double> &actual,
                     std::int64_t ulp_bound, double rel_eps,
                     std::string *why)
{
    if (expected.size() != actual.size())
    {
        if (why != nullptr)
        {
            std::ostringstream os;
            os << "size mismatch: expected " << expected.size() << ", got "
               << actual.size();
            *why = os.str();
        }
        return false;
    }
    double norm_inf = 0.0;
    for (double v : expected)
        norm_inf = std::max(norm_inf, std::fabs(v));
    const double abs_bound = rel_eps * norm_inf;
    for (std::size_t i = 0; i < expected.size(); ++i)
    {
        const std::int64_t d = ulpDistance(expected[i], actual[i]);
        if (d <= ulp_bound)
            continue;
        if (std::fabs(expected[i] - actual[i]) <= abs_bound)
            continue;
        if (why != nullptr)
        {
            std::ostringstream os;
            os.precision(17);
            os << "element " << i << ": expected " << expected[i]
               << ", got " << actual[i] << " (" << d
               << " ulps; |diff| > " << abs_bound << ")";
            *why = os.str();
        }
        return false;
    }
    return true;
}

std::string
describeUlp(const UlpReport &report)
{
    std::ostringstream os;
    os.precision(17);
    if (report.sizeMismatch)
        return "size mismatch";
    os << "max " << report.maxUlp << " ulps at element "
       << report.worstIndex << " (expected " << report.expected
       << ", got " << report.actual << ")";
    return os.str();
}

void
setAllocationCounter(const std::atomic<std::int64_t> *counter)
{
    g_alloc_counter = counter;
}

std::int64_t
allocationsNow()
{
    if (g_alloc_counter == nullptr)
        return -1;
    return g_alloc_counter->load(std::memory_order_relaxed);
}

} // namespace quake::verify
