/**
 * @file
 * Comparison oracles for the differential harness (DESIGN.md §10):
 * element-wise ULP reports, exact bitwise equality, the mixed
 * ULP-or-relative acceptance criterion, and the allocation-counter
 * bridge that lets a host binary's operator-new hook feed the
 * telemetry-transparency property.
 */

#ifndef QUAKE98_VERIFY_ORACLES_H_
#define QUAKE98_VERIFY_ORACLES_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace quake::verify
{

/** Worst element-wise ULP deviation between two vectors. */
struct UlpReport
{
    std::int64_t maxUlp = 0;     ///< saturating max over elements
    std::int64_t worstIndex = -1; ///< element attaining maxUlp
    double expected = 0.0;       ///< reference value at worstIndex
    double actual = 0.0;         ///< candidate value at worstIndex
    bool sizeMismatch = false;   ///< lengths differed (maxUlp saturates)
};

/** Element-wise ULP comparison; see ulpDistance for the metric. */
UlpReport compareUlp(const std::vector<double> &expected,
                     const std::vector<double> &actual);

/** Exact bit-pattern equality (lengths and every element). */
bool bitwiseEqual(const std::vector<double> &a,
                  const std::vector<double> &b);

/**
 * The differential acceptance criterion for kernels that reorder sums
 * (DESIGN.md §10): element i passes when its ULP distance from the
 * reference is at most `ulp_bound`, OR its absolute difference is at
 * most rel_eps * ||expected||_inf (tiny values near cancellation have
 * huge relative error but no numerical significance).  On failure,
 * `why` (if non-null) receives a one-line diagnostic naming the worst
 * element.
 */
bool withinMixedTolerance(const std::vector<double> &expected,
                          const std::vector<double> &actual,
                          std::int64_t ulp_bound, double rel_eps,
                          std::string *why);

/** Human-readable one-liner for a UlpReport. */
std::string describeUlp(const UlpReport &report);

/**
 * Install the host binary's allocation counter (a monotonically
 * increasing count of operator-new calls, maintained by a per-binary
 * global hook; see tests/test_telemetry.cc for the pattern).  The
 * telemetry property uses it to assert 0 allocations/step; when no
 * counter is installed the assertion is skipped.  Pass nullptr to
 * uninstall.
 */
void setAllocationCounter(const std::atomic<std::int64_t> *counter);

/** Current allocation count, or -1 when no counter is installed. */
std::int64_t allocationsNow();

} // namespace quake::verify

#endif // QUAKE98_VERIFY_ORACLES_H_
