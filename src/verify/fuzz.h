/**
 * @file
 * The seeded fuzz driver (DESIGN.md §10).  Runs every requested
 * property over N deterministic trials, shrinks each failure by
 * replaying the same seed at smaller input sizes, and reports a single
 * reproducer command line (`verify_fuzz --property X --seed S --size
 * Z`) that replays the minimal failing trial exactly.
 */

#ifndef QUAKE98_VERIFY_FUZZ_H_
#define QUAKE98_VERIFY_FUZZ_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "verify/properties.h"

namespace quake::verify
{

/** Options of one fuzz run. */
struct FuzzOptions
{
    /** Property names to run; empty = the whole catalogue. */
    std::vector<std::string> properties;

    /** Trials per property. */
    int trials = 64;

    /** Base seed; trial t uses deriveStream(baseSeed, t). */
    std::uint64_t baseSeed = 0x5eed5eed5eed5eedULL;

    /** Thread counts every threading property sweeps. */
    std::vector<int> threads = {1, 2, 4, 8};

    /**
     * Replay mode: when >= 0 the driver runs exactly one trial with
     * this literal seed (not derived) at `explicitSize`, matching the
     * reproducer line printed on failure.
     */
    std::int64_t explicitSeed = -1;
    int explicitSize = TrialConfig::kDefaultSize;

    /** Progress/diagnostic stream; nullptr = silent. */
    std::ostream *out = nullptr;
};

/** One shrunk failure. */
struct FuzzFailure
{
    std::string property;
    std::uint64_t seed = 0;  ///< literal trial seed (post-derivation)
    int size = 0;            ///< minimal failing size after shrinking
    std::string message;     ///< diagnostic from the property
    std::string reproducer;  ///< one-line replay command
};

/** Aggregate outcome of a fuzz run. */
struct FuzzReport
{
    int trialsRun = 0;
    int propertiesRun = 0;
    std::vector<FuzzFailure> failures;

    bool passed() const { return failures.empty(); }
};

/** Fuzz an explicit property list (unit tests inject synthetic ones). */
FuzzReport runFuzz(const std::vector<Property> &properties,
                   const FuzzOptions &options);

/** Fuzz the catalogue properties selected by `options.properties`. */
FuzzReport runFuzz(const FuzzOptions &options);

/** The replay command line for one failing trial. */
std::string reproducerLine(const std::string &property, std::uint64_t seed,
                           int size);

} // namespace quake::verify

#endif // QUAKE98_VERIFY_FUZZ_H_
