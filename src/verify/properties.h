/**
 * @file
 * The property catalogue of the differential-verification harness
 * (DESIGN.md §10).  A property is a named predicate over one seeded
 * trial: it draws inputs from InputGen(seed, size), runs two or more
 * implementations (or one implementation plus an invariant), and
 * reports pass/fail with a human-readable diagnostic.  The fuzz driver
 * (fuzz.h) runs each property over many seeds and shrinks failures.
 */

#ifndef QUAKE98_VERIFY_PROPERTIES_H_
#define QUAKE98_VERIFY_PROPERTIES_H_

#include <functional>
#include <string>
#include <vector>

#include "verify/generators.h"

namespace quake::verify
{

/** Outcome of one property trial. */
struct PropertyResult
{
    bool pass = true;
    std::string message; ///< diagnostic on failure, empty on success

    static PropertyResult ok() { return {}; }

    static PropertyResult
    fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/** A named property over seeded trials. */
struct Property
{
    std::string name;    ///< stable id, used by --property
    std::string summary; ///< one line for --list
    std::function<PropertyResult(const TrialConfig &)> run;
};

/** The full catalogue, in stable order. */
const std::vector<Property> &allProperties();

/** Look up a property by name; nullptr when unknown. */
const Property *findProperty(const std::string &name);

/**
 * Run one trial of `prop`, converting any escaped exception
 * (common::FatalError from a generator or checked entry point,
 * std::exception from anywhere else) into a failing result — a
 * property crash is a finding, not a harness abort.
 */
PropertyResult runProperty(const Property &prop, const TrialConfig &cfg);

} // namespace quake::verify

#endif // QUAKE98_VERIFY_PROPERTIES_H_
