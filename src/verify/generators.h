/**
 * @file
 * Seeded structured input generators for the differential-verification
 * and property-fuzzing subsystem (DESIGN.md §10).
 *
 * Every generator is a pure function of (seed, size): the seed names
 * the trial and the size bounds its scale, so a failing trial can be
 * replayed exactly from its reproducer line and *shrunk* by re-running
 * the same seed at smaller sizes.  Two families are produced:
 *
 *  - structured inputs sampled through the San Fernando generator's own
 *    parameter space (MeshSpec), random SPD block matrices, random
 *    partitions, synthetic communication schedules, and fault specs —
 *    the "realistic but randomized" diet;
 *  - adversarial shapes the calibrated sf-class path never produces:
 *    single-element meshes, near-degenerate slivers, disconnected
 *    meshes, and pathologically graded meshes.
 */

#ifndef QUAKE98_VERIFY_GENERATORS_H_
#define QUAKE98_VERIFY_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "mesh/tet_mesh.h"
#include "parallel/comm_schedule.h"
#include "parallel/fault_model.h"
#include "parallel/machine.h"
#include "partition/partitioner.h"
#include "sparse/bcsr3.h"

namespace quake::verify
{

/** One fuzz trial's identity: replaying (seed, size) replays the trial. */
struct TrialConfig
{
    /** Shrinking lowers size toward 0; 0 is the smallest trial. */
    static constexpr int kMaxSize = 4;
    static constexpr int kDefaultSize = 3;

    std::uint64_t seed = 1;
    int size = kDefaultSize;

    /** Worker/thread counts the threaded properties sweep. */
    std::vector<int> threads = {1, 2, 4, 8};
};

/** A generated mesh/material system ready for assembly-level checks. */
struct GeneratedSystem
{
    mesh::TetMesh mesh;
    std::unique_ptr<mesh::SoilModel> model;
    sparse::Bcsr3Matrix stiffness;
    std::vector<double> lumpedMass;
    double dt = 0.0; ///< CFL-stable time step for the system
};

/**
 * The seeded input generator: one per trial.  All draws consume the
 * trial's single SplitMix64 stream, so the sequence of generator calls
 * made by a property is part of the trial's identity.
 */
class InputGen
{
  public:
    InputGen(std::uint64_t seed, int size);

    common::SplitMix64 &rng() { return rng_; }
    int size() const { return size_; }

    /**
     * Sample the San Fernando generator's parameter space at fuzzing
     * scale: a small coarse lattice, random wave period / points-per-
     * wavelength / jitter, and refinement caps that keep element counts
     * bounded by the trial size.  Always passes MeshSpec::validate().
     */
    mesh::MeshSpec randomMeshSpec();

    /**
     * A randomized soil model for the spec: a uniform half-space at
     * small sizes, occasionally the layered basin at size >= 3 (the
     * graded, irregular structure the paper's meshes have).
     */
    std::unique_ptr<mesh::SoilModel> randomModel();

    /** Full system: generated mesh + assembled K, mass, and stable dt. */
    GeneratedSystem randomSystem();

    /** System assembled from an explicit mesh with a uniform material. */
    GeneratedSystem systemFromMesh(mesh::TetMesh mesh);

    // --- adversarial shapes ---

    /** The smallest legal mesh: one well-shaped tetrahedron. */
    static mesh::TetMesh singleElementMesh();

    /**
     * A fan of `n` slivers: positive-volume tetrahedra flattened to
     * `flatness` times their base scale (aspect ratios the refiner
     * never emits, but assembly and the kernels must survive).
     */
    static mesh::TetMesh sliverMesh(int n, double flatness);

    /**
     * `islands` disjoint single-cube lattices merged into one mesh with
     * no shared nodes — a disconnected node-adjacency graph, so a
     * partition can produce PEs with no boundary at all.
     */
    static mesh::TetMesh disconnectedMesh(int islands);

    /**
     * A conforming mesh whose element size collapses by ~100x toward
     * one corner (pathological grading).
     */
    mesh::TetMesh pathologicalGradedMesh();

    // --- algebraic and distributed-structure inputs ---

    /** Uniform random vector in [-1, 1)^n. */
    std::vector<double> randomVector(std::int64_t n);

    /**
     * A random symmetric positive-definite 3x3-block matrix: random
     * sparsity (symmetrized), random off-diagonal blocks mirrored as
     * transposes bit for bit, and diagonal blocks made strictly
     * diagonally dominant — SPD by Gershgorin, and exactly
     * block-symmetric so SymBcsr3Matrix::fromBcsr3 accepts it with
     * zero tolerance.
     */
    sparse::Bcsr3Matrix randomSpdBcsr3(std::int64_t block_rows);

    /**
     * A random element partition of `m` into `parts` nonempty parts
     * (random assignment, then deterministic repair of empty parts).
     * Passes Partition::validate.
     */
    partition::Partition randomPartition(const mesh::TetMesh &m, int parts);

    /** A part count in [2, 2 + 2 * size], capped by the element count. */
    int randomPartCount(const mesh::TetMesh &m);

    /**
     * A synthetic pairwise exchange schedule over `num_pes` PEs: each
     * pair shares a random sorted node set with probability ~0.6;
     * occasionally a pair shares the *empty* set (a legal zero-word
     * message).  Passes CommSchedule::validate.
     */
    parallel::CommSchedule randomSchedule(int num_pes);

    /** A random but valid machine model (positive T_f/T_l/T_w). */
    parallel::MachineModel randomMachine();

    /**
     * A random fault spec: every fault class enabled or disabled by a
     * coin flip, probabilities in [0, 0.3], small delays/jitter.
     * Always passes FaultSpec::validate.
     */
    parallel::FaultSpec randomFaultSpec();

  private:
    common::SplitMix64 rng_;
    int size_;
};

} // namespace quake::verify

#endif // QUAKE98_VERIFY_GENERATORS_H_
