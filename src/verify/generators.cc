#include "verify/generators.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "mesh/refine.h"
#include "quake/time_stepper.h"
#include "sparse/assembly.h"

namespace quake::verify
{

namespace
{

/** Distinct stream keys so generator families stay decorrelated. */
constexpr std::uint64_t kGenStreamKey = 0x76657269667921ULL; // "verify!"

} // namespace

InputGen::InputGen(std::uint64_t seed, int size)
    : rng_(common::deriveStream(seed, kGenStreamKey)),
      size_(std::clamp(size, 0, TrialConfig::kMaxSize))
{}

mesh::MeshSpec
InputGen::randomMeshSpec()
{
    mesh::MeshSpec spec;
    spec.periodSeconds = rng_.uniform(2.0, 20.0);
    spec.pointsPerWavelength = rng_.uniform(2.0, 4.0);
    spec.hScale = rng_.uniform(1.0, 3.0);
    spec.hMin = 0.05;
    spec.coarseNx = 1 + static_cast<int>(rng_.nextBounded(1 + size_));
    spec.coarseNy = 1 + static_cast<int>(rng_.nextBounded(1 + size_));
    spec.coarseNz = 1 + static_cast<int>(rng_.nextBounded(1 + size_));
    spec.jitterFraction = rng_.uniform(0.0, 0.3);
    spec.seed = rng_.next();
    spec.refine.maxElements = 600 + 400 * size_;
    spec.refine.maxPasses = 2 + size_;
    return spec;
}

std::unique_ptr<mesh::SoilModel>
InputGen::randomModel()
{
    // Mostly small uniform half-spaces (cheap, exercise every code path);
    // at the larger sizes occasionally the full layered basin, whose
    // graded wave-speed field drives real refinement (the refine caps in
    // randomMeshSpec keep even that bounded).
    if (size_ >= 3 && rng_.nextBounded(4) == 0)
        return std::make_unique<mesh::LayeredBasinModel>();
    mesh::Aabb box;
    box.lo = {0.0, 0.0, 0.0};
    box.hi = {rng_.uniform(2.0, 6.0), rng_.uniform(2.0, 6.0),
              rng_.uniform(2.0, 6.0)};
    const double vs = rng_.uniform(0.5, 3.0);
    const double rho = rng_.uniform(1.5, 2.8);
    return std::make_unique<mesh::UniformModel>(box, vs, rho);
}

GeneratedSystem
InputGen::randomSystem()
{
    GeneratedSystem s;
    s.model = randomModel();
    const mesh::MeshSpec spec = randomMeshSpec();
    mesh::GeneratedMesh gen = mesh::generateMesh(*s.model, spec);
    s.mesh = std::move(gen.mesh);
    s.stiffness = sparse::assembleStiffness(s.mesh, *s.model);
    s.lumpedMass = sparse::assembleLumpedMass(s.mesh, *s.model);
    s.dt = sim::stableTimeStep(s.mesh, *s.model);
    return s;
}

GeneratedSystem
InputGen::systemFromMesh(mesh::TetMesh m)
{
    GeneratedSystem s;
    mesh::Aabb box = m.bounds();
    // Pad a degenerate (flat) bounding box so the model's domain is a
    // genuine volume; the uniform model never samples outside queries.
    box.hi = box.hi + mesh::Vec3{1e-6, 1e-6, 1e-6};
    s.model = std::make_unique<mesh::UniformModel>(box, 1.0, 2.0);
    s.mesh = std::move(m);
    s.stiffness = sparse::assembleStiffness(s.mesh, *s.model);
    s.lumpedMass = sparse::assembleLumpedMass(s.mesh, *s.model);
    s.dt = sim::stableTimeStep(s.mesh, *s.model);
    return s;
}

mesh::TetMesh
InputGen::singleElementMesh()
{
    mesh::TetMesh m;
    const mesh::NodeId a = m.addNode({0.0, 0.0, 0.0});
    const mesh::NodeId b = m.addNode({1.0, 0.0, 0.0});
    const mesh::NodeId c = m.addNode({0.0, 1.0, 0.0});
    const mesh::NodeId d = m.addNode({0.0, 0.0, 1.0});
    m.addTet(a, b, c, d);
    m.validate();
    return m;
}

mesh::TetMesh
InputGen::sliverMesh(int n, double flatness)
{
    QUAKE_EXPECT(n >= 1, "sliverMesh needs at least one element");
    QUAKE_EXPECT(flatness > 0.0 && flatness < 1.0,
                 "sliver flatness must be in (0, 1)");
    // A fan of tetrahedra sharing the vertical edge (a, b); consecutive
    // rim vertices are an angle `flatness` apart, so every element has
    // volume sin(flatness)/6 — positive but arbitrarily flat.
    mesh::TetMesh m;
    const mesh::NodeId a = m.addNode({0.0, 0.0, 0.0});
    const mesh::NodeId b = m.addNode({0.0, 0.0, 1.0});
    std::vector<mesh::NodeId> rim;
    for (int i = 0; i <= n; ++i)
    {
        const double theta = flatness * static_cast<double>(i);
        rim.push_back(m.addNode({std::cos(theta), std::sin(theta), 0.0}));
    }
    for (int i = 0; i < n; ++i)
        m.addTet(a, b, rim[i], rim[i + 1]);
    m.validate();
    return m;
}

mesh::TetMesh
InputGen::disconnectedMesh(int islands)
{
    QUAKE_EXPECT(islands >= 1, "disconnectedMesh needs >= 1 island");
    // Each island is one unit cube cut into six Kuhn tetrahedra; islands
    // are spaced apart and share no nodes, so the node-adjacency graph
    // has `islands` components.
    mesh::TetMesh m;
    for (int k = 0; k < islands; ++k)
    {
        const double x0 = 3.0 * static_cast<double>(k);
        mesh::NodeId corner[2][2][2];
        for (int x = 0; x < 2; ++x)
            for (int y = 0; y < 2; ++y)
                for (int z = 0; z < 2; ++z)
                    corner[x][y][z] = m.addNode(
                        {x0 + static_cast<double>(x),
                         static_cast<double>(y), static_cast<double>(z)});
        // The six Kuhn tets: monotone lattice paths (0,0,0) -> (1,1,1),
        // one per permutation of the axes.
        static constexpr int kPerm[6][3] = {{0, 1, 2}, {0, 2, 1},
                                            {1, 0, 2}, {1, 2, 0},
                                            {2, 0, 1}, {2, 1, 0}};
        for (const auto &p : kPerm)
        {
            int v[3] = {0, 0, 0};
            mesh::NodeId path[4];
            path[0] = corner[0][0][0];
            for (int s = 0; s < 3; ++s)
            {
                v[p[s]] = 1;
                path[s + 1] = corner[v[0]][v[1]][v[2]];
            }
            m.addTet(path[0], path[1], path[2], path[3]);
        }
    }
    m.validate();
    return m;
}

mesh::TetMesh
InputGen::pathologicalGradedMesh()
{
    mesh::Aabb box;
    box.lo = {0.0, 0.0, 0.0};
    box.hi = {4.0, 4.0, 4.0};
    mesh::TetMesh m = mesh::buildKuhnLattice(box, 2, 2, 2);
    // Element size collapses ~100x toward the lo corner.
    const mesh::Vec3 corner = box.lo;
    mesh::RefineOptions opts;
    opts.maxPasses = 10;
    opts.maxElements = 2500 + 500 * static_cast<std::int64_t>(size_);
    mesh::refineToSizeField(
        m,
        [corner](const mesh::Vec3 &p) {
            return 0.03 + 0.6 * (p - corner).norm();
        },
        opts);
    m.validate();
    return m;
}

std::vector<double>
InputGen::randomVector(std::int64_t n)
{
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double &x : v)
        x = rng_.uniform(-1.0, 1.0);
    return v;
}

sparse::Bcsr3Matrix
InputGen::randomSpdBcsr3(std::int64_t block_rows)
{
    QUAKE_EXPECT(block_rows >= 1, "randomSpdBcsr3 needs >= 1 block row");
    const std::int64_t n = block_rows;

    // Random symmetric sparsity with the diagonal always present; mean
    // off-diagonal degree ~6 mimics mesh-like row lengths without a mesh.
    const double edge_prob =
        n > 1 ? std::min(1.0, 6.0 / static_cast<double>(n - 1)) : 0.0;
    std::vector<std::vector<std::int32_t>> adj(
        static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        adj[static_cast<std::size_t>(i)].push_back(
            static_cast<std::int32_t>(i));
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = i + 1; j < n; ++j)
            if (rng_.nextDouble() < edge_prob)
            {
                adj[static_cast<std::size_t>(i)].push_back(
                    static_cast<std::int32_t>(j));
                adj[static_cast<std::size_t>(j)].push_back(
                    static_cast<std::int32_t>(i));
            }

    std::vector<std::int64_t> xadj(static_cast<std::size_t>(n) + 1, 0);
    std::vector<std::int32_t> cols;
    for (std::int64_t i = 0; i < n; ++i)
    {
        auto &row = adj[static_cast<std::size_t>(i)];
        std::sort(row.begin(), row.end());
        cols.insert(cols.end(), row.begin(), row.end());
        xadj[static_cast<std::size_t>(i) + 1] =
            static_cast<std::int64_t>(cols.size());
    }
    sparse::Bcsr3Matrix a(n, std::move(xadj), std::move(cols));

    // Off-diagonal blocks: random B at (i, j), its exact transpose at
    // (j, i) — the matrix is block-symmetric bit for bit, so
    // SymBcsr3Matrix::fromBcsr3 accepts it with zero tolerance.  The
    // diagonal gets a random *symmetric* block.
    for (std::int64_t i = 0; i < n; ++i)
    {
        const auto &x = a.xadj();
        for (std::int64_t k = x[static_cast<std::size_t>(i)];
             k < x[static_cast<std::size_t>(i) + 1]; ++k)
        {
            const std::int32_t j = a.blockCols()[static_cast<std::size_t>(k)];
            if (j < i)
                continue; // filled by the transpose mirror below
            sparse::Block3 b{};
            for (double &v : b)
                v = rng_.uniform(-1.0, 1.0);
            if (j == static_cast<std::int32_t>(i))
            {
                // Symmetrize in place: b := (b + b^T) / 2, exactly.
                for (int r = 0; r < 3; ++r)
                    for (int c = r + 1; c < 3; ++c)
                    {
                        const double s =
                            0.5 * (b[3 * r + c] + b[3 * c + r]);
                        b[3 * r + c] = s;
                        b[3 * c + r] = s;
                    }
                a.addToBlock(i, j, b);
            }
            else
            {
                sparse::Block3 bt{};
                for (int r = 0; r < 3; ++r)
                    for (int c = 0; c < 3; ++c)
                        bt[3 * c + r] = b[3 * r + c];
                a.addToBlock(i, j, b);
                a.addToBlock(j, static_cast<std::int32_t>(i), bt);
            }
        }
    }

    // Make every scalar row strictly diagonally dominant: SPD by
    // Gershgorin, and symmetric by construction above.
    std::vector<double> row_abs(static_cast<std::size_t>(3 * n), 0.0);
    for (std::int64_t i = 0; i < n; ++i)
    {
        const auto &x = a.xadj();
        for (std::int64_t k = x[static_cast<std::size_t>(i)];
             k < x[static_cast<std::size_t>(i) + 1]; ++k)
        {
            const double *b = a.blockAt(k);
            const bool diag =
                a.blockCols()[static_cast<std::size_t>(k)] ==
                static_cast<std::int32_t>(i);
            for (int r = 0; r < 3; ++r)
                for (int c = 0; c < 3; ++c)
                {
                    if (diag && r == c)
                        continue; // the diagonal entry itself
                    row_abs[static_cast<std::size_t>(3 * i + r)] +=
                        std::fabs(b[3 * r + c]);
                }
        }
    }
    for (std::int64_t i = 0; i < n; ++i)
    {
        const std::int64_t k = a.findBlock(i, static_cast<std::int32_t>(i));
        double *d = a.blockAt(k);
        for (int r = 0; r < 3; ++r)
            d[3 * r + r] =
                row_abs[static_cast<std::size_t>(3 * i + r)] +
                rng_.uniform(0.5, 2.0);
    }
    a.validate();
    return a;
}

partition::Partition
InputGen::randomPartition(const mesh::TetMesh &m, int parts)
{
    QUAKE_EXPECT(parts >= 1, "randomPartition needs >= 1 part");
    QUAKE_EXPECT(m.numElements() >= parts,
                 "randomPartition: fewer elements than parts");
    partition::Partition part;
    part.numParts = parts;
    part.elementPart.resize(static_cast<std::size_t>(m.numElements()));
    for (auto &p : part.elementPart)
        p = static_cast<partition::PartId>(
            rng_.nextBounded(static_cast<std::uint64_t>(parts)));

    // Deterministic repair: give every empty part an element stolen from
    // a part that still has at least two.
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(parts), 0);
    for (partition::PartId p : part.elementPart)
        ++sizes[static_cast<std::size_t>(p)];
    for (int p = 0; p < parts; ++p)
    {
        if (sizes[static_cast<std::size_t>(p)] > 0)
            continue;
        for (std::size_t e = 0; e < part.elementPart.size(); ++e)
        {
            const auto donor =
                static_cast<std::size_t>(part.elementPart[e]);
            if (sizes[donor] >= 2)
            {
                --sizes[donor];
                part.elementPart[e] = static_cast<partition::PartId>(p);
                ++sizes[static_cast<std::size_t>(p)];
                break;
            }
        }
    }
    part.validate(m);
    return part;
}

int
InputGen::randomPartCount(const mesh::TetMesh &m)
{
    const auto cap = static_cast<int>(
        std::min<std::int64_t>(2 + 2 * size_, m.numElements()));
    if (cap < 2)
        return 1;
    return 2 + static_cast<int>(
                   rng_.nextBounded(static_cast<std::uint64_t>(cap - 1)));
}

parallel::CommSchedule
InputGen::randomSchedule(int num_pes)
{
    QUAKE_EXPECT(num_pes >= 1, "randomSchedule needs >= 1 PE");
    std::vector<parallel::PeSchedule> pes(
        static_cast<std::size_t>(num_pes));
    for (int i = 0; i < num_pes; ++i)
        for (int j = i + 1; j < num_pes; ++j)
        {
            if (rng_.nextDouble() >= 0.6)
                continue;
            // Shared node set: sorted, deduplicated; occasionally empty
            // (a legal zero-word message).
            std::vector<mesh::NodeId> nodes;
            const std::uint64_t count = rng_.nextBounded(9); // 0..8
            for (std::uint64_t c = 0; c < count; ++c)
                nodes.push_back(
                    static_cast<mesh::NodeId>(rng_.nextBounded(1000)));
            std::sort(nodes.begin(), nodes.end());
            nodes.erase(std::unique(nodes.begin(), nodes.end()),
                        nodes.end());
            parallel::Exchange fwd;
            fwd.peer = static_cast<partition::PartId>(j);
            fwd.nodes = nodes;
            parallel::Exchange rev;
            rev.peer = static_cast<partition::PartId>(i);
            rev.nodes = std::move(nodes);
            pes[static_cast<std::size_t>(i)].exchanges.push_back(
                std::move(fwd));
            pes[static_cast<std::size_t>(j)].exchanges.push_back(
                std::move(rev));
        }
    return parallel::CommSchedule::fromPeSchedules(std::move(pes));
}

parallel::MachineModel
InputGen::randomMachine()
{
    return parallel::customMachine(
        "fuzz", rng_.uniform(50.0, 1000.0), rng_.uniform(1e-6, 5e-5),
        rng_.uniform(1e8, 1e9));
}

parallel::FaultSpec
InputGen::randomFaultSpec()
{
    parallel::FaultSpec spec;
    spec.seed = rng_.next();
    const auto coin = [this] { return rng_.nextBounded(2) == 0; };
    if (coin())
        spec.dropProbability = rng_.uniform(0.0, 0.3);
    if (coin())
        spec.duplicateProbability = rng_.uniform(0.0, 0.3);
    if (coin())
        spec.ackDropProbability = rng_.uniform(0.0, 0.3);
    if (coin())
        spec.jitterMeanSeconds = rng_.uniform(0.0, 1e-5);
    if (coin())
    {
        spec.stragglerProbability = rng_.uniform(0.0, 0.5);
        spec.stragglerDelaySeconds = rng_.uniform(0.0, 1e-4);
    }
    if (coin())
    {
        spec.degradedLinkProbability = rng_.uniform(0.0, 0.5);
        spec.degradedBandwidthFactor = rng_.uniform(1.0, 4.0);
    }
    spec.validate();
    return spec;
}

} // namespace quake::verify
