#include "verify/properties.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "arch/cosim.h"
#include "common/error.h"
#include "parallel/distributor.h"
#include "parallel/event_sim.h"
#include "parallel/parallel_smvp.h"
#include "parallel/reliable_exchange.h"
#include "parallel/topology.h"
#include "parallel/worker_pool.h"
#include "quake/simulation.h"
#include "common/rng.h"
#include "resilience/checkpoint.h"
#include "service/service.h"
#include "spark/kernels.h"
#include "sparse/assembly.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"
#include "telemetry/collector.h"
#include "verify/oracles.h"
#include "verify/ulp.h"

namespace quake::verify
{

namespace
{

// The differential acceptance bounds (DESIGN.md §10): kernels that
// reorder floating-point sums may drift a few thousand ULPs on
// cancellation-prone elements; anything beyond this is a bug, not
// rounding.
constexpr std::int64_t kUlpBound = 4096;
constexpr double kRelEps = 1e-11;

PropertyResult ok() { return PropertyResult::ok(); }

PropertyResult
fail(const std::string &why)
{
    return PropertyResult::fail(why);
}

/** Exact bit-pattern equality of two doubles (NaN-safe, +0 != -0). */
bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/** Scalar analogue of the mixed criterion for reduced values. */
bool
scalarClose(double expected, double actual)
{
    if (ulpDistance(expected, actual) <= kUlpBound)
        return true;
    return std::fabs(expected - actual) <= kRelEps * std::fabs(expected);
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
normInf(const std::vector<double> &v)
{
    double m = 0.0;
    for (double x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

/** FNV-1a over raw bytes, for the determinism fingerprint. */
std::uint64_t
hashBytes(const void *p, std::size_t n, std::uint64_t h)
{
    const auto *b = static_cast<const unsigned char *>(p);
    for (std::size_t i = 0; i < n; ++i)
    {
        h ^= b[i];
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
hashVec(const std::vector<double> &v, std::uint64_t h)
{
    return hashBytes(v.data(), v.size() * sizeof(double), h);
}

/** The step-update fixture shared by the fused/engine properties. */
struct StepFixture
{
    std::vector<double> u;
    std::vector<double> up0;
    std::vector<double> f;
    std::vector<double> invMass;
    double dt = 0.0;
    double a0 = 0.0;

    static StepFixture
    make(InputGen &gen, std::int64_t n, const std::vector<double> &mass,
         double dt)
    {
        StepFixture fx;
        fx.u = gen.randomVector(n);
        fx.up0 = gen.randomVector(n);
        fx.f = gen.randomVector(n);
        fx.invMass.resize(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i)
            fx.invMass[static_cast<std::size_t>(i)] =
                1.0 / mass[static_cast<std::size_t>(i)];
        fx.dt = dt;
        fx.a0 = gen.rng().nextBounded(2) == 0
                    ? gen.rng().uniform(0.0, 0.5)
                    : 0.0;
        return fx;
    }

    sparse::StepUpdate
    su(double *up) const
    {
        sparse::StepUpdate s;
        s.u = u.data();
        s.up = up;
        s.f = f.data();
        s.invMass = invMass.data();
        s.dt = dt;
        s.dt2 = dt * dt;
        s.prevCoeff = 1.0 - a0 * dt / 2.0;
        s.denom = 1.0 + a0 * dt / 2.0;
        return s;
    }
};

// ---------------------------------------------------------------------------
// Property: every kernel in the suite vs reference CSR, plus the
// bitwise contracts of the threaded variants.
// ---------------------------------------------------------------------------

PropertyResult
propKernelDifferential(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    spark::KernelSuite suite(sys.mesh, *sys.model);
    const std::vector<double> x = gen.randomVector(suite.dof());
    const std::vector<double> ref = suite.run(spark::Kernel::kCsr, x);

    for (spark::Kernel k : spark::kAllKernels)
    {
        const std::vector<double> y = suite.run(k, x);
        std::string why;
        if (!withinMixedTolerance(ref, y, kUlpBound, kRelEps, &why))
            return fail("kernel " + spark::kernelName(k) +
                        " vs CSR: " + why);
    }

    // kThreaded is row-partitioned over disjoint output ranges: bitwise
    // identical to sequential BCSR3 at every thread count.
    const std::vector<double> yb = suite.run(spark::Kernel::kBcsr3, x);
    for (int t : cfg.threads)
    {
        suite.setThreads(t);
        if (!bitwiseEqual(yb, suite.run(spark::Kernel::kThreaded, x)))
            return fail("kThreaded != kBcsr3 bitwise at " +
                        std::to_string(t) + " threads");
        // The symmetric MT kernel reorders sums per thread count, but at
        // a FIXED thread count it must be exactly deterministic.
        const std::vector<double> y1 =
            suite.run(spark::Kernel::kSymBcsr3Mt, x);
        const std::vector<double> y2 =
            suite.run(spark::Kernel::kSymBcsr3Mt, x);
        if (!bitwiseEqual(y1, y2))
            return fail("kSymBcsr3Mt not deterministic at " +
                        std::to_string(t) + " threads");
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: random SPD block matrices (no mesh in the loop) through
// every storage path.
// ---------------------------------------------------------------------------

PropertyResult
propSpdBlockDifferential(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    const std::int64_t n =
        6 + 20 * cfg.size +
        static_cast<std::int64_t>(gen.rng().nextBounded(11));
    const sparse::Bcsr3Matrix a = gen.randomSpdBcsr3(n);
    const std::vector<double> x = gen.randomVector(a.numRows());
    const std::vector<double> ref = a.toCsr().multiply(x);

    const std::vector<double> yb = a.multiply(x);
    std::string why;
    if (!withinMixedTolerance(ref, yb, kUlpBound, kRelEps, &why))
        return fail("bcsr3 vs expanded csr: " + why);

    // The generator mirrors off-diagonal blocks as exact transposes, so
    // zero-tolerance symmetric compression must accept the matrix.
    const sparse::SymBcsr3Matrix s = sparse::SymBcsr3Matrix::fromBcsr3(a);
    const std::vector<double> ys = s.multiply(x);
    if (!withinMixedTolerance(ref, ys, kUlpBound, kRelEps, &why))
        return fail("sym bcsr3 vs csr: " + why);

    for (int t : cfg.threads)
    {
        parallel::WorkerPool pool(t);
        std::vector<double> y(static_cast<std::size_t>(a.numRows()));
        spark::smvpThreaded(a, x.data(), y.data(), pool);
        if (!bitwiseEqual(yb, y))
            return fail("smvpThreaded != bcsr3 bitwise at " +
                        std::to_string(t) + " threads");

        std::vector<double> scratch;
        std::vector<double> y1(static_cast<std::size_t>(a.numRows()));
        std::vector<double> y2(static_cast<std::size_t>(a.numRows()));
        spark::smvpSymBcsr3Threaded(s, x.data(), y1.data(), pool, scratch);
        spark::smvpSymBcsr3Threaded(s, x.data(), y2.data(), pool, scratch);
        if (!bitwiseEqual(y1, y2))
            return fail("smvpSymBcsr3Threaded not deterministic at " +
                        std::to_string(t) + " threads");
        if (!withinMixedTolerance(ref, y1, kUlpBound, kRelEps, &why))
            return fail("smvpSymBcsr3Threaded vs csr at " +
                        std::to_string(t) + " threads: " + why);
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: fused step == unfused SMVP + reference triad, bitwise, on
// every fused backend (serial BCSR3, symmetric BCSR3, pooled kernel).
// ---------------------------------------------------------------------------

PropertyResult
propFusedVsUnfused(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const sparse::Bcsr3Matrix &a = sys.stiffness;
    const std::int64_t n = a.numRows();
    const StepFixture fx = StepFixture::make(gen, n, sys.lumpedMass, sys.dt);

    // Unfused reference: materialized ku + the reference triad.
    const std::vector<double> ku = a.multiply(fx.u);
    std::vector<double> upRef = fx.up0;
    sparse::StepPartials pRef;
    sparse::applyStepUpdateRange(fx.su(upRef.data()), ku.data(), 0, n, pRef);

    // Serial fused full-BCSR sweep: same ascending row order, so the
    // displacement AND both partials must match bit for bit.
    std::vector<double> upF = fx.up0;
    const sparse::StepPartials pF = a.multiplyFusedStep(fx.su(upF.data()));
    if (!bitwiseEqual(upRef, upF))
        return fail("bcsr3 fused u_{n+1} != unfused bitwise");
    if (!bitEq(pRef.peak, pF.peak) || !bitEq(pRef.energy, pF.energy))
        return fail("bcsr3 fused partials != unfused bitwise");

    // Symmetric fused sweep vs ITS OWN multiply + triad (the symmetric
    // scatter reorders sums relative to the full matrix, so the
    // reference is the symmetric product, not the full one).  Assembled
    // blocks are only transpose-symmetric up to summation order, hence
    // the production tolerance rather than the exact-transpose default.
    const sparse::SymBcsr3Matrix s =
        sparse::SymBcsr3Matrix::fromBcsr3(a, 1e-9);
    const std::vector<double> ysym = s.multiply(fx.u);
    std::vector<double> upRefS = fx.up0;
    sparse::StepPartials pRefS;
    sparse::applyStepUpdateRange(fx.su(upRefS.data()), ysym.data(), 0, n,
                                 pRefS);
    std::vector<double> upS = fx.up0;
    std::vector<double> symKu(static_cast<std::size_t>(n));
    const sparse::StepPartials pS =
        s.multiplyFusedStep(fx.su(upS.data()), symKu.data());
    if (!bitwiseEqual(upRefS, upS))
        return fail("sym fused u_{n+1} != sym multiply + triad bitwise");
    if (!bitEq(pRefS.peak, pS.peak) || !bitEq(pRefS.energy, pS.energy))
        return fail("sym fused partials != sym reference bitwise");
    std::string why;
    if (!withinMixedTolerance(upRef, upS, kUlpBound, kRelEps, &why))
        return fail("sym fused vs full fused: " + why);

    // Pooled fused kernel: fixed 64-chunk grid, so u and partials are
    // identical across thread counts; u also matches the unfused
    // reference bitwise, while the chunk-grouped energy only has to be
    // ULP-close to the serial triad's.
    bool first = true;
    sparse::StepPartials pFirst;
    for (int t : cfg.threads)
    {
        parallel::WorkerPool pool(t);
        const spark::FusedStepKernel kern(a, pool);
        std::vector<double> upT = fx.up0;
        const sparse::StepPartials pT = kern.step(fx.su(upT.data()));
        if (!bitwiseEqual(upRef, upT))
            return fail("FusedStepKernel u_{n+1} != unfused bitwise at " +
                        std::to_string(t) + " threads");
        if (first)
        {
            pFirst = pT;
            first = false;
        }
        else if (!bitEq(pFirst.peak, pT.peak) ||
                 !bitEq(pFirst.energy, pT.energy))
        {
            return fail("FusedStepKernel partials vary with thread count");
        }
        if (!bitEq(pRef.peak, pT.peak))
            return fail("FusedStepKernel peak != reference");
        if (!scalarClose(pRef.energy, pT.energy))
            return fail("FusedStepKernel energy drifted from reference");
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: the distributed engine is bitwise invariant across thread
// counts and exchange modes, ULP-consistent with the global assembly,
// and its fused step equals its multiply + the reference triad.
// ---------------------------------------------------------------------------

PropertyResult
propEngineBitwise(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const int parts = gen.randomPartCount(sys.mesh);
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    const parallel::DistributedProblem problem =
        parallel::distribute(sys.mesh, *sys.model, part);
    const std::int64_t n = 3 * problem.numGlobalNodes;

    const std::vector<double> x = gen.randomVector(n);
    const std::vector<double> refGlobal = sys.stiffness.multiply(x);
    StepFixture fx = StepFixture::make(gen, n, sys.lumpedMass, sys.dt);
    fx.u = x; // the fused step's x is the multiply's x

    std::vector<double> yFirst;
    std::vector<double> upRef;
    sparse::StepPartials pRef;
    bool first = true;
    sparse::StepPartials pFirst;

    for (parallel::ExchangeMode mode :
         {parallel::ExchangeMode::kBarrier,
          parallel::ExchangeMode::kOverlapped})
    {
        for (int t : cfg.threads)
        {
            const parallel::ParallelSmvp engine(problem, t, mode);
            const std::vector<double> y = engine.multiply(x);
            const char *mname =
                mode == parallel::ExchangeMode::kBarrier ? "barrier"
                                                         : "overlapped";
            if (first)
            {
                std::string why;
                if (!withinMixedTolerance(refGlobal, y, kUlpBound, kRelEps,
                                          &why))
                    return fail("engine vs global assembly: " + why);
                yFirst = y;
                // Engine contract: stepFused's u_{n+1} == engine
                // multiply + the unfused reference triad, bitwise.
                upRef = fx.up0;
                sparse::applyStepUpdateRange(fx.su(upRef.data()),
                                             yFirst.data(), 0, n, pRef);
            }
            else if (!bitwiseEqual(yFirst, y))
            {
                return fail(std::string("engine multiply varies (") +
                            mname + ", " + std::to_string(t) +
                            " threads)");
            }

            std::vector<double> y2(static_cast<std::size_t>(n));
            engine.multiplyInto(x.data(), y2.data());
            if (!bitwiseEqual(yFirst, y2))
                return fail(std::string("multiplyInto != multiply (") +
                            mname + ", " + std::to_string(t) +
                            " threads)");

            std::vector<double> upT = fx.up0;
            const sparse::StepPartials pT =
                engine.stepFused(fx.su(upT.data()));
            if (!bitwiseEqual(upRef, upT))
                return fail(std::string("stepFused u_{n+1} != multiply + "
                                        "triad (") +
                            mname + ", " + std::to_string(t) +
                            " threads)");
            if (first)
            {
                pFirst = pT;
                first = false;
            }
            else if (!bitEq(pFirst.peak, pT.peak) ||
                     !bitEq(pFirst.energy, pT.energy))
            {
                return fail("stepFused partials vary across configs");
            }
            if (!bitEq(pRef.peak, pT.peak))
                return fail("stepFused peak != reference triad peak");
            if (!scalarClose(pRef.energy, pT.energy))
                return fail("stepFused energy drifted from reference");
        }
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: K is symmetric as a bilinear form, x^T K y == y^T K x.
// ---------------------------------------------------------------------------

PropertyResult
propSymmetryBilinear(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    sparse::Bcsr3Matrix a;
    if (gen.rng().nextBounded(2) == 0)
    {
        GeneratedSystem sys = gen.randomSystem();
        a = std::move(sys.stiffness);
    }
    else
    {
        a = gen.randomSpdBcsr3(
            6 + 20 * cfg.size +
            static_cast<std::int64_t>(gen.rng().nextBounded(11)));
    }
    const std::vector<double> x = gen.randomVector(a.numRows());
    const std::vector<double> y = gen.randomVector(a.numRows());
    const std::vector<double> kx = a.multiply(x);
    const std::vector<double> ky = a.multiply(y);
    const double s1 = dot(x, ky);
    const double s2 = dot(y, kx);
    // The two sides cancel differently; bound the gap by the terms'
    // magnitude, not the (possibly tiny) result.
    const double scale = normInf(x) * normInf(ky) +
                         normInf(y) * normInf(kx) + 1.0;
    const double tol =
        1e-12 * scale * static_cast<double>(a.numRows());
    if (std::fabs(s1 - s2) > tol)
    {
        std::ostringstream os;
        os.precision(17);
        os << "x'Ky = " << s1 << " vs y'Kx = " << s2 << " (tol " << tol
           << ")";
        return fail(os.str());
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: the whole pipeline is a pure function of the seed.
// ---------------------------------------------------------------------------

std::uint64_t
pipelineFingerprint(const TrialConfig &cfg)
{
    std::uint64_t h = 1469598103934665603ULL;
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    h = hashBytes(sys.mesh.nodes().data(),
                  sys.mesh.nodes().size() * sizeof(mesh::Vec3), h);

    spark::KernelSuite suite(sys.mesh, *sys.model);
    suite.setThreads(2);
    const std::vector<double> x = gen.randomVector(suite.dof());
    h = hashVec(x, h);
    h = hashVec(suite.run(spark::Kernel::kSymBcsr3Mt, x), h);
    h = hashVec(suite.run(spark::Kernel::kThreaded, x), h);

    const int parts = gen.randomPartCount(sys.mesh);
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    const parallel::DistributedProblem problem =
        parallel::distribute(sys.mesh, *sys.model, part);
    const parallel::ParallelSmvp engine(problem, 2);
    const std::vector<double> xg =
        gen.randomVector(3 * problem.numGlobalNodes);
    h = hashVec(engine.multiply(xg), h);

    const int pes = 2 + static_cast<int>(gen.rng().nextBounded(
                            static_cast<std::uint64_t>(2 + 2 * cfg.size)));
    const parallel::CommSchedule sched = gen.randomSchedule(pes);
    const parallel::MachineModel machine = gen.randomMachine();
    parallel::ReliableExchangeOptions opts;
    opts.faults = gen.randomFaultSpec();
    const parallel::ReliableExchangeResult r =
        parallel::simulateReliableExchange(sched, machine, opts);
    h = hashBytes(&r.tComm, sizeof(r.tComm), h);
    h = hashBytes(&r.tProtocolQuiesce, sizeof(r.tProtocolQuiesce), h);
    h = hashBytes(&r.dataSent, sizeof(r.dataSent), h);
    h = hashBytes(&r.retransmissions, sizeof(r.retransmissions), h);
    h = hashVec(r.peFinishTime, h);
    return h;
}

PropertyResult
propDeterminismRerun(const TrialConfig &cfg)
{
    const std::uint64_t h1 = pipelineFingerprint(cfg);
    const std::uint64_t h2 = pipelineFingerprint(cfg);
    if (h1 != h2)
    {
        std::ostringstream os;
        os << "pipeline fingerprint changed between reruns: " << std::hex
           << h1 << " vs " << h2;
        return fail(os.str());
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: the reliable exchange with a fault-free spec reproduces the
// ideal simulator's timeline bit for bit.
// ---------------------------------------------------------------------------

PropertyResult
propExchangeFaultFree(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    const int pes = 2 + static_cast<int>(gen.rng().nextBounded(
                            static_cast<std::uint64_t>(2 + 2 * cfg.size)));
    const parallel::CommSchedule sched = gen.randomSchedule(pes);
    const parallel::MachineModel machine = gen.randomMachine();
    const double wire = gen.rng().uniform(0.0, 1e-5);
    const bool duplex = gen.rng().nextBounded(2) == 0;

    parallel::EventSimOptions base_opts;
    base_opts.wireLatency = wire;
    base_opts.fullDuplex = duplex;
    const parallel::EventSimResult base =
        parallel::simulateExchange(sched, machine, base_opts);

    parallel::ReliableExchangeOptions rel_opts;
    rel_opts.wireLatency = wire;
    rel_opts.fullDuplex = duplex; // faults default to the all-zero spec
    const parallel::ReliableExchangeResult rel =
        parallel::simulateReliableExchange(sched, machine, rel_opts);

    if (!bitwiseEqual(base.peFinishTime, rel.peFinishTime))
        return fail("fault-free per-PE finish times != ideal baseline");
    if (!bitEq(base.tComm, rel.tComm))
        return fail("fault-free tComm != ideal baseline");
    if (!bitEq(base.totalIdle, rel.totalIdle))
        return fail("fault-free totalIdle != ideal baseline");
    if (base.criticalPe != rel.criticalPe)
        return fail("fault-free critical PE != ideal baseline");
    if (rel.dataSent != base.messagesSent)
        return fail("fault-free protocol sent extra data messages");
    if (rel.retransmissions != 0 || rel.timeoutsFired != 0 ||
        rel.dataDropped != 0 || rel.duplicatesDelivered != 0 ||
        rel.acksDropped != 0)
        return fail("fault-free run reported protocol activity");
    if (rel.degraded || !rel.lostExchanges.empty() || rel.staleWords != 0)
        return fail("fault-free run reported degradation");
    return ok();
}

// ---------------------------------------------------------------------------
// Property: under random faults the protocol is rerun-deterministic and
// its counters satisfy the conservation identities.
// ---------------------------------------------------------------------------

PropertyResult
propExchangeFaulty(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    const int pes = 2 + static_cast<int>(gen.rng().nextBounded(
                            static_cast<std::uint64_t>(2 + 2 * cfg.size)));
    const parallel::CommSchedule sched = gen.randomSchedule(pes);
    const parallel::MachineModel machine = gen.randomMachine();

    parallel::ReliableExchangeOptions opts;
    opts.wireLatency = gen.rng().uniform(0.0, 1e-5);
    opts.fullDuplex = gen.rng().nextBounded(2) == 0;
    opts.faults = gen.randomFaultSpec();
    opts.maxRetries = 1 + static_cast<int>(gen.rng().nextBounded(8));

    const parallel::ReliableExchangeResult r1 =
        parallel::simulateReliableExchange(sched, machine, opts);
    const parallel::ReliableExchangeResult r2 =
        parallel::simulateReliableExchange(sched, machine, opts);

    if (!bitwiseEqual(r1.peFinishTime, r2.peFinishTime) ||
        !bitEq(r1.tComm, r2.tComm) ||
        !bitEq(r1.tProtocolQuiesce, r2.tProtocolQuiesce) ||
        r1.dataSent != r2.dataSent || r1.dataDropped != r2.dataDropped ||
        r1.dataDelivered != r2.dataDelivered ||
        r1.retransmissions != r2.retransmissions ||
        r1.timeoutsFired != r2.timeoutsFired ||
        r1.staleWords != r2.staleWords)
        return fail("faulty run not deterministic across reruns");

    // Conservation: every transmission is either dropped or delivered;
    // network duplication delivers copies that were never sent.
    if (r1.dataSent != r1.dataDropped + r1.dataDelivered -
                           r1.duplicatesDelivered)
    {
        std::ostringstream os;
        os << "counter identity violated: sent " << r1.dataSent
           << " != dropped " << r1.dataDropped << " + delivered "
           << r1.dataDelivered << " - duplicates "
           << r1.duplicatesDelivered;
        return fail(os.str());
    }
    if (r1.tProtocolQuiesce < r1.tComm)
        return fail("protocol quiesced before the data links went idle");
    if (r1.staleFraction < 0.0 || r1.staleFraction > 1.0)
        return fail("staleFraction outside [0, 1]");
    if (!r1.degraded && (r1.staleWords != 0 || !r1.lostExchanges.empty()))
        return fail("undegraded run reported losses");
    if (r1.degraded && r1.staleWords == 0 && r1.lostExchanges.empty())
        return fail("degraded run with no losses recorded");
    if (static_cast<int>(r1.peFinishTime.size()) != pes)
        return fail("per-PE finish times have the wrong length");
    for (double tpe : r1.peFinishTime)
        if (!(tpe >= 0.0) || !std::isfinite(tpe))
            return fail("non-finite or negative PE finish time");
    return ok();
}

// ---------------------------------------------------------------------------
// Property: invalid parameters are rejected with FatalError (never UB,
// never a hang) at every validated entry point.
// ---------------------------------------------------------------------------

PropertyResult
expectFatal(const char *what, const std::function<void()> &fn)
{
    try
    {
        fn();
    }
    catch (const common::FatalError &)
    {
        return ok();
    }
    catch (const std::exception &e)
    {
        return fail(std::string(what) +
                    ": wrong exception type: " + e.what());
    }
    return fail(std::string(what) + ": accepted invalid input");
}

PropertyResult
propRejectInvalid(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    const mesh::UniformModel model(
        mesh::Aabb{{0.0, 0.0, 0.0}, {4.0, 4.0, 4.0}}, 1.0);

    const auto badSpec = [](auto mutate) {
        mesh::MeshSpec spec;
        spec.coarseNx = 1;
        spec.coarseNy = 1;
        spec.coarseNz = 1;
        mutate(spec);
        return spec;
    };

    struct Case
    {
        const char *what;
        std::function<void()> fn;
    };
    const Case cases[] = {
        {"zero wave period",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.periodSeconds = 0.0;
                                }));
         }},
        {"negative hScale",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.hScale = -1.0;
                                }));
         }},
        {"NaN points per wavelength",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.pointsPerWavelength =
                                        std::nan("");
                                }));
         }},
        {"zero coarse lattice dimension",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.coarseNx = 0;
                                }));
         }},
        {"coarse lattice overflowing node ids",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.coarseNx = 5000;
                                    s.coarseNy = 5000;
                                    s.coarseNz = 5000;
                                }));
         }},
        {"jitter fraction >= 1",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.jitterFraction = 1.5;
                                }));
         }},
        {"non-positive hMin",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.hMin = 0.0;
                                }));
         }},
        {"zero refinement element cap",
         [&] {
             mesh::generateMesh(model, badSpec([](mesh::MeshSpec &s) {
                                    s.refine.maxElements = 0;
                                }));
         }},
        {"zero-extent domain (zero elements)",
         [&] {
             const mesh::UniformModel flat(
                 mesh::Aabb{{0.0, 0.0, 0.0}, {4.0, 4.0, 0.0}}, 1.0);
             mesh::generateMesh(flat, badSpec([](mesh::MeshSpec &) {}));
         }},
        {"asymmetric comm schedule",
         [&] {
             std::vector<parallel::PeSchedule> pes(2);
             parallel::Exchange e;
             e.peer = 1;
             e.nodes = {0, 1};
             pes[0].exchanges.push_back(e); // PE 1 never reciprocates
             parallel::CommSchedule::fromPeSchedules(std::move(pes));
         }},
        {"fault probability > 1",
         [&] {
             parallel::FaultSpec spec;
             spec.dropProbability = 1.5;
             spec.validate();
         }},
        {"NaN fault probability",
         [&] {
             parallel::FaultSpec spec;
             spec.dropProbability = std::nan("");
             spec.validate();
         }},
        {"degraded bandwidth factor < 1",
         [&] {
             parallel::FaultSpec spec;
             spec.degradedLinkProbability = 0.5;
             spec.degradedBandwidthFactor = 0.25;
             spec.validate();
         }},
        {"backoff factor < 1",
         [&] {
             parallel::ReliableExchangeOptions opts;
             opts.backoffFactor = 0.5;
             opts.validate();
         }},
        {"negative retry budget",
         [&] {
             parallel::ReliableExchangeOptions opts;
             opts.maxRetries = -1;
             opts.validate();
         }},
        {"non-positive machine rate",
         [&] { parallel::customMachine("bad", -1.0, 1e-6, 1e8); }},
        {"sliver mesh with zero elements",
         [&] { InputGen::sliverMesh(0, 0.1); }},
        {"negative simulation duration",
         [&] {
             sim::SimulationConfig config;
             config.durationSeconds = -5.0;
             config.validate();
         }},
        {"zero PEs",
         [&] {
             sim::SimulationConfig config;
             config.numPes = 0;
             config.validate();
         }},
        {"negative SMVP threads",
         [&] {
             sim::SimulationConfig config;
             config.smvpThreads = -2;
             config.validate();
         }},
        {"negative sample interval",
         [&] {
             sim::SimulationConfig config;
             config.sampleInterval = -1;
             config.validate();
         }},
    };
    for (const Case &c : cases)
    {
        const PropertyResult r = expectFatal(c.what, c.fn);
        if (!r.pass)
            return r;
    }

    // And the positive side: the seeded generators must only produce
    // inputs every validated entry point accepts — in particular no
    // empty partition parts even at extreme part counts.
    GeneratedSystem sys = gen.randomSystem();
    const auto parts = static_cast<int>(
        std::min<std::int64_t>(sys.mesh.numElements(), 9));
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    std::vector<std::int64_t> sizes = part.partSizes();
    if (std::find(sizes.begin(), sizes.end(), 0) != sizes.end())
        return fail("randomPartition produced an empty part");
    return ok();
}

// ---------------------------------------------------------------------------
// Property: adversarial meshes (single element, slivers, disconnected
// graphs, pathological grading) survive assembly, every kernel, and
// the distributed engine.
// ---------------------------------------------------------------------------

PropertyResult
propAdversarialMeshes(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    std::vector<std::pair<std::string, mesh::TetMesh>> meshes;
    meshes.emplace_back("single-element", InputGen::singleElementMesh());
    meshes.emplace_back("sliver-fan",
                        InputGen::sliverMesh(3 + cfg.size, 1e-4));
    meshes.emplace_back("disconnected",
                        InputGen::disconnectedMesh(2 + cfg.size));
    meshes.emplace_back("graded-collapse", gen.pathologicalGradedMesh());

    for (auto &[name, m] : meshes)
    {
        GeneratedSystem sys = gen.systemFromMesh(std::move(m));
        spark::KernelSuite suite(sys.mesh, *sys.model);
        const std::vector<double> x = gen.randomVector(suite.dof());
        const std::vector<double> ref = suite.run(spark::Kernel::kCsr, x);
        for (spark::Kernel k : spark::kAllKernels)
        {
            std::string why;
            if (!withinMixedTolerance(ref, suite.run(k, x), kUlpBound,
                                      kRelEps, &why))
                return fail(name + ": kernel " + spark::kernelName(k) +
                            ": " + why);
        }

        if (sys.mesh.numElements() < 2)
            continue;
        const auto parts = static_cast<int>(std::min<std::int64_t>(
            2 + cfg.size, sys.mesh.numElements()));
        const partition::Partition part =
            gen.randomPartition(sys.mesh, parts);
        const parallel::DistributedProblem problem =
            parallel::distribute(sys.mesh, *sys.model, part);
        const std::vector<double> xg =
            gen.randomVector(3 * problem.numGlobalNodes);
        const std::vector<double> refG = sys.stiffness.multiply(xg);
        std::vector<double> yFirst;
        for (parallel::ExchangeMode mode :
             {parallel::ExchangeMode::kBarrier,
              parallel::ExchangeMode::kOverlapped})
            for (int t : {1, 4})
            {
                const parallel::ParallelSmvp engine(problem, t, mode);
                const std::vector<double> y = engine.multiply(xg);
                if (yFirst.empty())
                {
                    std::string why;
                    if (!withinMixedTolerance(refG, y, kUlpBound, kRelEps,
                                              &why))
                        return fail(name + ": engine vs global: " + why);
                    yFirst = y;
                }
                else if (!bitwiseEqual(yFirst, y))
                {
                    return fail(name +
                                ": engine multiply varies across configs");
                }
            }
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: telemetry is observation-only — tracing on vs off is
// bitwise identical, and the traced steady state allocates nothing.
// ---------------------------------------------------------------------------

PropertyResult
propTelemetryTransparent(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const int parts = gen.randomPartCount(sys.mesh);
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    const parallel::DistributedProblem problem =
        parallel::distribute(sys.mesh, *sys.model, part);
    const std::int64_t n = 3 * problem.numGlobalNodes;
    StepFixture fx = StepFixture::make(gen, n, sys.lumpedMass, sys.dt);
    const int steps = 6 + 2 * cfg.size;

    // Run the fused stepping loop; returns allocations observed after
    // the warm-up (or -1 when the host installed no counter).
    const auto runLoop = [&](telemetry::Collector *col,
                             std::vector<double> &u,
                             std::vector<double> &up) -> std::int64_t {
        parallel::ParallelSmvp engine(problem, 2);
        engine.setCollector(col); // also wires the worker pool
        u = fx.u;
        up = fx.up0;
        std::int64_t before = -1;
        sparse::StepUpdate su = fx.su(nullptr);
        for (int s = 0; s < steps; ++s)
        {
            if (col != nullptr)
                col->setStep(s);
            if (s == 2)
                before = allocationsNow();
            su.u = u.data();
            su.up = up.data();
            engine.stepFused(su);
            std::swap(u, up); // up held u_{n-1}; now holds u_{n+1}
        }
        const std::int64_t after = allocationsNow();
        return before >= 0 && after >= 0 ? after - before : -1;
    };

    std::vector<double> uOff;
    std::vector<double> upOff;
    runLoop(nullptr, uOff, upOff);

    telemetry::CollectorConfig cc;
    cc.enabled = true;
    cc.spanCapacity = 1 << 12;
    cc.sampleEvery = 1; // record fine-grained spans on every step
    telemetry::Collector col(cc);
    std::vector<double> uOn;
    std::vector<double> upOn;
    const std::int64_t allocs = runLoop(&col, uOn, upOn);

    if (!bitwiseEqual(uOff, uOn) || !bitwiseEqual(upOff, upOn))
        return fail("displacements differ with telemetry on vs off");
    if (allocs > 0)
        return fail("traced steady state allocated " +
                    std::to_string(allocs) + " times");
    if (col.counterTotal(telemetry::Counter::kSmvpCalls) !=
        static_cast<std::uint64_t>(steps))
        return fail("collector missed fused-step calls");
    return ok();
}

// ---------------------------------------------------------------------------
// Resilience properties (DESIGN.md §11): the checkpoint format round-trips
// bitwise and a killed-and-resumed run is bitwise identical to one that
// never stopped — including across execution-config changes (threads,
// exchange mode, fused/unfused), which the fingerprint deliberately
// excludes.
// ---------------------------------------------------------------------------

/** A small scenario config drawn from the trial's stream. */
sim::SimulationConfig
randomScenarioConfig(InputGen &gen, const mesh::TetMesh &m,
                     const TrialConfig &cfg)
{
    sim::SimulationConfig config;
    config.durationSeconds = 1.0;
    config.maxSteps = 6 + 3 * cfg.size;
    config.sampleInterval = 2;
    config.dampingA0 = gen.rng().nextBounded(2) == 0 ? 0.0 : 0.15;
    config.numPes = m.numElements() >= 2
                        ? 1 + static_cast<int>(gen.rng().nextBounded(3))
                        : 1;
    config.numPes = static_cast<int>(std::min<std::int64_t>(
        config.numPes, m.numElements()));
    config.smvpThreads = cfg.threads[gen.rng().nextBounded(
        static_cast<std::uint64_t>(cfg.threads.size()))];
    config.overlapSmvp = gen.rng().nextBounded(2) == 0;
    config.fusedStep = gen.rng().nextBounded(2) == 0;
    return config;
}

/** Re-draw only the execution knobs the fingerprint excludes. */
sim::SimulationConfig
reshuffleExecution(InputGen &gen, sim::SimulationConfig config,
                   const TrialConfig &cfg)
{
    config.smvpThreads = cfg.threads[gen.rng().nextBounded(
        static_cast<std::uint64_t>(cfg.threads.size()))];
    config.overlapSmvp = gen.rng().nextBounded(2) == 0;
    config.fusedStep = gen.rng().nextBounded(2) == 0;
    return config;
}

/**
 * Bitwise equality of two checkpoints.  `strictEnergy` relaxes only the
 * kinetic-energy fields to the mixed tolerance: energy is a cross-DOF
 * sum whose order is bitwise-pinned across threads and exchange modes
 * but differs between the fused and unfused backends (DESIGN.md §8), so
 * a resume that flips fusedStep legally drifts those bits.
 */
bool
checkpointsBitwiseEqual(const resilience::Checkpoint &a,
                        const resilience::Checkpoint &b, std::string *why,
                        bool strictEnergy = true)
{
    const auto energyEq = [&](double x, double y) {
        return strictEnergy ? bitEq(x, y) : scalarClose(x, y);
    };
    if (a.fingerprint != b.fingerprint) { *why = "fingerprint"; return false; }
    if (!bitEq(a.dt, b.dt)) { *why = "dt"; return false; }
    if (a.plannedSteps != b.plannedSteps) { *why = "plannedSteps"; return false; }
    if (a.state.steps != b.state.steps) { *why = "steps"; return false; }
    if (!bitwiseEqual(a.state.u, b.state.u)) { *why = "u"; return false; }
    if (!bitwiseEqual(a.state.up, b.state.up)) { *why = "u_prev"; return false; }
    if (!bitEq(a.state.partials.peak, b.state.partials.peak) ||
        !energyEq(a.state.partials.energy, b.state.partials.energy) ||
        a.state.statsValid != b.state.statsValid) {
        *why = "cached stats";
        return false;
    }
    if (!bitEq(a.reportPeak, b.reportPeak)) { *why = "reportPeak"; return false; }
    if (a.samples.size() != b.samples.size()) { *why = "sample count"; return false; }
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        if (!bitEq(a.samples[i].time, b.samples[i].time) ||
            !bitEq(a.samples[i].peakDisplacement,
                   b.samples[i].peakDisplacement) ||
            !energyEq(a.samples[i].kineticEnergy,
                      b.samples[i].kineticEnergy)) {
            *why = "sample " + std::to_string(i);
            return false;
        }
    return true;
}

/** The snapshot the supervisor's hook takes, replicated for the harness. */
resilience::Checkpoint
snapshotAtHook(const sim::SimulationEngine &engine,
               const sim::ExplicitTimeStepper &st,
               const sim::SimulationReport &report, int sample_every)
{
    resilience::Checkpoint ckpt;
    ckpt.fingerprint = engine.fingerprint;
    ckpt.dt = engine.dt;
    ckpt.plannedSteps = engine.plannedSteps;
    st.saveState(ckpt.state);
    ckpt.reportPeak =
        std::max(report.peakDisplacement, st.peakDisplacement());
    ckpt.samples = report.samples;
    if (sample_every > 0 && st.stepCount() % sample_every == 0)
        ckpt.samples.push_back(sim::FieldSample{
            st.time(), st.peakDisplacement(), st.kineticEnergy()});
    return ckpt;
}

/** Final-state checkpoint of a finished run (for golden comparison). */
resilience::Checkpoint
finalSnapshot(const sim::SimulationEngine &engine,
              const sim::SimulationReport &report)
{
    resilience::Checkpoint ckpt;
    ckpt.fingerprint = engine.fingerprint;
    ckpt.dt = engine.dt;
    ckpt.plannedSteps = engine.plannedSteps;
    engine.stepper->saveState(ckpt.state);
    ckpt.reportPeak = report.peakDisplacement;
    ckpt.samples = report.samples;
    return ckpt;
}

PropertyResult
propCheckpointRoundtrip(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const sim::SimulationConfig config =
        randomScenarioConfig(gen, sys.mesh, cfg);

    // Golden uninterrupted run.
    sim::SimulationEngine golden =
        sim::makeSimulationEngine(sys.mesh, *sys.model, config);
    sim::SimulationReport goldenReport;
    goldenReport.dt = golden.dt;
    sim::advanceSimulation(golden, config, goldenReport);

    // Checkpointed run: the real stepper hook fires every k steps; each
    // snapshot must equal the loop-level view of the same step, and the
    // serialized image must parse back bitwise.
    const std::int64_t k =
        1 + static_cast<std::int64_t>(
                gen.rng().nextBounded(
                    static_cast<std::uint64_t>(golden.plannedSteps)));
    sim::SimulationEngine run =
        sim::makeSimulationEngine(sys.mesh, *sys.model, config);
    if (run.fingerprint != golden.fingerprint)
        return fail("fingerprint not deterministic across rebuilds");

    sim::SimulationReport report;
    report.dt = run.dt;
    std::vector<resilience::Checkpoint> hooked;
    run.stepper->checkpointEvery(
        k, [&](const sim::ExplicitTimeStepper &st) {
            hooked.push_back(snapshotAtHook(run, st, report,
                                            config.sampleInterval));
        });
    std::vector<resilience::Checkpoint> observed;
    sim::advanceSimulation(run, config, report,
                           [&](std::int64_t step) {
                               if (step % k != 0)
                                   return;
                               resilience::Checkpoint c =
                                   finalSnapshot(run, report);
                               observed.push_back(std::move(c));
                           });
    if (hooked.size() != observed.size() || hooked.empty())
        return fail("hook fired " + std::to_string(hooked.size()) +
                    " times, loop observed " +
                    std::to_string(observed.size()));
    for (std::size_t i = 0; i < hooked.size(); ++i) {
        std::string why;
        if (!checkpointsBitwiseEqual(hooked[i], observed[i], &why))
            return fail("hook snapshot " + std::to_string(i) +
                        " diverges from the loop view: " + why);
        const std::vector<std::uint8_t> bytes =
            resilience::serializeCheckpoint(hooked[i]);
        const resilience::Checkpoint back =
            resilience::parseCheckpoint(bytes, "in-memory");
        if (!checkpointsBitwiseEqual(hooked[i], back, &why))
            return fail("serialize/parse round trip lost " + why);
    }

    // The checkpointed run itself must be bitwise identical to golden —
    // hooks are observation-only.
    std::string why;
    if (!checkpointsBitwiseEqual(finalSnapshot(golden, goldenReport),
                                 finalSnapshot(run, report), &why))
        return fail("checkpointing perturbed the run: " + why);

    // Any single corrupted byte must be refused.
    std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(hooked.back());
    const std::size_t victim =
        gen.rng().nextBounded(static_cast<std::uint64_t>(bytes.size()));
    bytes[victim] ^= 0x40;
    try {
        (void)resilience::parseCheckpoint(bytes, "corrupted");
        return fail("accepted a checkpoint with byte " +
                    std::to_string(victim) + " flipped");
    } catch (const common::FatalError &) {
        // expected
    }

    // A fingerprint skew must be refused at resume time.
    sim::SimulationConfig skew = config;
    skew.dampingA0 = config.dampingA0 + 0.05;
    sim::SimulationEngine other =
        sim::makeSimulationEngine(sys.mesh, *sys.model, skew);
    try {
        resilience::requireCompatible(hooked.back(), other);
        return fail("resumed against a mismatched fingerprint");
    } catch (const common::FatalError &) {
        // expected
    }
    return ok();
}

PropertyResult
propCheckpointKillResume(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const sim::SimulationConfig config =
        randomScenarioConfig(gen, sys.mesh, cfg);

    // Golden uninterrupted run.
    sim::SimulationEngine golden =
        sim::makeSimulationEngine(sys.mesh, *sys.model, config);
    sim::SimulationReport goldenReport;
    goldenReport.dt = golden.dt;
    sim::advanceSimulation(golden, config, goldenReport);

    // Crash run: checkpoint every k steps through the real hook, then
    // die at a random step >= k (an exception abandons the engine the
    // way SIGKILL abandons the process — the checkpoint is all that
    // survives).
    const std::int64_t k =
        1 + static_cast<std::int64_t>(gen.rng().nextBounded(
                static_cast<std::uint64_t>(golden.plannedSteps)));
    const std::int64_t die =
        k + static_cast<std::int64_t>(gen.rng().nextBounded(
                static_cast<std::uint64_t>(golden.plannedSteps - k + 1)));
    struct SimulatedCrash
    {
    };
    resilience::Checkpoint last;
    bool have = false;
    {
        sim::SimulationEngine run =
            sim::makeSimulationEngine(sys.mesh, *sys.model, config);
        sim::SimulationReport report;
        report.dt = run.dt;
        run.stepper->checkpointEvery(
            k, [&](const sim::ExplicitTimeStepper &st) {
                last = snapshotAtHook(run, st, report,
                                      config.sampleInterval);
                have = true;
            });
        try {
            sim::advanceSimulation(run, config, report,
                                   [&](std::int64_t step) {
                                       if (step >= die)
                                           throw SimulatedCrash{};
                                   });
        } catch (const SimulatedCrash &) {
            // the "kill"
        }
    }
    if (!have)
        return fail("no checkpoint written before the crash at step " +
                    std::to_string(die));

    // Resume under a reshuffled execution config (threads / exchange
    // mode / fused are excluded from the fingerprint by contract).
    const sim::SimulationConfig resumeCfg =
        reshuffleExecution(gen, config, cfg);
    sim::SimulationEngine resumed =
        sim::makeSimulationEngine(sys.mesh, *sys.model, resumeCfg);
    resilience::requireCompatible(last, resumed);
    resumed.stepper->restoreState(last.state);
    sim::SimulationReport report;
    report.dt = resumed.dt;
    report.peakDisplacement = last.reportPeak;
    report.samples = last.samples;
    sim::advanceSimulation(resumed, resumeCfg, report);

    std::string why;
    const bool strictEnergy = resumeCfg.fusedStep == config.fusedStep;
    if (!checkpointsBitwiseEqual(finalSnapshot(golden, goldenReport),
                                 finalSnapshot(resumed, report), &why,
                                 strictEnergy))
        return fail("resumed run diverged from golden at " + why +
                    " (checkpoint step " +
                    std::to_string(last.state.steps) + ", killed at " +
                    std::to_string(die) + ")");
    if (report.steps != goldenReport.steps)
        return fail("resumed run took a different step count");
    return ok();
}

// ---------------------------------------------------------------------------
// Sliced-ELLPACK properties (DESIGN.md §12): the conversion round-trips
// the BCSR3 structure exactly at every slice height (including the
// degenerate height 1), the multiply matches the CSR reference within
// the mixed oracle, the slice-partitioned threaded kernel is bitwise
// identical to the serial one, and the fused step is bitwise identical
// to multiply + the reference triad.
// ---------------------------------------------------------------------------

PropertyResult
propSlicedEll3Differential(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const sparse::Bcsr3Matrix &a = sys.stiffness;
    const std::int64_t n = a.numRows();
    const std::vector<double> x = gen.randomVector(n);
    const std::vector<double> ref = a.toCsr().multiply(x);

    // Slice heights: degenerate 1 (one row per slice), a non-power-of-
    // two, and a random draw across the legal range.
    const std::int64_t heights[] = {
        1, 3,
        1 + static_cast<std::int64_t>(gen.rng().nextBounded(
                static_cast<std::uint64_t>(
                    sparse::SlicedEll3Matrix::kMaxSliceHeight)))};
    for (std::int64_t h : heights)
    {
        const sparse::SlicedEll3Matrix ell =
            sparse::SlicedEll3Matrix::fromBcsr3(a, h);
        ell.validate();
        if (!ell.identityRowMap() || ell.numCoveredRows() != a.numBlockRows())
            return fail("fromBcsr3 lost the identity row map at S=" +
                        std::to_string(h));
        if (ell.structuralBlocks() != a.numBlocks())
            return fail("structural block count changed at S=" +
                        std::to_string(h));
        if (ell.paddingRatio() < 1.0)
            return fail("padding ratio < 1 at S=" + std::to_string(h));

        // Round trip: every lane must replay its BCSR3 row — same
        // columns, bit-identical block values — and every slot past the
        // row's end must be the zero pad on column 0.
        const std::vector<std::int64_t> &xadj = a.xadj();
        const std::vector<std::int32_t> &cols = a.blockCols();
        for (std::int64_t s = 0; s < ell.numSlices(); ++s)
        {
            const std::int64_t width = ell.sliceWidth(s);
            for (std::int64_t lane = 0; lane < h; ++lane)
            {
                const std::int64_t r = ell.laneRow(s * h + lane);
                const std::int64_t len =
                    r >= 0 ? xadj[static_cast<std::size_t>(r) + 1] -
                                 xadj[static_cast<std::size_t>(r)]
                           : 0;
                for (std::int64_t j = 0; j < width; ++j)
                {
                    if (j < len)
                    {
                        const std::int64_t b =
                            xadj[static_cast<std::size_t>(r)] + j;
                        if (ell.colAt(s, j, lane) !=
                            cols[static_cast<std::size_t>(b)])
                            return fail("round trip: column mismatch at "
                                        "row " +
                                        std::to_string(r));
                        for (int e = 0; e < 9; ++e)
                            if (!bitEq(ell.valueAt(s, j, lane, e),
                                       a.blockAt(b)[e]))
                                return fail("round trip: value mismatch "
                                            "at row " +
                                            std::to_string(r));
                    }
                    else
                    {
                        if (ell.colAt(s, j, lane) != 0)
                            return fail("pad slot carries column != 0");
                        for (int e = 0; e < 9; ++e)
                            if (ell.valueAt(s, j, lane, e) != 0.0)
                                return fail("pad slot carries a nonzero "
                                            "value");
                    }
                }
            }
        }

        // Differential vs CSR, plus exact determinism on a rerun and
        // agreement between the pointer and vector entry points.
        const std::vector<double> y = ell.multiply(x);
        std::string why;
        if (!withinMixedTolerance(ref, y, kUlpBound, kRelEps, &why))
            return fail("sliced-ELL (S=" + std::to_string(h) +
                        ") vs CSR: " + why);
        if (!bitwiseEqual(y, ell.multiply(x)))
            return fail("sliced-ELL multiply not deterministic at S=" +
                        std::to_string(h));
        std::vector<double> yp(static_cast<std::size_t>(n), -1.0);
        ell.multiply(x.data(), yp.data());
        if (!bitwiseEqual(y, yp))
            return fail("pointer multiply != vector multiply at S=" +
                        std::to_string(h));
    }

    // The symmetric-source conversion mirrors the stored triangle back
    // into a full operator; it must agree with the CSR reference.
    const sparse::SymBcsr3Matrix sym =
        sparse::SymBcsr3Matrix::fromBcsr3(a, 1e-9);
    const sparse::SlicedEll3Matrix ellSym =
        sparse::SlicedEll3Matrix::fromSymBcsr3(sym);
    ellSym.validate();
    std::string why;
    if (!withinMixedTolerance(ref, ellSym.multiply(x), kUlpBound, kRelEps,
                              &why))
        return fail("fromSymBcsr3 vs CSR: " + why);

    // Fused step == this backend's multiply + the reference triad,
    // bitwise (the fused sweep reuses the same slice kernel and applies
    // the triad in ascending row order).
    const sparse::SlicedEll3Matrix ell =
        sparse::SlicedEll3Matrix::fromBcsr3(a);
    const StepFixture fx = StepFixture::make(gen, n, sys.lumpedMass, sys.dt);
    const std::vector<double> ku = ell.multiply(fx.u);
    std::vector<double> upRef = fx.up0;
    sparse::StepPartials pRef;
    sparse::applyStepUpdateRange(fx.su(upRef.data()), ku.data(), 0, n, pRef);
    std::vector<double> upF = fx.up0;
    std::vector<double> scratch(static_cast<std::size_t>(n), 0.0);
    const sparse::StepPartials pF =
        ell.multiplyFusedStep(fx.su(upF.data()), scratch.data());
    if (!bitwiseEqual(upRef, upF))
        return fail("sliced-ELL fused u_{n+1} != multiply + triad bitwise");
    if (!bitEq(pRef.peak, pF.peak) || !bitEq(pRef.energy, pF.energy))
        return fail("sliced-ELL fused partials != reference bitwise");

    // The slice-partitioned threaded kernel writes disjoint output rows,
    // so it is bitwise identical to the serial sliced-ELL kernel at
    // every thread count.
    spark::KernelSuite suite(sys.mesh, *sys.model);
    const std::vector<double> xs = gen.randomVector(suite.dof());
    const std::vector<double> ySerial =
        suite.run(spark::Kernel::kSlicedEll3, xs);
    for (int t : cfg.threads)
    {
        suite.setThreads(t);
        if (!bitwiseEqual(ySerial,
                          suite.run(spark::Kernel::kSlicedEll3Mt, xs)))
            return fail("kSlicedEll3Mt != serial sliced-ELL bitwise at " +
                        std::to_string(t) + " threads");
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: the distributed engine on the sliced-ELL backend keeps the
// same invariants as the BCSR3 backend — bitwise invariant across
// thread counts and exchange modes, fused == multiply + triad bitwise —
// and the two backends agree within the mixed oracle.
// ---------------------------------------------------------------------------

PropertyResult
propEngineBackendEll(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const int parts = gen.randomPartCount(sys.mesh);
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    const parallel::DistributedProblem problem =
        parallel::distribute(sys.mesh, *sys.model, part);
    const std::int64_t n = 3 * problem.numGlobalNodes;

    const std::vector<double> x = gen.randomVector(n);
    const std::vector<double> refGlobal = sys.stiffness.multiply(x);
    StepFixture fx = StepFixture::make(gen, n, sys.lumpedMass, sys.dt);
    fx.u = x; // the fused step's x is the multiply's x

    std::vector<double> yFirst;
    std::vector<double> upRef;
    sparse::StepPartials pRef;
    bool first = true;
    sparse::StepPartials pFirst;

    for (parallel::ExchangeMode mode :
         {parallel::ExchangeMode::kBarrier,
          parallel::ExchangeMode::kOverlapped})
    {
        for (int t : cfg.threads)
        {
            const parallel::ParallelSmvp engine(
                problem, t, mode, parallel::SmvpKernelBackend::kSlicedEll3);
            const std::vector<double> y = engine.multiply(x);
            const char *mname =
                mode == parallel::ExchangeMode::kBarrier ? "barrier"
                                                         : "overlapped";
            if (first)
            {
                std::string why;
                if (!withinMixedTolerance(refGlobal, y, kUlpBound, kRelEps,
                                          &why))
                    return fail("ELL engine vs global assembly: " + why);
                yFirst = y;
                upRef = fx.up0;
                sparse::applyStepUpdateRange(fx.su(upRef.data()),
                                             yFirst.data(), 0, n, pRef);
            }
            else if (!bitwiseEqual(yFirst, y))
            {
                return fail(std::string("ELL engine multiply varies (") +
                            mname + ", " + std::to_string(t) +
                            " threads)");
            }

            std::vector<double> y2(static_cast<std::size_t>(n));
            engine.multiplyInto(x.data(), y2.data());
            if (!bitwiseEqual(yFirst, y2))
                return fail(std::string("ELL multiplyInto != multiply (") +
                            mname + ", " + std::to_string(t) +
                            " threads)");

            std::vector<double> upT = fx.up0;
            const sparse::StepPartials pT =
                engine.stepFused(fx.su(upT.data()));
            if (!bitwiseEqual(upRef, upT))
                return fail(std::string("ELL stepFused u_{n+1} != "
                                        "multiply + triad (") +
                            mname + ", " + std::to_string(t) +
                            " threads)");
            if (first)
            {
                pFirst = pT;
                first = false;
            }
            else if (!bitEq(pFirst.peak, pT.peak) ||
                     !bitEq(pFirst.energy, pT.energy))
            {
                return fail("ELL stepFused partials vary across configs");
            }
            if (!bitEq(pRef.peak, pT.peak))
                return fail("ELL stepFused peak != reference triad peak");
            if (!scalarClose(pRef.energy, pT.energy))
                return fail("ELL stepFused energy drifted from reference");
        }
    }

    // Cross-backend: the two kernel backends may legally differ (FMA
    // contraction on the AVX2 path) but only within the mixed oracle.
    const parallel::ParallelSmvp bcsr(problem, cfg.threads.front(),
                                      parallel::ExchangeMode::kBarrier,
                                      parallel::SmvpKernelBackend::kBcsr3);
    std::string why;
    if (!withinMixedTolerance(bcsr.multiply(x), yFirst, kUlpBound, kRelEps,
                              &why))
        return fail("ELL backend vs BCSR3 backend: " + why);
    return ok();
}

// ---------------------------------------------------------------------------
// Property: the hierarchical (shard x thread) engine is bitwise equal
// to the flat engine across shard counts, threads per shard, exchange
// modes, and fused/unfused — including pinned topologies, whose pins
// may fail (advisory) without perturbing a single bit.
// ---------------------------------------------------------------------------

PropertyResult
propEngineHierarchy(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    GeneratedSystem sys = gen.randomSystem();
    const int parts = gen.randomPartCount(sys.mesh);
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    const parallel::DistributedProblem problem =
        parallel::distribute(sys.mesh, *sys.model, part);
    const std::int64_t n = 3 * problem.numGlobalNodes;

    const std::vector<double> x = gen.randomVector(n);
    const std::vector<double> refGlobal = sys.stiffness.multiply(x);
    StepFixture fx = StepFixture::make(gen, n, sys.lumpedMass, sys.dt);
    fx.u = x; // the fused step's x is the multiply's x

    // Flat single-thread reference: the trajectory every topology must
    // reproduce bit for bit.
    const parallel::ParallelSmvp flat(problem, 1,
                                      parallel::ExchangeMode::kBarrier);
    const std::vector<double> yRef = flat.multiply(x);
    {
        std::string why;
        if (!withinMixedTolerance(refGlobal, yRef, kUlpBound, kRelEps,
                                  &why))
            return fail("flat engine vs global assembly: " + why);
    }
    std::vector<double> upRef = fx.up0;
    sparse::StepPartials pRef;
    sparse::applyStepUpdateRange(fx.su(upRef.data()), yRef.data(), 0, n,
                                 pRef);

    // Shard x thread grid from the ISSUE: 1/2/4 shards x 1-4 threads
    // per shard (shards clamp to the PE count on small partitions —
    // also under test).  The last config pins to a CPU id that cannot
    // exist, forcing every pin through the advisory-failure fallback.
    struct Topo
    {
        int shards;
        int tps;
        bool pin;
        bool bogus_cpus;
    };
    const Topo grid[] = {
        {1, 1, false, false}, {1, 3, false, false}, {2, 1, false, false},
        {2, 2, false, false}, {4, 1, false, false}, {4, 3, false, false},
        {2, 2, true, false},  {2, 2, true, true},
    };

    for (parallel::ExchangeMode mode :
         {parallel::ExchangeMode::kBarrier,
          parallel::ExchangeMode::kOverlapped})
    {
        for (const Topo &tp : grid)
        {
            parallel::Topology topo =
                parallel::Topology::uniform(tp.shards, tp.tps, tp.pin);
            if (tp.bogus_cpus)
                topo.shardCpus.assign(
                    static_cast<std::size_t>(tp.shards), {1 << 20});
            const parallel::ParallelSmvp engine(problem, topo, mode);
            const std::string label =
                std::string(mode == parallel::ExchangeMode::kBarrier
                                ? "barrier "
                                : "overlapped ") +
                std::to_string(tp.shards) + "x" + std::to_string(tp.tps) +
                (tp.bogus_cpus ? " bogus-pin" : tp.pin ? " pinned" : "");

            if (engine.numShards() < 1 ||
                engine.numShards() > problem.numPes() ||
                engine.threadsPerShard() < 1)
                return fail("topology normalization out of range (" +
                            label + ")");
            if (tp.bogus_cpus && engine.numShards() > 1 &&
                engine.pinFailures() == 0)
                return fail("bogus-CPU pins reported no failure (" +
                            label + ")");

            const std::vector<double> y = engine.multiply(x);
            if (!bitwiseEqual(yRef, y))
                return fail("hierarchical multiply != flat (" + label +
                            ")");
            std::vector<double> y2(static_cast<std::size_t>(n));
            engine.multiplyInto(x.data(), y2.data());
            if (!bitwiseEqual(yRef, y2))
                return fail("hierarchical multiplyInto != flat (" +
                            label + ")");

            std::vector<double> upT = fx.up0;
            const sparse::StepPartials pT =
                engine.stepFused(fx.su(upT.data()));
            if (!bitwiseEqual(upRef, upT))
                return fail("hierarchical stepFused u_{n+1} != flat "
                            "multiply + triad (" +
                            label + ")");
            if (!bitEq(pRef.peak, pT.peak))
                return fail("hierarchical stepFused peak != reference (" +
                            label + ")");
            if (!scalarClose(pRef.energy, pT.energy))
                return fail("hierarchical stepFused energy drifted (" +
                            label + ")");
        }
    }

    // The ELL backend must obey the same hierarchy invariance within
    // itself (its bits legally differ from BCSR3's by ULPs only).
    const parallel::ParallelSmvp ellFlat(
        problem, 1, parallel::ExchangeMode::kBarrier,
        parallel::SmvpKernelBackend::kSlicedEll3);
    const std::vector<double> yEll = ellFlat.multiply(x);
    {
        std::string why;
        if (!withinMixedTolerance(yRef, yEll, kUlpBound, kRelEps, &why))
            return fail("ELL flat vs BCSR3 flat: " + why);
    }
    const parallel::ParallelSmvp ellHier(
        problem, parallel::Topology::uniform(2, 2),
        parallel::ExchangeMode::kOverlapped,
        parallel::SmvpKernelBackend::kSlicedEll3);
    if (!bitwiseEqual(yEll, ellHier.multiply(x)))
        return fail("hierarchical ELL multiply != flat ELL");
    return ok();
}

/**
 * The serving-mode contract (DESIGN.md §14): a scenario executed
 * through the multi-tenant service — queued, prefix-cached,
 * single-flighted, packed next to a concurrent duplicate — is bitwise
 * identical to the same request run standalone.  The duplicate
 * submission forces the cache/single-flight path on at least one of
 * the two executions.
 */
PropertyResult
propServiceScenarioBitwise(const TrialConfig &cfg)
{
    common::SplitMix64 rng(cfg.seed ^ 0x5e41ce5eedULL);
    service::ScenarioRequest req;
    req.tenant = "fuzz";
    req.label = "trial-" + std::to_string(cfg.seed);
    req.maxSteps = 4 + static_cast<std::int64_t>(rng.next() % 6);
    req.wavelet.peakFrequencyHz = 0.2 + 0.2 * rng.nextDouble();
    req.hypocenter.x = 20.0 + 10.0 * rng.nextDouble();
    req.poisson = 0.2 + 0.1 * rng.nextDouble();
    if (cfg.size >= 2 && (rng.next() & 1) != 0)
        req.numPes = 2 + static_cast<int>(rng.next() % 3);

    const service::ScenarioResult solo =
        service::ScenarioService::runStandalone(req);
    if (!solo.completed)
        return fail("standalone run failed: " + solo.error);

    service::ServiceOptions opt;
    opt.executors = 2;
    service::ScenarioService svc(opt);
    std::future<service::ScenarioResult> f1 = svc.submit(req);
    std::future<service::ScenarioResult> f2 = svc.submit(req);
    const service::ScenarioResult r1 = f1.get();
    const service::ScenarioResult r2 = f2.get();
    svc.shutdown();

    for (const service::ScenarioResult *r : {&r1, &r2})
    {
        if (!r->completed)
            return fail("service run failed: " + r->error);
        if (r->engineFingerprint != solo.engineFingerprint)
            return fail("service engine fingerprint != standalone");
        if (r->stateFingerprint != solo.stateFingerprint)
            return fail("service state fingerprint != standalone "
                        "(caching/packing changed the trajectory)");
        if (r->report.steps != solo.report.steps)
            return fail("service step count != standalone");
        if (!bitEq(r->report.peakDisplacement,
                   solo.report.peakDisplacement))
            return fail("service peak displacement != standalone");
    }
    if (svc.cacheStats().hits < 1)
        return fail("duplicate submission produced no cache sharing");
    return ok();
}

// ---------------------------------------------------------------------------
// Property: the MESI co-simulator's replay is a pure function of the
// trace set + config — bit-identical stats across reruns and across
// the order traces are handed in (DESIGN.md §15's canonical-schedule
// contract).
// ---------------------------------------------------------------------------

std::string
diffMesiStats(const arch::MesiStats &a, const arch::MesiStats &b)
{
    if (a.pe.size() != b.pe.size())
        return "PE count differs";
    for (std::size_t p = 0; p < a.pe.size(); ++p)
    {
        const arch::PeStats &x = a.pe[p];
        const arch::PeStats &y = b.pe[p];
        const std::int64_t xs[] = {
            x.accesses, x.reads, x.writes, x.l1Misses, x.l2Misses,
            x.llcMisses, x.coldMisses, x.coherenceMisses,
            x.capacityMisses, x.trueSharingMisses, x.falseSharingMisses,
            x.upgrades, x.invalidationsReceived, x.writebacks};
        const std::int64_t ys[] = {
            y.accesses, y.reads, y.writes, y.l1Misses, y.l2Misses,
            y.llcMisses, y.coldMisses, y.coherenceMisses,
            y.capacityMisses, y.trueSharingMisses, y.falseSharingMisses,
            y.upgrades, y.invalidationsReceived, y.writebacks};
        for (std::size_t i = 0; i < std::size(xs); ++i)
            if (xs[i] != ys[i])
                return "PE " + std::to_string(p) + " counter " +
                       std::to_string(i) + " differs";
        if (!bitEq(x.seconds, y.seconds))
            return "PE " + std::to_string(p) + " seconds differ";
    }
    if (a.llcAccesses != b.llcAccesses || a.llcMisses != b.llcMisses ||
        a.bytesFromDram != b.bytesFromDram)
        return "shared-level counters differ";
    return "";
}

PropertyResult
propArchReplayDeterministic(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    const std::int64_t n =
        4 + 8 * cfg.size +
        static_cast<std::int64_t>(gen.rng().nextBounded(7));
    const sparse::Bcsr3Matrix a = gen.randomSpdBcsr3(n);

    const int pes = 1 + static_cast<int>(gen.rng().nextBounded(4));
    arch::MesiHierarchyConfig config =
        (gen.rng().next() & 1) != 0
            ? arch::MesiHierarchyConfig::nehalemCmp(pes)
            : arch::MesiHierarchyConfig::t3e1998(pes);

    for (arch::TraceFormat format :
         {arch::TraceFormat::kBcsr3, arch::TraceFormat::kSymBcsr3,
          arch::TraceFormat::kSlicedEll3})
    {
        arch::CosimOptions opt;
        opt.format = format;
        opt.numPes = pes;
        opt.iterations = 2;
        opt.chunkRefs =
            16 + static_cast<int>(gen.rng().nextBounded(64));

        std::vector<arch::PeTrace> traces =
            arch::buildCosimTraces(a, opt);
        const arch::MesiStats s1 =
            arch::replayTraces(traces, config, opt.chunkRefs);
        const arch::MesiStats s2 =
            arch::replayTraces(traces, config, opt.chunkRefs);
        std::string why = diffMesiStats(s1, s2);
        if (!why.empty())
            return fail(std::string("rerun not bit-identical (") +
                        arch::traceFormatName(format) + "): " + why);

        // Hand the traces over in a different container order; per-PE
        // program order is untouched, so the canonical schedule — and
        // every statistic — must be invariant.
        std::reverse(traces.begin(), traces.end());
        if (traces.size() > 2)
            std::rotate(traces.begin(), traces.begin() + 1, traces.end());
        const arch::MesiStats s3 =
            arch::replayTraces(traces, config, opt.chunkRefs);
        why = diffMesiStats(s1, s3);
        if (!why.empty())
            return fail(std::string("container-order replay differs (") +
                        arch::traceFormatName(format) + "): " + why);
    }
    return ok();
}

// ---------------------------------------------------------------------------
// Property: hierarchy statistics are internally consistent — the miss
// pyramid is monotone, every private miss is classified exactly once,
// sharing splits sum, single-PE runs see zero coherence traffic, and
// the cross-format useful-flop count is conserved.
// ---------------------------------------------------------------------------

PropertyResult
propArchHierarchySane(const TrialConfig &cfg)
{
    InputGen gen(cfg.seed, cfg.size);
    const std::int64_t n =
        4 + 8 * cfg.size +
        static_cast<std::int64_t>(gen.rng().nextBounded(7));
    const sparse::Bcsr3Matrix a = gen.randomSpdBcsr3(n);

    const int pes = 1 + static_cast<int>(gen.rng().nextBounded(4));
    arch::MesiHierarchyConfig config =
        (gen.rng().next() & 1) != 0
            ? arch::MesiHierarchyConfig::nehalemCmp(pes)
            : arch::MesiHierarchyConfig::t3e1998(pes);

    for (arch::TraceFormat format :
         {arch::TraceFormat::kBcsr3, arch::TraceFormat::kSymBcsr3,
          arch::TraceFormat::kSlicedEll3})
    {
        arch::CosimOptions opt;
        opt.format = format;
        opt.numPes = pes;
        opt.iterations = 2;
        const arch::CosimResult r = arch::runCosim(a, config, opt);
        const std::string tag = arch::traceFormatName(format);

        std::int64_t llc_total = 0;
        for (std::size_t p = 0; p < r.stats.pe.size(); ++p)
        {
            const arch::PeStats &ps = r.stats.pe[p];
            const std::string at =
                tag + " PE " + std::to_string(p) + ": ";
            if (ps.reads + ps.writes != ps.accesses)
                return fail(at + "reads + writes != accesses");
            if (ps.l1Misses > ps.accesses)
                return fail(at + "L1 misses exceed accesses");
            if (ps.l2Misses > ps.l1Misses)
                return fail(at + "L2 misses exceed L1 misses");
            if (ps.llcMisses > ps.l2Misses)
                return fail(at + "LLC misses exceed L2 misses");
            if (ps.coldMisses + ps.coherenceMisses + ps.capacityMisses !=
                ps.l2Misses)
                return fail(at + "miss classification not conserved");
            if (ps.trueSharingMisses + ps.falseSharingMisses !=
                ps.coherenceMisses)
                return fail(at + "sharing split != coherence misses");
            if (ps.accesses > 0 && !(ps.seconds > 0))
                return fail(at + "nonpositive modeled seconds");
            llc_total += ps.llcMisses;
        }
        if (llc_total != r.stats.llcMisses)
            return fail(tag + ": per-PE LLC misses != shared count");
        if (pes == 1 && r.stats.totalCoherenceMisses() != 0)
            return fail(tag + ": coherence misses at a single PE");
        if (r.totalFlops !=
            static_cast<std::int64_t>(opt.iterations) *
                a.flopsPerMultiply())
            return fail(tag + ": useful flops not conserved vs BCSR3");
        if (r.stats.bytesFromDram <= 0)
            return fail(tag + ": no modeled DRAM traffic");
        if (!(r.tfSeconds > 0) || !(r.fractionOfPeak > 0) ||
            r.fractionOfPeak > 1.0)
            return fail(tag + ": implausible derived T_f numbers");
    }
    return ok();
}

} // namespace

const std::vector<Property> &
allProperties()
{
    static const std::vector<Property> kProps = {
        {"kernel_differential",
         "every KernelSuite kernel vs reference CSR, ULP-bounded; "
         "threaded kernels bitwise/deterministic",
         propKernelDifferential},
        {"spd_block_differential",
         "random SPD block matrices through BCSR3, symmetric, and "
         "threaded paths",
         propSpdBlockDifferential},
        {"fused_vs_unfused",
         "fused step == unfused SMVP + reference triad, bitwise, on all "
         "fused backends",
         propFusedVsUnfused},
        {"engine_bitwise",
         "ParallelSmvp bitwise invariant across 1/2/4/8 threads and "
         "barrier/overlapped modes",
         propEngineBitwise},
        {"symmetry_bilinear", "x'Ky == y'Kx on assembled and random SPD K",
         propSymmetryBilinear},
        {"determinism_rerun",
         "mesh -> kernels -> engine -> reliable exchange fingerprint "
         "identical across reruns",
         propDeterminismRerun},
        {"exchange_faultfree",
         "reliable exchange with no faults reproduces the ideal "
         "simulator bit for bit",
         propExchangeFaultFree},
        {"exchange_faulty",
         "faulty reliable exchange is rerun-deterministic and conserves "
         "message counts",
         propExchangeFaulty},
        {"reject_invalid",
         "invalid specs/schedules/configs raise FatalError at every "
         "entry point",
         propRejectInvalid},
        {"adversarial_meshes",
         "slivers, disconnected graphs, single elements, and "
         "pathological grading survive all paths",
         propAdversarialMeshes},
        {"telemetry_transparent",
         "tracing on vs off is bitwise identical with 0 steady-state "
         "allocations",
         propTelemetryTransparent},
        {"checkpoint_roundtrip",
         "checkpoint snapshots match the loop view, round-trip bitwise, "
         "and refuse any corrupted byte or fingerprint skew",
         propCheckpointRoundtrip},
        {"checkpoint_kill_resume",
         "a run killed at a random step and resumed from its checkpoint "
         "is bitwise identical to one that never stopped",
         propCheckpointKillResume},
        {"sliced_ell3_differential",
         "sliced-ELL conversion round-trips BCSR3 at every slice "
         "height; multiply matches CSR; MT and fused paths bitwise",
         propSlicedEll3Differential},
        {"engine_backend_ell",
         "distributed sliced-ELL backend bitwise invariant across "
         "threads/modes, fused == multiply + triad, ULP vs BCSR3",
         propEngineBackendEll},
        {"engine_hierarchy",
         "hierarchical shard x thread engine bitwise equal to the flat "
         "engine across 1/2/4 shards, 1-4 threads/shard, both exchange "
         "modes, fused/unfused, and (failing) pins",
         propEngineHierarchy},
        {"service_scenario_bitwise",
         "a scenario served through the multi-tenant service (queue, "
         "prefix cache, single-flight, packing) is bitwise identical "
         "to the same request run standalone",
         propServiceScenarioBitwise},
        {"arch_replay_deterministic",
         "MESI co-sim replay is bit-identical across reruns and across "
         "trace container orders (canonical schedule)",
         propArchReplayDeterministic},
        {"arch_hierarchy_sane",
         "miss pyramid monotone, classification conserved, zero "
         "coherence at 1 PE, useful flops format-invariant",
         propArchHierarchySane},
    };
    return kProps;
}

const Property *
findProperty(const std::string &name)
{
    for (const Property &p : allProperties())
        if (p.name == name)
            return &p;
    return nullptr;
}

PropertyResult
runProperty(const Property &prop, const TrialConfig &cfg)
{
    try
    {
        return prop.run(cfg);
    }
    catch (const common::FatalError &e)
    {
        return PropertyResult::fail(std::string("unexpected FatalError: ") +
                                    e.what());
    }
    catch (const std::exception &e)
    {
        return PropertyResult::fail(std::string("unexpected exception: ") +
                                    e.what());
    }
}

} // namespace quake::verify
