/**
 * @file
 * verify_fuzz — the property-fuzzing driver (DESIGN.md §10).
 *
 *   verify_fuzz                       # whole catalogue, 64 trials each
 *   verify_fuzz --trials 1000        # nightly depth
 *   verify_fuzz --property X --seed 0x1234 --size 2   # replay a failure
 *   verify_fuzz --list               # catalogue with one-line summaries
 *
 * Exit codes: 0 = all properties passed, 1 = at least one failure
 * (a reproducer line is printed per failure), 2 = usage error.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "verify/fuzz.h"
#include "verify/oracles.h"

namespace
{

// Global operator-new counter feeding the telemetry-transparency
// property's zero-allocation assertion (see tests/test_telemetry.cc for
// the same pattern).  Relaxed ordering: counts, not synchronization.
std::atomic<std::int64_t> g_news{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--property NAME]... [--trials N] [--seed S] [--size Z]\n"
        << "       [--threads t1,t2,...] [--list]\n"
        << "  --property NAME   run only NAME (repeatable)\n"
        << "  --trials N        trials per property (default 64)\n"
        << "  --seed S          replay one literal seed (hex 0x.. or "
           "decimal)\n"
        << "  --size Z          input size 0..4 for --seed replays "
           "(default 3)\n"
        << "  --threads LIST    thread counts to sweep (default "
           "1,2,4,8)\n"
        << "  --list            print the property catalogue and exit\n";
    return 2;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    try
    {
        std::size_t pos = 0;
        *out = std::stoull(s, &pos, 0); // base 0: accepts 0x.. and dec
        return pos == s.size();
    }
    catch (const std::exception &)
    {
        return false;
    }
}

bool
parseThreads(const std::string &s, std::vector<int> *out)
{
    out->clear();
    std::string token;
    for (std::size_t i = 0; i <= s.size(); ++i)
    {
        if (i == s.size() || s[i] == ',')
        {
            if (token.empty())
                return false;
            const int t = std::atoi(token.c_str());
            if (t < 1)
                return false;
            out->push_back(t);
            token.clear();
        }
        else
        {
            token += s[i];
        }
    }
    return !out->empty();
}

} // namespace

int
main(int argc, char **argv)
{
    quake::verify::FuzzOptions options;
    options.out = &std::cout;

    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list")
        {
            for (const quake::verify::Property &p :
                 quake::verify::allProperties())
                std::cout << p.name << "\n    " << p.summary << "\n";
            return 0;
        }
        if (arg == "--property")
        {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            options.properties.emplace_back(v);
        }
        else if (arg == "--trials")
        {
            const char *v = next();
            if (v == nullptr || std::atoi(v) < 1)
                return usage(argv[0]);
            options.trials = std::atoi(v);
        }
        else if (arg == "--seed")
        {
            const char *v = next();
            std::uint64_t seed = 0;
            if (v == nullptr || !parseU64(v, &seed))
                return usage(argv[0]);
            options.explicitSeed = static_cast<std::int64_t>(seed);
        }
        else if (arg == "--size")
        {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            const int size = std::atoi(v);
            if (size < 0 || size > quake::verify::TrialConfig::kMaxSize)
                return usage(argv[0]);
            options.explicitSize = size;
        }
        else if (arg == "--threads")
        {
            const char *v = next();
            if (v == nullptr || !parseThreads(v, &options.threads))
                return usage(argv[0]);
        }
        else
        {
            std::cerr << "unknown flag: " << arg << "\n";
            return usage(argv[0]);
        }
    }

    quake::verify::setAllocationCounter(&g_news);
    const quake::verify::FuzzReport report = quake::verify::runFuzz(options);
    quake::verify::setAllocationCounter(nullptr);

    if (!report.passed())
    {
        std::cout << "\n" << report.failures.size()
                  << " failing propert"
                  << (report.failures.size() == 1 ? "y" : "ies") << ":\n";
        for (const quake::verify::FuzzFailure &f : report.failures)
        {
            std::cout << "  " << f.property << ": " << f.message << "\n";
            if (!f.reproducer.empty())
                std::cout << "    reproduce: " << f.reproducer << "\n";
        }
        return 1;
    }
    std::cout << "\nall " << report.propertiesRun << " properties passed ("
              << report.trialsRun << " trials)\n";
    return 0;
}
