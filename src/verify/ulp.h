/**
 * @file
 * ULP (units-in-the-last-place) arithmetic for the differential
 * oracles.  Kernel variants reorder floating-point sums, so exact
 * equality is the wrong bar for cross-format comparisons; an
 * element-wise ULP distance against the reference CSR product is the
 * standard discipline (DESIGN.md §10).  The distance is computed on the
 * IEEE-754 bit patterns mapped to a monotone integer line, so it is a
 * pure integer function with no tolerance heuristics of its own.
 */

#ifndef QUAKE98_VERIFY_ULP_H_
#define QUAKE98_VERIFY_ULP_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace quake::verify
{

/**
 * Number of representable doubles between a and b (0 when bitwise
 * equal; +0 and -0 are one apart).  NaN on either side saturates to
 * INT64_MAX, as does any distance too large to represent — callers
 * compare against small bounds, so saturation is the right overflow
 * behaviour.
 */
inline std::int64_t
ulpDistance(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<std::int64_t>::max();
    std::int64_t ia = 0;
    std::int64_t ib = 0;
    std::memcpy(&ia, &a, sizeof(a));
    std::memcpy(&ib, &b, sizeof(b));
    // Map the sign-magnitude bit pattern onto a monotone integer line:
    // negative doubles (sign bit set) fold below zero in value order.
    if (ia < 0)
        ia = std::numeric_limits<std::int64_t>::min() - ia;
    if (ib < 0)
        ib = std::numeric_limits<std::int64_t>::min() - ib;
    // The true distance always fits in a uint64; compute it with
    // wrapping arithmetic, then saturate into int64.
    const std::uint64_t d = ia >= ib
                                ? static_cast<std::uint64_t>(ia) -
                                      static_cast<std::uint64_t>(ib)
                                : static_cast<std::uint64_t>(ib) -
                                      static_cast<std::uint64_t>(ia);
    if (d > static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max()))
        return std::numeric_limits<std::int64_t>::max();
    return static_cast<std::int64_t>(d);
}

} // namespace quake::verify

#endif // QUAKE98_VERIFY_ULP_H_
