#include "verify/fuzz.h"

#include <ostream>
#include <sstream>

#include "common/rng.h"

namespace quake::verify
{

namespace
{

/**
 * Shrink a failing trial: replay the SAME seed at every smaller size,
 * keeping the smallest size that still fails.  Sizes are the only
 * shrink axis — every generated quantity (mesh dims, part counts,
 * vector lengths) scales monotonically with size, so this is a
 * one-dimensional search with at most kMaxSize replays.
 */
FuzzFailure
shrinkTrial(const Property &prop, const TrialConfig &failing,
            std::string first_message)
{
    FuzzFailure f;
    f.property = prop.name;
    f.seed = failing.seed;
    f.size = failing.size;
    f.message = std::move(first_message);
    for (int size = 0; size < failing.size; ++size)
    {
        TrialConfig cfg = failing;
        cfg.size = size;
        const PropertyResult r = runProperty(prop, cfg);
        if (!r.pass)
        {
            f.size = size;
            f.message = r.message;
            break;
        }
    }
    f.reproducer = reproducerLine(f.property, f.seed, f.size);
    return f;
}

} // namespace

std::string
reproducerLine(const std::string &property, std::uint64_t seed, int size)
{
    std::ostringstream os;
    os << "verify_fuzz --property " << property << " --seed 0x" << std::hex
       << seed << std::dec << " --size " << size;
    return os.str();
}

FuzzReport
runFuzz(const std::vector<Property> &properties, const FuzzOptions &options)
{
    FuzzReport report;
    for (const Property &prop : properties)
    {
        ++report.propertiesRun;
        if (options.out != nullptr)
            *options.out << "[verify] " << prop.name << ": " << std::flush;

        if (options.explicitSeed >= 0)
        {
            // Replay mode: one literal trial, no derivation, no shrink
            // (the reproducer already names the minimal size).
            TrialConfig cfg;
            cfg.seed = static_cast<std::uint64_t>(options.explicitSeed);
            cfg.size = options.explicitSize;
            cfg.threads = options.threads;
            const PropertyResult r = runProperty(prop, cfg);
            ++report.trialsRun;
            if (!r.pass)
            {
                FuzzFailure f;
                f.property = prop.name;
                f.seed = cfg.seed;
                f.size = cfg.size;
                f.message = r.message;
                f.reproducer = reproducerLine(f.property, f.seed, f.size);
                report.failures.push_back(std::move(f));
                if (options.out != nullptr)
                    *options.out << "FAIL\n";
            }
            else if (options.out != nullptr)
            {
                *options.out << "ok (replay)\n";
            }
            continue;
        }

        bool failed = false;
        for (int t = 0; t < options.trials; ++t)
        {
            TrialConfig cfg;
            cfg.seed = common::deriveStream(
                options.baseSeed, static_cast<std::uint64_t>(t));
            // Cycle sizes so every run covers the degenerate sizes 0-1
            // and the larger ones, regardless of the trial budget.
            cfg.size = t % (TrialConfig::kMaxSize + 1);
            cfg.threads = options.threads;
            const PropertyResult r = runProperty(prop, cfg);
            ++report.trialsRun;
            if (!r.pass)
            {
                report.failures.push_back(
                    shrinkTrial(prop, cfg, r.message));
                failed = true;
                break; // first failure per property; move on
            }
        }
        if (options.out != nullptr)
        {
            if (failed)
            {
                const FuzzFailure &f = report.failures.back();
                *options.out << "FAIL at size " << f.size << "\n"
                             << "  " << f.message << "\n"
                             << "  reproduce: " << f.reproducer << "\n";
            }
            else
            {
                *options.out << options.trials << " trials ok\n";
            }
        }
    }
    return report;
}

FuzzReport
runFuzz(const FuzzOptions &options)
{
    std::vector<Property> selected;
    if (options.properties.empty())
    {
        selected = allProperties();
    }
    else
    {
        for (const std::string &name : options.properties)
        {
            const Property *p = findProperty(name);
            if (p == nullptr)
            {
                FuzzReport report;
                FuzzFailure f;
                f.property = name;
                f.message = "unknown property (see --list)";
                report.failures.push_back(std::move(f));
                return report;
            }
            selected.push_back(*p);
        }
    }
    return runFuzz(selected, options);
}

} // namespace quake::verify
