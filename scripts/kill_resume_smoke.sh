#!/bin/sh
# Crash-recovery smoke (DESIGN.md §11, README "crash recovery"):
#
#   1. run a checkpointing simulation to completion -> golden fingerprint
#   2. start the identical run again, SIGKILL it once a checkpoint
#      has been committed to disk (atomic rename: existence == complete)
#   3. resume with --resume and compare final-state fingerprints
#
# The fingerprint covers the step index, the displacement triad, the
# cached reductions, and the report history, so matching lines mean the
# resumed run is bitwise identical to the run that never died.
#
# Usage: kill_resume_smoke.sh <earthquake_sim-binary> <workdir>
set -eu

SIM="$1"
DIR="$2"
mkdir -p "$DIR"
rm -f "$DIR"/golden.ckpt "$DIR"/victim.ckpt

ARGS="--mesh sf20 --max-steps 40 --pes 2 --scale 1.5 --checkpoint-every 5"

fingerprint() {
    sed -n 's/.*final state fingerprint: //p' "$1"
}

# 1. Golden uninterrupted run.
"$SIM" $ARGS --checkpoint "$DIR/golden.ckpt" > "$DIR/golden.log" 2>&1
GOLDEN=$(fingerprint "$DIR/golden.log")
[ -n "$GOLDEN" ] || { echo "FAIL: golden run printed no fingerprint"; exit 1; }

# 2. Identical run, SIGKILLed once the first checkpoint lands.
"$SIM" $ARGS --checkpoint "$DIR/victim.ckpt" > "$DIR/victim.log" 2>&1 &
PID=$!
TRIES=0
while [ ! -f "$DIR/victim.ckpt" ]; do
    # Give up politely if the run finished before we saw a checkpoint.
    kill -0 "$PID" 2>/dev/null || break
    TRIES=$((TRIES + 1))
    [ "$TRIES" -le 600 ] || { echo "FAIL: no checkpoint after 60s"; kill -9 "$PID"; exit 1; }
    sleep 0.1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
[ -f "$DIR/victim.ckpt" ] || { echo "FAIL: victim left no checkpoint"; exit 1; }

# 3. Resume and compare.  (If the kill raced completion, the resume
# restores the final checkpoint and advances zero steps — still equal.)
"$SIM" $ARGS --checkpoint "$DIR/victim.ckpt" --resume > "$DIR/resume.log" 2>&1
RESUMED=$(fingerprint "$DIR/resume.log")
[ -n "$RESUMED" ] || { echo "FAIL: resumed run printed no fingerprint"; exit 1; }

if [ "$GOLDEN" != "$RESUMED" ]; then
    echo "FAIL: resumed fingerprint $RESUMED != golden $GOLDEN"
    exit 1
fi
if ! grep -q "restarts             : [1-9]" "$DIR/resume.log" && \
   ! grep -q "resumed from step" "$DIR/resume.log"; then
    echo "FAIL: resume run did not actually restore a checkpoint"
    exit 1
fi
echo "PASS: resumed run matches golden ($GOLDEN)"
