#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag performance regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.15]
    bench_compare.py BASELINE.json CANDIDATE.json --report-only
    bench_compare.py --self-test

Records are matched by their "kernel" label.  For each metric present
in both records the relative change is computed; the run exits nonzero
when any matched record regresses by more than the threshold (default
15%):

  - lower-is-better metrics (tf_ns, seconds_per_smvp): regression when
    the candidate exceeds baseline * (1 + threshold);
  - higher-is-better metrics (gflops, steps_per_sec): regression when
    the candidate falls below baseline * (1 - threshold).

Informational metrics (bytes_per_flop, gbps, padding_ratio) are
reported but never gate: bytes/flop is a model constant, and GB/s moves
inversely with tf_ns, which already gates.

Kernels present in only one file are reported but do not fail the
comparison (new benchmarks appear, old ones are retired).  The intended
workflow (README.md "Benchmark workflow"): save BENCH_tf_kernels.json
from the baseline commit, rerun on the candidate, then diff.

With --report-only the full diff (including regressions) is printed but
the exit status is always 0.  That is the mode the `perf` ctest tier
uses against the baselines committed under bench/baselines/: those were
produced on a different host, so absolute timings are trajectory
information, not a same-host gate.
"""

import argparse
import json
import sys

# metric name -> True when lower is better.
GATED_METRICS = {
    "tf_ns": True,
    "seconds_per_smvp": True,
    "gflops": False,
    "steps_per_sec": False,
}

INFO_METRICS = ("bytes_per_flop", "gbps", "padding_ratio")


def load_records(path):
    """Map kernel label -> record dict from a BENCH json file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    records = {}
    for rec in doc.get("records", []):
        records[rec["kernel"]] = rec
    return records


def compare(baseline, candidate, threshold):
    """Return (report_lines, regressions) for two kernel->record maps."""
    lines = []
    regressions = []

    common = sorted(set(baseline) & set(candidate))
    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))

    for kernel in common:
        b, c = baseline[kernel], candidate[kernel]
        for metric, lower_is_better in GATED_METRICS.items():
            if metric not in b or metric not in c:
                continue
            old, new = float(b[metric]), float(c[metric])
            if old == 0.0:
                continue
            rel = (new - old) / old
            worse = rel > threshold if lower_is_better else rel < -threshold
            tag = "REGRESSION" if worse else "ok"
            lines.append(
                "  %-24s %-16s %12.4g -> %12.4g  (%+6.1f%%)  %s"
                % (kernel, metric, old, new, 100.0 * rel, tag)
            )
            if worse:
                regressions.append((kernel, metric, old, new, rel))
        for metric in INFO_METRICS:
            if metric in b and metric in c and float(b[metric]) != 0.0:
                old, new = float(b[metric]), float(c[metric])
                rel = (new - old) / old
                lines.append(
                    "  %-24s %-16s %12.4g -> %12.4g  (%+6.1f%%)  info"
                    % (kernel, metric, old, new, 100.0 * rel)
                )

    for kernel in only_base:
        lines.append("  %-24s only in baseline (retired?)" % kernel)
    for kernel in only_cand:
        lines.append("  %-24s only in candidate (new)" % kernel)

    return lines, regressions


def exit_code(regressions, report_only):
    """Nonzero only when regressions exist and gating is requested."""
    return 1 if regressions and not report_only else 0


def self_test():
    """Exercise the comparison logic on embedded fixtures."""
    base = {
        "fast": {"kernel": "fast", "tf_ns": 1.0, "gflops": 2.0},
        "slow": {"kernel": "slow", "tf_ns": 4.0, "gflops": 0.5,
                 "steps_per_sec": 100.0},
        "gone": {"kernel": "gone", "tf_ns": 9.9},
    }

    # Within threshold: +10% tf_ns, -10% gflops -> no regression.
    ok_cand = {
        "fast": {"kernel": "fast", "tf_ns": 1.10, "gflops": 1.8},
        "slow": {"kernel": "slow", "tf_ns": 4.0, "gflops": 0.5,
                 "steps_per_sec": 95.0},
        "new": {"kernel": "new", "tf_ns": 0.5},
    }
    _, regressions = compare(base, ok_cand, 0.15)
    assert not regressions, "false positive: %r" % regressions

    # tf_ns +20% and steps_per_sec -20% must both be flagged.
    bad_cand = {
        "fast": {"kernel": "fast", "tf_ns": 1.20, "gflops": 2.0},
        "slow": {"kernel": "slow", "tf_ns": 4.0, "gflops": 0.5,
                 "steps_per_sec": 80.0},
    }
    _, regressions = compare(base, bad_cand, 0.15)
    flagged = {(k, m) for k, m, *_ in regressions}
    assert ("fast", "tf_ns") in flagged, flagged
    assert ("slow", "steps_per_sec") in flagged, flagged
    assert len(flagged) == 2, flagged

    # An improvement in a lower-is-better metric never flags.
    good_cand = {"fast": {"kernel": "fast", "tf_ns": 0.5, "gflops": 4.0}}
    _, regressions = compare(base, good_cand, 0.15)
    assert not regressions, regressions

    # Zero baselines are skipped, not divided by.
    zero_base = {"z": {"kernel": "z", "tf_ns": 0.0}}
    zero_cand = {"z": {"kernel": "z", "tf_ns": 1.0}}
    _, regressions = compare(zero_base, zero_cand, 0.15)
    assert not regressions, regressions

    # --report-only always exits 0, even with regressions; gating mode
    # exits nonzero exactly when regressions exist.
    _, regressions = compare(base, bad_cand, 0.15)
    assert regressions
    assert exit_code(regressions, report_only=True) == 0
    assert exit_code(regressions, report_only=False) == 1
    assert exit_code([], report_only=False) == 0

    print("bench_compare self-test: all assertions passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; exit nonzero on "
        "performance regressions beyond the threshold."
    )
    parser.add_argument("baseline", nargs="?", help="baseline BENCH json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative regression threshold (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded fixture checks and exit",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the diff but always exit 0 (trajectory reporting "
        "against baselines from another host)",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")

    baseline = load_records(args.baseline)
    candidate = load_records(args.candidate)
    lines, regressions = compare(baseline, candidate, args.threshold)

    print(
        "bench_compare: %s -> %s (threshold %.0f%%)"
        % (args.baseline, args.candidate, 100.0 * args.threshold)
    )
    for line in lines:
        print(line)

    if regressions:
        print(
            "\n%d regression(s) beyond %.0f%%%s:"
            % (
                len(regressions),
                100.0 * args.threshold,
                " (report-only; not gating)" if args.report_only else "",
            )
        )
        for kernel, metric, old, new, rel in regressions:
            print(
                "  %s %s: %.4g -> %.4g (%+.1f%%)"
                % (kernel, metric, old, new, 100.0 * rel)
            )
    else:
        print("\nno regressions beyond the threshold")
    return exit_code(regressions, args.report_only)


if __name__ == "__main__":
    sys.exit(main())
