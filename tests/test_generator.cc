/**
 * @file
 * Tests for the synthetic San Fernando mesh generator: the Kuhn lattice,
 * class presets, grading toward the basin, jitter safety, determinism,
 * and agreement with the paper's structural statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "mesh/generator.h"

namespace
{

using namespace quake::mesh;
using quake::common::FatalError;

TEST(KuhnLattice, Counts)
{
    const TetMesh m = buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 3, 4);
    EXPECT_EQ(m.numNodes(), 3 * 4 * 5);
    EXPECT_EQ(m.numElements(), 2 * 3 * 4 * 6);
}

TEST(KuhnLattice, AllPositiveVolumes)
{
    const TetMesh m = buildKuhnLattice(Aabb{{0, 0, 0}, {2, 1, 1}}, 3, 2, 2);
    m.validate(); // includes the positive-volume check
}

TEST(KuhnLattice, FillsTheBox)
{
    const Aabb box{{0, 0, 0}, {2, 3, 4}};
    const TetMesh m = buildKuhnLattice(box, 2, 2, 2);
    double volume = 0;
    for (TetId t = 0; t < m.numElements(); ++t)
        volume += m.tetVolumeOf(t);
    EXPECT_NEAR(volume, 24.0, 1e-9);
    const Aabb bounds = m.bounds();
    EXPECT_EQ(bounds.lo, box.lo);
    EXPECT_EQ(bounds.hi, box.hi);
}

TEST(KuhnLattice, RejectsBadResolution)
{
    EXPECT_THROW(buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 0, 1, 1),
                 FatalError);
}

TEST(SfClass, NamesRoundTrip)
{
    for (SfClass cls : {SfClass::kSf20, SfClass::kSf10, SfClass::kSf5,
                        SfClass::kSf2, SfClass::kSf1})
        EXPECT_EQ(sfClassFromName(sfClassName(cls)), cls);
    EXPECT_THROW(sfClassFromName("sf3"), FatalError);
}

TEST(SfClass, PeriodsHalve)
{
    EXPECT_DOUBLE_EQ(sfClassPeriod(SfClass::kSf10), 10.0);
    EXPECT_DOUBLE_EQ(sfClassPeriod(SfClass::kSf5), 5.0);
    EXPECT_DOUBLE_EQ(sfClassPeriod(SfClass::kSf2), 2.0);
    EXPECT_DOUBLE_EQ(sfClassPeriod(SfClass::kSf1), 1.0);
}

TEST(SfClass, PaperNodeCountsMatchFigure2)
{
    EXPECT_EQ(sfClassPaperNodes(SfClass::kSf10), 7'294);
    EXPECT_EQ(sfClassPaperNodes(SfClass::kSf5), 30'169);
    EXPECT_EQ(sfClassPaperNodes(SfClass::kSf2), 378'747);
    EXPECT_EQ(sfClassPaperNodes(SfClass::kSf1), 2'461'694);
}

TEST(MeshSpec, ForClassSetsPeriodAndScale)
{
    const MeshSpec spec = MeshSpec::forClass(SfClass::kSf2, 2.0);
    EXPECT_DOUBLE_EQ(spec.periodSeconds, 2.0);
    EXPECT_DOUBLE_EQ(spec.hScale, 2.0);
}

TEST(Generator, RejectsBadSpec)
{
    const LayeredBasinModel model;
    MeshSpec spec;
    spec.periodSeconds = -1;
    EXPECT_THROW(generateMesh(model, spec), FatalError);
    spec = MeshSpec{};
    spec.pointsPerWavelength = 0;
    EXPECT_THROW(generateMesh(model, spec), FatalError);
    spec = MeshSpec{};
    spec.hScale = 0;
    EXPECT_THROW(generateMesh(model, spec), FatalError);
}

/** Shared fixture: generate sf20 once (a few thousand nodes). */
class Sf20Mesh : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        generated_ = new GeneratedMesh(generateSfMesh(SfClass::kSf20));
    }

    static void
    TearDownTestSuite()
    {
        delete generated_;
        generated_ = nullptr;
    }

    static GeneratedMesh *generated_;
};

GeneratedMesh *Sf20Mesh::generated_ = nullptr;

TEST_F(Sf20Mesh, IsValidAndNonTrivial)
{
    const TetMesh &m = generated_->mesh;
    m.validate();
    EXPECT_GT(m.numNodes(), 500);
    EXPECT_GT(m.numElements(), 2000);
}

TEST_F(Sf20Mesh, AverageDegreeNearPaper)
{
    // Paper: each node has ~13 neighbours on average (sf meshes show
    // 2E/N between 12.3 and 13.6).  Accept a generous structural band.
    const MeshStats s = generated_->mesh.computeStats();
    EXPECT_GT(s.avgDegree, 10.0);
    EXPECT_LT(s.avgDegree, 16.0);
}

TEST_F(Sf20Mesh, ElementToNodeRatioNearPaper)
{
    // Paper Figure 2: elements/nodes is 4.8-5.7 across the sf meshes.
    const TetMesh &m = generated_->mesh;
    const double ratio = static_cast<double>(m.numElements()) /
                         static_cast<double>(m.numNodes());
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 7.0);
}

TEST_F(Sf20Mesh, GradingConcentratesNodesInBasin)
{
    // Node density (per km^3) inside the basin footprint should far
    // exceed the density in distant rock.
    const LayeredBasinModel model;
    const TetMesh &m = generated_->mesh;
    std::int64_t basin = 0, rock = 0;
    for (NodeId i = 0; i < m.numNodes(); ++i) {
        const Vec3 &p = m.node(i);
        if (model.basinDepth(p.x, p.y) > 0.5 && p.z < 3.0)
            ++basin;
        else if (p.z < 3.0 &&
                 (p.x < 10 || p.x > 40 || p.y < 10 || p.y > 40))
            ++rock;
    }
    // The basin footprint is a small fraction of the domain yet should
    // hold a comparable or larger node count than the whole rock rim.
    EXPECT_GT(basin, rock / 4);
    EXPECT_GT(basin, 100);
}

TEST_F(Sf20Mesh, JitterAcceptedForMostNodes)
{
    EXPECT_GT(generated_->jitterAccepted,
              generated_->mesh.numNodes() / 2);
}

TEST_F(Sf20Mesh, FillsTheDomainVolume)
{
    const MeshStats s = generated_->mesh.computeStats();
    EXPECT_NEAR(s.totalVolume, 50.0 * 50.0 * 10.0, 1e-6 * 25000.0);
}

TEST(Generator, DeterministicUnderSeed)
{
    const GeneratedMesh a = generateSfMesh(SfClass::kSf20);
    const GeneratedMesh b = generateSfMesh(SfClass::kSf20);
    ASSERT_EQ(a.mesh.numNodes(), b.mesh.numNodes());
    ASSERT_EQ(a.mesh.numElements(), b.mesh.numElements());
    for (NodeId i = 0; i < a.mesh.numNodes(); ++i)
        EXPECT_EQ(a.mesh.node(i), b.mesh.node(i));
}

TEST(Generator, SeedChangesJitterOnly)
{
    MeshSpec spec = MeshSpec::forClass(SfClass::kSf20);
    const LayeredBasinModel model;
    const GeneratedMesh a = generateMesh(model, spec);
    spec.seed ^= 0xdeadbeefULL;
    const GeneratedMesh b = generateMesh(model, spec);
    // Same topology, different geometry.
    ASSERT_EQ(a.mesh.numNodes(), b.mesh.numNodes());
    ASSERT_EQ(a.mesh.numElements(), b.mesh.numElements());
    bool any_moved = false;
    for (NodeId i = 0; i < a.mesh.numNodes() && !any_moved; ++i)
        any_moved = !(a.mesh.node(i) == b.mesh.node(i));
    EXPECT_TRUE(any_moved);
}

TEST(Generator, HScaleCoarsens)
{
    const GeneratedMesh fine = generateSfMesh(SfClass::kSf20, 1.0);
    const GeneratedMesh coarse = generateSfMesh(SfClass::kSf20, 1.8);
    EXPECT_LT(coarse.mesh.numNodes(), fine.mesh.numNodes());
}

TEST(Generator, PeriodHalvingMultipliesNodes)
{
    // Paper §2.1: halving the period increases nodes by nearly 8x; the
    // coarse end of our class ladder is boundary-limited, so accept a
    // broad factor well above the 3D-scaling floor.
    const GeneratedMesh sf20 = generateSfMesh(SfClass::kSf20);
    const GeneratedMesh sf10 = generateSfMesh(SfClass::kSf10);
    const double growth = static_cast<double>(sf10.mesh.numNodes()) /
                          static_cast<double>(sf20.mesh.numNodes());
    EXPECT_GT(growth, 2.5);
    EXPECT_LT(growth, 12.0);
}

} // namespace
