/**
 * @file
 * Tests for the persistent worker pool: every tid runs exactly once per
 * fork/join, the pool is reusable across many epochs (the engine runs
 * thousands of timesteps against one pool), and the size-1 pool runs
 * inline without spawning threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/worker_pool.h"

namespace
{

using quake::parallel::WorkerPool;

TEST(WorkerPool, RunsEveryTidExactlyOnce)
{
    WorkerPool pool(4);
    ASSERT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(4);
    for (auto &h : hits)
        h.store(0);
    pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyEpochs)
{
    WorkerPool pool(3);
    std::atomic<int> total{0};
    for (int epoch = 0; epoch < 100; ++epoch)
        pool.run([&](int) { total++; });
    EXPECT_EQ(total.load(), 300);
}

TEST(WorkerPool, SizeOneRunsInlineOnCallerThread)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.run([&](int tid) {
        EXPECT_EQ(tid, 0);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(WorkerPool, DefaultSizeIsPositive)
{
    WorkerPool pool;
    EXPECT_GE(pool.size(), 1);
    EXPECT_GE(WorkerPool::hardwareThreads(), 1);
}

TEST(WorkerPool, JoinIsABarrier)
{
    // After run() returns, all side effects of all workers are visible.
    WorkerPool pool(4);
    std::vector<int> slots(4, 0);
    for (int round = 1; round <= 10; ++round) {
        pool.run([&](int tid) {
            slots[static_cast<std::size_t>(tid)] = round;
        });
        for (int v : slots)
            EXPECT_EQ(v, round);
    }
}

} // namespace
