/**
 * @file
 * Tests for the persistent worker pool: every tid runs exactly once per
 * fork/join, the pool is reusable across many epochs (the engine runs
 * thousands of timesteps against one pool), the size-1 pool runs
 * inline without spawning threads, hardwareThreads() respects the
 * process affinity mask, and advisory pinning counts failures instead
 * of aborting (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "parallel/topology.h"
#include "parallel/worker_pool.h"

namespace
{

using quake::parallel::WorkerPool;

TEST(WorkerPool, RunsEveryTidExactlyOnce)
{
    WorkerPool pool(4);
    ASSERT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(4);
    for (auto &h : hits)
        h.store(0);
    pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyEpochs)
{
    WorkerPool pool(3);
    std::atomic<int> total{0};
    for (int epoch = 0; epoch < 100; ++epoch)
        pool.run([&](int) { total++; });
    EXPECT_EQ(total.load(), 300);
}

TEST(WorkerPool, SizeOneRunsInlineOnCallerThread)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.run([&](int tid) {
        EXPECT_EQ(tid, 0);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(WorkerPool, DefaultSizeIsPositive)
{
    WorkerPool pool;
    EXPECT_GE(pool.size(), 1);
    EXPECT_GE(WorkerPool::hardwareThreads(), 1);
}

TEST(WorkerPool, HardwareThreadsMatchesAffinityMask)
{
    // hardwareThreads() must report usable concurrency — the CPUs the
    // scheduler will actually grant — not the machine's core count.
    const std::vector<int> cpus = quake::parallel::affinityCpus();
    ASSERT_GE(cpus.size(), 1u);
    EXPECT_EQ(WorkerPool::hardwareThreads(),
              static_cast<int>(cpus.size()));
}

#ifdef __linux__
TEST(WorkerPool, HardwareThreadsRespectsNarrowedMask)
{
    // Regression for the seed's hardware_concurrency() fallback, which
    // over-reported inside cpuset-restricted containers: narrow this
    // thread's affinity to one CPU and hardwareThreads() must follow.
    cpu_set_t original;
    CPU_ZERO(&original);
    ASSERT_EQ(sched_getaffinity(0, sizeof(original), &original), 0);

    const std::vector<int> cpus = quake::parallel::affinityCpus();
    ASSERT_GE(cpus.size(), 1u);
    cpu_set_t narrow;
    CPU_ZERO(&narrow);
    CPU_SET(static_cast<std::size_t>(cpus[0]), &narrow);
    ASSERT_EQ(sched_setaffinity(0, sizeof(narrow), &narrow), 0);

    EXPECT_EQ(WorkerPool::hardwareThreads(), 1);
    EXPECT_EQ(quake::parallel::affinityCpus(),
              std::vector<int>{cpus[0]});

    ASSERT_EQ(sched_setaffinity(0, sizeof(original), &original), 0);
    EXPECT_EQ(WorkerPool::hardwareThreads(),
              static_cast<int>(cpus.size()));
}
#endif

TEST(WorkerPool, PinnedWorkersCountAttemptsAndSucceedOnRealCpus)
{
    // Pin both workers to a CPU the process is allowed on: every
    // attempt must stick, and the pool must work exactly as unpinned.
    const std::vector<int> cpus = quake::parallel::affinityCpus();
    quake::parallel::WorkerPoolOptions opts;
    opts.workerCpus = {{cpus[0]}}; // reused modulo size for both tids
    WorkerPool pool(2, opts);
    std::atomic<int> total{0};
    pool.run([&](int) { total++; });
    EXPECT_EQ(total.load(), 2);
    EXPECT_EQ(pool.pinAttempts(), 2);
    EXPECT_EQ(pool.pinFailures(), 0);
}

TEST(WorkerPool, BogusPinFailsGracefullyAndStillRuns)
{
    // A CPU id far beyond any real machine: the pin must fail, be
    // counted, and leave the pool fully functional (advisory only).
    quake::parallel::WorkerPoolOptions opts;
    opts.workerCpus = {{1 << 20}};
    WorkerPool pool(2, opts);
    std::atomic<int> total{0};
    for (int epoch = 0; epoch < 10; ++epoch)
        pool.run([&](int) { total++; });
    EXPECT_EQ(total.load(), 20);
    EXPECT_EQ(pool.pinAttempts(), 2);
    EXPECT_EQ(pool.pinFailures(), 2);
}

TEST(WorkerPool, SizeOnePoolIgnoresPinning)
{
    // Size-1 pools run inline on the caller's thread, which the pool
    // must not re-pin out from under the caller.
    quake::parallel::WorkerPoolOptions opts;
    opts.workerCpus = {{0}};
    WorkerPool pool(1, opts);
    std::atomic<int> total{0};
    pool.run([&](int tid) {
        EXPECT_EQ(tid, 0);
        total++;
    });
    EXPECT_EQ(total.load(), 1);
    EXPECT_EQ(pool.pinAttempts(), 0);
}

TEST(WorkerPool, PinnedPoolDestructsCleanly)
{
    // Construction joins no dispatch, so destruction must work whether
    // or not the pool ever ran — including with failed pins pending.
    quake::parallel::WorkerPoolOptions opts;
    opts.workerCpus = {{1 << 20}, {0}};
    {
        WorkerPool unused(3, opts);
    }
    {
        WorkerPool used(3, opts);
        std::atomic<int> total{0};
        used.run([&](int) { total++; });
        EXPECT_EQ(total.load(), 3);
    }
}

TEST(WorkerPool, JoinIsABarrier)
{
    // After run() returns, all side effects of all workers are visible.
    WorkerPool pool(4);
    std::vector<int> slots(4, 0);
    for (int round = 1; round <= 10; ++round) {
        pool.run([&](int tid) {
            slots[static_cast<std::size_t>(tid)] = round;
        });
        for (int v : slots)
            EXPECT_EQ(v, round);
    }
}

} // namespace
