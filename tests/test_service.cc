/**
 * @file
 * Tests for the multi-tenant scenario service (DESIGN.md §14): the
 * bounded MPMC admission queue, the content-addressed single-flight
 * prefix cache (eviction under a tight byte budget, concurrent
 * hit/miss on one key), the stage-key discipline of ScenarioRequest,
 * and the end-to-end service — including the bitwise
 * service-vs-standalone contract the whole design hangs on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "service/mpmc_queue.h"
#include "service/prefix_cache.h"
#include "service/scenario.h"
#include "service/service.h"

namespace
{

using quake::common::FatalError;
using quake::service::BoundedMpmcQueue;
using quake::service::PrefixCache;
using quake::service::ScenarioRequest;
using quake::service::ScenarioResult;
using quake::service::ScenarioService;
using quake::service::ServiceOptions;
using quake::service::SoilKind;
using quake::service::TenantStats;

// ----------------------------------------------------------- mpmc queue

TEST(MpmcQueue, RejectsZeroCapacity)
{
    EXPECT_THROW(BoundedMpmcQueue<int>(0), FatalError);
}

TEST(MpmcQueue, FifoOrder)
{
    BoundedMpmcQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 3);
}

TEST(MpmcQueue, TryPushRespectsCapacity)
{
    BoundedMpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_TRUE(q.tryPush(3));
}

TEST(MpmcQueue, CloseRefusesProducersButDrainsConsumers)
{
    BoundedMpmcQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.tryPush(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v)); // closed AND drained
}

TEST(MpmcQueue, CloseWakesBlockedProducer)
{
    BoundedMpmcQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::thread producer([&] {
        // Blocks on the full queue until close() wakes it.
        EXPECT_FALSE(q.push(2));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join();
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverExactlyOnce)
{
    constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 200;
    BoundedMpmcQueue<int> q(8);
    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
    for (auto &s : seen)
        s.store(0);

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                EXPECT_TRUE(q.push(p * kPerProducer + i));
        });
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            int v = 0;
            while (q.pop(v))
                seen[static_cast<std::size_t>(v)].fetch_add(1);
        });
    for (std::thread &t : threads)
        t.join();
    q.close();
    for (std::thread &t : consumers)
        t.join();
    for (const auto &s : seen)
        EXPECT_EQ(s.load(), 1);
}

// --------------------------------------------------------- prefix cache

/** A cached payload with a visible compute count. */
std::function<std::pair<std::shared_ptr<const int>, std::size_t>()>
makePayload(std::atomic<int> &computes, int value, std::size_t bytes)
{
    return [&computes, value, bytes] {
        computes.fetch_add(1);
        return std::make_pair(std::make_shared<const int>(value), bytes);
    };
}

TEST(PrefixCache, MissThenHitReturnsSameObject)
{
    PrefixCache cache(1024);
    std::atomic<int> computes{0};
    bool hit = true;
    const auto a =
        cache.getOrCompute<int>(1, makePayload(computes, 7, 10), &hit);
    EXPECT_FALSE(hit);
    const auto b =
        cache.getOrCompute<int>(1, makePayload(computes, 8, 10), &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(*b, 7); // the cached value, not the second compute's
    EXPECT_EQ(computes.load(), 1);
    const PrefixCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.bytes, 10u);
}

TEST(PrefixCache, EvictsLeastRecentlyUsedUnderTightBudget)
{
    PrefixCache cache(130);
    std::atomic<int> computes{0};
    cache.getOrCompute<int>(1, makePayload(computes, 1, 60));
    cache.getOrCompute<int>(2, makePayload(computes, 2, 60));
    // Touch 1 so 2 becomes the LRU tail, then overflow the budget.
    bool hit = false;
    cache.getOrCompute<int>(1, makePayload(computes, 1, 60), &hit);
    EXPECT_TRUE(hit);
    cache.getOrCompute<int>(3, makePayload(computes, 3, 60));

    PrefixCache::Stats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.bytes, 120u);

    // 1 survived (it was MRU), 2 was evicted and recomputes.
    cache.getOrCompute<int>(1, makePayload(computes, 1, 60), &hit);
    EXPECT_TRUE(hit);
    cache.getOrCompute<int>(2, makePayload(computes, 2, 60), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(computes.load(), 4); // keys 1, 2, 3, and 2 again
}

TEST(PrefixCache, OversizeEntryReturnedButNotRetained)
{
    PrefixCache cache(50);
    std::atomic<int> computes{0};
    const auto v = cache.getOrCompute<int>(
        1, makePayload(computes, 42, 60));
    EXPECT_EQ(*v, 42);
    const PrefixCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.bytes, 0u);
    // A second lookup must recompute.
    bool hit = true;
    cache.getOrCompute<int>(1, makePayload(computes, 42, 60), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(computes.load(), 2);
}

TEST(PrefixCache, ZeroBudgetDisablesCaching)
{
    PrefixCache cache(0);
    std::atomic<int> computes{0};
    for (int i = 0; i < 3; ++i) {
        bool hit = true;
        const auto v = cache.getOrCompute<int>(
            9, makePayload(computes, i, 10), &hit);
        EXPECT_FALSE(hit);
        EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(computes.load(), 3);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PrefixCache, ConcurrentSameKeyIsSingleFlight)
{
    constexpr int kThreads = 8;
    PrefixCache cache(1024);
    std::atomic<int> computes{0};
    const PrefixCache::ComputeFn slow =
        [&computes]() -> std::pair<std::shared_ptr<const void>,
                                   std::size_t> {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return {std::make_shared<const int>(5), 16};
    };

    std::vector<std::shared_ptr<const void>> results(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            results[static_cast<std::size_t>(t)] =
                cache.getOrComputeErased(77, slow);
        });
    for (std::thread &t : threads)
        t.join();

    // One leader computed; every waiter got the same object.
    EXPECT_EQ(computes.load(), 1);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(results[static_cast<std::size_t>(t)].get(),
                  results[0].get());
    const PrefixCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(PrefixCache, ConcurrentDistinctKeysAllCompute)
{
    constexpr int kThreads = 6;
    PrefixCache cache(1024);
    std::atomic<int> computes{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            cache.getOrCompute<int>(
                static_cast<std::uint64_t>(t),
                makePayload(computes, t, 8));
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(computes.load(), kThreads);
    EXPECT_EQ(cache.stats().entries,
              static_cast<std::size_t>(kThreads));
}

TEST(PrefixCache, FailingComputePropagatesAndCachesNothing)
{
    PrefixCache cache(1024);
    const PrefixCache::ComputeFn boom =
        []() -> std::pair<std::shared_ptr<const void>, std::size_t> {
        throw std::runtime_error("assembly failed");
    };
    EXPECT_THROW(cache.getOrComputeErased(5, boom), std::runtime_error);
    EXPECT_EQ(cache.stats().entries, 0u);

    // The key is not poisoned: a later compute succeeds and caches.
    std::atomic<int> computes{0};
    bool hit = true;
    const auto v =
        cache.getOrCompute<int>(5, makePayload(computes, 1, 8), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(*v, 1);
    EXPECT_EQ(cache.stats().entries, 1u);
}

// ------------------------------------------------------- scenario keys

ScenarioRequest
smallRequest()
{
    ScenarioRequest req;
    req.tenant = "acme";
    req.label = "unit";
    req.maxSteps = 8;
    return req;
}

TEST(ScenarioKeys, StableAcrossCalls)
{
    const ScenarioRequest req = smallRequest();
    EXPECT_EQ(req.meshKey(), req.meshKey());
    EXPECT_EQ(req.partitionKey(), req.partitionKey());
    EXPECT_EQ(req.assemblyKey(), req.assemblyKey());
    EXPECT_EQ(req.scenarioKey(), req.scenarioKey());
}

TEST(ScenarioKeys, StagesAreDomainSeparated)
{
    const ScenarioRequest req = smallRequest();
    EXPECT_NE(req.meshKey(), req.partitionKey());
    EXPECT_NE(req.partitionKey(), req.assemblyKey());
    EXPECT_NE(req.assemblyKey(), req.scenarioKey());
}

TEST(ScenarioKeys, MeshFieldsInvalidateEveryStage)
{
    const ScenarioRequest a = smallRequest();
    ScenarioRequest b = a;
    b.meshSpec.hScale *= 1.01;
    EXPECT_NE(a.meshKey(), b.meshKey());
    EXPECT_NE(a.assemblyKey(), b.assemblyKey());
    EXPECT_NE(a.scenarioKey(), b.scenarioKey());

    ScenarioRequest c = a;
    c.soil = SoilKind::kUniform;
    EXPECT_NE(a.meshKey(), c.meshKey());
}

TEST(ScenarioKeys, NumPesInvalidatesPartitionButNotMesh)
{
    const ScenarioRequest a = smallRequest();
    ScenarioRequest b = a;
    b.numPes = 4;
    EXPECT_EQ(a.meshKey(), b.meshKey());
    EXPECT_NE(a.partitionKey(), b.partitionKey());
    EXPECT_NE(a.assemblyKey(), b.assemblyKey());
}

TEST(ScenarioKeys, PoissonInvalidatesAssemblyButNotPartition)
{
    const ScenarioRequest a = smallRequest();
    ScenarioRequest b = a;
    b.poisson = 0.3;
    EXPECT_EQ(a.meshKey(), b.meshKey());
    EXPECT_EQ(a.partitionKey(), b.partitionKey());
    EXPECT_NE(a.assemblyKey(), b.assemblyKey());
    EXPECT_NE(a.scenarioKey(), b.scenarioKey());
}

TEST(ScenarioKeys, SourceInvalidatesOnlyScenario)
{
    const ScenarioRequest a = smallRequest();
    ScenarioRequest b = a;
    b.wavelet.peakFrequencyHz = 0.4;
    EXPECT_EQ(a.assemblyKey(), b.assemblyKey());
    EXPECT_NE(a.scenarioKey(), b.scenarioKey());

    ScenarioRequest c = a;
    c.hypocenter.x += 1.0;
    EXPECT_EQ(a.assemblyKey(), c.assemblyKey());
    EXPECT_NE(a.scenarioKey(), c.scenarioKey());
}

TEST(ScenarioKeys, ExecutionKnobsDoNotChangeAnyKey)
{
    // Bitwise-invariant knobs must be invisible to every key: the
    // whole point of prefix sharing is that these can differ freely.
    const ScenarioRequest a = smallRequest();
    ScenarioRequest b = a;
    b.fusedStep = false;
    b.topologyHint = "2x2";
    b.faults = true;
    b.faultDropRate = 0.1;
    b.deadlineMs = 500.0;
    EXPECT_EQ(a.meshKey(), b.meshKey());
    EXPECT_EQ(a.partitionKey(), b.partitionKey());
    EXPECT_EQ(a.assemblyKey(), b.assemblyKey());
    EXPECT_EQ(a.scenarioKey(), b.scenarioKey());
}

TEST(ScenarioKeys, KernelBackendChangesScenarioKeyOnly)
{
    const ScenarioRequest a = smallRequest();
    ScenarioRequest b = a;
    b.kernelBackend =
        quake::sim::SimulationConfig::KernelBackend::kSlicedEll3;
    EXPECT_EQ(a.assemblyKey(), b.assemblyKey());
    EXPECT_NE(a.scenarioKey(), b.scenarioKey());
}

TEST(ScenarioRequest, ValidateRejectsBadFields)
{
    ScenarioRequest req = smallRequest();
    req.tenant.clear();
    EXPECT_THROW(req.validate(), FatalError);

    req = smallRequest();
    req.faultDropRate = 1.5;
    EXPECT_THROW(req.validate(), FatalError);

    req = smallRequest();
    req.deadlineMs = -1.0;
    EXPECT_THROW(req.validate(), FatalError);

    req = smallRequest();
    req.soil = SoilKind::kUniform;
    req.uniformVs = 0.0;
    EXPECT_THROW(req.validate(), FatalError);
}

// ------------------------------------------------------ service e2e

ServiceOptions
smallServiceOptions()
{
    ServiceOptions opt;
    opt.executors = 2;
    opt.queueCapacity = 16;
    return opt;
}

TEST(ScenarioService, ServiceMatchesStandaloneBitwise)
{
    const ScenarioRequest req = smallRequest();
    const ScenarioResult solo = ScenarioService::runStandalone(req);
    ASSERT_TRUE(solo.completed);

    ScenarioService svc(smallServiceOptions());
    const ScenarioResult served = svc.submit(req).get();
    ASSERT_TRUE(served.completed);
    EXPECT_EQ(served.engineFingerprint, solo.engineFingerprint);
    EXPECT_EQ(served.stateFingerprint, solo.stateFingerprint);
    EXPECT_EQ(served.report.steps, solo.report.steps);
    EXPECT_EQ(served.report.peakDisplacement,
              solo.report.peakDisplacement);
}

TEST(ScenarioService, RepeatedSpecsShareThePrefix)
{
    ScenarioService svc(smallServiceOptions());
    std::vector<std::future<ScenarioResult>> futures;
    for (int i = 0; i < 4; ++i) {
        ScenarioRequest req = smallRequest();
        req.label = "rep-" + std::to_string(i);
        req.wavelet.peakFrequencyHz = 0.25 + 0.05 * i;
        futures.push_back(svc.submit(std::move(req)));
    }
    std::uint64_t fingerprint0 = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const ScenarioResult r = futures[i].get();
        ASSERT_TRUE(r.completed) << r.error;
        if (i == 0)
            fingerprint0 = r.engineFingerprint;
        // Same prefix, different sources: engine fingerprints differ
        // only through the config, which includes the wavelet.
        if (i > 0)
            EXPECT_NE(r.engineFingerprint, fingerprint0);
    }
    svc.shutdown();
    const PrefixCache::Stats s = svc.cacheStats();
    // Mesh and assembly each computed once; the other 3 requests hit
    // both stages (single-flight may serialize, order is irrelevant).
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.hits, 6u);
}

TEST(ScenarioService, PerTenantAccountingSplits)
{
    ScenarioService svc(smallServiceOptions());
    std::vector<std::future<ScenarioResult>> futures;
    for (int i = 0; i < 3; ++i) {
        ScenarioRequest req = smallRequest();
        req.tenant = i < 2 ? "alpha" : "beta";
        req.label = "t-" + std::to_string(i);
        futures.push_back(svc.submit(std::move(req)));
    }
    for (auto &f : futures)
        ASSERT_TRUE(f.get().completed);
    svc.shutdown();

    const TenantStats alpha = svc.tenantStats("alpha");
    const TenantStats beta = svc.tenantStats("beta");
    EXPECT_EQ(alpha.submitted, 2u);
    EXPECT_EQ(alpha.completed, 2u);
    EXPECT_EQ(beta.submitted, 1u);
    EXPECT_EQ(beta.completed, 1u);
    EXPECT_EQ(svc.tenantStats("nobody").submitted, 0u);
    EXPECT_EQ(alpha.cacheHits + alpha.cacheMisses, 4u); // 2 stages x 2
}

TEST(ScenarioService, ShedsOnImpossibleDeadline)
{
    // With the Eq. (1) model armed, a 1 ms SLO is below even the
    // 50 ms floor of modelStepDeadline: the request must be shed (or,
    // if it aged in the queue, refused there) — never executed.
    ServiceOptions opt = smallServiceOptions();
    opt.modelMflops = 100.0;
    ScenarioService svc(opt);
    ScenarioRequest req = smallRequest();
    req.deadlineMs = 1.0;
    const ScenarioResult r = svc.submit(req).get();
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.admitted);
    EXPECT_NE(r.error.find("shed"), std::string::npos) << r.error;
    svc.shutdown();
    EXPECT_EQ(svc.tenantStats("acme").shed, 1u);
}

TEST(ScenarioService, GenerousDeadlineWithModelStillAdmits)
{
    ServiceOptions opt = smallServiceOptions();
    opt.modelMflops = 100.0;
    ScenarioService svc(opt);
    ScenarioRequest req = smallRequest();
    req.deadlineMs = 600000.0; // 10 minutes: plenty
    const ScenarioResult r = svc.submit(req).get();
    EXPECT_TRUE(r.admitted);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_GT(r.predictedSeconds, 0.0);
}

TEST(ScenarioService, StreamsResultRecordAtomically)
{
    const std::string dir = ::testing::TempDir() + "quake_service_res";
    std::filesystem::create_directories(dir);
    ServiceOptions opt = smallServiceOptions();
    opt.resultDir = dir;
    ScenarioService svc(opt);
    const ScenarioResult r = svc.submit(smallRequest()).get();
    ASSERT_TRUE(r.completed);
    ASSERT_FALSE(r.resultPath.empty());
    std::ifstream in(r.resultPath);
    ASSERT_TRUE(in.good()) << r.resultPath;
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(body.find("\"tenant\": \"acme\""), std::string::npos);
    EXPECT_NE(body.find("\"completed\": true"), std::string::npos);
    EXPECT_NE(body.find("state_fingerprint"), std::string::npos);
}

TEST(ScenarioService, SubmitValidatesBeforeEnqueue)
{
    ScenarioService svc(smallServiceOptions());
    ScenarioRequest bad = smallRequest();
    bad.tenant.clear();
    EXPECT_THROW(svc.submit(bad), FatalError);
}

TEST(ScenarioService, SubmitAfterShutdownThrowsAndTrySubmitRefuses)
{
    ScenarioService svc(smallServiceOptions());
    svc.shutdown();
    EXPECT_THROW(svc.submit(smallRequest()), FatalError);
    std::future<ScenarioResult> out;
    EXPECT_FALSE(svc.trySubmit(smallRequest(), &out));
    EXPECT_EQ(svc.queueRejections(), 1u);
}

TEST(ScenarioService, RejectsBadOptions)
{
    ServiceOptions opt;
    opt.executors = 0;
    EXPECT_THROW(ScenarioService{opt}, FatalError);
    opt = ServiceOptions{};
    opt.queueCapacity = 0;
    EXPECT_THROW(ScenarioService{opt}, FatalError);
    opt = ServiceOptions{};
    opt.admitSlack = 0.0;
    EXPECT_THROW(ScenarioService{opt}, FatalError);
}

TEST(ScenarioService, DestructorDrainsAcceptedRequests)
{
    std::future<ScenarioResult> future;
    {
        ScenarioService svc(smallServiceOptions());
        future = svc.submit(smallRequest());
        // Destruction closes the queue and joins the lanes; the
        // accepted future must still become ready.
    }
    const ScenarioResult r = future.get();
    EXPECT_TRUE(r.completed) << r.error;
}

TEST(ScenarioService, DistributedScenarioMatchesStandalone)
{
    ScenarioRequest req = smallRequest();
    req.numPes = 4;
    req.maxSteps = 6;
    const ScenarioResult solo = ScenarioService::runStandalone(req);
    ASSERT_TRUE(solo.completed);

    ScenarioService svc(smallServiceOptions());
    const ScenarioResult served = svc.submit(req).get();
    ASSERT_TRUE(served.completed) << served.error;
    EXPECT_EQ(served.stateFingerprint, solo.stateFingerprint);
    EXPECT_EQ(served.cacheStagesTotal, 3); // mesh, partition, assembly
}

} // namespace
