/**
 * @file
 * Tests for the LogGP bridge (§3.3): the documented correspondence with
 * the paper's block model (o = T_l, G = T_w, L -> 0), the wire-latency
 * and gap corrections, and input validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/logp.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;

SmvpCharacterization
singlePe(std::int64_t words, std::int64_t blocks)
{
    SmvpCharacterization ch;
    ch.numPes = 1;
    ch.pes = {PeLoad{1000, words, blocks}};
    return ch;
}

TEST(LogGp, FromBlockModelMapsParameters)
{
    const LogGpParams p =
        LogGpParams::fromBlockModel(22e-6, 55e-9, 1e-6, 2e-6);
    EXPECT_DOUBLE_EQ(p.overhead, 22e-6);
    EXPECT_DOUBLE_EQ(p.gapPerWord, 55e-9);
    EXPECT_DOUBLE_EQ(p.latency, 1e-6);
    EXPECT_DOUBLE_EQ(p.gap, 2e-6);
    EXPECT_THROW(LogGpParams::fromBlockModel(-1, 0), FatalError);
}

TEST(LogGp, ReducesToBlockModelUpToPerMessageWord)
{
    // With L = g = 0: LogGP = B*o + (C - B)*G, the block model is
    // B*T_l + C*T_w — they differ by exactly B*G (the "(k-1) vs k"
    // payload convention).
    const double tl = 10e-6, tw = 100e-9;
    const SmvpCharacterization ch = singlePe(900, 6);
    const LogGpParams p = LogGpParams::fromBlockModel(tl, tw);
    const LogGpPhase loggp = logGpCommTime(ch, p);
    const double block = blockModelCommTime(ch, tl, tw);
    EXPECT_NEAR(loggp.tComm, block - 6 * tw, 1e-15);
}

TEST(LogGp, WireLatencyAddsOnce)
{
    const SmvpCharacterization ch = singlePe(900, 6);
    const LogGpParams base = LogGpParams::fromBlockModel(10e-6, 100e-9);
    const LogGpParams wired =
        LogGpParams::fromBlockModel(10e-6, 100e-9, 5e-6);
    EXPECT_NEAR(logGpCommTime(ch, wired).tComm,
                logGpCommTime(ch, base).tComm + 5e-6, 1e-15);
}

TEST(LogGp, GapSeparatesMessages)
{
    const SmvpCharacterization ch = singlePe(900, 6);
    const LogGpParams base = LogGpParams::fromBlockModel(10e-6, 100e-9);
    const LogGpParams gapped =
        LogGpParams::fromBlockModel(10e-6, 100e-9, 0.0, 1e-6);
    // 6 messages -> 5 inter-message gaps.
    EXPECT_NEAR(logGpCommTime(ch, gapped).tComm,
                logGpCommTime(ch, base).tComm + 5e-6, 1e-15);
}

TEST(LogGp, MaxOverPes)
{
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 100, 2}, PeLoad{1, 50, 10}};
    const LogGpParams latency_machine =
        LogGpParams::fromBlockModel(1e-4, 1e-9);
    // PE 1 dominates under a latency-heavy machine (10 overheads).
    const LogGpPhase phase = logGpCommTime(ch, latency_machine);
    EXPECT_NEAR(phase.tComm, 10 * 1e-4 + 40 * 1e-9, 1e-12);
    EXPECT_NEAR(phase.commOfMaxPe, 10 * 1e-4, 1e-12);
}

TEST(LogGp, SilentPeCostsNothing)
{
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 0, 0}, PeLoad{1, 90, 2}};
    const LogGpParams p = LogGpParams::fromBlockModel(1e-6, 1e-9);
    EXPECT_GT(logGpCommTime(ch, p).tComm, 0.0);
}

TEST(LogGp, BlockModelCommTimeMatchesDefinition)
{
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 100, 2}, PeLoad{1, 60, 4}};
    // PE0: 2*1us + 100*10ns = 3us.  PE1: 4*1us + 60*10ns = 4.6us.
    EXPECT_NEAR(blockModelCommTime(ch, 1e-6, 10e-9), 4.6e-6, 1e-15);
}

TEST(LogGp, RejectsEmpty)
{
    EXPECT_THROW(logGpCommTime(SmvpCharacterization{}, LogGpParams{}),
                 FatalError);
    EXPECT_THROW(blockModelCommTime(SmvpCharacterization{}, 0, 0),
                 FatalError);
}

} // namespace
