/**
 * @file
 * Tests for reverse Cuthill-McKee reordering: permutation mechanics,
 * bandwidth reduction, mesh invariance under renumbering, and the
 * locality payoff measured through the cache model.
 */

#include <gtest/gtest.h>

#include "arch/smvp_trace.h"
#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "sparse/assembly.h"
#include "sparse/reorder.h"

namespace
{

using namespace quake::sparse;
using namespace quake::mesh;
using quake::common::FatalError;

TEST(Permutation, IdentityIsValid)
{
    const Permutation p = Permutation::identity(5);
    EXPECT_NO_THROW(p.validate());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(p.perm[i], i);
}

TEST(PermutationDeathTest, ValidateCatchesCorruption)
{
    Permutation p = Permutation::identity(4);
    p.perm[0] = 2; // duplicates 2
    EXPECT_DEATH(p.validate(), "repeated|does not invert");
}

TEST(Rcm, PathGraphGetsBandwidthOne)
{
    // A path 0-1-2-...-n as a degenerate adjacency: RCM must produce a
    // contiguous ordering with bandwidth 1 regardless of the input
    // labels.  Build the path with scrambled labels.
    const int n = 20;
    std::vector<int> label(n);
    for (int i = 0; i < n; ++i)
        label[i] = (i * 7) % n; // scrambled but bijective
    NodeAdjacency adj;
    std::vector<std::vector<NodeId>> lists(n);
    for (int i = 0; i + 1 < n; ++i) {
        lists[label[i]].push_back(label[i + 1]);
        lists[label[i + 1]].push_back(label[i]);
    }
    adj.xadj.push_back(0);
    for (int v = 0; v < n; ++v) {
        std::sort(lists[v].begin(), lists[v].end());
        adj.adjncy.insert(adj.adjncy.end(), lists[v].begin(),
                          lists[v].end());
        adj.xadj.push_back(static_cast<std::int64_t>(adj.adjncy.size()));
    }

    const Permutation p = reverseCuthillMcKee(adj);
    p.validate();

    // Bandwidth after renumbering: relabel edges through p.perm.
    std::int64_t bw = 0;
    for (int v = 0; v < n; ++v)
        for (std::int64_t k = adj.xadj[v]; k < adj.xadj[v + 1]; ++k)
            bw = std::max<std::int64_t>(
                bw, std::abs(p.perm[v] - p.perm[adj.adjncy[k]]));
    EXPECT_EQ(bw, 1);
}

TEST(Rcm, ReducesBandwidthOnScrambledMesh)
{
    // Scramble a lattice's node numbering, then check RCM recovers a
    // bandwidth far below the scrambled one.
    const TetMesh base = buildKuhnLattice(
        Aabb{{0, 0, 0}, {1, 1, 1}}, 6, 6, 6);

    // Random permutation scramble.
    quake::common::SplitMix64 rng(99);
    Permutation scramble = Permutation::identity(base.numNodes());
    for (std::int64_t i = base.numNodes() - 1; i > 0; --i) {
        const std::int64_t j =
            static_cast<std::int64_t>(rng.nextBounded(
                static_cast<std::uint64_t>(i) + 1));
        std::swap(scramble.perm[i], scramble.perm[j]);
    }
    for (std::int64_t i = 0; i < base.numNodes(); ++i)
        scramble.inverse[scramble.perm[i]] =
            static_cast<NodeId>(i);
    const TetMesh scrambled = permuteMesh(base, scramble);

    const std::int64_t bw_scrambled =
        graphBandwidth(scrambled.buildNodeAdjacency());

    const Permutation rcm =
        reverseCuthillMcKee(scrambled.buildNodeAdjacency());
    const TetMesh ordered = permuteMesh(scrambled, rcm);
    const std::int64_t bw_rcm =
        graphBandwidth(ordered.buildNodeAdjacency());

    EXPECT_LT(bw_rcm, bw_scrambled / 4);
}

TEST(Rcm, PermutedMeshIsSameGeometry)
{
    const TetMesh base = buildKuhnLattice(
        Aabb{{0, 0, 0}, {2, 1, 1}}, 3, 2, 2);
    const Permutation p =
        reverseCuthillMcKee(base.buildNodeAdjacency());
    const TetMesh renumbered = permuteMesh(base, p);

    renumbered.validate();
    EXPECT_EQ(renumbered.numNodes(), base.numNodes());
    EXPECT_EQ(renumbered.numElements(), base.numElements());

    // Same total volume and element-wise volumes (elements keep order).
    for (TetId t = 0; t < base.numElements(); ++t)
        EXPECT_NEAR(renumbered.tetVolumeOf(t), base.tetVolumeOf(t),
                    1e-12);
    // Node positions are the same multiset: check via coordinate sums.
    Vec3 sum_a{}, sum_b{};
    for (NodeId i = 0; i < base.numNodes(); ++i) {
        sum_a += base.node(i);
        sum_b += renumbered.node(i);
    }
    EXPECT_NEAR((sum_a - sum_b).norm(), 0.0, 1e-9);
}

TEST(Rcm, HandlesDisconnectedComponents)
{
    // Two disjoint tets.
    TetMesh m;
    for (int c = 0; c < 2; ++c) {
        const double off = 10.0 * c;
        const NodeId base = m.addNode({off, 0, 0});
        m.addNode({off + 1, 0, 0});
        m.addNode({off, 1, 0});
        m.addNode({off, 0, 1});
        m.addTet(base, base + 1, base + 2, base + 3);
    }
    const Permutation p = reverseCuthillMcKee(m.buildNodeAdjacency());
    EXPECT_NO_THROW(p.validate());
    permuteMesh(m, p).validate();
}

TEST(Rcm, ImprovesPredictedCacheBehaviour)
{
    using namespace quake::arch;
    // Scramble an sf-class mesh, then reorder with RCM: the cache
    // model must predict a better (or equal) sustained rate for the
    // RCM ordering — the §4 "irregular memory reference" mechanism.
    const GeneratedMesh g = generateSfMesh(SfClass::kSf10);
    const LayeredBasinModel model;

    quake::common::SplitMix64 rng(7);
    Permutation scramble = Permutation::identity(g.mesh.numNodes());
    for (std::int64_t i = g.mesh.numNodes() - 1; i > 0; --i) {
        const std::int64_t j = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(i) + 1));
        std::swap(scramble.perm[i], scramble.perm[j]);
    }
    for (std::int64_t i = 0; i < g.mesh.numNodes(); ++i)
        scramble.inverse[scramble.perm[i]] = static_cast<NodeId>(i);
    const TetMesh scrambled = permuteMesh(g.mesh, scramble);

    const Permutation rcm =
        reverseCuthillMcKee(scrambled.buildNodeAdjacency());
    const TetMesh ordered = permuteMesh(scrambled, rcm);

    const MemoryHierarchy hierarchy;
    const TfPrediction bad = predictSmvpTf(
        assembleStiffness(scrambled, model), hierarchy);
    const TfPrediction good = predictSmvpTf(
        assembleStiffness(ordered, model), hierarchy);
    EXPECT_GT(good.mflops, bad.mflops);
    EXPECT_LT(good.memory.l1MissRate(), bad.memory.l1MissRate());
}

TEST(PermuteMesh, RejectsWrongSize)
{
    const TetMesh m = buildKuhnLattice(
        Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
    EXPECT_THROW(permuteMesh(m, Permutation::identity(3)), FatalError);
}

} // namespace
